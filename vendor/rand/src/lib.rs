//! Vendored stand-in for `rand`, covering the API surface this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `SliceRandom::{choose, partial_shuffle}`.
//!
//! The build environment is hermetic (no crates.io access). The generator
//! is SplitMix64 — statistically fine for workload generation, and every
//! workload in this repo is seeded, so runs stay reproducible. It is NOT
//! the real `StdRng` (ChaCha12): sequences differ from upstream, but
//! nothing in the repo depends on upstream's exact streams.

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let off = rng.next_u64() % (span as u64);
                (self.start as $wide).wrapping_add(off as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let off = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}

impl_sample_range! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

/// The user-facing sampling interface (blanket-implemented for every
/// `RngCore`, like upstream rand's `Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{mix64, RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64; see crate docs for the
    /// deliberate divergence from upstream's ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(self.state)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: mix64(seed ^ 0x517C_C1B7_2722_0A95),
            }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling helpers (`choose`, `partial_shuffle`).
    pub trait SliceRandom {
        type Item;
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffle of the first `amount` positions; returns
        /// `(shuffled_prefix, rest)` like upstream.
        fn partial_shuffle<R: RngCore>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn partial_shuffle<R: RngCore>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(-50i64..50);
            assert_eq!(x, b.gen_range(-50i64..50));
            assert!((-50..50).contains(&x));
            let y = a.gen_range(1..=6u64);
            assert_eq!(y, b.gen_range(1..=6u64));
            assert!((1..=6).contains(&y));
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
            let _ = b.gen::<f64>();
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [10u32, 20, 30];
        assert!(xs.contains(xs.choose(&mut rng).unwrap()));

        let mut pool: Vec<u32> = (0..100).collect();
        let (front, rest) = pool.partial_shuffle(&mut rng, 10);
        assert_eq!(front.len(), 10);
        assert_eq!(rest.len(), 90);
        let mut all: Vec<u32> = pool.clone();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
