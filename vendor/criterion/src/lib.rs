//! Vendored stand-in for `criterion`, matching the API surface this
//! workspace's benches use. The build environment is hermetic (no
//! crates.io access), so the real harness cannot be pulled in.
//!
//! Behaviour: each bench closure is executed once per `Bencher::iter`
//! call and timed with `std::time::Instant`; a single line per benchmark
//! is printed. That keeps `cargo bench` a meaningful smoke-run (the
//! closures really execute, so regressions that panic or violate
//! invariants still surface) without upstream's statistics machinery.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        run_one(&self.name, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed_ns: 0 };
    let start = Instant::now();
    f(&mut b);
    let wall = start.elapsed();
    if group.is_empty() {
        println!("bench {label}: {wall:?} (smoke run)");
    } else {
        println!("bench {group}/{label}: {wall:?} (smoke run)");
    }
}

/// Timing handle passed to bench closures.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Run the routine once (smoke semantics) and record its duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units-of-work declaration (accepted, not reported).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("vendor-smoke");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_closures() {
        benches();
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}
