//! Vendored stand-in for `proptest`: a deterministic mini
//! property-testing harness covering exactly the API surface this
//! workspace uses (`proptest!`, `prop_oneof!`, `prop_assert*`,
//! `any`, typed range strategies, tuples, `prop::collection::vec`,
//! `prop_map`, `ProptestConfig`, `TestCaseError`).
//!
//! The build environment is hermetic (no crates.io access), so the real
//! crate cannot be pulled in. Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its 1-based case number and
//!   the failure message; cases are reproducible (see below), so re-running
//!   the same binary reaches the same inputs.
//! * **Deterministic generation.** Each test's RNG is seeded from a hash
//!   of the test's module path, name and case index — every run of the
//!   same test binary explores the same inputs, which suits this repo's
//!   reproducibility-first philosophy (the simulator itself is seeded
//!   everywhere).
//! * Only the strategy combinators listed above exist; add more here if a
//!   new test needs them.

pub mod test_runner {
    /// Runner configuration. Only `cases` is consulted; the other fields
    /// exist so `..ProptestConfig::default()` struct-update syntax keeps
    /// working when tests set just one knob.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; rejection sampling is not implemented.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 0,
            }
        }
    }

    /// Failure type returned (not thrown) by `prop_assert*` macros.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The input was rejected (kept for API compatibility).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// SplitMix64 generator seeded from the test identity and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    #[inline]
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// The per-case RNG: FNV-1a over the test's identity, mixed with
        /// the case index.
        pub fn deterministic(test_id: &str, case: u32) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_id.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: mix64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))),
            }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(self.state)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erase (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe shim behind [`BoxedStrategy`].
    trait ObjStrategy<T> {
        fn generate_obj(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ObjStrategy<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T>(Rc<dyn ObjStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, strat) in &self.arms {
                if pick < u64::from(*w) {
                    return strat.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty => $wide:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                    (lo as $wide).wrapping_add(off as $wide) as $t
                }
            }
        )*};
    }

    impl_int_range! {
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct ArbitraryStrategy<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Uniform strategy over the whole domain of `A`.
    pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
        ArbitraryStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length distribution for [`vec`]: `[lo, hi)` like upstream's
    /// `Range<usize>` form.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, 0..n)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in -40i64..200, y in 1u32..9, b in any::<bool>()) {
            prop_assert!((-40..200).contains(&x), "x = {x}");
            prop_assert!((1..9).contains(&y));
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn vec_and_oneof(
            mut xs in prop::collection::vec((0u64..30, any::<u32>()), 0..40),
            pick in prop_oneof![3 => (0i64..10).prop_map(|v| v * 2), 1 => 100i64..101],
        ) {
            xs.sort_unstable();
            prop_assert!(xs.len() < 40);
            for &(a, _) in &xs {
                prop_assert!(a < 30);
            }
            prop_assert!(pick == 100 || (pick % 2 == 0 && pick < 20), "pick = {pick}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 1..50);
        let one: Vec<Vec<u64>> = (0..5)
            .map(|c| strat.generate(&mut crate::test_runner::TestRng::deterministic("t", c)))
            .collect();
        let two: Vec<Vec<u64>> = (0..5)
            .map(|c| strat.generate(&mut crate::test_runner::TestRng::deterministic("t", c)))
            .collect();
        assert_eq!(one, two);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_are_reported() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }
}
