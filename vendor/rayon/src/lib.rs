//! Vendored stand-in for `rayon`, providing the exact API surface this
//! workspace uses.
//!
//! The build environment is hermetic (no crates.io access), so the real
//! work-stealing executor cannot be pulled in. Since PR 3 the workspace's
//! own deterministic executor — `pim-pool`, [`pim_runtime::pool`] — does
//! the actual parallel execution, and this facade delegates to it:
//!
//! * [`current_num_threads`] reports the pool's configured worker count
//!   (`PIM_THREADS` / [`pim_runtime::ExecConfig`]), so any caller that
//!   sizes chunks or records a worker count sees the true value instead
//!   of the old hardcoded `1`;
//! * the `par_sort*` methods run the pool's parallel stable merge sort
//!   for `Copy` payloads (all of this workspace's sort traffic) and fall
//!   back to the std stable sort otherwise — both produce the canonical
//!   stable permutation, preserving the byte-for-byte determinism
//!   contract across thread counts;
//! * the `par_iter`-family adapters remain sequential std iterators: the
//!   workspace's hot paths now call `pim_runtime::pool` directly, and a
//!   faithful lazy parallel-iterator engine is not worth hand-rolling for
//!   a compatibility facade.

/// Number of worker threads in the pool (delegates to `pim-pool`).
pub fn current_num_threads() -> usize {
    pim_runtime::pool::current_num_threads()
}

pub mod prelude {
    //! Extension traits mirroring `rayon::prelude`.

    /// `par_iter`/`par_chunks` on slices — sequential here.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        #[inline]
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        #[inline]
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Mutable counterparts plus the parallel sorts. The sorts execute on
    /// `pim-pool` (stable merge sort); the `Copy + Sync` bounds are what
    /// the pool's safe ping-pong merge needs, and every type this
    /// workspace ever sorted through rayon satisfies them.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
        fn par_sort_unstable(&mut self)
        where
            T: Ord + Copy + Send + Sync;
        fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
        where
            T: Copy + Send + Sync,
            K: Ord,
            F: Fn(&T) -> K + Sync;
        fn par_sort_by_key<K, F>(&mut self, key: F)
        where
            T: Copy + Send + Sync,
            K: Ord,
            F: Fn(&T) -> K + Sync;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        #[inline]
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
        #[inline]
        fn par_sort_unstable(&mut self)
        where
            T: Ord + Copy + Send + Sync,
        {
            pim_runtime::pool::par_sort(self);
        }
        #[inline]
        fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
        where
            T: Copy + Send + Sync,
            K: Ord,
            F: Fn(&T) -> K + Sync,
        {
            pim_runtime::pool::par_sort_by_key(self, key);
        }
        #[inline]
        fn par_sort_by_key<K, F>(&mut self, key: F)
        where
            T: Copy + Send + Sync,
            K: Ord,
            F: Fn(&T) -> K + Sync,
        {
            pim_runtime::pool::par_sort_by_key(self, key);
        }
    }

    /// `into_par_iter` for owned collections.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        #[inline]
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;
        #[inline]
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_matches_sequential() {
        let mut v = vec![3u64, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, [1, 2, 3]);
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, [2, 4, 6]);
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, [2, 3, 4]);
        let chunks: Vec<usize> = v.par_chunks(2).map(|c| c.len()).collect();
        assert_eq!(chunks, [2, 1]);
    }

    #[test]
    fn num_threads_delegates_to_the_pool() {
        // The old facade hardcoded 1; the delegation must report whatever
        // the pool is configured with.
        assert_eq!(
            super::current_num_threads(),
            pim_runtime::pool::current_num_threads()
        );
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn sorts_route_through_the_pool_and_stay_stable() {
        let mut v: Vec<(u8, u32)> = (0..1000u32).map(|i| ((i % 5) as u8, i)).collect();
        let mut expect = v.clone();
        expect.sort_by_key(|&(k, _)| k);
        v.par_sort_by_key(|&(k, _)| k);
        assert_eq!(v, expect);
    }
}
