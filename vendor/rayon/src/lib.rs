//! Vendored stand-in for `rayon`, providing the exact API surface this
//! workspace uses, backed by sequential `std` iterators.
//!
//! The build environment is hermetic (no crates.io access), so the real
//! data-parallel executor cannot be pulled in. Everything here preserves
//! semantics — `par_iter` is `iter`, `par_sort_unstable` is
//! `sort_unstable` — only the wall-clock parallelism is gone, which the
//! simulator's *model* cost accounting (rounds, h-relations, CPU
//! work/depth) never depended on.

/// Number of worker threads in the (sequential) pool.
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    //! Extension traits mirroring `rayon::prelude`.

    /// `par_iter`/`par_chunks` on slices — sequential here.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        #[inline]
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        #[inline]
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Mutable counterparts plus the parallel sorts.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
        where
            K: Ord,
            F: FnMut(&T) -> K;
        fn par_sort_by_key<K, F>(&mut self, key: F)
        where
            K: Ord,
            F: FnMut(&T) -> K;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        #[inline]
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
        #[inline]
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }
        #[inline]
        fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
        where
            K: Ord,
            F: FnMut(&T) -> K,
        {
            self.sort_unstable_by_key(key);
        }
        #[inline]
        fn par_sort_by_key<K, F>(&mut self, key: F)
        where
            K: Ord,
            F: FnMut(&T) -> K,
        {
            self.sort_by_key(key);
        }
    }

    /// `into_par_iter` for owned collections.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        #[inline]
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;
        #[inline]
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_matches_sequential() {
        let mut v = vec![3u64, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, [1, 2, 3]);
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, [2, 4, 6]);
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, [2, 3, 4]);
        let chunks: Vec<usize> = v.par_chunks(2).map(|c| c.len()).collect();
        assert_eq!(chunks, [2, 1]);
        assert_eq!(super::current_num_threads(), 1);
    }
}
