//! Empirical checks of the paper's bounds — the theorem suite as tests.
//!
//! Each test measures model metrics on the simulator and asserts the
//! paper's *shape*: constants in front of the bound must stay within a
//! generous factor as `P` (or `n`, or `K`) sweeps.

use pim_bench::experiments::{adversarial_experiment, contention_experiment, table1_rows};
use pim_bench::{build_loaded_list, BatchCosts};
use pim_core::prelude::*;
use pim_runtime::balls;

fn lg(p: u32) -> f64 {
    f64::from(pim_runtime::ceil_log2(u64::from(p)))
}

#[test]
fn table1_get_io_scales_as_log_p() {
    // IO time of a P log P Get batch is O(log P) whp: the measured
    // constant io/log P must not grow with P.
    let mut constants = Vec::new();
    for p in [8u32, 32, 128] {
        let rows = table1_rows(p, 6000, 21);
        let get = rows.iter().find(|r| r.op == "Get").unwrap();
        constants.push(get.costs.io_time as f64 / lg(p));
    }
    let (first, last) = (constants[0], constants[2]);
    assert!(last < first * 4.0, "Get IO constant grew: {constants:?}");
}

#[test]
fn table1_successor_io_scales_as_log3_p() {
    let mut constants = Vec::new();
    for p in [8u32, 32, 128] {
        let rows = table1_rows(p, 6000, 22);
        let s = rows.iter().find(|r| r.op == "Successor").unwrap();
        constants.push(s.costs.io_time as f64 / lg(p).powi(3));
    }
    assert!(
        constants[2] < constants[0] * 4.0,
        "Successor IO constant grew: {constants:?}"
    );
}

#[test]
fn table1_delete_io_scales_as_log2_p() {
    let mut constants = Vec::new();
    for p in [8u32, 32, 128] {
        let rows = table1_rows(p, 6000, 23);
        let d = rows.iter().find(|r| r.op == "Delete").unwrap();
        constants.push(d.costs.io_time as f64 / lg(p).powi(2));
    }
    assert!(
        constants[2] < constants[0] * 4.0,
        "Delete IO constant grew: {constants:?}"
    );
}

#[test]
fn successor_io_is_independent_of_n() {
    // Table 1's headline: network costs are independent of n.
    let p = 32u32;
    let lgp = pim_runtime::ceil_log2(u64::from(p)) as usize;
    let batch = p as usize * lgp * lgp;
    let mut ios = Vec::new();
    for n in [2_000usize, 16_000, 64_000] {
        let (mut list, _) = build_loaded_list(p, n, 24);
        let queries: Vec<i64> = (0..batch as i64)
            .map(|i| i * 997 % (n as i64 * 64))
            .collect();
        let before = list.metrics();
        list.batch_successor(&queries);
        let costs = BatchCosts::from_diff(batch, before, list.metrics());
        ios.push(costs.io_time as f64);
    }
    assert!(
        ios[2] < ios[0] * 2.0,
        "Successor IO must not scale with n: {ios:?}"
    );
}

#[test]
fn theorem31_space_per_module_is_theta_n_over_p() {
    let mut ratios = Vec::new();
    for (p, n) in [(8u32, 4_000usize), (32, 16_000), (64, 32_000)] {
        let (list, _) = build_loaded_list(p, n, 25);
        let words = list.space_per_module();
        let max = *words.iter().max().unwrap() as f64;
        ratios.push(max / (n as f64 / f64::from(p)));
    }
    // Constant words-per-key across machine shapes (within 2x).
    let lo = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let hi = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(hi / lo < 2.0, "space constant drifts: {ratios:?}");
}

#[test]
fn lemma21_imbalance_shrinks_with_batch_factor() {
    let p = 256;
    let s1 = balls::lemma21_trial(
        u64::from(pim_runtime::ceil_log2(p as u64)) * p as u64,
        p,
        26,
    );
    let s64 = balls::lemma21_trial(
        64 * u64::from(pim_runtime::ceil_log2(p as u64)) * p as u64,
        p,
        26,
    );
    assert!(s64.max_over_mean < s1.max_over_mean);
    assert!(
        s64.max_over_mean < 1.35,
        "large-T imbalance {}",
        s64.max_over_mean
    );
}

#[test]
fn lemma22_capped_weights_stay_balanced() {
    let p = 128;
    let weights: Vec<u64> = (0..8192u64).map(|i| (i % 200) + 1).collect();
    let capped = balls::cap_weights(&weights, p);
    let s = balls::lemma22_trial(&capped, p, 27);
    assert!(s.max_over_mean < 2.0, "imbalance {}", s.max_over_mean);
}

#[test]
fn lemma42_contention_is_at_most_three_per_phase() {
    for p in [8u32, 16, 64] {
        let phases = contention_experiment(p, 28);
        let stage1 = &phases[..phases.len().saturating_sub(1)];
        assert!(
            stage1.iter().all(|&c| c <= 3),
            "P={p}: stage-1 contention {stage1:?} exceeds Lemma 4.2's bound"
        );
    }
}

#[test]
fn fig3_push_pull_zeroes_the_adversarial_tail() {
    // The same-successor flood funnels every query through one descent
    // path; once the cache is warm, push-pull resolves the whole batch
    // CPU-side — zero rounds, zero IO — at every machine size, while the
    // off-mode pivot D&C still pays its (flat-in-P) round tail.
    for p in [8u32, 64] {
        let (off, on) = adversarial_experiment(p, 29);
        assert!(off.io_time > 0, "P={p}: off-mode must pay IO");
        assert!(off.rounds > 0, "P={p}: off-mode must pay rounds");
        assert_eq!(on.rounds, 0, "P={p}: warm push-pull rounds");
        assert_eq!(on.io_time, 0, "P={p}: warm push-pull IO");
    }
}

#[test]
fn theorem51_broadcast_is_constant_rounds_and_balanced() {
    let p = 32u32;
    let (mut list, keys) = build_loaded_list(p, 16_000, 30);
    let k = 8_000;
    let start = (keys.len() - k) / 2;
    let before = list.metrics();
    let r = list.range_broadcast(keys[start], keys[start + k - 1], RangeFunc::Read);
    let costs = BatchCosts::from_diff(k, before, list.metrics());
    assert_eq!(r.items.len(), k);
    assert!(costs.rounds <= 3, "{} rounds", costs.rounds);
    // PIM time Θ(K/P): within a small factor of K/P.
    let kp = k as f64 / f64::from(p);
    assert!(
        costs.pim_time as f64 / kp < 4.0,
        "broadcast PIM time {} vs K/P {kp}",
        costs.pim_time
    );
}

#[test]
fn theorem52_tree_ranges_scale_with_kappa_over_p() {
    let p = 32u32;
    let (mut list, keys) = build_loaded_list(p, 32_000, 31);
    let lgp = pim_runtime::ceil_log2(u64::from(p)) as usize;
    let batch = p as usize * lgp * lgp;
    let mut per_covered = Vec::new();
    for per in [4usize, 16] {
        let ranges: Vec<(i64, i64)> = (0..batch)
            .map(|i| {
                let s = (i * 131) % (keys.len() - per);
                (keys[s], keys[s + per - 1])
            })
            .collect();
        let before = list.metrics();
        let res = list.batch_range(&ranges, RangeFunc::Read);
        let costs = BatchCosts::from_diff(batch, before, list.metrics());
        let covered: u64 = res.iter().map(|r| r.count).sum();
        per_covered.push(costs.io_time as f64 / covered as f64);
    }
    // Larger κ amortises the log³P term: per-covered-pair IO must fall.
    assert!(
        per_covered[1] < per_covered[0],
        "tree-range IO per pair should amortise: {per_covered:?}"
    );
}

#[test]
fn path_split_lower_is_n_independent_and_tracks_log_p() {
    use pim_bench::experiments::path_split_experiment;
    // n sweep at fixed P: lower-part visits must stay flat.
    let (_, low_small, _) = path_split_experiment(16, 2_000, 33);
    let (_, low_big, _) = path_split_experiment(16, 64_000, 33);
    assert!(
        low_big < low_small * 2.0 + 2.0,
        "lower path grew with n: {low_small} -> {low_big}"
    );
    // P sweep at fixed n: lower-part visits must grow.
    let (_, low_p4, _) = path_split_experiment(4, 16_000, 34);
    let (_, low_p64, _) = path_split_experiment(64, 16_000, 34);
    assert!(
        low_p64 > low_p4 * 1.5,
        "lower path should track log P: {low_p4} vs {low_p64}"
    );
    // Upper-part visits must grow with n (the O(log n) part).
    let (up_small, _, _) = path_split_experiment(16, 2_000, 35);
    let (up_big, _, _) = path_split_experiment(16, 64_000, 35);
    assert!(up_big > up_small, "upper path should track log n");
}
