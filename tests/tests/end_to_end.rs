//! Cross-crate end-to-end tests: all structures answer identically on the
//! same workloads, metrics behave, and results are reproducible.

use pim_baseline::{FineGrainedSkipList, RangePartitionedList};
use pim_core::prelude::*;
use pim_workloads::{value_for, PointGen};

#[test]
fn all_structures_agree_on_gets() {
    let p = 16u32;
    let n = 3000usize;
    let mut gen = PointGen::new(1, 0, n as i64 * 16);
    let keys = gen.distinct_uniform(n);
    let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, value_for(k))).collect();

    let mut ours = PimSkipList::new(Config::new(p, n as u64, 2));
    ours.load(&pairs);
    let mut rp = RangePartitionedList::new(p, 0, n as i64 * 16, 2);
    rp.batch_upsert(&pairs);
    let mut fine = FineGrainedSkipList::new(p, n as u64, 2);
    fine.batch_upsert(&pairs);

    let queries: Vec<i64> = gen.uniform(2000);
    let a = ours.batch_get(&queries);
    let b = rp.batch_get(&queries);
    let c = fine.batch_get(&queries);
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn all_structures_agree_on_successors() {
    let p = 8u32;
    let n = 1500usize;
    let mut gen = PointGen::new(3, 0, n as i64 * 8);
    let keys = gen.distinct_uniform(n);
    let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, value_for(k))).collect();

    let mut ours = PimSkipList::new(Config::new(p, n as u64, 4));
    ours.load(&pairs);
    let mut rp = RangePartitionedList::new(p, 0, n as i64 * 8, 4);
    rp.batch_upsert(&pairs);

    let queries: Vec<i64> = gen.uniform(800);
    let a: Vec<Option<i64>> = ours
        .batch_successor(&queries)
        .into_iter()
        .map(|s| s.map(|(k, _)| k))
        .collect();
    // Push-pull must agree with both the plain machine and the baseline.
    let mut pp = PimSkipList::new(Config::new(p, n as u64, 4).with_push_pull(true));
    pp.load(&pairs);
    let warm: Vec<Option<i64>> = {
        pp.batch_successor(&queries); // warm the cache, then re-ask
        pp.batch_successor(&queries)
            .into_iter()
            .map(|s| s.map(|(k, _)| k))
            .collect()
    };
    let b: Vec<Option<i64>> = rp
        .batch_successor(&queries)
        .into_iter()
        .map(|s| s.map(|(k, _)| k))
        .collect();
    assert_eq!(a, b);
    assert_eq!(a, warm);
}

#[test]
fn range_results_agree_between_flavours_and_baseline() {
    let p = 8u32;
    let n = 2000usize;
    let mut gen = PointGen::new(5, 0, n as i64 * 8);
    let keys = gen.distinct_uniform(n);
    let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, value_for(k))).collect();

    let mut ours = PimSkipList::new(Config::new(p, n as u64, 6));
    ours.load(&pairs);
    let mut rp = RangePartitionedList::new(p, 0, n as i64 * 8, 6);
    rp.batch_upsert(&pairs);

    let mut sorted = keys;
    sorted.sort_unstable();
    for (i, window) in [(100usize, 400usize), (0, 50), (1500, 1999)]
        .iter()
        .enumerate()
    {
        let (lo, hi) = (sorted[window.0], sorted[window.1]);
        let bcast = ours.range_broadcast(lo, hi, RangeFunc::Read);
        let tree = ours.batch_range(&[(lo, hi)], RangeFunc::Read);
        let base = rp.range(lo, hi);
        assert_eq!(bcast.items, base, "broadcast vs baseline, window {i}");
        assert_eq!(tree[0].items, base, "tree vs baseline, window {i}");
    }
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mut list = PimSkipList::new(Config::new(8, 1 << 10, 99));
        let mut gen = PointGen::new(7, 0, 100_000);
        let keys = gen.distinct_uniform(500);
        let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, value_for(k))).collect();
        list.batch_upsert(&pairs);
        list.batch_delete(&keys[..100]);
        list.batch_successor(&gen.uniform(300));
        (list.collect_items(), list.metrics())
    };
    let (items1, m1) = run();
    let (items2, m2) = run();
    assert_eq!(items1, items2);
    assert_eq!(m1, m2, "metrics must be bit-identical across runs");
}

#[test]
fn different_seeds_same_answers_different_placement() {
    let build = |seed| {
        let mut list = PimSkipList::new(Config::new(8, 1 << 10, seed));
        let pairs: Vec<(i64, u64)> = (0..400).map(|i| (i * 3, i as u64)).collect();
        list.batch_upsert(&pairs);
        list
    };
    let mut a = build(1);
    let mut b = build(2);
    assert_eq!(a.collect_items(), b.collect_items());
    let queries: Vec<i64> = (0..1200).step_by(5).collect();
    let ra: Vec<Option<i64>> = a
        .batch_successor(&queries)
        .into_iter()
        .map(|s| s.map(|(k, _)| k))
        .collect();
    let rb: Vec<Option<i64>> = b
        .batch_successor(&queries)
        .into_iter()
        .map(|s| s.map(|(k, _)| k))
        .collect();
    assert_eq!(ra, rb);
    // Placement differs: space distributions are not identical.
    assert_ne!(
        a.space_per_module(),
        b.space_per_module(),
        "different seeds should place nodes differently"
    );
}

#[test]
fn mixed_structure_lifecycle_under_workload_generators() {
    let p = 16u32;
    let mut list = PimSkipList::new(Config::new(p, 1 << 12, 11));
    let mut gen = PointGen::new(12, 0, 1 << 18);
    let mut resident: std::collections::BTreeMap<i64, u64> = Default::default();

    for round in 0..6 {
        let fresh = gen.distinct_uniform(500);
        let pairs: Vec<(i64, u64)> = fresh.iter().map(|&k| (k, round as u64)).collect();
        list.batch_upsert(&pairs);
        let mut seen = std::collections::HashSet::new();
        for &(k, v) in &pairs {
            if seen.insert(k) {
                resident.insert(k, v);
            }
        }
        if !resident.is_empty() {
            let existing: Vec<i64> = resident.keys().copied().collect();
            let dels = gen.distinct_from_existing(&existing, existing.len() / 4);
            list.batch_delete(&dels);
            for d in dels {
                resident.remove(&d);
            }
        }
        list.validate().expect("invariants");
        let items = list.collect_items();
        let expect: Vec<(i64, u64)> = resident.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(items, expect, "round {round}");
    }
}
