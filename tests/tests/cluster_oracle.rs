//! Cross-crate property contract of the sharded router tier: for any
//! shard count `S` and any mixed [`Op`] stream, `PimCluster(S)` is
//! observationally equal to the single-machine oracle — same reply
//! stream through the canonical wire encoding, same final contents, and
//! same error/commit boundary when a run fails. A chaos property kills
//! one shard mid-stream, shows the survivors keep serving and the dead
//! shard's key range refuses with `ShardDown`, then rebuilds the shard
//! from its own journal/WAL and proves nothing was lost.

use proptest::prelude::*;

use pim_cluster::{wire, ClusterConfig, PimCluster};
use pim_core::prelude::*;

fn key_strategy() -> impl Strategy<Value = i64> {
    // Mix a small hot domain (collisions, dense runs) with keys spread
    // across the whole line (every shard of any S ≤ 8 sees traffic).
    prop_oneof![
        3 => -40i64..200,
        2 => any::<i64>().prop_map(|k| k.max(i64::MIN + 1)),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Upsert { key, value }),
        2 => key_strategy().prop_map(|key| Op::Delete { key }),
        2 => key_strategy().prop_map(|key| Op::Get { key }),
        1 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Update { key, value }),
        1 => key_strategy().prop_map(|key| Op::Successor { key }),
        1 => key_strategy().prop_map(|key| Op::Predecessor { key }),
        1 => (key_strategy(), key_strategy())
            .prop_map(|(a, b)| Op::Range { lo: a.min(b), hi: a.max(b), func: RangeFunc::Read }),
        1 => (key_strategy(), key_strategy())
            .prop_map(|(a, b)| Op::Range { lo: a.min(b), hi: a.max(b), func: RangeFunc::Sum }),
        1 => (key_strategy(), key_strategy(), 1u64..5).prop_map(|(a, b, d)| Op::Range {
            lo: a.min(b),
            hi: a.max(b),
            func: RangeFunc::FetchAdd(d)
        }),
        // Deliberately inverted ranges: the cluster must reproduce the
        // oracle's argument validation byte-for-byte, at the same
        // position in the stream.
        1 => (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Range {
            lo: a.max(b),
            hi: a.min(b).saturating_sub(1),
            func: RangeFunc::Count
        }),
    ]
}

fn cfg() -> Config {
    Config::new(4, 1 << 10, 42)
}

fn fresh_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pim-cluster-prop-{tag}-{}-{case}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// cluster(S) ≡ single-shard oracle over random mixed op streams,
    /// batch boundary by batch boundary: identical wire-encoded replies
    /// for committed batches, identical errors for refused ones, and
    /// identical final contents.
    #[test]
    fn sharded_cluster_is_reply_identical_to_the_oracle(
        ops in prop::collection::vec(op_strategy(), 1..120),
        batch in 1usize..24,
        shards in 2u32..=8,
    ) {
        let mut oracle = PimCluster::new(ClusterConfig::new(cfg(), 1));
        let mut cluster = PimCluster::new(ClusterConfig::new(cfg(), shards));
        for chunk in ops.chunks(batch) {
            let want = oracle.try_execute(chunk);
            let got = cluster.try_execute(chunk);
            match (want, got) {
                (Ok(w), Ok(g)) => prop_assert_eq!(
                    wire::encode_replies(&w),
                    wire::encode_replies(&g),
                    "replies drifted at S={}", shards
                ),
                (Err(we), Err(ge)) => prop_assert_eq!(
                    we.to_string(),
                    ge.to_string(),
                    "error text drifted at S={}", shards
                ),
                (w, g) => prop_assert!(
                    false,
                    "outcome kind drifted at S={shards}: oracle {w:?} vs cluster {g:?}"
                ),
            }
        }
        prop_assert_eq!(oracle.collect_items(), cluster.collect_items());
        prop_assert_eq!(oracle.len(), cluster.len());
    }

    /// Chaos: kill one shard mid-stream. Streams that touch its key
    /// range refuse with `ShardDown` (and commit nothing anywhere);
    /// streams confined to the survivors keep serving, oracle-equal.
    /// Rebuilding the shard from its own journal/WAL restores the full
    /// pre-crash contents and the cluster resumes oracle-equal service.
    #[test]
    fn killed_shard_refuses_while_survivors_serve_then_rebuilds(
        before in prop::collection::vec(op_strategy(), 1..60),
        after in prop::collection::vec(op_strategy(), 1..60),
        victim in 0usize..4,
        case in any::<u64>(),
    ) {
        let shards = 4u32;
        let dir = fresh_dir("chaos", case);
        let mut oracle = PimCluster::new(ClusterConfig::new(cfg(), 1));
        let mut cluster = PimCluster::new(ClusterConfig::new(cfg(), shards));
        cluster
            .enable_durability(&dir, DurabilityPolicy::default())
            .unwrap();

        // Phase 1: both serve the first leg of the stream.
        for chunk in before.chunks(16) {
            let want = oracle.try_execute(chunk).map(|r| wire::encode_replies(&r));
            let got = cluster.try_execute(chunk).map(|r| wire::encode_replies(&r));
            prop_assert_eq!(want.map_err(|e| e.to_string()), got.map_err(|e| e.to_string()));
        }

        // Phase 2: crash one shard. Its range refuses; the rest serve.
        cluster.kill_shard(victim).unwrap();
        let stats = cluster.stats();
        let dead = &stats.shards[victim];
        let frozen = oracle.collect_items();
        let touching = [Op::Get { key: dead.lo }];
        match cluster.try_execute(&touching) {
            Err(PimError::ShardDown { shard }) => prop_assert_eq!(shard, dead.id),
            other => prop_assert!(false, "expected ShardDown, got {other:?}"),
        }
        // A survivor's keys still serve, and serve the pre-crash truth.
        if let Some(survivor) = stats.shards.iter().find(|s| s.alive) {
            let probe_lo = survivor.lo.max(i64::MIN + 1);
            let probe = [Op::Range {
                lo: probe_lo,
                hi: survivor.hi,
                func: RangeFunc::Count,
            }];
            let replies = cluster.try_execute(&probe).unwrap();
            let expect = frozen
                .iter()
                .filter(|(k, _)| *k >= probe_lo && *k <= survivor.hi)
                .count() as u64;
            match &replies[0] {
                Reply::Range(r) => prop_assert_eq!(r.count, expect),
                other => prop_assert!(false, "expected Range reply, got {other:?}"),
            }
        }

        // Phase 3: rebuild from the shard's own journal/WAL — nothing
        // lost, and the second leg of the stream is oracle-equal again.
        cluster.rebuild_shard(victim).unwrap();
        prop_assert_eq!(cluster.collect_items(), frozen);
        for chunk in after.chunks(16) {
            let want = oracle.try_execute(chunk).map(|r| wire::encode_replies(&r));
            let got = cluster.try_execute(chunk).map(|r| wire::encode_replies(&r));
            prop_assert_eq!(want.map_err(|e| e.to_string()), got.map_err(|e| e.to_string()));
        }
        prop_assert_eq!(oracle.collect_items(), cluster.collect_items());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `S = 1` stays byte-identical to the single machine in BOTH
    /// push-pull modes (full structural reply equality, contents, and
    /// rounds), and the runtime `set_push_pull` mirror — the path the
    /// service/backend tier uses — keeps that true across a mid-stream
    /// flip on both sides.
    #[test]
    fn s1_is_byte_identical_in_both_push_pull_modes(
        ops_a in prop::collection::vec(op_strategy(), 1..60),
        ops_b in prop::collection::vec(op_strategy(), 1..40),
        start_on in any::<bool>(),
    ) {
        let mut oracle = PimSkipList::new(cfg().with_push_pull(start_on));
        let mut cluster =
            PimCluster::new(ClusterConfig::new(cfg().with_push_pull(start_on), 1));
        // Full structural equality — handles included, no wire encoding
        // (inverted ranges in the stream refuse identically on each side).
        prop_assert_eq!(oracle.try_execute(&ops_a), cluster.try_execute(&ops_a));

        oracle.set_push_pull(!start_on);
        cluster.set_push_pull(!start_on);
        prop_assert_eq!(oracle.try_execute(&ops_b), cluster.try_execute(&ops_b));
        prop_assert_eq!(cluster.collect_items(), oracle.collect_items());
        prop_assert_eq!(cluster.rounds(), oracle.metrics().rounds);
    }
}
