//! A deterministic soak test: thousands of mixed batches against the
//! oracle with periodic full validation — the "leave it running" test.

use std::collections::BTreeMap;

use pim_core::prelude::*;

#[test]
fn soak_mixed_workload() {
    let p = 8u32;
    let mut list = PimSkipList::new(Config::new(p, 1 << 12, 0x50AC));
    let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();
    let mut state = 0xDEADBEEFu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let rounds = if cfg!(debug_assertions) { 120 } else { 400 };
    for round in 0..rounds {
        match next() % 5 {
            0 | 1 => {
                let b = (next() % 96 + 1) as usize;
                let pairs: Vec<(i64, u64)> = (0..b)
                    .map(|_| ((next() % 2_000) as i64, next() % 1_000))
                    .collect();
                list.batch_upsert(&pairs);
                let mut seen = std::collections::HashSet::new();
                for &(k, v) in &pairs {
                    if seen.insert(k) {
                        oracle.insert(k, v);
                    }
                }
            }
            2 => {
                let b = (next() % 64 + 1) as usize;
                let keys: Vec<i64> = (0..b).map(|_| (next() % 2_000) as i64).collect();
                list.batch_delete(&keys);
                for k in keys {
                    oracle.remove(&k);
                }
            }
            3 => {
                let b = (next() % 64 + 1) as usize;
                let keys: Vec<i64> = (0..b).map(|_| (next() % 2_200) as i64).collect();
                let got = list.batch_get(&keys);
                for (i, k) in keys.iter().enumerate() {
                    assert_eq!(got[i], oracle.get(k).copied(), "round {round} get({k})");
                }
            }
            _ => {
                let a = (next() % 2_000) as i64;
                let b = (next() % 2_000) as i64;
                let (lo, hi) = (a.min(b), a.max(b));
                let r = list.range_broadcast(lo, hi, RangeFunc::Read);
                let expect: Vec<(i64, u64)> =
                    oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(r.items, expect, "round {round} range [{lo},{hi}]");
            }
        }
        if round % 25 == 0 {
            list.validate()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            let items = list.collect_items();
            let expect: Vec<(i64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(items, expect, "round {round} full divergence");
        }
    }
    list.validate().unwrap();
    assert_eq!(list.len(), oracle.len() as u64);
}
