//! Cross-crate integration test helpers.
