//! Property-based differential testing of the de-amortized cuckoo map
//! against `std::collections::HashMap`, with the O(1)-whp work bound
//! asserted on every operation.

use std::collections::HashMap;

use proptest::prelude::*;

use pim_hashtable::DeamortizedMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u64),
    Remove(i64),
    Get(i64),
    Update(i64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = -64i64..64;
    prop_oneof![
        4 => (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key.clone().prop_map(Op::Remove),
        2 => key.clone().prop_map(Op::Get),
        1 => (key, any::<u64>()).prop_map(|(k, v)| Op::Update(k, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn matches_hashmap_and_bounds_work(
        seed in any::<u64>(),
        ops in prop::collection::vec(op_strategy(), 1..400),
    ) {
        let mut map = DeamortizedMap::new(4, seed);
        let mut oracle: HashMap<i64, u64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(map.insert(k, v), oracle.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(map.remove(k), oracle.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(map.get(k), oracle.get(&k).copied());
                }
                Op::Update(k, v) => {
                    let expect = oracle.contains_key(&k);
                    prop_assert_eq!(map.update(k, v), expect);
                    if expect {
                        oracle.insert(k, v);
                    }
                }
            }
            prop_assert_eq!(map.len(), oracle.len());
            // De-amortization: a hard per-op work bound, always.
            prop_assert!(
                map.last_op_work < 500,
                "op work spiked to {}",
                map.last_op_work
            );
        }
        // Final sweep.
        for k in -64i64..64 {
            prop_assert_eq!(map.get(k), oracle.get(&k).copied());
        }
    }

    #[test]
    fn dense_growth_never_loses_keys(
        seed in any::<u64>(),
        n in 1usize..3000,
    ) {
        let mut map = DeamortizedMap::new(4, seed);
        for k in 0..n as i64 {
            map.insert(k, (k * 3) as u64);
        }
        prop_assert_eq!(map.len(), n);
        for k in 0..n as i64 {
            prop_assert_eq!(map.get(k), Some((k * 3) as u64));
        }
    }
}
