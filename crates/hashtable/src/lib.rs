//! # pim-hashtable — de-amortized cuckoo hashing for PIM modules
//!
//! Each PIM module of the paper's skip list keeps "an additional hash table
//! locally ... to map keys to leaf nodes directly" with `O(1)` whp work per
//! Get, Update, Delete and Insert (§4.1, citing the fully de-amortized
//! cuckoo hashing of Goodrich et al. [16]). This crate provides that
//! substrate:
//!
//! * [`cuckoo::CuckooTable`] — a bucketed two-table cuckoo hash with a hard
//!   displacement budget per insert;
//! * [`deamortized::DeamortizedMap`] — the de-amortized wrapper: a bounded
//!   stash plus incremental (per-operation) migration into the next table
//!   generation, keeping *worst-case* per-operation work constant even
//!   across growth.
//!
//! The `last_op_work` counters let the owning module charge honest PIM-time
//! for every table operation.
#![warn(missing_docs)]

pub mod cuckoo;
pub mod deamortized;

pub use cuckoo::CuckooTable;
pub use deamortized::DeamortizedMap;
