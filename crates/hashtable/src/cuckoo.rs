//! Bucketed cuckoo hash table with bounded-displacement inserts.
//!
//! Building block of the de-amortized table of [`crate::deamortized`]. Two
//! tables, seeded independently; each bucket holds up to [`BUCKET`] entries.
//! An insert tries both buckets, then performs at most [`MAX_KICKS`]
//! displacement steps; on failure the entry goes to the caller (who stashes
//! it / triggers an incremental rebuild). With load kept below ~80% by the
//! de-amortized wrapper, displacement chains are O(1) whp — matching the
//! `O(1)` whp per-operation budget the paper assumes of its per-module maps
//! ([16], §4.1).

use pim_runtime::hashfn::hash2;

/// Entries per bucket.
pub const BUCKET: usize = 4;
/// Displacement budget per insert (keeps the worst case O(1), as the
/// de-amortization requires).
pub const MAX_KICKS: usize = 24;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    key: i64,
    value: u64,
}

/// A fixed-capacity two-table bucketed cuckoo hash.
#[derive(Debug, Clone)]
pub struct CuckooTable {
    seed0: u64,
    seed1: u64,
    buckets: usize,
    slots: [Vec<Option<Entry>>; 2],
    len: usize,
    /// Work performed by the last operation, in probes/moves (for PIM-time
    /// accounting by the module that owns the table).
    pub last_op_work: u64,
}

impl CuckooTable {
    /// A table of `2 * buckets * BUCKET` slots (buckets rounded to a power
    /// of two, at least 2).
    pub fn with_buckets(buckets: usize, seed: u64) -> Self {
        let buckets = buckets.next_power_of_two().max(2);
        CuckooTable {
            seed0: hash2(seed, 0xC0, 1),
            seed1: hash2(seed, 0xC1, 2),
            buckets,
            slots: [vec![None; buckets * BUCKET], vec![None; buckets * BUCKET]],
            len: 0,
            last_op_work: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, table: usize, key: i64) -> usize {
        let seed = if table == 0 { self.seed0 } else { self.seed1 };
        (hash2(seed, key as u64, table as u64) & (self.buckets as u64 - 1)) as usize
    }

    #[inline]
    fn range(&self, table: usize, key: i64) -> std::ops::Range<usize> {
        let b = self.bucket_of(table, key);
        b * BUCKET..(b + 1) * BUCKET
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        2 * self.buckets * BUCKET
    }

    /// Load factor in `[0, 1]`.
    pub fn load(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Look up `key`: O(1) worst case (two buckets).
    pub fn get(&mut self, key: i64) -> Option<u64> {
        self.last_op_work = 2;
        for t in 0..2 {
            for i in self.range(t, key) {
                if let Some(e) = self.slots[t][i] {
                    if e.key == key {
                        return Some(e.value);
                    }
                }
            }
        }
        None
    }

    /// Update an existing key in place; returns whether it was present.
    pub fn update(&mut self, key: i64, value: u64) -> bool {
        self.last_op_work = 2;
        for t in 0..2 {
            for i in self.range(t, key) {
                if let Some(e) = &mut self.slots[t][i] {
                    if e.key == key {
                        e.value = value;
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Remove `key`; returns its value if present. O(1) worst case.
    pub fn remove(&mut self, key: i64) -> Option<u64> {
        self.last_op_work = 2;
        for t in 0..2 {
            for i in self.range(t, key) {
                if let Some(e) = self.slots[t][i] {
                    if e.key == key {
                        self.slots[t][i] = None;
                        self.len -= 1;
                        return Some(e.value);
                    }
                }
            }
        }
        None
    }

    /// Insert `(key, value)`. If `key` exists its value is replaced and
    /// `Ok(Some(old))` is returned. On success without a prior mapping,
    /// `Ok(None)`. If the displacement budget is exhausted the *displaced*
    /// entry is handed back as `Err((k, v))` for the caller to stash.
    pub fn insert(&mut self, key: i64, value: u64) -> Result<Option<u64>, (i64, u64)> {
        self.last_op_work = 2;
        // Replace in place if present.
        for t in 0..2 {
            for i in self.range(t, key) {
                if let Some(e) = &mut self.slots[t][i] {
                    if e.key == key {
                        let old = e.value;
                        e.value = value;
                        return Ok(Some(old));
                    }
                }
            }
        }
        // Try an empty slot in either bucket.
        let mut cur = Entry { key, value };
        for _kick in 0..MAX_KICKS {
            self.last_op_work += 1;
            for t in 0..2 {
                for i in self.range(t, cur.key) {
                    if self.slots[t][i].is_none() {
                        self.slots[t][i] = Some(cur);
                        self.len += 1;
                        return Ok(None);
                    }
                }
            }
            // Both buckets full: displace a pseudo-random victim from the
            // first-table bucket and retry with it.
            let r = self.range(0, cur.key);
            let vi = r.start
                + (hash2(self.seed0 ^ self.seed1, cur.key as u64, self.last_op_work) as usize
                    % BUCKET);
            let victim = self.slots[0][vi].take().expect("bucket was full");
            self.slots[0][vi] = Some(cur);
            cur = victim;
        }
        Err((cur.key, cur.value))
    }

    /// Iterate all stored pairs (rebuild support).
    pub fn drain_all(&mut self) -> Vec<(i64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        for t in 0..2 {
            for slot in &mut self.slots[t] {
                if let Some(e) = slot.take() {
                    out.push((e.key, e.value));
                }
            }
        }
        self.len = 0;
        out
    }

    /// Words of memory held (slots + header), for space accounting.
    pub fn words(&self) -> u64 {
        (self.capacity() as u64) * 2 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = CuckooTable::with_buckets(16, 1);
        for k in 0..50i64 {
            assert_eq!(t.insert(k, (k * 10) as u64), Ok(None));
        }
        for k in 0..50i64 {
            assert_eq!(t.get(k), Some((k * 10) as u64));
        }
        assert_eq!(t.get(999), None);
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn insert_replaces_existing() {
        let mut t = CuckooTable::with_buckets(4, 2);
        assert_eq!(t.insert(7, 1), Ok(None));
        assert_eq!(t.insert(7, 2), Ok(Some(1)));
        assert_eq!(t.get(7), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_then_absent() {
        let mut t = CuckooTable::with_buckets(4, 3);
        t.insert(5, 50).unwrap();
        assert_eq!(t.remove(5), Some(50));
        assert_eq!(t.remove(5), None);
        assert_eq!(t.get(5), None);
        assert!(t.is_empty());
    }

    #[test]
    fn update_in_place() {
        let mut t = CuckooTable::with_buckets(4, 4);
        assert!(!t.update(1, 10));
        t.insert(1, 10).unwrap();
        assert!(t.update(1, 20));
        assert_eq!(t.get(1), Some(20));
    }

    #[test]
    fn fill_to_moderate_load_without_failure() {
        let mut t = CuckooTable::with_buckets(256, 5);
        let target = (t.capacity() as f64 * 0.75) as i64;
        for k in 0..target {
            assert!(t.insert(k, k as u64).is_ok(), "failed at {k}");
        }
        for k in 0..target {
            assert_eq!(t.get(k), Some(k as u64));
        }
    }

    #[test]
    fn overfull_table_hands_back_displaced_entry() {
        let mut t = CuckooTable::with_buckets(2, 6);
        let mut stash = Vec::new();
        for k in 0..200i64 {
            if let Err(kv) = t.insert(k, k as u64) {
                stash.push(kv);
            }
        }
        assert!(!stash.is_empty());
        // Every key is either in the table or the stash exactly once.
        let mut found = 0;
        for k in 0..200i64 {
            if t.get(k).is_some() || stash.iter().any(|&(sk, _)| sk == k) {
                found += 1;
            }
        }
        assert_eq!(found, 200);
    }

    #[test]
    fn drain_returns_everything() {
        let mut t = CuckooTable::with_buckets(16, 7);
        for k in 0..30i64 {
            t.insert(k, k as u64).unwrap();
        }
        let mut all = t.drain_all();
        all.sort_unstable();
        assert_eq!(all, (0..30i64).map(|k| (k, k as u64)).collect::<Vec<_>>());
        assert!(t.is_empty());
    }

    #[test]
    fn negative_keys_supported() {
        let mut t = CuckooTable::with_buckets(8, 8);
        t.insert(i64::MIN, 1).unwrap();
        t.insert(-5, 2).unwrap();
        assert_eq!(t.get(i64::MIN), Some(1));
        assert_eq!(t.get(-5), Some(2));
    }

    #[test]
    fn last_op_work_is_bounded() {
        let mut t = CuckooTable::with_buckets(2, 9);
        for k in 0..100i64 {
            let _ = t.insert(k, 0);
            assert!(t.last_op_work <= (MAX_KICKS as u64) + 3);
        }
    }
}
