//! De-amortized cuckoo hashing (Goodrich–Hirschberg–Mitzenmacher–Thaler
//! [16]).
//!
//! The paper's per-module key→leaf map must support Get, Update, Delete and
//! Insert in **O(1) whp work per operation** — not merely amortized — since
//! a single slow rehash inside one module would blow the round's PIM time
//! and break PIM-balance. The classic de-amortization:
//!
//! * a small **stash** (queue) absorbs inserts whose displacement budget is
//!   exhausted;
//! * when the load factor crosses a threshold, the table does **not** stop
//!   to rehash; instead it allocates the next table and migrates a constant
//!   number of entries per subsequent operation (incremental rebuild),
//!   consulting both generations for lookups until migration completes.
//!
//! Every operation therefore touches O(1) buckets plus O(1) migration steps
//! — a hard bound, asserted in tests via the `last_op_work` counter.

use crate::cuckoo::CuckooTable;

/// Migration steps performed piggybacked on each operation while a rebuild
/// is in flight.
const MIGRATE_PER_OP: usize = 4;
/// Load factor that triggers an incremental rebuild.
const GROW_AT: f64 = 0.70;
/// Stash size that triggers an incremental rebuild regardless of load.
const STASH_LIMIT: usize = 8;

/// A de-amortized cuckoo hash map `i64 → u64` with O(1)-whp operations.
#[derive(Debug, Clone)]
pub struct DeamortizedMap {
    live: CuckooTable,
    /// Next-generation table while a rebuild is in flight.
    next: Option<CuckooTable>,
    /// Entries drained from `live` awaiting re-insertion into `next`.
    pending: Vec<(i64, u64)>,
    /// Overflow stash for displaced entries (searched on every lookup;
    /// bounded, so still O(1)).
    stash: Vec<(i64, u64)>,
    seed: u64,
    generation: u64,
    /// Work performed by the last operation (probes + moves + migrations).
    pub last_op_work: u64,
}

impl DeamortizedMap {
    /// An empty map sized for about `expected` entries.
    pub fn new(expected: usize, seed: u64) -> Self {
        let buckets = (expected / 4).next_power_of_two().max(4);
        DeamortizedMap {
            live: CuckooTable::with_buckets(buckets, seed),
            next: None,
            pending: Vec::new(),
            stash: Vec::new(),
            seed,
            generation: 0,
            last_op_work: 0,
        }
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.live.len()
            + self.next.as_ref().map_or(0, |t| t.len())
            + self.pending.len()
            + self.stash.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn stash_get(&self, key: i64) -> Option<u64> {
        self.stash.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
    }

    fn pending_get(&self, key: i64) -> Option<u64> {
        self.pending
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Begin an incremental rebuild into a bigger table.
    fn start_rebuild(&mut self) {
        debug_assert!(self.next.is_none());
        self.generation += 1;
        let bigger = (self.live.capacity() / 2).max(8);
        self.next = Some(CuckooTable::with_buckets(
            bigger,
            self.seed ^ (self.generation << 32),
        ));
        self.pending = self.live.drain_all();
        self.pending.append(&mut self.stash);
    }

    /// Perform up to `MIGRATE_PER_OP` migration steps.
    fn migrate_steps(&mut self) {
        if self.next.is_none() {
            return;
        }
        for _ in 0..MIGRATE_PER_OP {
            match self.pending.pop() {
                Some((k, v)) => {
                    let nxt = self.next.as_mut().expect("rebuild in flight");
                    if let Err(kv) = nxt.insert(k, v) {
                        // Extremely unlikely with the bigger table; park it
                        // in the stash, another rebuild will trigger if the
                        // stash fills.
                        self.stash.push(kv);
                    }
                    self.last_op_work += nxt.last_op_work;
                }
                None => {
                    // Migration complete: promote.
                    self.live = self.next.take().expect("checked above");
                    break;
                }
            }
        }
    }

    fn maybe_start_rebuild(&mut self) {
        if self.next.is_none() && (self.live.load() > GROW_AT || self.stash.len() > STASH_LIMIT) {
            self.start_rebuild();
        }
    }

    /// Look up `key`.
    pub fn get(&mut self, key: i64) -> Option<u64> {
        self.last_op_work = 1;
        if let Some(v) = self.stash_get(key) {
            return Some(v);
        }
        if let Some(v) = self.pending_get(key) {
            return Some(v);
        }
        let mut found = self.live.get(key);
        self.last_op_work += self.live.last_op_work;
        if found.is_none() {
            if let Some(nxt) = &mut self.next {
                found = nxt.get(key);
                self.last_op_work += nxt.last_op_work;
            }
        }
        self.migrate_steps();
        found
    }

    /// Update `key` in place; returns whether it was present.
    pub fn update(&mut self, key: i64, value: u64) -> bool {
        self.last_op_work = 1;
        if let Some(e) = self.stash.iter_mut().find(|e| e.0 == key) {
            e.1 = value;
            return true;
        }
        if let Some(e) = self.pending.iter_mut().find(|e| e.0 == key) {
            e.1 = value;
            return true;
        }
        let mut ok = self.live.update(key, value);
        self.last_op_work += self.live.last_op_work;
        if !ok {
            if let Some(nxt) = &mut self.next {
                ok = nxt.update(key, value);
                self.last_op_work += nxt.last_op_work;
            }
        }
        self.migrate_steps();
        ok
    }

    /// Insert or replace; returns the old value if the key was present.
    pub fn insert(&mut self, key: i64, value: u64) -> Option<u64> {
        self.last_op_work = 1;
        // Replace wherever the key currently lives.
        if let Some(e) = self.stash.iter_mut().find(|e| e.0 == key) {
            let old = e.1;
            e.1 = value;
            return Some(old);
        }
        if let Some(e) = self.pending.iter_mut().find(|e| e.0 == key) {
            let old = e.1;
            e.1 = value;
            return Some(old);
        }
        // If a rebuild is in flight, new inserts go to the next generation
        // (but a replace may still hit `live`).
        let old = if let Some(nxt) = &mut self.next {
            if let Some(v) = self.live.remove(key) {
                self.last_op_work += self.live.last_op_work;
                if let Err(kv) = nxt.insert(key, value) {
                    // The displaced entry must not be lost: park it in the
                    // stash like every other displacement.
                    self.stash.push(kv);
                }
                self.last_op_work += nxt.last_op_work;
                Some(v)
            } else {
                let r = match nxt.insert(key, value) {
                    Ok(old) => old,
                    Err(kv) => {
                        self.stash.push(kv);
                        None
                    }
                };
                self.last_op_work += nxt.last_op_work;
                r
            }
        } else {
            let r = match self.live.insert(key, value) {
                Ok(old) => old,
                Err(kv) => {
                    self.stash.push(kv);
                    None
                }
            };
            self.last_op_work += self.live.last_op_work;
            r
        };
        self.maybe_start_rebuild();
        self.migrate_steps();
        old
    }

    /// Remove `key`; returns its value if present.
    pub fn remove(&mut self, key: i64) -> Option<u64> {
        self.last_op_work = 1;
        if let Some(pos) = self.stash.iter().position(|&(k, _)| k == key) {
            return Some(self.stash.swap_remove(pos).1);
        }
        if let Some(pos) = self.pending.iter().position(|&(k, _)| k == key) {
            return Some(self.pending.swap_remove(pos).1);
        }
        let mut out = self.live.remove(key);
        self.last_op_work += self.live.last_op_work;
        if out.is_none() {
            if let Some(nxt) = &mut self.next {
                out = nxt.remove(key);
                self.last_op_work += nxt.last_op_work;
            }
        }
        self.migrate_steps();
        out
    }

    /// Words of local memory held (for Theorem 3.1 accounting).
    pub fn words(&self) -> u64 {
        self.live.words()
            + self.next.as_ref().map_or(0, |t| t.words())
            + 2 * (self.pending.len() as u64 + self.stash.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_through_many_inserts() {
        let mut m = DeamortizedMap::new(4, 1);
        for k in 0..10_000i64 {
            m.insert(k, (k * 3) as u64);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000i64 {
            assert_eq!(m.get(k), Some((k * 3) as u64), "lost key {k}");
        }
    }

    #[test]
    fn per_op_work_stays_constant_while_growing() {
        let mut m = DeamortizedMap::new(4, 2);
        let mut max_work = 0;
        for k in 0..50_000i64 {
            m.insert(k, k as u64);
            max_work = max_work.max(m.last_op_work);
        }
        // O(1) whp: a hard constant bound must hold across 50k inserts
        // spanning ~13 rebuilds.
        assert!(max_work < 400, "insert work spiked to {max_work}");
    }

    #[test]
    fn mixed_ops_during_rebuild_remain_consistent() {
        let mut m = DeamortizedMap::new(4, 3);
        let mut reference = std::collections::HashMap::new();
        for k in 0..5_000i64 {
            m.insert(k, k as u64);
            reference.insert(k, k as u64);
            if k % 3 == 0 {
                m.remove(k / 2);
                reference.remove(&(k / 2));
            }
            if k % 5 == 0 {
                m.insert(k / 3, 999);
                reference.insert(k / 3, 999);
            }
        }
        for k in -10..5_010i64 {
            assert_eq!(m.get(k), reference.get(&k).copied(), "key {k}");
        }
        assert_eq!(m.len(), reference.len());
    }

    #[test]
    fn update_only_touches_existing() {
        let mut m = DeamortizedMap::new(8, 4);
        assert!(!m.update(1, 5));
        assert_eq!(m.len(), 0);
        m.insert(1, 5);
        assert!(m.update(1, 6));
        assert_eq!(m.get(1), Some(6));
    }

    #[test]
    fn insert_returns_old_value() {
        let mut m = DeamortizedMap::new(8, 5);
        assert_eq!(m.insert(9, 1), None);
        assert_eq!(m.insert(9, 2), Some(1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_during_growth_never_duplicates() {
        let mut m = DeamortizedMap::new(4, 6);
        for k in 0..2_000i64 {
            m.insert(k, k as u64);
        }
        for k in 0..2_000i64 {
            assert_eq!(m.remove(k), Some(k as u64), "remove {k}");
            assert_eq!(m.remove(k), None, "double remove {k}");
        }
        assert!(m.is_empty());
    }

    #[test]
    fn words_accounting_grows_with_len() {
        let mut m = DeamortizedMap::new(4, 7);
        let w0 = m.words();
        for k in 0..1_000i64 {
            m.insert(k, 0);
        }
        assert!(m.words() > w0);
    }
}
