//! Point-operation batch generators.
//!
//! All generators are deterministic in their seed, and generate keys
//! *without* access to the data structure's internal random choices —
//! matching the model's adversary, who fixes batches before the algorithm's
//! coins are revealed (§2.1).

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Keys are signed 64-bit integers ( `i64::MIN` is reserved for the
/// structure's −∞ sentinel and never generated).
pub type Key = i64;

/// Deterministic generator state for batches of point operations.
#[derive(Debug, Clone)]
pub struct PointGen {
    rng: rand::rngs::StdRng,
    /// Inclusive key domain bounds.
    pub lo: Key,
    /// Inclusive key domain bounds.
    pub hi: Key,
}

impl PointGen {
    /// Generator over the key domain `[lo, hi]`.
    pub fn new(seed: u64, lo: Key, hi: Key) -> Self {
        assert!(lo > Key::MIN, "i64::MIN is reserved for the -inf sentinel");
        assert!(lo <= hi);
        PointGen {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }

    /// `count` distinct uniform keys (sampling without replacement via
    /// rejection; requires the domain to be comfortably larger than
    /// `count`).
    pub fn distinct_uniform(&mut self, count: usize) -> Vec<Key> {
        let mut seen = std::collections::HashSet::with_capacity(count * 2);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let k = self.rng.gen_range(self.lo..=self.hi);
            if seen.insert(k) {
                out.push(k);
            }
        }
        out
    }

    /// `count` uniform keys with replacement (duplicates likely if the
    /// domain is small — exercises the semisort/dedup path of §4.1).
    pub fn uniform(&mut self, count: usize) -> Vec<Key> {
        (0..count)
            .map(|_| self.rng.gen_range(self.lo..=self.hi))
            .collect()
    }

    /// A batch where every key equals one of `hot.len()` hot keys, drawn
    /// Zipf(θ)-skewed over the hot set.
    pub fn zipf_over(&mut self, hot: &[Key], theta: f64, count: usize) -> Vec<Key> {
        assert!(!hot.is_empty());
        let z = Zipf::new(hot.len() as u64, theta);
        (0..count)
            .map(|_| hot[z.sample(&mut self.rng) as usize])
            .collect()
    }

    /// Sample `count` keys (with replacement) from an existing key set —
    /// the "operate on resident keys" batches used for Get/Update/Delete.
    pub fn from_existing(&mut self, existing: &[Key], count: usize) -> Vec<Key> {
        assert!(!existing.is_empty());
        (0..count)
            .map(|_| *existing.choose(&mut self.rng).expect("non-empty"))
            .collect()
    }

    /// Sample `count` *distinct* keys from an existing key set (for batch
    /// Delete, which requires resident keys; count ≤ existing.len()).
    pub fn distinct_from_existing(&mut self, existing: &[Key], count: usize) -> Vec<Key> {
        assert!(count <= existing.len());
        let mut pool: Vec<Key> = existing.to_vec();
        pool.partial_shuffle(&mut self.rng, count);
        pool.truncate(count);
        pool
    }

    /// Key/value pairs for insert-style batches (values derived from keys
    /// so tests can verify round-trips).
    pub fn with_values(keys: Vec<Key>) -> Vec<(Key, u64)> {
        keys.into_iter().map(|k| (k, value_for(k))).collect()
    }
}

/// The canonical test value for a key (deterministic, collision-free).
pub fn value_for(k: Key) -> u64 {
    (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD
}

/// `count` distinct keys spread evenly across (nearly) the whole `i64`
/// line, jittered deterministically inside each stride — the resident
/// set for *cluster* workloads, where a key-range router should see
/// every shard loaded: a power-of-two shard count splits this set into
/// near-equal parts by construction, while the jitter keeps boundary
/// keys irregular. Sorted ascending. (`i64::MIN` stays reserved for the
/// −∞ sentinel.)
pub fn domain_spread_keys(seed: u64, count: usize) -> Vec<Key> {
    assert!(count > 0);
    let stride = (u64::MAX / count as u64).max(1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count as u64)
        .map(|i| {
            let jitter = rng.gen_range(0..stride);
            let off = (i.wrapping_mul(stride)).wrapping_add(jitter);
            // Map [0, 2^64) onto (i64::MIN, i64::MAX] monotonically.
            (Key::MIN.wrapping_add(off as Key)).max(Key::MIN + 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_uniform_has_no_duplicates() {
        let mut g = PointGen::new(1, 0, 1_000_000);
        let keys = g.distinct_uniform(10_000);
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
        assert!(keys.iter().all(|&k| (0..=1_000_000).contains(&k)));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = PointGen::new(7, 0, 999).uniform(100);
        let b = PointGen::new(7, 0, 999).uniform(100);
        assert_eq!(a, b);
        let c = PointGen::new(8, 0, 999).uniform(100);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_over_hot_set_only_emits_hot_keys() {
        let mut g = PointGen::new(2, 0, 100);
        let hot = vec![5, 50, 500];
        let batch = g.zipf_over(&hot, 0.99, 1000);
        assert!(batch.iter().all(|k| hot.contains(k)));
        // Rank 0 (key 5) should dominate.
        let n5 = batch.iter().filter(|&&k| k == 5).count();
        assert!(n5 > batch.len() / 3);
    }

    #[test]
    fn distinct_from_existing_subset_and_unique() {
        let mut g = PointGen::new(3, 0, 100);
        let existing: Vec<Key> = (0..100).collect();
        let picked = g.distinct_from_existing(&existing, 30);
        assert_eq!(picked.len(), 30);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(picked.iter().all(|k| existing.contains(k)));
    }

    #[test]
    fn values_roundtrip_distinctly() {
        assert_ne!(value_for(1), value_for(2));
        assert_eq!(value_for(5), value_for(5));
    }

    #[test]
    #[should_panic]
    fn reserves_sentinel_key() {
        let _ = PointGen::new(1, Key::MIN, 0);
    }

    #[test]
    fn domain_spread_is_sorted_distinct_and_balanced() {
        let keys = domain_spread_keys(42, 4096);
        assert_eq!(keys.len(), 4096);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(keys.iter().all(|&k| k > Key::MIN), "sentinel reserved");
        // Every quarter of the i64 line holds roughly a quarter of the
        // set — the property a 4-shard router depends on.
        let quarter = |q: i64| {
            let lo = Key::MIN.wrapping_add(q << 62);
            let hi = lo.wrapping_add(1 << 62);
            keys.iter()
                .filter(|&&k| k >= lo && (q == 3 || k < hi))
                .count()
        };
        for q in 0..4 {
            let c = quarter(q);
            assert!((900..=1150).contains(&c), "quarter {q} holds {c}");
        }
        assert_eq!(keys, domain_spread_keys(42, 4096), "deterministic");
    }
}
