//! Open-loop arrival processes for the service layer.
//!
//! Closed-loop benchmarks (issue a batch, wait, repeat) measure the data
//! structure; *open-loop* benchmarks measure the system: requests arrive
//! on their own clock whether or not the service keeps up, which is what
//! exposes queueing delay and backpressure. This module generates
//! deterministic open-loop schedules: per-tick arrival counts follow a
//! Poisson(λ) law (Knuth's product-of-uniforms sampler over a seeded
//! RNG — reproducible, no wall clock anywhere), operation types follow a
//! weighted [`OpMix`], and keys follow Zipf(θ) ranks over a resident key
//! set, the standard skew family for key-value benchmarks.
//!
//! This crate deliberately does not depend on the data structure, so
//! events carry their own [`ArrivalOp`] tag; front-ends map it onto their
//! typed operation enum (`pim_core::Op` has a 1:1 correspondence).

use rand::{Rng as _, SeedableRng};

use crate::point::{value_for, Key};
use crate::zipf::Zipf;

/// One requested operation, in workload terms (mapped by the caller onto
/// the structure's typed op; values are derived from keys via
/// [`value_for`] so oracles can verify round-trips).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOp {
    /// Point read of a resident-set key.
    Get(Key),
    /// In-place write of a resident-set key.
    Update(Key, u64),
    /// Insert-or-update (key drawn from the whole domain, so it may or
    /// may not be resident).
    Upsert(Key, u64),
    /// Delete of a resident-set key.
    Delete(Key),
    /// Predecessor query at a resident-set key.
    Predecessor(Key),
    /// Successor query at a resident-set key.
    Successor(Key),
    /// Aggregate read over `[lo, hi]`.
    RangeSum(Key, Key),
}

/// One scheduled request of an open-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Tick the request arrives on (non-decreasing across a schedule).
    pub tick: u64,
    /// What it asks for.
    pub op: ArrivalOp,
}

/// Relative operation-type frequencies of an arrival process.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Weight of [`ArrivalOp::Get`].
    pub get: u32,
    /// Weight of [`ArrivalOp::Update`].
    pub update: u32,
    /// Weight of [`ArrivalOp::Upsert`].
    pub upsert: u32,
    /// Weight of [`ArrivalOp::Delete`].
    pub delete: u32,
    /// Weight of [`ArrivalOp::Predecessor`].
    pub predecessor: u32,
    /// Weight of [`ArrivalOp::Successor`].
    pub successor: u32,
    /// Weight of [`ArrivalOp::RangeSum`].
    pub range: u32,
}

impl OpMix {
    /// YCSB-C-like: reads only.
    pub fn read_only() -> Self {
        OpMix {
            get: 1,
            update: 0,
            upsert: 0,
            delete: 0,
            predecessor: 0,
            successor: 0,
            range: 0,
        }
    }

    /// YCSB-B-like: 95% Get, 5% Update. Leaves the resident set intact,
    /// so sustained runs don't drift.
    pub fn read_heavy() -> Self {
        OpMix {
            get: 95,
            update: 5,
            upsert: 0,
            delete: 0,
            predecessor: 0,
            successor: 0,
            range: 0,
        }
    }

    /// A full mixed stream exercising every family: 40% Get, 20% Update,
    /// 10% Upsert, 10% Delete, 10% Successor, 5% Predecessor, 5% RangeSum.
    pub fn mixed() -> Self {
        OpMix {
            get: 40,
            update: 20,
            upsert: 10,
            delete: 10,
            predecessor: 5,
            successor: 10,
            range: 5,
        }
    }

    fn total(&self) -> u32 {
        self.get
            + self.update
            + self.upsert
            + self.delete
            + self.predecessor
            + self.successor
            + self.range
    }
}

/// A deterministic open-loop arrival generator.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    rng: rand::rngs::StdRng,
    zipf: Zipf,
    resident: Vec<Key>,
    mix: OpMix,
    /// Mean arrivals per tick (Poisson λ).
    pub rate: f64,
    /// Half-width of [`ArrivalOp::RangeSum`] windows around their anchor.
    pub range_span: Key,
}

impl ArrivalGen {
    /// A generator drawing keys Zipf(θ)-ranked over `resident` (which
    /// must be non-empty and is taken in the given order: index = rank,
    /// so pre-shuffle it to decorrelate popularity from key order), with
    /// mean `rate` arrivals per tick.
    pub fn new(seed: u64, resident: Vec<Key>, theta: f64, rate: f64, mix: OpMix) -> Self {
        assert!(!resident.is_empty(), "resident set must be non-empty");
        assert!(rate > 0.0, "arrival rate must be positive");
        assert!(mix.total() > 0, "op mix must have positive total weight");
        let zipf = Zipf::new(resident.len() as u64, theta);
        ArrivalGen {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            zipf,
            resident,
            mix,
            rate,
            range_span: 1 << 10,
        }
    }

    /// Override the range-query window half-width.
    pub fn with_range_span(mut self, span: Key) -> Self {
        assert!(span >= 0);
        self.range_span = span;
        self
    }

    /// Poisson(λ) arrival count for one tick (Knuth's product-of-uniforms
    /// sampler: exact, O(λ) expected time — fine for the λ ≤ a few
    /// thousand these schedules use).
    fn poisson_count(&mut self) -> u64 {
        let l = (-self.rate).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// A Zipf-ranked resident key.
    fn resident_key(&mut self) -> Key {
        self.resident[self.zipf.sample(&mut self.rng) as usize]
    }

    /// One operation per the mix's weights.
    fn sample_op(&mut self, tick: u64) -> ArrivalOp {
        let r = self.rng.gen_range(0..self.mix.total());
        let k = self.resident_key();
        let mut acc = self.mix.get;
        if r < acc {
            return ArrivalOp::Get(k);
        }
        acc += self.mix.update;
        if r < acc {
            return ArrivalOp::Update(k, value_for(k) ^ tick);
        }
        acc += self.mix.upsert;
        if r < acc {
            return ArrivalOp::Upsert(k, value_for(k) ^ tick);
        }
        acc += self.mix.delete;
        if r < acc {
            return ArrivalOp::Delete(k);
        }
        acc += self.mix.predecessor;
        if r < acc {
            return ArrivalOp::Predecessor(k);
        }
        acc += self.mix.successor;
        if r < acc {
            return ArrivalOp::Successor(k);
        }
        ArrivalOp::RangeSum(k, k.saturating_add(self.range_span))
    }

    /// The full schedule for `ticks` ticks: events in tick order (ties in
    /// generation order), expected length ≈ `rate × ticks`.
    pub fn schedule(&mut self, ticks: u64) -> Vec<ArrivalEvent> {
        let mut out = Vec::with_capacity((self.rate * ticks as f64) as usize + ticks as usize);
        for tick in 0..ticks {
            let n = self.poisson_count();
            for _ in 0..n {
                let op = self.sample_op(tick);
                out.push(ArrivalEvent { tick, op });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resident() -> Vec<Key> {
        (0..1000).map(|i| i * 7 + 3).collect()
    }

    #[test]
    fn schedule_is_deterministic_in_seed() {
        let a = ArrivalGen::new(9, resident(), 0.8, 4.0, OpMix::mixed()).schedule(100);
        let b = ArrivalGen::new(9, resident(), 0.8, 4.0, OpMix::mixed()).schedule(100);
        assert_eq!(a, b);
        let c = ArrivalGen::new(10, resident(), 0.8, 4.0, OpMix::mixed()).schedule(100);
        assert_ne!(a, c);
    }

    #[test]
    fn ticks_are_nondecreasing_and_bounded() {
        let ev = ArrivalGen::new(1, resident(), 0.8, 2.0, OpMix::mixed()).schedule(50);
        assert!(ev.windows(2).all(|w| w[0].tick <= w[1].tick));
        assert!(ev.iter().all(|e| e.tick < 50));
    }

    #[test]
    fn arrival_count_tracks_rate() {
        let ev = ArrivalGen::new(2, resident(), 0.8, 8.0, OpMix::read_heavy()).schedule(1000);
        let mean = ev.len() as f64 / 1000.0;
        assert!((mean - 8.0).abs() < 1.0, "mean arrivals/tick {mean}");
    }

    #[test]
    fn read_only_mix_emits_only_gets() {
        let ev = ArrivalGen::new(3, resident(), 0.0, 4.0, OpMix::read_only()).schedule(100);
        assert!(!ev.is_empty());
        assert!(ev.iter().all(|e| matches!(e.op, ArrivalOp::Get(_))));
    }

    #[test]
    fn mixed_stream_covers_every_family() {
        let ev = ArrivalGen::new(4, resident(), 0.5, 16.0, OpMix::mixed()).schedule(500);
        let mut seen = [false; 7];
        for e in &ev {
            let i = match e.op {
                ArrivalOp::Get(_) => 0,
                ArrivalOp::Update(..) => 1,
                ArrivalOp::Upsert(..) => 2,
                ArrivalOp::Delete(_) => 3,
                ArrivalOp::Predecessor(_) => 4,
                ArrivalOp::Successor(_) => 5,
                ArrivalOp::RangeSum(..) => 6,
            };
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "families seen: {seen:?}");
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let res = resident();
        let hot = res[0];
        let ev = ArrivalGen::new(5, res, 1.1, 8.0, OpMix::read_only()).schedule(500);
        let hot_frac = ev
            .iter()
            .filter(|e| matches!(e.op, ArrivalOp::Get(k) if k == hot))
            .count() as f64
            / ev.len() as f64;
        assert!(hot_frac > 0.05, "rank-0 fraction {hot_frac}");
    }

    #[test]
    fn range_events_are_well_formed() {
        let ev = ArrivalGen::new(
            6,
            resident(),
            0.8,
            8.0,
            OpMix {
                range: 1,
                ..OpMix::read_only()
            },
        )
        .with_range_span(100)
        .schedule(200);
        assert!(ev
            .iter()
            .all(|e| !matches!(e.op, ArrivalOp::RangeSum(lo, hi) if lo > hi)));
    }
}
