//! # pim-workloads — reproducible batch generators
//!
//! Workloads driving the experiments: uniform and Zipf-skewed point
//! batches, the paper's three adversarial patterns (duplicate flood,
//! same-successor flood, single-range flood), contiguous runs, and range
//! batches parameterised by covered-key counts (`K`, `κ`).
//!
//! Everything is deterministic in an explicit seed, and — matching the
//! model's adversary (§2.1) — generators never see the data structure's
//! internal random choices (hash seeds, tower heights).
#![warn(missing_docs)]

pub mod adversary;
pub mod arrival;
pub mod point;
pub mod range;
pub mod zipf;

pub use adversary::{
    contiguous_run, duplicate_flood, rotating_hotspot, same_successor_flood, single_range_flood,
};
pub use arrival::{ArrivalEvent, ArrivalGen, ArrivalOp, OpMix};
pub use point::{domain_spread_keys, value_for, Key, PointGen};
pub use range::{keys_in_range, nested_ranges, range_batch, range_covering, KeyRange};
pub use zipf::{zipf_scatter_batches, Zipf};
