//! Zipf-distributed sampling for skewed workloads.
//!
//! The paper's motivation for abandoning range partitioning is "skewed or
//! adversarial workloads" (§3.1). Zipf is the standard skew family for
//! key-value benchmarks (YCSB et al.); rank `r` is drawn with probability
//! proportional to `1/r^θ`.

/// A Zipf(θ) sampler over ranks `0..n`, using the rejection-inversion
/// method of W. Hörmann & G. Derflinger (as used by YCSB's generator
/// lineage); exact for all θ ≥ 0 and O(1) expected time per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed constants of the rejection-inversion sampler.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// A sampler over `0..n` with exponent `theta` (`theta = 0` is uniform;
    /// common skewed settings are 0.8–1.2). Requires `n ≥ 1`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1);
        assert!(
            theta >= 0.0 && (theta - 1.0).abs() > 1e-9,
            "theta=1 unsupported; use 0.99"
        );
        let h = |x: f64| -> f64 { (x.powf(1.0 - theta) - 1.0) / (1.0 - theta) };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let s = 2.0 - {
            // h^{-1}(h(2.5) - 2^{-theta}) ... constant from the paper;
            // simplified bound that keeps rejection probability < 1.
            let hi = h(2.5) - 2f64.powf(-theta);
            ((1.0 - theta) * hi + 1.0).powf(1.0 / (1.0 - theta))
        };
        Zipf {
            n,
            theta,
            h_x1,
            h_n,
            s,
        }
    }

    #[inline]
    fn h(&self, x: f64) -> f64 {
        (x.powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta)
    }

    #[inline]
    fn h_inv(&self, x: f64) -> f64 {
        ((1.0 - self.theta) * x + 1.0).powf(1.0 / (1.0 - self.theta))
    }

    /// Draw a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u: f64 = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if (k - x).abs() <= self.s || u >= self.h(k + 0.5) - (-(k.ln() * self.theta)).exp() {
                return k as u64 - 1;
            }
        }
    }
}

/// Deterministic θ-sweep query batches over a resident key set.
///
/// Ranks are drawn Zipf(θ) over `resident.len()` and scattered across the
/// key order with a golden-ratio multiplicative hash, so the hot ranks
/// land far apart on the key line instead of clustering in one region —
/// the skew stresses *popularity* (the same few keys over and over), not
/// *locality*, which is the adversary a popularity-ranked cache has to
/// beat. Every batch draws fresh ranks, but the whole set of batches is a
/// pure function of `seed`.
pub fn zipf_scatter_batches(
    seed: u64,
    resident: &[crate::point::Key],
    theta: f64,
    batch: usize,
    batches: usize,
) -> Vec<Vec<crate::point::Key>> {
    use rand::SeedableRng;
    assert!(!resident.is_empty());
    let z = Zipf::new(resident.len() as u64, theta);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            (0..batch)
                .map(|_| {
                    let rank = z.sample(&mut rng);
                    // Multiply-high (not mod): rank·φ⁻¹ as a 0.64 fixed-point
                    // fraction, scaled to the key count — the golden-ratio
                    // low-discrepancy scatter, with no small-stride collapse
                    // when the count divides the constant's residue.
                    let frac = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let idx = (u128::from(frac) * resident.len() as u128) >> 64;
                    resident[idx as usize]
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_500.0, "count {c}");
        }
    }

    #[test]
    fn high_theta_concentrates_on_low_ranks() {
        let z = Zipf::new(1_000, 1.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut head = 0u64;
        let total = 50_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With θ=1.2 the top-10 ranks carry well over a third of the mass.
        assert!(
            head as f64 / total as f64 > 0.35,
            "head mass {head}/{total}"
        );
    }

    #[test]
    fn single_element_domain() {
        let z = Zipf::new(1, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn scatter_batches_are_deterministic_resident_and_spread() {
        let resident: Vec<i64> = (0..500).map(|k| k * 3).collect();
        let a = zipf_scatter_batches(9, &resident, 0.99, 64, 3);
        let b = zipf_scatter_batches(9, &resident, 0.99, 64, 3);
        assert_eq!(a, b, "pure function of the seed");
        assert_eq!(a.len(), 3);
        assert!(a
            .iter()
            .all(|batch| batch.len() == 64
                && batch.iter().all(|k| resident.binary_search(k).is_ok())));
        // The scatter must break rank order: the two hottest ranks land
        // far apart on the key line, not adjacent.
        let scatter = |rank: u64| {
            let frac = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            resident[((u128::from(frac) * 500) >> 64) as usize]
        };
        let (hot0, hot1) = (scatter(0), scatter(1));
        assert!(
            (hot0 - hot1).abs() > 30,
            "ranks 0 and 1 cluster: {hot0} {hot1}"
        );
    }

    #[test]
    fn rank_frequencies_decrease() {
        let z = Zipf::new(50, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut counts = vec![0u64; 50];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[49]);
    }
}
