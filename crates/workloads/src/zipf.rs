//! Zipf-distributed sampling for skewed workloads.
//!
//! The paper's motivation for abandoning range partitioning is "skewed or
//! adversarial workloads" (§3.1). Zipf is the standard skew family for
//! key-value benchmarks (YCSB et al.); rank `r` is drawn with probability
//! proportional to `1/r^θ`.

/// A Zipf(θ) sampler over ranks `0..n`, using the rejection-inversion
/// method of W. Hörmann & G. Derflinger (as used by YCSB's generator
/// lineage); exact for all θ ≥ 0 and O(1) expected time per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed constants of the rejection-inversion sampler.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// A sampler over `0..n` with exponent `theta` (`theta = 0` is uniform;
    /// common skewed settings are 0.8–1.2). Requires `n ≥ 1`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1);
        assert!(
            theta >= 0.0 && (theta - 1.0).abs() > 1e-9,
            "theta=1 unsupported; use 0.99"
        );
        let h = |x: f64| -> f64 { (x.powf(1.0 - theta) - 1.0) / (1.0 - theta) };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        let s = 2.0 - {
            // h^{-1}(h(2.5) - 2^{-theta}) ... constant from the paper;
            // simplified bound that keeps rejection probability < 1.
            let hi = h(2.5) - 2f64.powf(-theta);
            ((1.0 - theta) * hi + 1.0).powf(1.0 / (1.0 - theta))
        };
        Zipf {
            n,
            theta,
            h_x1,
            h_n,
            s,
        }
    }

    #[inline]
    fn h(&self, x: f64) -> f64 {
        (x.powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta)
    }

    #[inline]
    fn h_inv(&self, x: f64) -> f64 {
        ((1.0 - self.theta) * x + 1.0).powf(1.0 / (1.0 - self.theta))
    }

    /// Draw a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u: f64 = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if (k - x).abs() <= self.s || u >= self.h(k + 0.5) - (-(k.ln() * self.theta)).exp() {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_500.0, "count {c}");
        }
    }

    #[test]
    fn high_theta_concentrates_on_low_ranks() {
        let z = Zipf::new(1_000, 1.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut head = 0u64;
        let total = 50_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With θ=1.2 the top-10 ranks carry well over a third of the mass.
        assert!(
            head as f64 / total as f64 > 0.35,
            "head mass {head}/{total}"
        );
    }

    #[test]
    fn single_element_domain() {
        let z = Zipf::new(1, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn rank_frequencies_decrease() {
        let z = Zipf::new(50, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut counts = vec![0u64; 50];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[49]);
    }
}
