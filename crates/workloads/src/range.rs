//! Range-operation workload generators (§5).
//!
//! Theorem 5.1 is parameterised by `K` (pairs in one range) and Theorem 5.2
//! by `κ` (total pairs covered by a batch of ranges); the generators here
//! target those knobs given a *sorted* resident key set.

use rand::{Rng, SeedableRng};

use crate::point::Key;

/// A half-open key interval `[lo, hi]` (inclusive ends, as the paper's
/// `LKey ≤ k ≤ RKey`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// Left end (inclusive).
    pub lo: Key,
    /// Right end (inclusive).
    pub hi: Key,
}

/// One range covering exactly `k` resident keys, starting at a uniformly
/// random position of the sorted resident set.
pub fn range_covering(seed: u64, sorted_keys: &[Key], k: usize) -> KeyRange {
    assert!(k >= 1 && k <= sorted_keys.len());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let start = rng.gen_range(0..=sorted_keys.len() - k);
    KeyRange {
        lo: sorted_keys[start],
        hi: sorted_keys[start + k - 1],
    }
}

/// A batch of `count` ranges each covering ~`k_each` resident keys,
/// uniformly placed (may overlap — §5.2 splits overlaps into disjoint
/// subranges).
pub fn range_batch(seed: u64, sorted_keys: &[Key], k_each: usize, count: usize) -> Vec<KeyRange> {
    (0..count)
        .map(|i| range_covering(seed.wrapping_add(i as u64 * 0x9E37), sorted_keys, k_each))
        .collect()
}

/// A batch of `count` ranges all nested around one hot point (adversarial:
/// maximal overlap, exercising the subrange-splitting path).
pub fn nested_ranges(sorted_keys: &[Key], count: usize) -> Vec<KeyRange> {
    assert!(!sorted_keys.is_empty());
    let mid = sorted_keys.len() / 2;
    (0..count)
        .map(|i| {
            let spread = 1 + i.min(mid).min(sorted_keys.len() - 1 - mid);
            KeyRange {
                lo: sorted_keys[mid - spread.min(mid)],
                hi: sorted_keys[(mid + spread).min(sorted_keys.len() - 1)],
            }
        })
        .collect()
}

/// Count resident keys inside a range (reference oracle for tests).
pub fn keys_in_range(sorted_keys: &[Key], r: KeyRange) -> usize {
    let lo = sorted_keys.partition_point(|&k| k < r.lo);
    let hi = sorted_keys.partition_point(|&k| k <= r.hi);
    hi - lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<Key> {
        (0..1000).map(|i| i * 10).collect()
    }

    #[test]
    fn range_covering_exact_count() {
        let ks = keys();
        for seed in 0..20 {
            let r = range_covering(seed, &ks, 37);
            assert_eq!(keys_in_range(&ks, r), 37);
        }
    }

    #[test]
    fn range_batch_sizes() {
        let ks = keys();
        let rs = range_batch(5, &ks, 10, 50);
        assert_eq!(rs.len(), 50);
        for r in rs {
            assert_eq!(keys_in_range(&ks, r), 10);
        }
    }

    #[test]
    fn nested_ranges_are_nested() {
        let ks = keys();
        let rs = nested_ranges(&ks, 10);
        for w in rs.windows(2) {
            assert!(w[1].lo <= w[0].lo && w[1].hi >= w[0].hi);
        }
    }

    #[test]
    fn keys_in_range_oracle() {
        let ks = keys();
        assert_eq!(keys_in_range(&ks, KeyRange { lo: 0, hi: 90 }), 10);
        assert_eq!(keys_in_range(&ks, KeyRange { lo: 1, hi: 9 }), 0);
        assert_eq!(
            keys_in_range(
                &ks,
                KeyRange {
                    lo: 9990,
                    hi: 99999
                }
            ),
            1
        );
    }

    #[test]
    fn single_key_range() {
        let ks = keys();
        let r = range_covering(1, &ks, 1);
        assert_eq!(keys_in_range(&ks, r), 1);
        assert_eq!(r.lo, r.hi);
    }
}
