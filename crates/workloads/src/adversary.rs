//! Adversarial batch generators (§3.3, §4.2).
//!
//! The paper's central robustness claim is PIM-balance under
//! *adversary-controlled* batches. Three canonical attacks appear in the
//! text:
//!
//! * **duplicate flood** (§3.3): "multiple Get (or Update) operations with
//!   the same key can cause contention on the PIM module holding the key";
//! * **same-successor flood** (§3.3, §4.2): "the adversary can request a
//!   batch of `P log² P` different keys all with the same successor,
//!   causing lower-part nodes to become contention points ... completely
//!   eliminating parallelism" for the naïve algorithm;
//! * **single-range flood** (§2.2): against range partitioning, "all keys
//!   fall within the range hosted by a single PIM-module", serialising the
//!   baseline.

use rand::{Rng, SeedableRng};

use crate::point::Key;

/// A batch consisting of one key repeated `count` times (duplicate flood).
pub fn duplicate_flood(key: Key, count: usize) -> Vec<Key> {
    vec![key; count]
}

/// `count` *distinct* keys that all share one successor: the keys are drawn
/// from the open interval `(gap_lo, gap_hi)` which the caller guarantees to
/// contain no resident key, so every query's successor is the resident key
/// at/above `gap_hi`. Requires the gap to be wider than `count`.
pub fn same_successor_flood(seed: u64, gap_lo: Key, gap_hi: Key, count: usize) -> Vec<Key> {
    assert!(gap_hi - gap_lo > count as i64 + 1, "gap too narrow");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(count * 2);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let k = rng.gen_range(gap_lo + 1..gap_hi);
        if seen.insert(k) {
            out.push(k);
        }
    }
    out
}

/// `count` keys confined to `[lo, hi]` (single-range flood against range
/// partitioning; duplicates allowed).
pub fn single_range_flood(seed: u64, lo: Key, hi: Key, count: usize) -> Vec<Key> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// An arithmetic run of `count` consecutive keys starting at `start`
/// (contiguous-delete / contiguous-insert adversary: stresses Algorithm 1's
/// segment chaining and Delete's list contraction with one long run).
pub fn contiguous_run(start: Key, count: usize) -> Vec<Key> {
    (0..count as i64).map(|i| start + i).collect()
}

/// `batches` query batches whose hot set *moves*: every `period` batches
/// the window of `hot` consecutive resident keys jumps to a new spot in
/// the key order (golden-ratio stride, so successive windows are far
/// apart and the sequence never revisits a window for small counts).
/// Within a window, keys are drawn uniformly from the window's `hot`
/// keys. This is the anti-caching adversary: any popularity cache keyed
/// to one hot set must hold *several disjoint working sets at once* —
/// or re-admit under churn — to stay effective across rotations.
pub fn rotating_hotspot(
    seed: u64,
    resident: &[Key],
    hot: usize,
    batch: usize,
    batches: usize,
    period: usize,
) -> Vec<Vec<Key>> {
    assert!(hot >= 1 && hot <= resident.len());
    assert!(period >= 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let span = (resident.len() - hot + 1) as u64;
    (0..batches)
        .map(|b| {
            let window = (b / period) as u64;
            // Multiply-high, not mod: the high bits of `w·φ⁻¹·2⁶⁴` follow
            // the golden-ratio low-discrepancy sequence on [0, 1), while
            // `mod span` would collapse to an arithmetic progression with
            // stride `φ⁻¹·2⁶⁴ mod span` — possibly tiny.
            let frac = window.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let start = ((u128::from(frac) * u128::from(span)) >> 64) as usize;
            (0..batch)
                .map(|_| resident[start + rng.gen_range(0..hot)])
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_flood_is_constant() {
        let b = duplicate_flood(42, 10);
        assert_eq!(b.len(), 10);
        assert!(b.iter().all(|&k| k == 42));
    }

    #[test]
    fn same_successor_flood_distinct_in_gap() {
        let b = same_successor_flood(1, 1000, 100_000, 5000);
        assert_eq!(b.len(), 5000);
        let set: std::collections::HashSet<_> = b.iter().collect();
        assert_eq!(set.len(), 5000);
        assert!(b.iter().all(|&k| k > 1000 && k < 100_000));
    }

    #[test]
    #[should_panic]
    fn same_successor_flood_rejects_narrow_gap() {
        let _ = same_successor_flood(1, 0, 10, 100);
    }

    #[test]
    fn single_range_flood_confined() {
        let b = single_range_flood(2, 50, 60, 1000);
        assert!(b.iter().all(|&k| (50..=60).contains(&k)));
    }

    #[test]
    fn contiguous_run_is_consecutive() {
        assert_eq!(contiguous_run(5, 4), vec![5, 6, 7, 8]);
    }

    #[test]
    fn rotating_hotspot_rotates_between_periods_only() {
        let resident: Vec<Key> = (0..1000).map(|k| k * 2).collect();
        let batches = rotating_hotspot(3, &resident, 50, 40, 6, 2);
        assert_eq!(batches.len(), 6);
        let window = |b: &[Key]| {
            let lo = *b.iter().min().unwrap();
            let hi = *b.iter().max().unwrap();
            assert!(hi - lo < 100, "batch spills outside one hot window");
            lo
        };
        // Batches within one period share a window; the next period's
        // window is somewhere else entirely.
        let w: Vec<Key> = batches.iter().map(|b| window(b)).collect();
        assert!((w[0] - w[1]).abs() < 100 && (w[2] - w[3]).abs() < 100);
        assert!((w[0] - w[2]).abs() > 100, "window never moved");
        assert_eq!(
            batches,
            rotating_hotspot(3, &resident, 50, 40, 6, 2),
            "pure function of the seed"
        );
        assert!(batches
            .iter()
            .flatten()
            .all(|k| resident.binary_search(k).is_ok()));
    }
}
