//! Parallel semisort and batch deduplication.
//!
//! Batched Get/Update "first goes through a parallel semisort on the CPU
//! side to remove duplicate operations" (§4.1) — deduplication is what makes
//! duplicate-heavy adversarial batches PIM-balanced, since only one message
//! per distinct key ever reaches a module. A semisort groups equal keys
//! without fully ordering them; per Gu–Shun–Sun–Blelloch [18] it runs in
//! `O(n)` expected work and `O(log n)` whp depth, which is what we charge.
//!
//! The execution strategy groups by hashed key (the classic semisort
//! reduction): items are scattered to buckets by a seeded hash of the key,
//! each bucket is grouped locally, and groups are emitted bucket by bucket —
//! equal keys are contiguous in the output but the global order is the
//! (random) hash order, not the key order.

use pim_runtime::hashfn::hash1;
use pim_runtime::pool;

use crate::accounting::{log2c, CpuCost};

/// Group items with equal keys contiguously (hash order, not key order):
/// `O(n)` expected work, `O(log n)` whp depth.
pub fn semisort_by_key<T, F>(items: Vec<T>, seed: u64, key: F) -> (Vec<T>, CpuCost)
where
    T: Send,
    F: Fn(&T) -> u64 + Sync,
{
    let n = items.len() as u64;
    if n <= 1 {
        return (items, CpuCost::new(n, 1));
    }
    let buckets = (items.len() / 4).next_power_of_two().max(1);
    let mask = buckets as u64 - 1;
    let mut slots: Vec<Vec<T>> = (0..buckets).map(|_| Vec::new()).collect();
    for item in items {
        let b = (hash1(seed, key(&item)) & mask) as usize;
        slots[b].push(item);
    }
    // Group equal keys within each bucket (buckets are small in
    // expectation; sort each by hashed key for contiguity). Buckets are
    // independent, so the pool sweeps them in parallel; each bucket's
    // stable std sort keeps the output thread-count-invariant.
    pool::par_for_each_mut(&mut slots, n as usize, |_, bucket| {
        bucket.sort_by_key(|it| hash1(seed, key(it)));
    });
    let out: Vec<T> = slots.into_iter().flatten().collect();
    (out, CpuCost::new(n, log2c(n)))
}

/// Deduplicate a batch by key, keeping the *first* occurrence of each key
/// (batch semantics: within one batch all operations are the same type, and
/// the model leaves intra-batch duplicate resolution to the data structure;
/// first-wins is our documented choice). Built on [`semisort_by_key`];
/// same costs.
pub fn dedup_by_key<T, F>(items: Vec<T>, seed: u64, key: F) -> (Vec<T>, CpuCost)
where
    T: Send,
    F: Fn(&T) -> u64 + Sync,
{
    let n = items.len();
    if n <= 1 {
        return (items, CpuCost::new(n as u64, 1));
    }
    // Tag with the original index so "first occurrence" is well defined
    // after the semisort scrambles the order.
    let tagged: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let (grouped, cost) = semisort_by_key(tagged, seed, |(_, it)| key(it));
    let mut out: Vec<(usize, T)> = Vec::new();
    let mut iter = grouped.into_iter().peekable();
    while let Some((idx, item)) = iter.next() {
        let k = key(&item);
        let mut best = (idx, item);
        while let Some((_, nxt)) = iter.peek() {
            if key(nxt) != k {
                break;
            }
            let (nidx, nitem) = iter.next().expect("peeked");
            if nidx < best.0 {
                best = (nidx, nitem);
            }
        }
        out.push(best);
    }
    // Restore input order of the survivors (stable, deterministic output).
    out.sort_unstable_by_key(|&(idx, _)| idx);
    let final_cost = cost.then(CpuCost::new(out.len() as u64, log2c(out.len() as u64)));
    (out.into_iter().map(|(_, it)| it).collect(), final_cost)
}

/// Allocation-free [`dedup_by_key`] for copyable items: identical output
/// (first occurrence of each key, in input order — a result the hash order
/// of the semisort provably cannot influence) and the identically charged
/// cost, staged entirely in the caller's buffers. `tags` and `out` are
/// recycled staging (any contents are discarded); both in-place sorts are
/// `sort_unstable` (no heap).
///
/// The semisort in [`dedup_by_key`] is the *accounting model* — the
/// paper's §4.1 algorithm whose `O(n)` work / `O(log n)` depth we charge.
/// Its survivors are re-sorted back to input order before returning, so
/// the output is a pure function of `(keys, input order)`; this variant
/// computes the same function with two in-place sorts and charges the same
/// [`CpuCost`], which keeps every metric and trace byte-identical.
pub fn dedup_by_key_into<T, F>(items: &[T], key: F, tags: &mut Vec<(u64, u32)>, out: &mut Vec<T>)
where
    T: Copy,
    F: Fn(&T) -> u64,
{
    out.clear();
    if items.len() <= 1 {
        out.extend_from_slice(items);
        return;
    }
    tags.clear();
    tags.extend(items.iter().enumerate().map(|(i, it)| (key(it), i as u32)));
    // Ascending (key, index): the first entry of each key run is its first
    // occurrence.
    tags.sort_unstable();
    let mut w = 0;
    for r in 0..tags.len() {
        if r == 0 || tags[r].0 != tags[r - 1].0 {
            tags[w] = tags[r];
            w += 1;
        }
    }
    tags.truncate(w);
    // Survivors back to input order (dedup_by_key's documented output).
    tags.sort_unstable_by_key(|&(_, i)| i);
    out.extend(tags.iter().map(|&(_, i)| items[i as usize]));
}

/// The cost [`dedup_by_key`] charges for an input of `n` items deduplicated
/// to `m` — shared so [`dedup_by_key_into`] callers charge identically.
pub fn dedup_cost(n: usize, m: usize) -> CpuCost {
    if n <= 1 {
        return CpuCost::new(n as u64, 1);
    }
    CpuCost::new(n as u64, log2c(n as u64)).then(CpuCost::new(m as u64, log2c(m as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn semisort_groups_equal_keys() {
        let items: Vec<u64> = (0..1000).map(|i| i % 37).collect();
        let (out, _) = semisort_by_key(items, 99, |&x| x);
        // Equal keys must be contiguous.
        let mut seen_ranges: HashMap<u64, usize> = HashMap::new();
        let mut runs = 0;
        let mut prev: Option<u64> = None;
        for &x in &out {
            if prev != Some(x) {
                runs += 1;
                assert!(
                    seen_ranges.insert(x, runs).is_none(),
                    "key {x} appears in two separate runs"
                );
            }
            prev = Some(x);
        }
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn semisort_preserves_multiset() {
        let items = vec![3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let (mut out, _) = semisort_by_key(items.clone(), 7, |&x| x);
        let mut expect = items;
        out.sort_unstable();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn dedup_keeps_first_occurrence() {
        // (key, payload): payloads distinguish occurrences.
        let items = vec![(5u64, 'a'), (3, 'b'), (5, 'c'), (3, 'd'), (7, 'e')];
        let (out, _) = dedup_by_key(items, 1, |&(k, _)| k);
        assert_eq!(out, vec![(5, 'a'), (3, 'b'), (7, 'e')]);
    }

    #[test]
    fn dedup_is_identity_on_unique_keys() {
        let items: Vec<u64> = (0..100).rev().collect();
        let (out, _) = dedup_by_key(items.clone(), 2, |&x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn dedup_adversarial_all_same_key() {
        let items: Vec<(u64, u32)> = (0..10_000).map(|i| (42, i)).collect();
        let (out, _) = dedup_by_key(items, 3, |&(k, _)| k);
        assert_eq!(out, vec![(42, 0)]);
    }

    #[test]
    fn empty_and_singleton() {
        let (out, _) = dedup_by_key(Vec::<u64>::new(), 1, |&x| x);
        assert!(out.is_empty());
        let (out, _) = dedup_by_key(vec![9u64], 1, |&x| x);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn into_variant_matches_dedup_by_key_exactly() {
        // Output AND charged cost must be indistinguishable from the
        // allocating path for every input shape (the byte-identical
        // metrics contract depends on it).
        let cases: Vec<Vec<(u64, u32)>> = vec![
            vec![],
            vec![(9, 0)],
            vec![(5, 0), (3, 1), (5, 2), (3, 3), (7, 4)],
            (0..1000).map(|i| (i % 37, i as u32)).collect(),
            (0..10_000).map(|i| (42, i as u32)).collect(),
            (0..100).rev().map(|i| (i, i as u32)).collect(),
        ];
        for items in cases {
            let (want, want_cost) = dedup_by_key(items.clone(), 0xAB, |&(k, _)| k);
            let mut tags = Vec::new();
            let mut got = Vec::new();
            dedup_by_key_into(&items, |&(k, _)| k, &mut tags, &mut got);
            let got_cost = dedup_cost(items.len(), got.len());
            assert_eq!(got, want);
            assert_eq!(
                (got_cost.work, got_cost.depth),
                (want_cost.work, want_cost.depth)
            );
        }
    }

    #[test]
    fn cost_is_linear_work() {
        let items: Vec<u64> = (0..1024).collect();
        let (_, c) = semisort_by_key(items, 5, |&x| x);
        assert_eq!(c.work, 1024);
        assert_eq!(c.depth, 10);
    }
}
