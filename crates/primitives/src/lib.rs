//! # pim-primitives — CPU-side parallel primitives for the PIM model
//!
//! The batch algorithms of the paper lean on a small toolbox of CPU-side
//! parallel routines, each cited with binary-forking-model costs (§4, [9,
//! 18, 28]):
//!
//! * [`sort`] — parallel comparison sort (`O(n log n)` work, `O(log n)`
//!   depth whp), used to sort every batch;
//! * [`semisort`] — semisort + deduplication (`O(n)` expected work,
//!   `O(log n)` whp depth), used by batched Get/Update (§4.1);
//! * [`prefix`] — prefix sums and budgeted grouping (`O(n)` work,
//!   `O(log n)` depth), used by the range-operation pipeline (§5.2);
//! * [`list_contraction`] — random-priority parallel list contraction
//!   (`O(R)` work, `O(log R)` depth whp), used by batched Delete (§4.4);
//! * [`paths`] — search-path LCA hints for the pivot divide-and-conquer
//!   (§4.2).
//!
//! Every routine *executes* in parallel (on the `pim-pool` executor,
//! [`pim_runtime::pool`]) and *charges* its
//! model-level work/depth through [`accounting::CpuCost`], keeping the
//! simulator's CPU metrics aligned with the paper's analysis.

#![warn(missing_docs)]

pub mod accounting;
pub mod list_contraction;
pub mod paths;
pub mod prefix;
pub mod semisort;
pub mod sort;

pub use accounting::CpuCost;
pub use list_contraction::{contract, LinkedLists, NONE};
pub use paths::{hint_between, Hint, SearchPath};
pub use prefix::{exclusive_scan, group_by_budget, inclusive_scan};
pub use semisort::{dedup_by_key, semisort_by_key};
pub use sort::{par_sort, par_sort_by_key};
