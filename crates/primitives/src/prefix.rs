//! Parallel prefix sums (scan).
//!
//! Used by the range-operation pipeline (§5.2 step 4: "We compute the prefix
//! sum of the subrange sizes in ascending order, and partition the subranges
//! into groups") and by assorted batch bookkeeping. Work `O(n)`, depth
//! `O(log n)` — the textbook two-pass blocked scan, executed in parallel on
//! the `pim-pool` executor ([`pim_runtime::pool`]).

use pim_runtime::pool;

use crate::accounting::{log2c, CpuCost};

/// Scan block size. Fixed (not derived from the worker count) so the block
/// structure — and with it every intermediate the scan could ever expose —
/// is a function of the input alone; `PIM_THREADS` only changes which
/// worker sums which block.
const SCAN_BLOCK: usize = 4096;

/// Exclusive prefix sums: `out[i] = Σ_{j<i} xs[j]`; returns `(out, total,
/// cost)`.
pub fn exclusive_scan(xs: &[u64]) -> (Vec<u64>, u64, CpuCost) {
    let n = xs.len();
    if n == 0 {
        return (Vec::new(), 0, CpuCost::new(0, 1));
    }
    let chunk = SCAN_BLOCK;
    // Pass 1: per-block sums.
    let n_blocks = n.div_ceil(chunk);
    let block_sums: Vec<u64> = pool::par_map_indexed(n_blocks, n, |b| {
        xs[b * chunk..((b + 1) * chunk).min(n)].iter().sum()
    });
    // Sequential scan over the (few) block sums.
    let mut block_offsets = Vec::with_capacity(block_sums.len());
    let mut acc = 0u64;
    for &s in &block_sums {
        block_offsets.push(acc);
        acc += s;
    }
    // Pass 2: per-block exclusive scan with offset.
    let mut out = vec![0u64; n];
    pool::par_chunks_mut(&mut out, chunk, n, |b, o| {
        let mut run = block_offsets[b];
        for (oi, &ci) in o.iter_mut().zip(&xs[b * chunk..]) {
            *oi = run;
            run += ci;
        }
    });
    (out, acc, CpuCost::new(n as u64, log2c(n as u64)))
}

/// Inclusive prefix sums: `out[i] = Σ_{j<=i} xs[j]`.
pub fn inclusive_scan(xs: &[u64]) -> (Vec<u64>, u64, CpuCost) {
    let (mut out, total, cost) = exclusive_scan(xs);
    pool::par_chunks_mut(&mut out, SCAN_BLOCK, xs.len(), |b, o| {
        for (oi, &xi) in o.iter_mut().zip(&xs[b * SCAN_BLOCK..]) {
            *oi += xi;
        }
    });
    (out, total, cost)
}

/// Partition items with sizes `sizes` into consecutive groups of total size
/// at most `budget` (each group as full as possible; an item larger than
/// `budget` gets a group of its own — callers split such items beforehand
/// when the model requires it, as §5.2 does for oversized subranges).
/// Returns group boundaries as index ranges.
pub fn group_by_budget(sizes: &[u64], budget: u64) -> (Vec<std::ops::Range<usize>>, CpuCost) {
    assert!(budget > 0);
    let mut groups = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &s) in sizes.iter().enumerate() {
        if i > start && acc + s > budget {
            groups.push(start..i);
            start = i;
            acc = 0;
        }
        acc += s;
    }
    if start < sizes.len() {
        groups.push(start..sizes.len());
    }
    let n = sizes.len() as u64;
    (groups, CpuCost::new(n.max(1), log2c(n.max(1))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_scan_small() {
        let (out, total, _) = exclusive_scan(&[3, 1, 4, 1, 5]);
        assert_eq!(out, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn inclusive_scan_small() {
        let (out, total, _) = inclusive_scan(&[3, 1, 4, 1, 5]);
        assert_eq!(out, vec![3, 4, 8, 9, 14]);
        assert_eq!(total, 14);
    }

    #[test]
    fn scan_empty() {
        let (out, total, _) = exclusive_scan(&[]);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn scan_matches_sequential_on_large_input() {
        let xs: Vec<u64> = (0..100_000).map(|i| i % 17).collect();
        let (out, total, _) = exclusive_scan(&xs);
        let mut acc = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(out[i], acc, "mismatch at {i}");
            acc += x;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn grouping_respects_budget() {
        let sizes = vec![4, 4, 4, 4, 4];
        let (groups, _) = group_by_budget(&sizes, 8);
        assert_eq!(groups, vec![0..2, 2..4, 4..5]);
    }

    #[test]
    fn grouping_oversized_item_isolated() {
        let sizes = vec![2, 100, 2, 2];
        let (groups, _) = group_by_budget(&sizes, 8);
        assert_eq!(groups, vec![0..1, 1..2, 2..4]);
        // Every group except oversized singletons fits the budget.
        for g in &groups {
            let total: u64 = sizes[g.clone()].iter().sum();
            assert!(total <= 8 || g.len() == 1);
        }
    }

    #[test]
    fn grouping_empty() {
        let (groups, _) = group_by_budget(&[], 8);
        assert!(groups.is_empty());
    }

    #[test]
    fn grouping_exact_fit() {
        let (groups, _) = group_by_budget(&[8, 8], 8);
        assert_eq!(groups, vec![0..1, 1..2]);
    }
}
