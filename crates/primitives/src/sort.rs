//! Parallel sorting with work/depth charges.
//!
//! The paper's batch operations begin by sorting the batch on the CPU side
//! ("The keys in the batch are first sorted on the CPU side", §4.2), citing
//! binary-forking-model sorting [9] with `O(n log n)` work and `O(log n)`
//! whp depth. The execution here uses `pim-pool`'s parallel stable merge
//! sort ([`pim_runtime::pool`]), and charges the cited costs. Stability
//! matters for the runtime's determinism contract: a stable sort's output
//! permutation is canonical, so `PIM_THREADS=1` and `PIM_THREADS=N`
//! produce identical bytes even on key-tied inputs.

use pim_runtime::pool;

use crate::accounting::{log2c, CpuCost};

/// Parallel comparison sort: `O(n log n)` work, `O(log n)` depth whp.
pub fn par_sort<T: Ord + Copy + Send + Sync>(items: &mut [T]) -> CpuCost {
    pool::par_sort(items);
    sort_cost(items.len() as u64)
}

/// Parallel sort by key extraction.
pub fn par_sort_by_key<T, K, F>(items: &mut [T], key: F) -> CpuCost
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    pool::par_sort_by_key(items, key);
    sort_cost(items.len() as u64)
}

/// The work/depth charge of a comparison sort of `n` items.
pub fn sort_cost(n: u64) -> CpuCost {
    if n <= 1 {
        return CpuCost::new(n, 1);
    }
    CpuCost::new(n * log2c(n), log2c(n))
}

/// Check sortedness (used by debug assertions in the batch algorithms).
pub fn is_sorted<T: Ord>(items: &[T]) -> bool {
    items.windows(2).all(|w| w[0] <= w[1])
}

/// Merge two sorted sequences: `O(n+m)` work, `O(log(n+m))` depth.
pub fn par_merge<T: Ord + Send + Copy>(a: &[T], b: &[T]) -> (Vec<T>, CpuCost) {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    let n = out.len() as u64;
    (out, CpuCost::new(n.max(1), log2c(n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_charges() {
        let mut v = vec![5, 3, 8, 1, 9, 2, 7];
        let c = par_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3, 5, 7, 8, 9]);
        assert_eq!(c, CpuCost::new(7 * 3, 3));
    }

    #[test]
    fn sort_by_key_descending() {
        let mut v = vec![(1, 'a'), (3, 'b'), (2, 'c')];
        par_sort_by_key(&mut v, |&(k, _)| std::cmp::Reverse(k));
        assert_eq!(v, vec![(3, 'b'), (2, 'c'), (1, 'a')]);
    }

    #[test]
    fn large_parallel_sort_correct() {
        let mut v: Vec<u64> = (0..100_000).map(|i| (i * 2654435761) % 1_000_003).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn tiny_inputs() {
        let mut v: Vec<u32> = vec![];
        assert_eq!(par_sort(&mut v), CpuCost::new(0, 1));
        let mut v = vec![42];
        assert_eq!(par_sort(&mut v), CpuCost::new(1, 1));
        assert!(is_sorted(&v));
    }

    #[test]
    fn merge_is_sorted_and_complete() {
        let a = vec![1, 4, 6, 9];
        let b = vec![2, 3, 5, 10, 12];
        let (m, _) = par_merge(&a, &b);
        assert_eq!(m, vec![1, 2, 3, 4, 5, 6, 9, 10, 12]);
    }

    #[test]
    fn merge_with_empty() {
        let (m, _) = par_merge::<u32>(&[], &[1, 2]);
        assert_eq!(m, vec![1, 2]);
        let (m, _) = par_merge::<u32>(&[1, 2], &[]);
        assert_eq!(m, vec![1, 2]);
    }
}
