//! Work/depth accounting for CPU-side primitives.
//!
//! The PIM model analyses the CPU side with standard work–depth metrics
//! (§2.1): "CPU work (total work summed over all the CPU cores) and CPU
//! depth (sum of the work on the critical path)". Because the simulator's
//! CPU side runs on a real parallel executor (`pim_runtime::pool`), wall clock would
//! conflate machine effects with algorithmic cost, so every primitive
//! *charges* its asymptotic work and depth analytically, exactly as the
//! paper's proofs do (e.g. "Semisorting the batch takes `O(P log P)`
//! expected CPU work with `O(log P)` whp depth [9]").

use pim_runtime::Metrics;

/// An (work, depth) cost pair with sequential/parallel composition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuCost {
    /// Total operations across all CPU cores.
    pub work: u64,
    /// Operations on the critical path.
    pub depth: u64,
}

impl CpuCost {
    /// The zero cost.
    pub const ZERO: CpuCost = CpuCost { work: 0, depth: 0 };

    /// A cost pair.
    pub fn new(work: u64, depth: u64) -> Self {
        CpuCost { work, depth }
    }

    /// Sequential composition: work adds, depth adds.
    #[must_use]
    pub fn then(self, next: CpuCost) -> CpuCost {
        CpuCost {
            work: self.work + next.work,
            depth: self.depth + next.depth,
        }
    }

    /// Parallel composition: work adds, depth maxes.
    #[must_use]
    pub fn beside(self, other: CpuCost) -> CpuCost {
        CpuCost {
            work: self.work + other.work,
            depth: self.depth.max(other.depth),
        }
    }

    /// Charge this cost to a metrics record (sequential with what precedes).
    pub fn charge(self, metrics: &mut Metrics) {
        metrics.charge_cpu(self.work, self.depth);
    }
}

/// `ceil(log2 x)` clamped to ≥1; re-exported convenience for cost formulas.
pub fn log2c(x: u64) -> u64 {
    u64::from(pim_runtime::ceil_log2(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_composition_adds_depth() {
        let a = CpuCost::new(10, 3);
        let b = CpuCost::new(5, 4);
        assert_eq!(a.then(b), CpuCost::new(15, 7));
    }

    #[test]
    fn parallel_composition_maxes_depth() {
        let a = CpuCost::new(10, 3);
        let b = CpuCost::new(5, 4);
        assert_eq!(a.beside(b), CpuCost::new(15, 4));
    }

    #[test]
    fn charge_accumulates_into_metrics() {
        let mut m = Metrics::new();
        CpuCost::new(100, 10).charge(&mut m);
        CpuCost::new(50, 5).charge(&mut m);
        assert_eq!(m.cpu_work, 150);
        assert_eq!(m.cpu_depth, 15);
    }

    #[test]
    fn zero_is_identity() {
        let a = CpuCost::new(7, 2);
        assert_eq!(a.then(CpuCost::ZERO), a);
        assert_eq!(a.beside(CpuCost::ZERO), a);
    }
}
