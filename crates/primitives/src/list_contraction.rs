//! Parallel randomized list contraction (batched Delete, §4.4).
//!
//! Batched Delete must splice up to `P log² P` *consecutive* marked nodes
//! out of horizontal linked lists; doing each splice independently would
//! race on shared neighbours. The paper copies the marked nodes (plus the
//! first unmarked node on each side) into shared memory and runs an
//! efficient parallel list-contraction algorithm [9, 28] on the CPU side.
//!
//! This module implements the random-priority contraction of Shun et al.
//! [28]: every marked node draws a random priority; in each round, a marked
//! node splices itself out iff its priority is a local minimum among its
//! *currently adjacent* marked nodes. Two adjacent nodes can never both be
//! local minima, so each round's splice set is an independent set and can be
//! applied without conflicts; a constant fraction of nodes is expected to go
//! per round, giving `O(R)` work and `O(log R)` depth whp for `R` marked
//! nodes — the costs charged here.

use pim_runtime::pool;
use pim_runtime::Rng;

use crate::accounting::{log2c, CpuCost};

/// Sentinel for "no neighbour".
pub const NONE: usize = usize::MAX;

/// A doubly-linked list (or disjoint union of lists) over nodes `0..n`,
/// encoded as neighbour indices. `NONE` terminates a list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkedLists {
    /// `prev[i]`: left neighbour of node `i`.
    pub prev: Vec<usize>,
    /// `next[i]`: right neighbour of node `i`.
    pub next: Vec<usize>,
}

impl LinkedLists {
    /// A single chain `0 → 1 → … → n-1`.
    pub fn chain(n: usize) -> Self {
        LinkedLists {
            prev: (0..n).map(|i| if i == 0 { NONE } else { i - 1 }).collect(),
            next: (0..n)
                .map(|i| if i + 1 == n { NONE } else { i + 1 })
                .collect(),
        }
    }

    fn check(&self) {
        assert_eq!(self.prev.len(), self.next.len());
    }
}

/// Reusable working storage for [`contract_in`] — hold one per call site
/// and repeated contractions stop allocating.
#[derive(Debug, Default)]
pub struct ContractScratch {
    alive: Vec<usize>,
    priority: Vec<u32>,
    order: Vec<u32>,
    flags: Vec<bool>,
}

/// Splice every node with `removed[i] == true` out of its list, in parallel.
///
/// On return, `lists` links only the surviving nodes; removed nodes' own
/// `prev`/`next` entries are left in an unspecified state and must not be
/// read. Returns the contraction cost (`O(R)` work, `O(log R)` depth whp).
pub fn contract(lists: &mut LinkedLists, removed: &[bool], rng: &mut Rng) -> CpuCost {
    contract_in(lists, removed, rng, &mut ContractScratch::default())
}

/// [`contract`] with caller-provided working storage: identical splice
/// order, rng consumption, and cost — only the allocations differ.
pub fn contract_in(
    lists: &mut LinkedLists,
    removed: &[bool],
    rng: &mut Rng,
    scratch: &mut ContractScratch,
) -> CpuCost {
    lists.check();
    assert_eq!(removed.len(), lists.prev.len());
    let alive = &mut scratch.alive;
    alive.clear();
    alive.extend((0..removed.len()).filter(|&i| removed[i]));
    let r = alive.len();
    if r == 0 {
        return CpuCost::new(1, 1);
    }

    // Random priorities: a random permutation of 0..r scattered to nodes.
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..r as u32);
    rng.shuffle(order);
    let priority = &mut scratch.priority;
    priority.clear();
    priority.resize(removed.len(), u32::MAX);
    for (rank, &node) in alive.iter().enumerate() {
        priority[node] = order[rank];
    }

    let mut rounds = 0u64;
    while !alive.is_empty() {
        rounds += 1;
        // A node splices iff no adjacent *marked alive* node has a smaller
        // priority. (Unmarked neighbours never block.)
        let is_blocked = |me: usize, nb: usize| -> bool {
            nb != NONE && priority[nb] != u32::MAX && priority[nb] < priority[me]
        };
        // Local-minimum test in parallel (pure reads), then an O(|alive|)
        // sequential compaction that keeps the survivors in `alive` order.
        let flags = &mut scratch.flags;
        flags.clear();
        flags.resize(alive.len(), false);
        pool::par_for_each_mut(flags, alive.len(), |idx, f| {
            let i = alive[idx];
            *f = !is_blocked(i, lists.prev[i]) && !is_blocked(i, lists.next[i]);
        });

        debug_assert!(flags.iter().any(|&f| f), "contraction made no progress");
        // The splice set is independent: apply sequentially (cheap) —
        // correctness does not depend on order within the set.
        let mut w = 0;
        for idx in 0..alive.len() {
            let i = alive[idx];
            if flags[idx] {
                let (p, nx) = (lists.prev[i], lists.next[i]);
                if p != NONE {
                    lists.next[p] = nx;
                }
                if nx != NONE {
                    lists.prev[nx] = p;
                }
                priority[i] = u32::MAX; // no longer blocks anyone
            } else {
                alive[w] = i;
                w += 1;
            }
        }
        alive.truncate(w);
    }

    CpuCost::new(r as u64 * 2, log2c(r as u64).max(rounds))
}

/// Reference sequential splice (for differential testing).
pub fn contract_sequential(lists: &mut LinkedLists, removed: &[bool]) {
    for (i, &is_removed) in removed.iter().enumerate() {
        if !is_removed {
            continue;
        }
        let (p, nx) = (lists.prev[i], lists.next[i]);
        if p != NONE {
            lists.next[p] = nx;
        }
        if nx != NONE {
            lists.prev[nx] = p;
        }
    }
}

/// Extract the surviving chain starting at `head`, following `next`.
pub fn collect_chain(lists: &LinkedLists, head: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut cur = head;
    while cur != NONE {
        out.push(cur);
        cur = lists.next[cur];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surviving_links(lists: &LinkedLists, removed: &[bool], head: usize) -> Vec<usize> {
        // First surviving node from head, then follow next.
        let mut start = head;
        while start != NONE && removed[start] {
            start = lists.next[start];
        }
        if start == NONE {
            return vec![];
        }
        collect_chain(lists, start)
    }

    #[test]
    fn removes_isolated_nodes() {
        let mut l = LinkedLists::chain(5);
        let removed = vec![false, true, false, true, false];
        let mut rng = Rng::new(1);
        contract(&mut l, &removed, &mut rng);
        assert_eq!(collect_chain(&l, 0), vec![0, 2, 4]);
        assert_eq!(l.prev[4], 2);
        assert_eq!(l.prev[2], 0);
    }

    #[test]
    fn removes_long_run() {
        let n = 1000;
        let mut l = LinkedLists::chain(n);
        // Remove everything except the two endpoints.
        let removed: Vec<bool> = (0..n).map(|i| i != 0 && i != n - 1).collect();
        let mut rng = Rng::new(2);
        contract(&mut l, &removed, &mut rng);
        assert_eq!(collect_chain(&l, 0), vec![0, n - 1]);
        assert_eq!(l.prev[n - 1], 0);
    }

    #[test]
    fn removes_entire_chain() {
        let mut l = LinkedLists::chain(64);
        let removed = vec![true; 64];
        let mut rng = Rng::new(3);
        contract(&mut l, &removed, &mut rng);
        assert!(
            surviving_links(&l, &removed.iter().map(|_| true).collect::<Vec<_>>(), 0).is_empty()
        );
    }

    #[test]
    fn no_removals_is_noop() {
        let mut l = LinkedLists::chain(10);
        let orig = l.clone();
        let removed = vec![false; 10];
        let mut rng = Rng::new(4);
        contract(&mut l, &removed, &mut rng);
        assert_eq!(l, orig);
    }

    #[test]
    fn matches_sequential_reference_on_random_patterns() {
        for seed in 0..20u64 {
            let n = 257;
            let mut rng = Rng::new(seed);
            let removed: Vec<bool> = (0..n).map(|_| rng.coin()).collect();
            let mut par = LinkedLists::chain(n);
            let mut seq = LinkedLists::chain(n);
            contract(&mut par, &removed, &mut rng);
            contract_sequential(&mut seq, &removed);
            // Compare only via surviving nodes' links.
            for (i, &is_removed) in removed.iter().enumerate() {
                if !is_removed {
                    assert_eq!(par.prev[i], seq.prev[i], "prev mismatch at {i} seed {seed}");
                    assert_eq!(par.next[i], seq.next[i], "next mismatch at {i} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn multiple_disjoint_lists() {
        // Two chains: 0-1-2 and 3-4-5 (as one arena).
        let mut l = LinkedLists {
            prev: vec![NONE, 0, 1, NONE, 3, 4],
            next: vec![1, 2, NONE, 4, 5, NONE],
        };
        let removed = vec![false, true, false, true, true, false];
        let mut rng = Rng::new(5);
        contract(&mut l, &removed, &mut rng);
        assert_eq!(collect_chain(&l, 0), vec![0, 2]);
        assert_eq!(collect_chain(&l, 5), vec![5]);
        assert_eq!(l.prev[5], NONE);
    }

    #[test]
    fn cost_depth_is_logarithmic() {
        let n = 4096;
        let mut l = LinkedLists::chain(n);
        let removed = vec![true; n];
        let mut rng = Rng::new(6);
        let c = contract(&mut l, &removed, &mut rng);
        assert_eq!(c.work, 2 * n as u64);
        // Rounds should be close to log n whp, certainly below 4 log n.
        assert!(c.depth <= 4 * 12, "depth {} too large", c.depth);
    }
}
