//! Search-path bookkeeping for the pivot divide-and-conquer (§4.2).
//!
//! Stage 1 of batched Successor records, for every pivot, the *lower-part*
//! nodes on its search path. Because "joining all possible search paths
//! gives a directed tree" (§3.2, used by Lemma 4.2), two search paths share
//! exactly a prefix; the **start-node hint** for a key between two pivots is
//! the deepest node common to the two recorded paths:
//!
//! * no common lower-part node → start at the root;
//! * the paths share their final leaf → the answer is that leaf, no search
//!   needed;
//! * otherwise → start at the lowest common node.

use pim_runtime::Handle;

use crate::accounting::{log2c, CpuCost};

/// The start-node hint derived from two endpoint search paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hint {
    /// Paths share no lower-part node: start from the (replicated) root.
    Root,
    /// Paths share their leaf: the search is already answered by this leaf.
    SharedLeaf(Handle),
    /// Start the lower-part search from this node.
    Start(Handle),
}

/// A recorded lower-part search path, in visit order (shallow → leaf).
pub type SearchPath = Vec<Handle>;

/// Compute the hint for keys lying between the keys of `left` and `right`
/// (paths recorded by earlier pivot searches). Cost: `O(common prefix)`
/// work, `O(log)` depth (charged; the scan is short — `O(log P)` whp).
pub fn hint_between(left: &SearchPath, right: &SearchPath) -> (Hint, CpuCost) {
    let common = left
        .iter()
        .zip(right.iter())
        .take_while(|(a, b)| a == b)
        .count();
    let cost = CpuCost::new(
        (common as u64).max(1),
        log2c(left.len().max(right.len()).max(1) as u64),
    );
    if common == 0 {
        return (Hint::Root, cost);
    }
    // Shared leaf: both paths end at the same node, which is their last
    // common element.
    if common == left.len() && common == right.len() {
        return (Hint::SharedLeaf(left[common - 1]), cost);
    }
    (Hint::Start(left[common - 1]), cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(m: u32, s: u32) -> Handle {
        Handle::local(m, s)
    }

    #[test]
    fn disjoint_paths_give_root() {
        let a = vec![h(0, 1), h(1, 2)];
        let b = vec![h(2, 3), h(3, 4)];
        let (hint, _) = hint_between(&a, &b);
        assert_eq!(hint, Hint::Root);
    }

    #[test]
    fn shared_prefix_gives_deepest_common() {
        let a = vec![h(0, 1), h(1, 2), h(2, 5)];
        let b = vec![h(0, 1), h(1, 2), h(3, 7), h(4, 8)];
        let (hint, _) = hint_between(&a, &b);
        assert_eq!(hint, Hint::Start(h(1, 2)));
    }

    #[test]
    fn identical_paths_share_leaf() {
        let a = vec![h(0, 1), h(1, 2)];
        let (hint, _) = hint_between(&a, &a.clone());
        assert_eq!(hint, Hint::SharedLeaf(h(1, 2)));
    }

    #[test]
    fn one_path_prefix_of_other_is_start_not_leaf() {
        let a = vec![h(0, 1), h(1, 2)];
        let b = vec![h(0, 1), h(1, 2), h(3, 7)];
        let (hint, _) = hint_between(&a, &b);
        assert_eq!(hint, Hint::Start(h(1, 2)));
    }

    #[test]
    fn empty_paths_give_root() {
        let (hint, _) = hint_between(&vec![], &vec![h(0, 1)]);
        assert_eq!(hint, Hint::Root);
        let (hint, _) = hint_between(&vec![], &vec![]);
        assert_eq!(hint, Hint::Root);
    }
}
