//! Property-based tests of the CPU-side parallel primitives.

use proptest::prelude::*;

use pim_primitives::list_contraction::{contract, contract_sequential, LinkedLists, NONE};
use pim_primitives::prefix::{exclusive_scan, group_by_budget, inclusive_scan};
use pim_primitives::semisort::{dedup_by_key, semisort_by_key};
use pim_primitives::sort::{par_merge, par_sort};
use pim_runtime::Rng;

proptest! {
    #[test]
    fn par_sort_matches_std(mut xs in prop::collection::vec(any::<i64>(), 0..2000)) {
        let mut expect = xs.clone();
        expect.sort_unstable();
        par_sort(&mut xs);
        prop_assert_eq!(xs, expect);
    }

    #[test]
    fn par_merge_matches_concat_sort(
        mut a in prop::collection::vec(any::<i32>(), 0..500),
        mut b in prop::collection::vec(any::<i32>(), 0..500),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let (m, _) = par_merge(&a, &b);
        let mut expect = [a, b].concat();
        expect.sort_unstable();
        prop_assert_eq!(m, expect);
    }

    #[test]
    fn scans_match_reference(xs in prop::collection::vec(0u64..1000, 0..3000)) {
        let (ex, total, _) = exclusive_scan(&xs);
        let (inc, total2, _) = inclusive_scan(&xs);
        prop_assert_eq!(total, xs.iter().sum::<u64>());
        prop_assert_eq!(total, total2);
        let mut acc = 0;
        for i in 0..xs.len() {
            prop_assert_eq!(ex[i], acc);
            acc += xs[i];
            prop_assert_eq!(inc[i], acc);
        }
    }

    #[test]
    fn grouping_covers_everything_in_order(
        sizes in prop::collection::vec(0u64..50, 0..200),
        budget in 1u64..100,
    ) {
        let (groups, _) = group_by_budget(&sizes, budget);
        // Groups partition 0..n in order.
        let mut next = 0;
        for g in &groups {
            prop_assert_eq!(g.start, next);
            prop_assert!(g.end > g.start);
            next = g.end;
            let total: u64 = sizes[g.clone()].iter().sum();
            prop_assert!(total <= budget || g.len() == 1);
        }
        prop_assert_eq!(next, sizes.len());
    }

    #[test]
    fn semisort_groups_and_preserves(xs in prop::collection::vec(0u64..40, 0..800)) {
        let (out, _) = semisort_by_key(xs.clone(), 9, |&x| x);
        // Multiset preserved.
        let mut a = out.clone();
        let mut b = xs;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(&a, &b);
        // Equal keys contiguous.
        let mut seen = std::collections::HashSet::new();
        let mut prev = None;
        for &x in &out {
            if prev != Some(x) {
                prop_assert!(seen.insert(x), "key {} split into two runs", x);
            }
            prev = Some(x);
        }
    }

    #[test]
    fn dedup_keeps_exactly_first_occurrences(
        xs in prop::collection::vec((0u64..30, any::<u32>()), 0..400),
    ) {
        let (out, _) = dedup_by_key(xs.clone(), 11, |&(k, _)| k);
        // Reference: first occurrence of each key, in input order.
        let mut seen = std::collections::HashSet::new();
        let expect: Vec<(u64, u32)> = xs
            .into_iter()
            .filter(|&(k, _)| seen.insert(k))
            .collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn contraction_matches_sequential(
        seed in any::<u64>(),
        removed in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let n = removed.len();
        let mut par = LinkedLists::chain(n);
        let mut seq = LinkedLists::chain(n);
        let mut rng = Rng::new(seed);
        contract(&mut par, &removed, &mut rng);
        contract_sequential(&mut seq, &removed);
        for (i, &is_removed) in removed.iter().enumerate() {
            if !is_removed {
                prop_assert_eq!(par.prev[i], seq.prev[i]);
                prop_assert_eq!(par.next[i], seq.next[i]);
            }
        }
    }

    #[test]
    fn contraction_survivors_form_a_chain(
        seed in any::<u64>(),
        removed in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        let n = removed.len();
        let mut lists = LinkedLists::chain(n);
        let mut rng = Rng::new(seed);
        contract(&mut lists, &removed, &mut rng);
        let survivors: Vec<usize> = (0..n).filter(|&i| !removed[i]).collect();
        // Walk from the first survivor; must visit exactly the survivors
        // in order.
        if let Some(&first) = survivors.first() {
            let mut walked = vec![];
            let mut cur = first;
            while cur != NONE {
                walked.push(cur);
                cur = lists.next[cur];
            }
            prop_assert_eq!(walked, survivors);
        }
    }
}
