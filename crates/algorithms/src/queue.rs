//! A PIM-balanced batch-parallel FIFO queue.
//!
//! Choe et al. [11] (discussed in §2.2) studied FIFO queues on PIM systems
//! with one queue per module; like their range-partitioned skip list, a
//! single hot queue serialises. Rebuilt on the PIM model's terms: elements
//! get global sequence numbers and element `s` lives on module `s mod P` —
//! round-robin striping. Both batch operations are then *perfectly*
//! PIM-balanced by construction:
//!
//! * `batch_enqueue` of `B` values touches every module `⌈B/P⌉` times —
//!   an `h = Θ(B/P)` relation, one round;
//! * `batch_dequeue` of `B` values likewise — FIFO order is free because
//!   the CPU side holds the head/tail counters and reassembles replies by
//!   sequence number.
//!
//! There is no adversary here at all: the structure's layout depends only
//! on arrival order, which the adversary controls *anyway*; striping makes
//! every possible batch balanced. This is the simplest non-trivial
//! demonstration that the model rewards thinking about placement.

use pim_runtime::{Metrics, ModuleCtx, ModuleId, PimModule, PimSystem};

/// Tasks of the striped FIFO queue.
#[derive(Debug, Clone)]
pub enum QueueTask {
    /// Store `value` under global sequence number `seq`.
    Push {
        /// Global sequence number.
        seq: u64,
        /// The element.
        value: u64,
    },
    /// Remove and return the element with sequence number `seq`.
    Pop {
        /// Batch-local id.
        op: u32,
        /// Global sequence number.
        seq: u64,
    },
}

/// Replies of the striped FIFO queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueReply {
    /// A popped element.
    Popped {
        /// Batch-local id.
        op: u32,
        /// The element.
        value: u64,
    },
}

/// One module's stripe: a contiguous run of sequence numbers, stored as a
/// ring over a `VecDeque` (sequence numbers arrive and leave in order
/// within a module).
pub struct QueueModule {
    id: ModuleId,
    p: u32,
    /// Sequence number of `stripe[0]` (the oldest element held here).
    base_seq: u64,
    stripe: std::collections::VecDeque<u64>,
}

impl PimModule for QueueModule {
    type Task = QueueTask;
    type Reply = QueueReply;

    fn execute(&mut self, task: QueueTask, ctx: &mut ModuleCtx<'_, QueueTask, QueueReply>) {
        ctx.work(1);
        match task {
            QueueTask::Push { seq, value } => {
                debug_assert_eq!(seq % u64::from(self.p), u64::from(self.id));
                if self.stripe.is_empty() {
                    self.base_seq = seq;
                }
                debug_assert_eq!(
                    seq,
                    self.base_seq + self.stripe.len() as u64 * u64::from(self.p),
                    "out-of-order push within a stripe"
                );
                self.stripe.push_back(value);
            }
            QueueTask::Pop { op, seq } => {
                debug_assert_eq!(seq, self.base_seq, "pops must drain the stripe in order");
                let value = self.stripe.pop_front().expect("pop from empty stripe");
                self.base_seq += u64::from(self.p);
                ctx.reply(QueueReply::Popped { op, value });
            }
        }
    }

    fn local_words(&self) -> u64 {
        self.stripe.len() as u64 + 2
    }
}

/// The CPU-side driver of the striped FIFO queue.
///
/// ```
/// use pim_algorithms::PimQueue;
///
/// let mut q = PimQueue::new(4);
/// q.batch_enqueue(&[10, 20, 30]);
/// assert_eq!(q.batch_dequeue(2), vec![10, 20]);
/// assert_eq!(q.len(), 1);
/// ```
pub struct PimQueue {
    sys: PimSystem<QueueModule>,
    head: u64,
    tail: u64,
}

impl PimQueue {
    /// An empty queue on `p` modules.
    pub fn new(p: u32) -> Self {
        PimQueue {
            sys: PimSystem::new(p, |id| QueueModule {
                id,
                p,
                base_seq: 0,
                stripe: Default::default(),
            }),
            head: 0,
            tail: 0,
        }
    }

    /// Number of queued elements.
    pub fn len(&self) -> u64 {
        self.tail - self.head
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Machine metrics snapshot.
    pub fn metrics(&self) -> Metrics {
        self.sys.metrics()
    }

    /// Per-module space (for balance checks).
    pub fn space_per_module(&self) -> Vec<u64> {
        self.sys.local_words_per_module()
    }

    /// Enqueue a batch (one bulk-synchronous round, `h = ⌈B/P⌉`).
    pub fn batch_enqueue(&mut self, values: &[u64]) {
        let p = u64::from(self.sys.p());
        for &v in values {
            let seq = self.tail;
            self.tail += 1;
            self.sys
                .send((seq % p) as ModuleId, QueueTask::Push { seq, value: v });
        }
        self.sys.run_to_quiescence();
    }

    /// Dequeue up to `count` elements, in FIFO order (one round).
    pub fn batch_dequeue(&mut self, count: usize) -> Vec<u64> {
        let take = (count as u64).min(self.len());
        let p = u64::from(self.sys.p());
        for op in 0..take {
            let seq = self.head;
            self.head += 1;
            self.sys
                .send((seq % p) as ModuleId, QueueTask::Pop { op: op as u32, seq });
        }
        let replies = self.sys.run_to_quiescence();
        let mut out = vec![0u64; take as usize];
        for r in replies {
            let QueueReply::Popped { op, value } = r;
            out[op as usize] = value;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_across_batches() {
        let mut q = PimQueue::new(4);
        q.batch_enqueue(&[1, 2, 3, 4, 5]);
        q.batch_enqueue(&[6, 7]);
        assert_eq!(q.len(), 7);
        assert_eq!(q.batch_dequeue(3), vec![1, 2, 3]);
        q.batch_enqueue(&[8]);
        assert_eq!(q.batch_dequeue(10), vec![4, 5, 6, 7, 8]);
        assert!(q.is_empty());
    }

    #[test]
    fn dequeue_from_empty_is_empty() {
        let mut q = PimQueue::new(2);
        assert!(q.batch_dequeue(5).is_empty());
        q.batch_enqueue(&[1]);
        assert_eq!(q.batch_dequeue(5), vec![1]);
        assert!(q.batch_dequeue(5).is_empty());
    }

    #[test]
    fn batches_are_pim_balanced_by_construction() {
        let p = 16u32;
        let mut q = PimQueue::new(p);
        let batch: Vec<u64> = (0..1600).collect();
        let m0 = q.metrics();
        q.batch_enqueue(&batch);
        let d = q.metrics() - m0;
        assert_eq!(d.rounds, 1);
        // h = B/P exactly.
        assert_eq!(d.io_time, 1600 / u64::from(p));
        let m0 = q.metrics();
        let out = q.batch_dequeue(1600);
        let d = q.metrics() - m0;
        assert_eq!(out, batch);
        // Pops: B/P in + B/P replies per module.
        assert_eq!(d.io_time, 2 * 1600 / u64::from(p));
    }

    #[test]
    fn space_is_striped_evenly() {
        let mut q = PimQueue::new(8);
        q.batch_enqueue(&(0..800).collect::<Vec<u64>>());
        let words = q.space_per_module();
        let max = *words.iter().max().unwrap();
        let min = *words.iter().min().unwrap();
        assert!(max - min <= 1 + 2, "stripe imbalance: {words:?}");
    }

    #[test]
    fn single_module_queue() {
        let mut q = PimQueue::new(1);
        q.batch_enqueue(&[9, 8, 7]);
        assert_eq!(q.batch_dequeue(2), vec![9, 8]);
        assert_eq!(q.batch_dequeue(2), vec![7]);
    }

    #[test]
    fn interleaved_partial_drains() {
        let mut q = PimQueue::new(3);
        let mut expect = std::collections::VecDeque::new();
        let mut next = 0u64;
        for round in 0..20 {
            let n = (round * 7) % 11 + 1;
            let vals: Vec<u64> = (0..n).map(|i| next + i).collect();
            next += n;
            q.batch_enqueue(&vals);
            expect.extend(vals);
            let k = ((round * 5) % 13) as usize;
            let got = q.batch_dequeue(k);
            let want: Vec<u64> = (0..got.len())
                .map(|_| expect.pop_front().unwrap())
                .collect();
            assert_eq!(got, want);
        }
        assert_eq!(q.len(), expect.len() as u64);
    }
}
