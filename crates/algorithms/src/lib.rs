//! # pim-algorithms — further algorithms on the PIM model
//!
//! The paper closes with "Future work includes designing other algorithms
//! for the PIM model". This crate carries two such designs, both built on
//! the same simulated machine and metered in the same five cost metrics:
//!
//! * [`queue::PimQueue`] — a batch-parallel FIFO queue, striping elements
//!   round-robin by sequence number: both batch operations are perfectly
//!   PIM-balanced by construction (contrast with the per-module queues of
//!   Choe et al. [11], which serialise on a hot queue);
//! * [`hashmap::PimHashMap`] — a batch-parallel unordered map: the §4.1
//!   hash-shortcut recipe (secret placement hash + per-module de-amortized
//!   cuckoo tables + semisort dedup) as a standalone structure.
#![warn(missing_docs)]

pub mod hashmap;
pub mod queue;

pub use hashmap::PimHashMap;
pub use queue::PimQueue;
