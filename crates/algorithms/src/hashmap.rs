//! A PIM-balanced batch-parallel unordered map.
//!
//! The §4.1 recipe, lifted out of the skip list into a standalone
//! structure: keys are placed by a secret hash, every module keeps a
//! de-amortized cuckoo table, and batches are semisort-deduplicated on the
//! CPU side before routing — which is the entire defence against the
//! duplicate-flood adversary. With `B = P log P` distinct keys, Lemma 2.1
//! gives `O(log P)` IO and PIM time whp.
//!
//! No ordered operations: that is precisely the gap the paper's skip list
//! fills. This map exists (a) as the simplest complete PIM-balanced
//! structure, and (b) to measure how much the skip list's ordered
//! machinery costs on point-only workloads.

use pim_hashtable::DeamortizedMap;
use pim_primitives::semisort::dedup_by_key;
use pim_runtime::hashfn;
use pim_runtime::{Metrics, ModuleCtx, ModuleId, PimModule, PimSystem};

/// Tasks of the unordered map.
#[derive(Debug, Clone)]
pub enum MapTask {
    /// Lookup.
    Get {
        /// Batch-local id.
        op: u32,
        /// Key.
        key: i64,
    },
    /// Insert-or-update.
    Upsert {
        /// Batch-local id.
        op: u32,
        /// Key.
        key: i64,
        /// Value.
        value: u64,
    },
    /// Remove.
    Remove {
        /// Batch-local id.
        op: u32,
        /// Key.
        key: i64,
    },
}

/// Replies of the unordered map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapReply {
    /// Get result.
    Got {
        /// Batch-local id.
        op: u32,
        /// Value if present.
        value: Option<u64>,
    },
    /// Upsert result.
    Upserted {
        /// Batch-local id.
        op: u32,
        /// Whether the key was new.
        inserted: bool,
    },
    /// Remove result.
    Removed {
        /// Batch-local id.
        op: u32,
        /// Whether the key was present.
        found: bool,
    },
}

/// One module: a de-amortized cuckoo table over its hash share.
pub struct MapModule {
    table: DeamortizedMap,
}

impl PimModule for MapModule {
    type Task = MapTask;
    type Reply = MapReply;

    fn execute(&mut self, task: MapTask, ctx: &mut ModuleCtx<'_, MapTask, MapReply>) {
        match task {
            MapTask::Get { op, key } => {
                let value = self.table.get(key);
                ctx.work(1 + self.table.last_op_work);
                ctx.reply(MapReply::Got { op, value });
            }
            MapTask::Upsert { op, key, value } => {
                let inserted = self.table.insert(key, value).is_none();
                ctx.work(1 + self.table.last_op_work);
                ctx.reply(MapReply::Upserted { op, inserted });
            }
            MapTask::Remove { op, key } => {
                let found = self.table.remove(key).is_some();
                ctx.work(1 + self.table.last_op_work);
                ctx.reply(MapReply::Removed { op, found });
            }
        }
    }

    fn local_words(&self) -> u64 {
        self.table.words()
    }
}

/// The CPU-side driver of the PIM-balanced unordered map.
///
/// ```
/// use pim_algorithms::PimHashMap;
///
/// let mut m = PimHashMap::new(4, 42);
/// m.batch_upsert(&[(1, 10), (2, 20)]);
/// assert_eq!(m.batch_get(&[2, 3]), vec![Some(20), None]);
/// assert_eq!(m.batch_remove(&[1]), vec![true]);
/// ```
pub struct PimHashMap {
    sys: PimSystem<MapModule>,
    seed: u64,
    len: u64,
}

impl PimHashMap {
    /// An empty map on `p` modules with a secret placement seed.
    pub fn new(p: u32, seed: u64) -> Self {
        PimHashMap {
            sys: PimSystem::new(p, |id| MapModule {
                table: DeamortizedMap::new(64, hashfn::hash2(seed, 0x4D, u64::from(id))),
            }),
            seed,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Machine metrics snapshot.
    pub fn metrics(&self) -> Metrics {
        self.sys.metrics()
    }

    /// Per-module space.
    pub fn space_per_module(&self) -> Vec<u64> {
        self.sys.local_words_per_module()
    }

    fn module_of(&self, key: i64) -> ModuleId {
        hashfn::module_of(self.seed, key, 0, self.sys.p())
    }

    /// Batched Get with duplicate removal (§4.1 pattern).
    pub fn batch_get(&mut self, keys: &[i64]) -> Vec<Option<u64>> {
        let (uniq, cost) = dedup_by_key(keys.to_vec(), self.seed ^ 0x61, |&k| k as u64);
        cost.charge(self.sys.metrics_mut());
        for (op, &key) in uniq.iter().enumerate() {
            let m = self.module_of(key);
            self.sys.send(m, MapTask::Get { op: op as u32, key });
        }
        let mut by_key = std::collections::HashMap::with_capacity(uniq.len());
        for r in self.sys.run_to_quiescence() {
            if let MapReply::Got { op, value } = r {
                by_key.insert(uniq[op as usize], value);
            }
        }
        keys.iter().map(|k| by_key[k]).collect()
    }

    /// Batched Upsert (first-wins dedup); returns whether each pair's key
    /// was newly inserted.
    pub fn batch_upsert(&mut self, pairs: &[(i64, u64)]) -> Vec<bool> {
        let (uniq, cost) = dedup_by_key(pairs.to_vec(), self.seed ^ 0x62, |&(k, _)| k as u64);
        cost.charge(self.sys.metrics_mut());
        for (op, &(key, value)) in uniq.iter().enumerate() {
            let m = self.module_of(key);
            self.sys.send(
                m,
                MapTask::Upsert {
                    op: op as u32,
                    key,
                    value,
                },
            );
        }
        let mut by_key = std::collections::HashMap::with_capacity(uniq.len());
        for r in self.sys.run_to_quiescence() {
            if let MapReply::Upserted { op, inserted } = r {
                if inserted {
                    self.len += 1;
                }
                by_key.insert(uniq[op as usize].0, inserted);
            }
        }
        pairs.iter().map(|(k, _)| by_key[k]).collect()
    }

    /// Batched Remove (deduplicated); returns whether each key was present.
    pub fn batch_remove(&mut self, keys: &[i64]) -> Vec<bool> {
        let (uniq, cost) = dedup_by_key(keys.to_vec(), self.seed ^ 0x63, |&k| k as u64);
        cost.charge(self.sys.metrics_mut());
        for (op, &key) in uniq.iter().enumerate() {
            let m = self.module_of(key);
            self.sys.send(m, MapTask::Remove { op: op as u32, key });
        }
        let mut by_key = std::collections::HashMap::with_capacity(uniq.len());
        for r in self.sys.run_to_quiescence() {
            if let MapReply::Removed { op, found } = r {
                if found {
                    self.len -= 1;
                }
                by_key.insert(uniq[op as usize], found);
            }
        }
        keys.iter().map(|k| by_key[k]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_against_hashmap() {
        let mut m = PimHashMap::new(8, 7);
        let mut oracle = std::collections::HashMap::new();
        let pairs: Vec<(i64, u64)> = (0..500).map(|i| ((i * 13) % 300, i as u64)).collect();
        m.batch_upsert(&pairs);
        let mut seen = std::collections::HashSet::new();
        for &(k, v) in &pairs {
            if seen.insert(k) {
                oracle.insert(k, v);
            }
        }
        assert_eq!(m.len(), oracle.len() as u64);
        let keys: Vec<i64> = (0..320).collect();
        let got = m.batch_get(&keys);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(got[i], oracle.get(k).copied(), "get({k})");
        }
        let removed = m.batch_remove(&keys);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(removed[i], oracle.contains_key(k));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_flood_stays_balanced() {
        let p = 16u32;
        let mut m = PimHashMap::new(p, 9);
        m.batch_upsert(&[(42, 1)]);
        let flood = vec![42i64; 2000];
        let m0 = m.metrics();
        let got = m.batch_get(&flood);
        let d = m.metrics() - m0;
        assert!(got.iter().all(|&v| v == Some(1)));
        // Dedup collapses the flood to one message each way.
        assert!(d.io_time <= 4, "flood IO {}", d.io_time);
    }

    #[test]
    fn uniform_batch_is_pim_balanced() {
        let p = 32u32;
        let mut m = PimHashMap::new(p, 11);
        let pairs: Vec<(i64, u64)> = (0..3200).map(|i| (i, i as u64)).collect();
        let m0 = m.metrics();
        m.batch_upsert(&pairs);
        let d = m.metrics() - m0;
        let ratio = d.io_time as f64 / (d.total_messages as f64 / f64::from(p));
        assert!(ratio < 2.0, "imbalance {ratio}");
    }

    #[test]
    fn upsert_existing_reports_not_inserted() {
        let mut m = PimHashMap::new(4, 13);
        assert_eq!(m.batch_upsert(&[(1, 10)]), vec![true]);
        assert_eq!(m.batch_upsert(&[(1, 20)]), vec![false]);
        assert_eq!(m.batch_get(&[1]), vec![Some(20)]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn space_spreads_across_modules() {
        let p = 16u32;
        let mut m = PimHashMap::new(p, 15);
        let pairs: Vec<(i64, u64)> = (0..16_000).map(|i| (i, 0)).collect();
        m.batch_upsert(&pairs);
        let words = m.space_per_module();
        let max = *words.iter().max().unwrap() as f64;
        let mean = words.iter().sum::<u64>() as f64 / f64::from(p);
        assert!(max / mean < 2.0, "space imbalance: {words:?}");
    }
}
