//! Property-based differential testing of the further PIM-model
//! algorithms: the striped FIFO queue vs `VecDeque`, the unordered map vs
//! `HashMap`.

use std::collections::{HashMap, VecDeque};

use proptest::prelude::*;

use pim_algorithms::{PimHashMap, PimQueue};

#[derive(Debug, Clone)]
enum QOp {
    Enqueue(Vec<u64>),
    Dequeue(usize),
}

fn qop() -> impl Strategy<Value = QOp> {
    prop_oneof![
        2 => prop::collection::vec(any::<u64>(), 0..50).prop_map(QOp::Enqueue),
        1 => (0usize..80).prop_map(QOp::Dequeue),
    ]
}

#[derive(Debug, Clone)]
enum MOp {
    Upsert(Vec<(i64, u64)>),
    Remove(Vec<i64>),
    Get(Vec<i64>),
}

fn mop() -> impl Strategy<Value = MOp> {
    let key = -30i64..60;
    prop_oneof![
        3 => prop::collection::vec((key.clone(), any::<u64>()), 0..40).prop_map(MOp::Upsert),
        1 => prop::collection::vec(key.clone(), 0..20).prop_map(MOp::Remove),
        2 => prop::collection::vec(key, 0..30).prop_map(MOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn queue_matches_vecdeque(
        p in 1u32..9,
        ops in prop::collection::vec(qop(), 1..30),
    ) {
        let mut q = PimQueue::new(p);
        let mut oracle: VecDeque<u64> = VecDeque::new();
        for op in &ops {
            match op {
                QOp::Enqueue(vals) => {
                    q.batch_enqueue(vals);
                    oracle.extend(vals.iter().copied());
                }
                QOp::Dequeue(k) => {
                    let got = q.batch_dequeue(*k);
                    let want: Vec<u64> = (0..got.len())
                        .map(|_| oracle.pop_front().expect("oracle shorter than queue"))
                        .collect();
                    prop_assert_eq!(&got, &want);
                    prop_assert!(got.len() == *k || oracle.is_empty());
                }
            }
            prop_assert_eq!(q.len(), oracle.len() as u64);
        }
    }

    #[test]
    fn map_matches_hashmap(
        p in 1u32..9,
        seed in any::<u64>(),
        ops in prop::collection::vec(mop(), 1..25),
    ) {
        let mut m = PimHashMap::new(p, seed);
        let mut oracle: HashMap<i64, u64> = HashMap::new();
        for op in &ops {
            match op {
                MOp::Upsert(pairs) => {
                    let res = m.batch_upsert(pairs);
                    let mut seen = std::collections::HashSet::new();
                    // first-wins within the batch
                    let mut inserted_of = HashMap::new();
                    for &(k, v) in pairs {
                        if seen.insert(k) {
                            inserted_of.insert(k, oracle.insert(k, v).is_none());
                        }
                    }
                    for (i, &(k, _)) in pairs.iter().enumerate() {
                        prop_assert_eq!(res[i], inserted_of[&k], "upsert({})", k);
                    }
                }
                MOp::Remove(keys) => {
                    let res = m.batch_remove(keys);
                    let mut removed = std::collections::HashSet::new();
                    for (i, k) in keys.iter().enumerate() {
                        let expect = oracle.remove(k).is_some() || removed.contains(k);
                        prop_assert_eq!(res[i], expect, "remove({})", k);
                        if expect {
                            removed.insert(*k);
                        }
                    }
                }
                MOp::Get(keys) => {
                    let res = m.batch_get(keys);
                    for (i, k) in keys.iter().enumerate() {
                        prop_assert_eq!(res[i], oracle.get(k).copied(), "get({})", k);
                    }
                }
            }
            prop_assert_eq!(m.len(), oracle.len() as u64);
        }
    }
}
