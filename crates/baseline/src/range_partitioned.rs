//! The range-partitioned baseline (Choe et al. [11], Liu et al. [19]).
//!
//! Keys are partitioned by `P` disjoint key ranges, one per PIM module;
//! each module keeps a conventional sequential skip list of its partition.
//! Point operations route to the owning module and execute locally —
//! exactly one message each, `O(log(n/P))` local work.
//!
//! Under uniform keys this is excellent (the paper concedes as much), but
//! the whole point of §2.2/§3.1 is its failure mode: a batch confined to
//! one partition serialises on one module — per-round `h` and PIM time
//! grow linearly in the batch size while the PIM-balanced structure stays
//! polylogarithmic. The `baseline_showdown` experiment measures exactly
//! this.

use pim_runtime::{Metrics, ModuleCtx, ModuleId, PimModule, PimSystem};

/// Tasks of the range-partitioned structure.
#[derive(Debug, Clone)]
pub enum RpTask {
    /// Point lookup.
    Get {
        /// Operation id.
        op: u32,
        /// Key.
        key: i64,
    },
    /// Insert-or-update.
    Upsert {
        /// Operation id.
        op: u32,
        /// Key.
        key: i64,
        /// Value.
        value: u64,
    },
    /// Remove.
    Delete {
        /// Operation id.
        op: u32,
        /// Key.
        key: i64,
    },
    /// Smallest resident key `≥ key`; forwards to the next partition when
    /// the local partition has nothing at or after `key`.
    Successor {
        /// Operation id.
        op: u32,
        /// Key.
        key: i64,
    },
    /// Collect pairs in `[lo, hi]` from this partition.
    Range {
        /// Operation id.
        op: u32,
        /// Inclusive bounds.
        lo: i64,
        /// Inclusive bounds.
        hi: i64,
    },
}

/// Replies of the range-partitioned structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpReply {
    /// Get result.
    Got {
        /// Operation id.
        op: u32,
        /// Value if present.
        value: Option<u64>,
    },
    /// Upsert result.
    Upserted {
        /// Operation id.
        op: u32,
        /// Whether a new key was created.
        inserted: bool,
    },
    /// Delete result.
    Deleted {
        /// Operation id.
        op: u32,
        /// Whether the key was present.
        found: bool,
    },
    /// Successor result.
    Succ {
        /// Operation id.
        op: u32,
        /// The successor entry, if any.
        entry: Option<(i64, u64)>,
    },
    /// One pair of a range result.
    RangeItem {
        /// Operation id.
        op: u32,
        /// Key.
        key: i64,
        /// Value.
        value: u64,
    },
}

/// One partition: a sequential skip list plus the partition topology.
pub struct RpModule {
    id: ModuleId,
    p: u32,
    list: crate::local_skiplist::LocalSkipList,
}

impl PimModule for RpModule {
    type Task = RpTask;
    type Reply = RpReply;

    fn execute(&mut self, task: RpTask, ctx: &mut ModuleCtx<'_, RpTask, RpReply>) {
        match task {
            RpTask::Get { op, key } => {
                let (value, w) = self.list.get(key);
                ctx.work(w);
                ctx.reply(RpReply::Got { op, value });
            }
            RpTask::Upsert { op, key, value } => {
                let (inserted, w) = self.list.upsert(key, value);
                ctx.work(w);
                ctx.reply(RpReply::Upserted { op, inserted });
            }
            RpTask::Delete { op, key } => {
                let (found, w) = self.list.delete(key);
                ctx.work(w);
                ctx.reply(RpReply::Deleted { op, found });
            }
            RpTask::Successor { op, key } => {
                let (entry, w) = self.list.successor(key);
                ctx.work(w);
                match entry {
                    Some(e) => ctx.reply(RpReply::Succ { op, entry: Some(e) }),
                    None => {
                        // Nothing at/after `key` here: forward to the next
                        // partition (or report None at the last one).
                        if self.id + 1 < self.p {
                            ctx.send(self.id + 1, RpTask::Successor { op, key });
                        } else {
                            ctx.reply(RpReply::Succ { op, entry: None });
                        }
                    }
                }
            }
            RpTask::Range { op, lo, hi } => {
                let mut out = Vec::new();
                let w = self.list.range_collect(lo, hi, &mut out);
                ctx.work(w);
                for (key, value) in out {
                    ctx.reply(RpReply::RangeItem { op, key, value });
                }
            }
        }
    }

    fn local_words(&self) -> u64 {
        self.list.words()
    }
}

/// The CPU-side driver of the range-partitioned baseline.
pub struct RangePartitionedList {
    sys: PimSystem<RpModule>,
    /// Partition boundaries: partition `i` owns `[boundaries[i],
    /// boundaries[i+1])`.
    boundaries: Vec<i64>,
    len: u64,
}

impl RangePartitionedList {
    /// Build over `p` modules, statically partitioning the key domain
    /// `[lo, hi]` into `p` equal ranges (the static variant of [11, 19];
    /// the paper's critique applies to dynamic migration as well, since
    /// an adversary confines every batch to one *current* partition).
    pub fn new(p: u32, lo: i64, hi: i64, seed: u64) -> Self {
        assert!(p >= 1 && lo < hi);
        let width = ((hi - lo) / p as i64).max(1);
        let boundaries: Vec<i64> = (0..=p as i64)
            .map(|i| {
                if i == p as i64 {
                    i64::MAX
                } else {
                    lo + i * width
                }
            })
            .collect();
        let sys = PimSystem::new(p, |id| RpModule {
            id,
            p,
            list: crate::local_skiplist::LocalSkipList::new(pim_runtime::hashfn::hash2(
                seed,
                0xB45E,
                u64::from(id),
            )),
        });
        RangePartitionedList {
            sys,
            boundaries,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Is the structure empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Machine metrics snapshot.
    pub fn metrics(&self) -> Metrics {
        self.sys.metrics()
    }

    /// Local-memory words per module.
    pub fn space_per_module(&self) -> Vec<u64> {
        self.sys.local_words_per_module()
    }

    fn partition_of(&self, key: i64) -> ModuleId {
        let i = self.boundaries.partition_point(|&b| b <= key);
        (i.saturating_sub(1)) as ModuleId
    }

    /// Batched Get (routed by partition; no dedup — the published
    /// baselines have none, which is part of what the comparison shows).
    pub fn batch_get(&mut self, keys: &[i64]) -> Vec<Option<u64>> {
        for (op, &key) in keys.iter().enumerate() {
            let m = self.partition_of(key);
            self.sys.send(m, RpTask::Get { op: op as u32, key });
        }
        let mut out = vec![None; keys.len()];
        for r in self.sys.run_to_quiescence() {
            if let RpReply::Got { op, value } = r {
                out[op as usize] = value;
            }
        }
        out
    }

    /// Batched Upsert.
    pub fn batch_upsert(&mut self, pairs: &[(i64, u64)]) -> Vec<bool> {
        for (op, &(key, value)) in pairs.iter().enumerate() {
            let m = self.partition_of(key);
            self.sys.send(
                m,
                RpTask::Upsert {
                    op: op as u32,
                    key,
                    value,
                },
            );
        }
        let mut out = vec![false; pairs.len()];
        for r in self.sys.run_to_quiescence() {
            if let RpReply::Upserted { op, inserted } = r {
                out[op as usize] = inserted;
                if inserted {
                    self.len += 1;
                }
            }
        }
        out
    }

    /// Batched Delete.
    pub fn batch_delete(&mut self, keys: &[i64]) -> Vec<bool> {
        for (op, &key) in keys.iter().enumerate() {
            let m = self.partition_of(key);
            self.sys.send(m, RpTask::Delete { op: op as u32, key });
        }
        let mut out = vec![false; keys.len()];
        for r in self.sys.run_to_quiescence() {
            if let RpReply::Deleted { op, found } = r {
                out[op as usize] = found;
                if found {
                    self.len -= 1;
                }
            }
        }
        out
    }

    /// Batched Successor.
    pub fn batch_successor(&mut self, keys: &[i64]) -> Vec<Option<(i64, u64)>> {
        for (op, &key) in keys.iter().enumerate() {
            let m = self.partition_of(key);
            self.sys.send(m, RpTask::Successor { op: op as u32, key });
        }
        let mut out = vec![None; keys.len()];
        for r in self.sys.run_to_quiescence() {
            if let RpReply::Succ { op, entry } = r {
                out[op as usize] = entry;
            }
        }
        out
    }

    /// One range query, fanned to the partitions intersecting `[lo, hi]`
    /// (the strength of range partitioning: contiguity).
    pub fn range(&mut self, lo: i64, hi: i64) -> Vec<(i64, u64)> {
        let first = self.partition_of(lo);
        let last = self.partition_of(hi);
        for m in first..=last {
            self.sys.send(m, RpTask::Range { op: 0, lo, hi });
        }
        let mut items = Vec::new();
        for r in self.sys.run_to_quiescence() {
            if let RpReply::RangeItem { key, value, .. } = r {
                items.push((key, value));
            }
        }
        items.sort_unstable();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn matches_oracle() {
        let mut l = RangePartitionedList::new(8, 0, 1000, 1);
        let mut oracle = BTreeMap::new();
        let pairs: Vec<(i64, u64)> = (0..500).map(|i| ((i * 37) % 1000, i as u64)).collect();
        l.batch_upsert(&pairs);
        for &(k, v) in &pairs {
            oracle.insert(k, v);
        }
        let keys: Vec<i64> = (0..1000).collect();
        let got = l.batch_get(&keys);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(got[i], oracle.get(k).copied(), "get({k})");
        }
        assert_eq!(l.len(), oracle.len() as u64);
    }

    #[test]
    fn successor_crosses_partitions() {
        let mut l = RangePartitionedList::new(4, 0, 400, 2);
        l.batch_upsert(&[(10, 1), (350, 2)]);
        // Key 200 lives in partition 2, but its successor is in partition 3.
        let s = l.batch_successor(&[200]);
        assert_eq!(s[0], Some((350, 2)));
        // Past the end.
        assert_eq!(l.batch_successor(&[351])[0], None);
        // Before the beginning.
        assert_eq!(l.batch_successor(&[0])[0], Some((10, 1)));
    }

    #[test]
    fn range_spans_partitions() {
        let mut l = RangePartitionedList::new(4, 0, 400, 3);
        let pairs: Vec<(i64, u64)> = (0..40).map(|i| (i * 10, i as u64)).collect();
        l.batch_upsert(&pairs);
        let items = l.range(95, 305);
        assert_eq!(
            items.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            (10..=30).map(|i| i * 10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn delete_and_len() {
        let mut l = RangePartitionedList::new(4, 0, 100, 4);
        l.batch_upsert(&[(1, 1), (50, 2), (99, 3)]);
        assert_eq!(l.batch_delete(&[50, 60]), vec![true, false]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn skewed_batch_serialises_on_one_module() {
        let p = 16;
        let mut l = RangePartitionedList::new(p, 0, 16_000, 5);
        let pairs: Vec<(i64, u64)> = (0..1600).map(|i| (i * 10, i as u64)).collect();
        l.batch_upsert(&pairs);

        let m0 = l.metrics();
        // All gets confined to partition 0's range.
        let keys: Vec<i64> = (0..512).map(|i| i % 1000).collect();
        l.batch_get(&keys);
        let d = l.metrics() - m0;
        // h == batch size: one module received everything.
        assert!(
            d.io_time >= keys.len() as u64,
            "expected serialised IO, got {}",
            d.io_time
        );
        let io_ratio = d.io_time as f64 / (d.total_messages as f64 / f64::from(p));
        assert!(io_ratio > f64::from(p) * 0.9, "imbalance ratio {io_ratio}");
    }
}
