//! The fine-grained distribution baseline (Ziegler et al. [34]).
//!
//! Fine-grained partitioning hashes *every* node — top levels included —
//! to a random module, with no replication. Skew vanishes, but "every key
//! search would access nodes in many different PIM modules" (§3.1): each
//! search pays `O(log n)` messages instead of the PIM-balanced structure's
//! `O(log P)`.
//!
//! We realise it by instantiating the core structure with the lower part
//! raised to cover (almost) the whole height: only the root level remains
//! replicated, which corresponds to the fine-grained scheme's globally
//! known entry point. This reuses the exact task machinery, so the
//! comparison isolates the *distribution policy*, not implementation
//! differences.

use pim_core::{Config, Key, PimSkipList, Value};
use pim_runtime::{Handle, Metrics};

/// A skip list whose nodes are all individually hashed to modules.
pub struct FineGrainedSkipList {
    inner: PimSkipList,
}

impl FineGrainedSkipList {
    /// Build with everything below the root distributed.
    pub fn new(p: u32, expected_n: u64, seed: u64) -> Self {
        let base = Config::new(p, expected_n, seed);
        let h_low = base.max_level - 1;
        let cfg = base.with_h_low(h_low);
        FineGrainedSkipList {
            inner: PimSkipList::new(cfg),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.inner.len()
    }

    /// Is the structure empty?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Machine metrics snapshot.
    pub fn metrics(&self) -> Metrics {
        self.inner.metrics()
    }

    /// Batched Get (hash shortcut still applies — fine-grained schemes
    /// also index leaves by hash).
    pub fn batch_get(&mut self, keys: &[Key]) -> Vec<Option<Value>> {
        self.inner.batch_get(keys)
    }

    /// Batched Upsert.
    pub fn batch_upsert(&mut self, pairs: &[(Key, Value)]) {
        self.inner.batch_upsert(pairs);
    }

    /// Batched Delete.
    pub fn batch_delete(&mut self, keys: &[Key]) -> Vec<bool> {
        self.inner.batch_delete(keys)
    }

    /// Batched Successor — the operation where fine-grained distribution
    /// pays `O(log n)` messages per search.
    pub fn batch_successor(&mut self, keys: &[Key]) -> Vec<Option<(Key, Handle)>> {
        self.inner.batch_successor(keys)
    }

    /// Structural validation (delegates to the core checker).
    pub fn validate(&self) -> Result<(), String> {
        self.inner.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_under_point_ops() {
        let mut l = FineGrainedSkipList::new(8, 1 << 10, 7);
        let pairs: Vec<(i64, u64)> = (0..200).map(|i| (i * 3, i as u64)).collect();
        l.batch_upsert(&pairs);
        l.validate().unwrap();
        assert_eq!(l.len(), 200);
        let got = l.batch_get(&[0, 3, 597, 1]);
        assert_eq!(got, vec![Some(0), Some(1), Some(199), None]);
        let s = l.batch_successor(&[4]);
        assert_eq!(s[0].map(|(k, _)| k), Some(6));
        let res = l.batch_delete(&[3, 4]);
        assert_eq!(res, vec![true, false]);
        l.validate().unwrap();
    }

    #[test]
    fn searches_cost_more_io_than_balanced_structure() {
        let p = 16;
        let n_keys = 4096i64;
        let pairs: Vec<(i64, u64)> = (0..n_keys).map(|i| (i * 7, i as u64)).collect();

        let mut fine = FineGrainedSkipList::new(p, n_keys as u64, 3);
        fine.batch_upsert(&pairs);
        let mut balanced = pim_core::PimSkipList::new(Config::new(p, n_keys as u64, 3));
        balanced.batch_upsert(&pairs);

        let queries: Vec<i64> = (0..512).map(|i| i * 50 + 1).collect();
        let f0 = fine.metrics();
        fine.batch_successor(&queries);
        let fine_io = (fine.metrics() - f0).total_messages;

        let b0 = balanced.metrics();
        balanced.batch_successor(&queries);
        let bal_io = (balanced.metrics() - b0).total_messages;

        assert!(
            fine_io as f64 > bal_io as f64 * 1.5,
            "fine-grained should move more messages: {fine_io} vs {bal_io}"
        );
    }
}
