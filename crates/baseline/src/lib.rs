//! # pim-baseline — the comparators the paper argues against
//!
//! Three baselines ground the experimental comparisons:
//!
//! * [`range_partitioned`] — coarse partitioning by key range (Choe et
//!   al. [11], Liu et al. [19]): one message per point op and contiguous
//!   ranges, but a single-partition adversary serialises it (§2.2);
//! * [`fine_grained`] — every node hashed individually (Ziegler et al.
//!   [34]): skew-proof but `O(log n)` messages per search (§3.1);
//! * the **naïve batch search** (pivot-free, the §4.2 strawman) has been
//!   retired from `pim-core`; the FIG3 comparison now contrasts the
//!   pivot D&C with push-pull search off vs on (`pim-bench`,
//!   `experiments adversarial`).
#![warn(missing_docs)]

pub mod fine_grained;
pub mod local_skiplist;
pub mod range_partitioned;

pub use fine_grained::FineGrainedSkipList;
pub use local_skiplist::LocalSkipList;
pub use range_partitioned::RangePartitionedList;
