//! A sequential skip list with per-operation work counting.
//!
//! Used as the *local* ordered structure inside each module of the
//! range-partitioned baseline (Choe et al. [11] / Liu et al. [19] keep a
//! conventional skip list per partition). Work is counted in node visits
//! so the baseline's PIM-time is measured in the same currency as the
//! PIM-balanced structure's.

use pim_runtime::Rng;

const MAX_LEVEL: usize = 28;

#[derive(Debug, Clone)]
struct Node {
    key: i64,
    value: u64,
    forward: Vec<u32>, // forward[l] = next node index at level l; u32::MAX = none
}

const NIL: u32 = u32::MAX;

/// A classic sequential skip list (`p = 1/2`) with counted node visits.
#[derive(Debug, Clone)]
pub struct LocalSkipList {
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    level: usize,
    len: usize,
    rng: Rng,
}

impl LocalSkipList {
    /// An empty list seeded for height coins.
    pub fn new(seed: u64) -> Self {
        let head = Node {
            key: i64::MIN,
            value: 0,
            forward: vec![NIL; MAX_LEVEL],
        };
        LocalSkipList {
            nodes: vec![head],
            free: Vec::new(),
            head: 0,
            level: 1,
            len: 0,
            rng: Rng::new(seed),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Words of memory held (space accounting).
    pub fn words(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| 3 + n.forward.len() as u64)
            .sum::<u64>()
    }

    #[inline]
    fn node(&self, i: u32) -> &Node {
        &self.nodes[i as usize]
    }

    /// Find per-level predecessors of `key`; returns (update vector, work).
    fn find_preds(&self, key: i64) -> ([u32; MAX_LEVEL], u64) {
        let mut update = [self.head; MAX_LEVEL];
        let mut x = self.head;
        let mut work = 0u64;
        for l in (0..self.level).rev() {
            loop {
                work += 1;
                let nxt = self.node(x).forward[l];
                if nxt != NIL && self.node(nxt).key < key {
                    x = nxt;
                } else {
                    break;
                }
            }
            update[l] = x;
        }
        (update, work)
    }

    /// Look up `key`; returns (value, work).
    pub fn get(&self, key: i64) -> (Option<u64>, u64) {
        let (update, work) = self.find_preds(key);
        let cand = self.node(update[0]).forward[0];
        if cand != NIL && self.node(cand).key == key {
            (Some(self.node(cand).value), work + 1)
        } else {
            (None, work + 1)
        }
    }

    /// Insert or update; returns (inserted?, work).
    pub fn upsert(&mut self, key: i64, value: u64) -> (bool, u64) {
        let (update, work) = self.find_preds(key);
        let cand = self.node(update[0]).forward[0];
        if cand != NIL && self.node(cand).key == key {
            self.nodes[cand as usize].value = value;
            return (false, work + 1);
        }
        let height = (self.rng.skiplist_height((MAX_LEVEL - 1) as u8) as usize) + 1;
        let new_level = height.max(self.level);
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node {
                key,
                value,
                forward: vec![NIL; height],
            };
            i
        } else {
            self.nodes.push(Node {
                key,
                value,
                forward: vec![NIL; height],
            });
            (self.nodes.len() - 1) as u32
        };
        for (l, &u) in update.iter().enumerate().take(height) {
            let pred = if l < self.level { u } else { self.head };
            let nxt = self.node(pred).forward[l];
            self.nodes[idx as usize].forward[l] = nxt;
            self.nodes[pred as usize].forward[l] = idx;
        }
        self.level = new_level;
        self.len += 1;
        (true, work + height as u64)
    }

    /// Delete `key`; returns (found?, work).
    pub fn delete(&mut self, key: i64) -> (bool, u64) {
        let (update, work) = self.find_preds(key);
        let cand = self.node(update[0]).forward[0];
        if cand == NIL || self.node(cand).key != key {
            return (false, work + 1);
        }
        let height = self.node(cand).forward.len();
        for (l, &pred) in update.iter().enumerate().take(height) {
            if self.node(pred).forward[l] == cand {
                self.nodes[pred as usize].forward[l] = self.node(cand).forward[l];
            }
        }
        self.free.push(cand);
        self.len -= 1;
        (true, work + height as u64)
    }

    /// Smallest key `≥ key`; returns (entry, work).
    pub fn successor(&self, key: i64) -> (Option<(i64, u64)>, u64) {
        let (update, work) = self.find_preds(key);
        let cand = self.node(update[0]).forward[0];
        if cand != NIL {
            let n = self.node(cand);
            (Some((n.key, n.value)), work + 1)
        } else {
            (None, work + 1)
        }
    }

    /// Collect all pairs in `[lo, hi]` into `out`; returns work.
    pub fn range_collect(&self, lo: i64, hi: i64, out: &mut Vec<(i64, u64)>) -> u64 {
        let (update, mut work) = self.find_preds(lo);
        let mut cur = self.node(update[0]).forward[0];
        while cur != NIL {
            work += 1;
            let n = self.node(cur);
            if n.key > hi {
                break;
            }
            out.push((n.key, n.value));
            cur = n.forward[0];
        }
        work
    }

    /// All pairs in order (test oracle).
    pub fn items(&self) -> Vec<(i64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.node(self.head).forward[0];
        while cur != NIL {
            let n = self.node(cur);
            out.push((n.key, n.value));
            cur = n.forward[0];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn matches_btreemap_under_random_ops() {
        let mut l = LocalSkipList::new(1);
        let mut oracle = BTreeMap::new();
        let mut s = 99u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s
        };
        for _ in 0..5000 {
            let k = (next() % 500) as i64;
            match next() % 3 {
                0 => {
                    l.upsert(k, k as u64);
                    oracle.insert(k, k as u64);
                }
                1 => {
                    let (f, _) = l.delete(k);
                    assert_eq!(f, oracle.remove(&k).is_some());
                }
                _ => {
                    let (v, _) = l.get(k);
                    assert_eq!(v, oracle.get(&k).copied());
                }
            }
        }
        let expect: Vec<(i64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(l.items(), expect);
        assert_eq!(l.len(), oracle.len());
    }

    #[test]
    fn successor_semantics() {
        let mut l = LocalSkipList::new(2);
        l.upsert(10, 1);
        l.upsert(20, 2);
        assert_eq!(l.successor(5).0, Some((10, 1)));
        assert_eq!(l.successor(10).0, Some((10, 1)));
        assert_eq!(l.successor(11).0, Some((20, 2)));
        assert_eq!(l.successor(21).0, None);
    }

    #[test]
    fn range_collect_bounds() {
        let mut l = LocalSkipList::new(3);
        for k in 0..100 {
            l.upsert(k * 2, k as u64);
        }
        let mut out = Vec::new();
        l.range_collect(10, 20, &mut out);
        assert_eq!(
            out.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![10, 12, 14, 16, 18, 20]
        );
    }

    #[test]
    fn work_grows_logarithmically() {
        let mut l = LocalSkipList::new(4);
        for k in 0..10_000 {
            l.upsert(k, 0);
        }
        let (_, w) = l.get(5000);
        assert!(w < 200, "search work {w} too large for n=10000");
    }

    #[test]
    fn upsert_existing_updates_value() {
        let mut l = LocalSkipList::new(5);
        assert!(l.upsert(7, 1).0);
        assert!(!l.upsert(7, 2).0);
        assert_eq!(l.get(7).0, Some(2));
        assert_eq!(l.len(), 1);
    }
}
