//! Reader and renderers behind the `pim-trace` binary.
//!
//! The input formats are produced by `pim_runtime::export`:
//!
//! * the JSONL round log (`rounds_jsonl`) — a `"type":"header"` line with
//!   the span table and per-module histogram summaries, then one
//!   `"type":"round"` line per recorded round;
//! * the Chrome trace-event JSON (`chrome_trace`) — validated here too, so
//!   CI can schema-check both artefacts with one tool.
//!
//! Parsing reuses [`pim_runtime::export::parse`] — the exporter and this
//! consumer share a single JSON implementation, so a schema drift breaks
//! tests instead of silently mis-rendering.

#![warn(missing_docs)]

use pim_runtime::export::{parse, Json};

// ---------------------------------------------------------------------------
// Document model.
// ---------------------------------------------------------------------------

/// One span row from the JSONL header.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Span id (0 is the implicit root).
    pub id: u64,
    /// Parent span id (`None` for the root).
    pub parent: Option<u64>,
    /// Leaf name, e.g. `"upsert"` or `"alloc"`.
    pub name: String,
    /// Full ancestry path, e.g. `"run > upsert > alloc"`.
    pub path: String,
    /// Nesting depth (root = 0).
    pub depth: u64,
    /// First round covered by the span.
    pub start_round: u64,
    /// Round at which the span closed.
    pub end_round: u64,
    /// Exclusive §2.1 stats: `(label, value)` in export order.
    pub stats: Vec<(String, u64)>,
}

impl SpanRow {
    /// Look up one exclusive stat by its export label (`"io_time"`, …).
    pub fn stat(&self, label: &str) -> u64 {
        self.stats
            .iter()
            .find(|(k, _)| k == label)
            .map_or(0, |&(_, v)| v)
    }
}

/// Per-module histogram summary (messages or work) from the header.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneSummary {
    /// Rounds observed.
    pub count: u64,
    /// Total over all rounds.
    pub sum: u64,
    /// Per-round maximum.
    pub max: u64,
    /// Median per-round value (log-bucket upper bound).
    pub p50: u64,
    /// 95th-percentile per-round value (log-bucket upper bound).
    pub p95: u64,
}

/// One module's histogram summaries from the header.
#[derive(Debug, Clone, Copy)]
pub struct ModuleRow {
    /// Module id.
    pub module: u64,
    /// Messages-per-round summary.
    pub messages: LaneSummary,
    /// Work-per-round summary.
    pub work: LaneSummary,
}

/// One recorded round.
#[derive(Debug, Clone)]
pub struct RoundRow {
    /// Global round index.
    pub round: u64,
    /// The round's h (max messages through one module).
    pub h: u64,
    /// The round's maximum per-module work.
    pub max_work: u64,
    /// Total messages delivered this round.
    pub messages: u64,
    /// Total work done this round.
    pub work: u64,
    /// Messages per module.
    pub per_module: Vec<u64>,
    /// Fault kinds injected this round (render labels).
    pub faults: Vec<String>,
}

/// A parsed JSONL trace document.
#[derive(Debug, Clone)]
pub struct TraceDoc {
    /// Number of PIM modules.
    pub p: u64,
    /// Rounds lost to the ring-buffer cap.
    pub dropped_rounds: u64,
    /// Spans from the header (empty when the run had no probe).
    pub spans: Vec<SpanRow>,
    /// Per-module summaries from the header (empty without a probe).
    pub modules: Vec<ModuleRow>,
    /// The recorded rounds.
    pub rounds: Vec<RoundRow>,
}

fn req_u64(v: &Json, key: &str, what: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what}: missing or non-integer field {key:?}"))
}

fn req_str(v: &Json, key: &str, what: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: missing or non-string field {key:?}"))
}

fn lane_summary(v: &Json, what: &str) -> Result<LaneSummary, String> {
    Ok(LaneSummary {
        count: req_u64(v, "count", what)?,
        sum: req_u64(v, "sum", what)?,
        max: req_u64(v, "max", what)?,
        p50: req_u64(v, "p50", what)?,
        p95: req_u64(v, "p95", what)?,
    })
}

/// The exclusive-stat labels every span row must carry, in table order.
pub const STAT_LABELS: [&str; 10] = [
    "rounds",
    "io_time",
    "pim_time",
    "messages",
    "work",
    "cpu_work",
    "cpu_depth",
    "shared_mem_peak",
    "retries",
    "recovery_rounds",
];

/// Warning text when the trace lost rounds to the capped ring buffer
/// (`None` for a complete trace). A schema-valid trace can still be a
/// *partial* record — analyses over it silently undercount — so
/// `pim-trace validate` prints this, and treats it as a failure under
/// `--strict`.
pub fn completeness_warning(doc: &TraceDoc) -> Option<String> {
    (doc.dropped_rounds > 0).then(|| {
        format!(
            "incomplete trace: {} round(s) evicted by the ring-buffer cap ({} recorded)",
            doc.dropped_rounds,
            doc.rounds.len()
        )
    })
}

/// Parse a JSONL round log into a [`TraceDoc`]. Errors carry the line
/// number (1-based) and what was wrong — this is also the schema check
/// behind `pim-trace validate`.
pub fn parse_jsonl(input: &str) -> Result<TraceDoc, String> {
    let mut lines = input.lines().enumerate().filter(|(_, l)| !l.is_empty());
    let (_, first) = lines.next().ok_or("empty input")?;
    let header = parse(first).map_err(|e| format!("line 1: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("header") {
        return Err("line 1: expected a \"type\":\"header\" object".into());
    }
    let version = req_u64(&header, "version", "header")?;
    if version != 1 {
        return Err(format!("header: unsupported version {version}"));
    }
    let p = req_u64(&header, "p", "header")?;
    let dropped_rounds = req_u64(&header, "dropped_rounds", "header")?;
    let recorded = req_u64(&header, "recorded_rounds", "header")?;

    let mut spans = Vec::new();
    if let Some(arr) = header.get("spans").and_then(Json::as_array) {
        for (i, s) in arr.iter().enumerate() {
            let what = format!("header span #{i}");
            let stats = STAT_LABELS
                .iter()
                .map(|&label| Ok((label.to_string(), req_u64(s, label, &what)?)))
                .collect::<Result<Vec<_>, String>>()?;
            spans.push(SpanRow {
                id: req_u64(s, "id", &what)?,
                parent: s.get("parent").and_then(Json::as_u64),
                name: req_str(s, "name", &what)?,
                path: req_str(s, "path", &what)?,
                depth: req_u64(s, "depth", &what)?,
                start_round: req_u64(s, "start_round", &what)?,
                end_round: req_u64(s, "end_round", &what)?,
                stats,
            });
        }
    }

    let mut modules = Vec::new();
    if let Some(arr) = header.get("modules").and_then(Json::as_array) {
        for (i, m) in arr.iter().enumerate() {
            let what = format!("header module #{i}");
            let msgs = m
                .get("messages")
                .ok_or_else(|| format!("{what}: missing field \"messages\""))?;
            let work = m
                .get("work")
                .ok_or_else(|| format!("{what}: missing field \"work\""))?;
            modules.push(ModuleRow {
                module: req_u64(m, "module", &what)?,
                messages: lane_summary(msgs, &what)?,
                work: lane_summary(work, &what)?,
            });
        }
        if modules.len() as u64 != p {
            return Err(format!(
                "header: {} module summaries for p = {p}",
                modules.len()
            ));
        }
    }

    let mut rounds = Vec::new();
    for (lineno, line) in lines {
        let what = format!("line {}", lineno + 1);
        let v = parse(line).map_err(|e| format!("{what}: {e}"))?;
        if v.get("type").and_then(Json::as_str) != Some("round") {
            return Err(format!("{what}: expected a \"type\":\"round\" object"));
        }
        let per_module = v
            .get("per_module")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{what}: missing array field \"per_module\""))?
            .iter()
            .map(|x| x.as_u64().ok_or_else(|| format!("{what}: bad lane value")))
            .collect::<Result<Vec<_>, _>>()?;
        let faults = v
            .get("faults")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{what}: missing array field \"faults\""))?
            .iter()
            .map(|f| {
                let kind = req_str(f, "kind", &what)?;
                let module = req_u64(f, "module", &what)?;
                Ok(format!("{kind}(m{module})"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        rounds.push(RoundRow {
            round: req_u64(&v, "round", &what)?,
            h: req_u64(&v, "h", &what)?,
            max_work: req_u64(&v, "max_work", &what)?,
            messages: req_u64(&v, "messages", &what)?,
            work: req_u64(&v, "work", &what)?,
            per_module,
            faults,
        });
    }
    if rounds.len() as u64 != recorded {
        return Err(format!(
            "header says recorded_rounds = {recorded} but {} round lines follow",
            rounds.len()
        ));
    }
    Ok(TraceDoc {
        p,
        dropped_rounds,
        spans,
        modules,
        rounds,
    })
}

/// Schema-check a Chrome trace-event export: one JSON object with a
/// `traceEvents` array whose entries all carry `ph`, plus `otherData.p`
/// and `otherData.dropped_rounds` (every exporter stamps its truncation).
/// `Ok(Some(_))` is the incompleteness warning when rounds were dropped —
/// same contract as [`completeness_warning`] for the JSONL log.
pub fn validate_chrome(input: &str) -> Result<Option<String>, String> {
    let v = parse(input)?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event #{i}: missing \"ph\""))?;
        if !matches!(ph, "X" | "C" | "i" | "M") {
            return Err(format!("event #{i}: unexpected phase {ph:?}"));
        }
        if ph == "X" && (e.get("ts").is_none() || e.get("dur").is_none()) {
            return Err(format!("event #{i}: complete event without ts/dur"));
        }
    }
    let other = v.get("otherData").ok_or("missing otherData")?;
    other
        .get("p")
        .and_then(Json::as_u64)
        .ok_or("missing otherData.p")?;
    let dropped = other
        .get("dropped_rounds")
        .and_then(Json::as_u64)
        .ok_or("missing otherData.dropped_rounds (exporters must stamp truncation)")?;
    Ok((dropped > 0)
        .then(|| format!("incomplete trace: {dropped} round(s) evicted by the ring-buffer cap")))
}

// ---------------------------------------------------------------------------
// Telemetry artefacts: the lifecycle event log and the Prometheus snapshot.
// ---------------------------------------------------------------------------

/// One lifecycle event from the telemetry JSONL log.
#[derive(Debug, Clone)]
pub struct EventRow {
    /// Event kind (`"admit"`, `"coalesce"`, `"execute"`, `"reply"`,
    /// `"ack"`, `"fsync"`, …).
    pub kind: String,
    /// Service tick the event occurred on.
    pub tick: u64,
    /// Machine round counter at the event.
    pub round: u64,
    /// Extra integer fields (`id`, `latency_ticks`, …).
    pub fields: Vec<(String, u64)>,
}

impl EventRow {
    /// Look up one extra field by name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }
}

/// A parsed telemetry event log.
#[derive(Debug, Clone)]
pub struct EventsDoc {
    /// Events lost to the exporter's cap.
    pub dropped_events: u64,
    /// The retained events, in emission order.
    pub events: Vec<EventRow>,
}

/// Warning text when the event log is truncated (`None` when complete) —
/// the telemetry counterpart of [`completeness_warning`].
pub fn events_completeness_warning(doc: &EventsDoc) -> Option<String> {
    (doc.dropped_events > 0).then(|| {
        format!(
            "incomplete event log: {} event(s) dropped by the cap ({} recorded)",
            doc.dropped_events,
            doc.events.len()
        )
    })
}

/// Parse a telemetry event JSONL log (`Telemetry::events_jsonl` output):
/// a `"type":"telemetry-header"` line, then one `"type":"event"` line per
/// event. This is also the schema check behind `pim-trace validate`.
pub fn parse_events_jsonl(input: &str) -> Result<EventsDoc, String> {
    let mut lines = input.lines().enumerate().filter(|(_, l)| !l.is_empty());
    let (_, first) = lines.next().ok_or("empty input")?;
    let header = parse(first).map_err(|e| format!("line 1: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("telemetry-header") {
        return Err("line 1: expected a \"type\":\"telemetry-header\" object".into());
    }
    let version = req_u64(&header, "version", "header")?;
    if version != 1 {
        return Err(format!("header: unsupported version {version}"));
    }
    let expected = req_u64(&header, "events", "header")?;
    let dropped_events = req_u64(&header, "dropped_events", "header")?;
    let mut events = Vec::new();
    for (lineno, line) in lines {
        let what = format!("line {}", lineno + 1);
        let v = parse(line).map_err(|e| format!("{what}: {e}"))?;
        if v.get("type").and_then(Json::as_str) != Some("event") {
            return Err(format!("{what}: expected a \"type\":\"event\" object"));
        }
        let obj = match &v {
            Json::Obj(pairs) => pairs,
            _ => return Err(format!("{what}: not an object")),
        };
        let mut fields = Vec::new();
        for (k, val) in obj {
            if matches!(k.as_str(), "type" | "kind" | "tick" | "round") {
                continue;
            }
            let n = val
                .as_u64()
                .ok_or_else(|| format!("{what}: non-integer field {k:?}"))?;
            fields.push((k.clone(), n));
        }
        events.push(EventRow {
            kind: req_str(&v, "kind", &what)?,
            tick: req_u64(&v, "tick", &what)?,
            round: req_u64(&v, "round", &what)?,
            fields,
        });
    }
    if events.len() as u64 != expected {
        return Err(format!(
            "header says events = {expected} but {} event lines follow",
            events.len()
        ));
    }
    Ok(EventsDoc {
        dropped_events,
        events,
    })
}

/// Schema-check a Prometheus text exposition
/// (`TelemetrySnapshot::render_prometheus` output): every sample belongs
/// to a `# TYPE`-declared metric of a known kind, values are integers,
/// and every histogram carries its `le="+Inf"` bucket agreeing with its
/// `_count`.
pub fn validate_prometheus(input: &str) -> Result<(), String> {
    // (name, kind) in declaration order.
    let mut declared: Vec<(String, String)> = Vec::new();
    // Histogram bookkeeping: name -> (inf_bucket, count, last_cumulative).
    let mut hist: Vec<(String, Option<u64>, Option<u64>, u64)> = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let what = format!("line {}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("{what}: TYPE without name"))?;
            let kind = it
                .next()
                .ok_or_else(|| format!("{what}: TYPE without kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("{what}: unknown metric kind {kind:?}"));
            }
            declared.push((name.to_string(), kind.to_string()));
            if kind == "histogram" {
                hist.push((name.to_string(), None, None, 0));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal exposition
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("{what}: sample without value"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("{what}: non-integer sample value {value:?}"))?;
        let base = series.split('{').next().unwrap_or(series);
        let owner = declared.iter().find(|(n, kind)| {
            base == n
                || (kind == "histogram"
                    && [
                        format!("{n}_bucket"),
                        format!("{n}_sum"),
                        format!("{n}_count"),
                    ]
                    .contains(&base.to_string()))
        });
        let Some((name, kind)) = owner else {
            return Err(format!("{what}: sample {base:?} has no # TYPE declaration"));
        };
        if kind == "histogram" {
            let h = hist
                .iter_mut()
                .find(|(n, ..)| n == name)
                .expect("declared histogram tracked");
            if base.ends_with("_bucket") {
                if h.3 > value {
                    return Err(format!("{what}: non-cumulative histogram bucket"));
                }
                h.3 = value;
                if series.contains("le=\"+Inf\"") {
                    h.1 = Some(value);
                }
            } else if base.ends_with("_count") {
                h.2 = Some(value);
            }
        }
    }
    for (name, inf, count, _) in &hist {
        let inf = inf.ok_or_else(|| format!("histogram {name:?}: missing le=\"+Inf\" bucket"))?;
        let count = count.ok_or_else(|| format!("histogram {name:?}: missing _count sample"))?;
        if inf != count {
            return Err(format!(
                "histogram {name:?}: +Inf bucket {inf} != count {count}"
            ));
        }
    }
    if declared.is_empty() {
        return Err("no # TYPE declarations (not a Prometheus exposition)".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Renderers. All return plain text tables; all are deterministic.
// ---------------------------------------------------------------------------

fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                // Left-align the label column.
                out.push_str(&format!("{:<w$}", cell, w = widths[i]));
            } else {
                out.push_str(&format!("{:>w$}", cell, w = widths[i]));
            }
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    fmt_row(&header_cells, &widths, &mut out);
    let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    fmt_row(&rule, &widths, &mut out);
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Per-phase cost breakdown: spans aggregated by full path (exclusive
/// stats summed, invocations counted), in first-appearance order.
pub fn render_phases(doc: &TraceDoc) -> String {
    if doc.spans.is_empty() {
        return "no spans in trace (probe was not enabled)\n".to_string();
    }
    let mut order: Vec<&str> = Vec::new();
    let mut agg: Vec<(u64, Vec<u64>)> = Vec::new(); // (count, stats by label)
    for s in &doc.spans {
        let idx = match order.iter().position(|&pth| pth == s.path) {
            Some(i) => i,
            None => {
                order.push(&s.path);
                agg.push((0, vec![0; STAT_LABELS.len()]));
                order.len() - 1
            }
        };
        agg[idx].0 += 1;
        for (j, &label) in STAT_LABELS.iter().enumerate() {
            if label == "shared_mem_peak" {
                agg[idx].1[j] = agg[idx].1[j].max(s.stat(label));
            } else {
                agg[idx].1[j] += s.stat(label);
            }
        }
    }
    let rows: Vec<Vec<String>> = order
        .iter()
        .zip(&agg)
        .map(|(path, (count, stats))| {
            let mut row = vec![path.to_string(), count.to_string()];
            row.extend(stats.iter().map(u64::to_string));
            row
        })
        .collect();
    let mut headers = vec!["phase", "calls"];
    headers.extend([
        "rounds", "io", "pim", "msgs", "work", "cpu_w", "cpu_d", "shmem", "retry", "recov",
    ]);
    let mut out = render_table(&headers, &rows);
    out.push_str(
        "\n(stats are exclusive: each row owns only the cost not claimed by a nested phase)\n",
    );
    out
}

/// h-profile: distribution of per-round h in powers of two, with total
/// IO time (Σh) and the share contributed by each bucket.
pub fn render_hprofile(doc: &TraceDoc) -> String {
    if doc.rounds.is_empty() {
        return "no rounds recorded\n".to_string();
    }
    // Bucket i holds h in [2^(i-1), 2^i); bucket 0 holds h = 0.
    let mut counts = [0u64; 65];
    let mut sums = [0u64; 65];
    for r in &doc.rounds {
        let b = if r.h == 0 {
            0
        } else {
            64 - u64::leading_zeros(r.h) as usize + 1
        };
        counts[b] += 1;
        sums[b] += r.h;
    }
    let total_io: u64 = sums.iter().sum();
    let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut rows = Vec::new();
    for (b, (&c, &s)) in counts.iter().zip(&sums).enumerate() {
        if c == 0 {
            continue;
        }
        let label = if b == 0 {
            "0".to_string()
        } else {
            format!("{}..{}", 1u64 << (b - 1), (1u64 << b) - 1)
        };
        let bar = "#".repeat(((c * 40).div_ceil(max_count)) as usize);
        let share = (s * 100).checked_div(total_io).unwrap_or(0);
        rows.push(vec![
            label,
            c.to_string(),
            s.to_string(),
            format!("{share}%"),
            bar,
        ]);
    }
    let mut out = render_table(&["h", "rounds", "sum(h)", "io%", ""], &rows);
    out.push_str(&format!(
        "\n{} recorded rounds, io_time = {} ({} dropped by ring cap)\n",
        doc.rounds.len(),
        total_io,
        doc.dropped_rounds
    ));
    out
}

/// Module-imbalance heatmap: modules down, time (round buckets) across,
/// cell brightness = messages relative to the hottest cell; followed by
/// the per-module histogram summary table from the header.
pub fn render_heatmap(doc: &TraceDoc) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    const COLS: usize = 48;
    let p = doc.p as usize;
    if p == 0 {
        return "p = 0\n".to_string();
    }
    let mut out = String::new();
    if doc.rounds.is_empty() {
        out.push_str("no rounds recorded; heatmap unavailable\n");
    } else {
        let n = doc.rounds.len();
        let cols = COLS.min(n);
        let mut cells = vec![vec![0u64; cols]; p];
        for (i, r) in doc.rounds.iter().enumerate() {
            let c = i * cols / n;
            for (m, &v) in r.per_module.iter().enumerate().take(p) {
                cells[m][c] += v;
            }
        }
        let hottest = cells
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
            .max(1);
        out.push_str(&format!(
            "messages per module over {} rounds ({} columns, hottest cell = {})\n",
            n, cols, hottest
        ));
        for (m, row) in cells.iter().enumerate() {
            out.push_str(&format!("m{:<3} |", m));
            for &v in row {
                let shade = if v == 0 {
                    0
                } else {
                    // Scale 1..=max onto the non-blank shades.
                    1 + (v - 1) as usize * (SHADES.len() - 2) / hottest as usize
                };
                out.push(SHADES[shade.min(SHADES.len() - 1)] as char);
            }
            out.push_str("|\n");
        }
    }
    if !doc.modules.is_empty() {
        let rows: Vec<Vec<String>> = doc
            .modules
            .iter()
            .map(|m| {
                vec![
                    format!("m{}", m.module),
                    m.messages.sum.to_string(),
                    m.messages.max.to_string(),
                    m.messages.p50.to_string(),
                    m.messages.p95.to_string(),
                    m.work.sum.to_string(),
                    m.work.max.to_string(),
                    m.work.p50.to_string(),
                    m.work.p95.to_string(),
                ]
            })
            .collect();
        out.push('\n');
        out.push_str(&render_table(
            &[
                "module", "msgs", "msg_max", "msg_p50", "msg_p95", "work", "work_max", "work_p50",
                "work_p95",
            ],
            &rows,
        ));
        let sums: Vec<u64> = doc.modules.iter().map(|m| m.messages.sum).collect();
        let hot = sums.iter().copied().max().unwrap_or(0);
        let avg = sums.iter().sum::<u64>() / sums.len().max(1) as u64;
        out.push_str(&format!(
            "\nimbalance: hottest module carries {hot} messages vs mean {avg} ({}x)\n",
            if avg == 0 { 0 } else { hot.div_ceil(avg) }
        ));
    }
    out
}

/// Exact `q`-quantile of a sorted sample (rank `ceil(q·n)`; 0 when empty).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The `pim-top` dashboard over a telemetry event log: request counts,
/// throughput, queue-depth sparkline, exact latency quantiles, and (when
/// a round log is supplied) per-module heat. `up_to` limits the view to
/// events at or before that tick — the replay knob `pim-top` animates.
pub fn render_top(doc: &EventsDoc, rounds: Option<&TraceDoc>, up_to: Option<u64>) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    const COLS: usize = 48;
    let last_tick = doc.events.iter().map(|e| e.tick).max().unwrap_or(0);
    let now = up_to.unwrap_or(last_tick).min(last_tick);
    let view: Vec<&EventRow> = doc.events.iter().filter(|e| e.tick <= now).collect();

    let admitted = view.iter().filter(|e| e.kind == "admit").count() as u64;
    let dispatched = view.iter().filter(|e| e.kind == "coalesce").count() as u64;
    let completed = view
        .iter()
        .filter(|e| e.kind == "reply" || e.kind == "ack")
        .count() as u64;
    let batches = view.iter().filter(|e| e.kind == "execute").count() as u64;
    let batch_ops: u64 = view
        .iter()
        .filter(|e| e.kind == "execute")
        .filter_map(|e| e.field("n"))
        .sum();
    let machine_rounds: u64 = view
        .iter()
        .filter(|e| e.kind == "execute")
        .filter_map(|e| e.field("rounds"))
        .sum();

    let mut lat: Vec<u64> = view
        .iter()
        .filter(|e| e.kind == "reply" || e.kind == "ack")
        .filter_map(|e| e.field("latency_ticks"))
        .collect();
    lat.sort_unstable();

    // Queue depth at each tick = admissions so far − dispatches so far.
    let mut depth_at = vec![0i64; now as usize + 1];
    for e in &view {
        let d = match e.kind.as_str() {
            "admit" => 1,
            "coalesce" => -1,
            _ => continue,
        };
        depth_at[e.tick as usize] += d;
    }
    let mut depth = Vec::with_capacity(depth_at.len());
    let mut acc = 0i64;
    for d in depth_at {
        acc += d;
        depth.push(acc.max(0) as u64);
    }
    let peak = depth.iter().copied().max().unwrap_or(0);
    let current = depth.last().copied().unwrap_or(0);
    let window = &depth[depth.len().saturating_sub(COLS)..];
    let spark: String = window
        .iter()
        .map(|&v| {
            let shade = if v == 0 || peak == 0 {
                0
            } else {
                1 + (v - 1) as usize * (SHADES.len() - 2) / peak as usize
            };
            SHADES[shade.min(SHADES.len() - 1)] as char
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "pim-top — tick {now}/{last_tick}  ({} events{}{})\n",
        view.len(),
        if doc.dropped_events > 0 {
            ", DROPPED "
        } else {
            ""
        },
        if doc.dropped_events > 0 {
            doc.dropped_events.to_string()
        } else {
            String::new()
        },
    ));
    out.push_str(&format!(
        "requests   admitted {admitted}  dispatched {dispatched}  completed {completed}  in-flight {}\n",
        admitted.saturating_sub(completed)
    ));
    let per_tick = |n: u64| -> String {
        if now == 0 {
            "-".into()
        } else {
            format!("{:.2}", n as f64 / now as f64)
        }
    };
    out.push_str(&format!(
        "throughput {} req/tick  batches {batches}  mean occupancy {}  machine rounds {machine_rounds}\n",
        per_tick(completed),
        if batches == 0 {
            "-".into()
        } else {
            format!("{:.1}", batch_ops as f64 / batches as f64)
        },
    ));
    out.push_str(&format!(
        "latency    p50 {}  p99 {}  p999 {}  max {} ticks  ({} samples, exact)\n",
        exact_quantile(&lat, 0.50),
        exact_quantile(&lat, 0.99),
        exact_quantile(&lat, 0.999),
        lat.last().copied().unwrap_or(0),
        lat.len()
    ));
    out.push_str(&format!(
        "queue      |{spark}|  now {current}  peak {peak}\n"
    ));
    if let Some(r) = rounds {
        let mut sums = vec![0u64; r.p as usize];
        for round in &r.rounds {
            for (m, &v) in round.per_module.iter().enumerate().take(sums.len()) {
                sums[m] += v;
            }
        }
        let hottest = sums.iter().copied().max().unwrap_or(0).max(1);
        out.push_str(&format!(
            "module heat (messages over {} recorded rounds)\n",
            r.rounds.len()
        ));
        for (m, &s) in sums.iter().enumerate() {
            let bar = "#".repeat(((s * 32).div_ceil(hottest)) as usize);
            out.push_str(&format!("  m{m:<3} {bar:<32} {s}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_jsonl() -> String {
        concat!(
            r#"{"type":"header","version":1,"p":2,"dropped_rounds":0,"recorded_rounds":2,"#,
            r#""spans":[{"id":0,"parent":null,"name":"run","path":"run","depth":0,"start_round":0,"end_round":2,"rounds":1,"io_time":1,"pim_time":1,"messages":1,"work":1,"cpu_work":0,"cpu_depth":0,"shared_mem_peak":4,"retries":0,"recovery_rounds":0},"#,
            r#"{"id":1,"parent":0,"name":"get","path":"run > get","depth":1,"start_round":0,"end_round":1,"rounds":1,"io_time":3,"pim_time":2,"messages":5,"work":4,"cpu_work":7,"cpu_depth":2,"shared_mem_peak":8,"retries":0,"recovery_rounds":0}],"#,
            r#""modules":[{"module":0,"messages":{"count":2,"sum":3,"max":2,"p50":1,"p95":2},"work":{"count":2,"sum":4,"max":3,"p50":1,"p95":3}},"#,
            r#"{"module":1,"messages":{"count":2,"sum":5,"max":4,"p50":1,"p95":4},"work":{"count":2,"sum":2,"max":1,"p50":1,"p95":1}}]}"#,
            "\n",
            r#"{"type":"round","round":0,"h":2,"max_work":3,"messages":3,"work":4,"per_module":[2,1],"faults":[]}"#,
            "\n",
            r#"{"type":"round","round":1,"h":4,"max_work":1,"messages":5,"work":2,"per_module":[1,4],"faults":[{"kind":"slow","module":1,"factor":3}]}"#,
            "\n",
        )
        .to_string()
    }

    #[test]
    fn completeness_warning_flags_dropped_rounds() {
        let complete = parse_jsonl(&sample_jsonl()).unwrap();
        assert_eq!(completeness_warning(&complete), None);
        let partial = sample_jsonl().replace("\"dropped_rounds\":0", "\"dropped_rounds\":7");
        let doc = parse_jsonl(&partial).unwrap();
        let w = completeness_warning(&doc).expect("lossy trace must warn");
        assert!(w.contains("7 round(s)"));
        assert!(w.contains("2 recorded"));
    }

    #[test]
    fn parses_sample_document() {
        let doc = parse_jsonl(&sample_jsonl()).unwrap();
        assert_eq!(doc.p, 2);
        assert_eq!(doc.spans.len(), 2);
        assert_eq!(doc.spans[1].path, "run > get");
        assert_eq!(doc.spans[1].stat("io_time"), 3);
        assert_eq!(doc.rounds.len(), 2);
        assert_eq!(doc.rounds[1].faults, vec!["slow(m1)".to_string()]);
        assert_eq!(doc.modules[1].messages.sum, 5);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(parse_jsonl("").is_err());
        assert!(parse_jsonl("{\"type\":\"round\"}\n").is_err());
        // Header round count must match the body.
        let short = sample_jsonl()
            .lines()
            .take(2)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(parse_jsonl(&short).is_err());
        // A span missing a stat field is a schema error.
        let broken = sample_jsonl().replace("\"io_time\":3,", "");
        assert!(parse_jsonl(&broken).is_err());
    }

    #[test]
    fn phases_table_lists_each_path_once() {
        let doc = parse_jsonl(&sample_jsonl()).unwrap();
        let out = render_phases(&doc);
        assert!(out.contains("run > get"));
        assert_eq!(out.matches("run > get").count(), 1);
        assert!(out.contains("phase"));
    }

    #[test]
    fn hprofile_covers_all_rounds() {
        let doc = parse_jsonl(&sample_jsonl()).unwrap();
        let out = render_hprofile(&doc);
        assert!(out.contains("2 recorded rounds"));
        assert!(out.contains("io_time = 6"));
    }

    #[test]
    fn heatmap_has_one_row_per_module() {
        let doc = parse_jsonl(&sample_jsonl()).unwrap();
        let out = render_heatmap(&doc);
        assert!(out.contains("m0"));
        assert!(out.contains("m1"));
        assert!(out.contains("imbalance"));
    }

    #[test]
    fn chrome_validation() {
        let ok = r#"{"traceEvents":[{"ph":"M"}],"otherData":{"p":4,"dropped_rounds":0}}"#;
        assert_eq!(validate_chrome(ok), Ok(None));
        let lossy = r#"{"traceEvents":[{"ph":"M"}],"otherData":{"p":4,"dropped_rounds":3}}"#;
        let warning = validate_chrome(lossy).unwrap().expect("lossy must warn");
        assert!(warning.contains("3 round(s)"));
        // An unstamped exporter is a schema error, not a silent pass.
        let unstamped = r#"{"traceEvents":[{"ph":"M"}],"otherData":{"p":4}}"#;
        assert!(validate_chrome(unstamped)
            .unwrap_err()
            .contains("dropped_rounds"));
        assert!(validate_chrome(r#"{"traceEvents":[{"ph":"Q"}],"otherData":{"p":4}}"#).is_err());
        assert!(validate_chrome(r#"{"traceEvents":[]}"#).is_err());
        assert!(validate_chrome("not json").is_err());
    }

    fn sample_events() -> String {
        concat!(
            r#"{"type":"telemetry-header","version":1,"events":6,"dropped_events":0}"#,
            "\n",
            r#"{"type":"event","kind":"admit","tick":1,"round":0,"id":0}"#,
            "\n",
            r#"{"type":"event","kind":"admit","tick":1,"round":0,"id":1}"#,
            "\n",
            r#"{"type":"event","kind":"coalesce","tick":2,"round":0,"id":0,"batch":0,"pos":0}"#,
            "\n",
            r#"{"type":"event","kind":"coalesce","tick":2,"round":0,"id":1,"batch":0,"pos":1}"#,
            "\n",
            r#"{"type":"event","kind":"execute","tick":2,"round":9,"batch":0,"n":2,"rounds":9}"#,
            "\n",
            r#"{"type":"event","kind":"reply","tick":2,"round":9,"id":0,"latency_ticks":1,"latency_rounds":9}"#,
            "\n",
        )
        .to_string()
    }

    #[test]
    fn parses_event_log() {
        let doc = parse_events_jsonl(&sample_events()).unwrap();
        assert_eq!(doc.events.len(), 6);
        assert_eq!(doc.dropped_events, 0);
        assert_eq!(doc.events[0].kind, "admit");
        assert_eq!(doc.events[4].field("n"), Some(2));
        assert_eq!(events_completeness_warning(&doc), None);
        let lossy = sample_events().replace("\"dropped_events\":0", "\"dropped_events\":5");
        let doc = parse_events_jsonl(&lossy).unwrap();
        assert!(events_completeness_warning(&doc)
            .unwrap()
            .contains("5 event(s)"));
    }

    #[test]
    fn rejects_bad_event_logs() {
        assert!(parse_events_jsonl("").is_err());
        // Count mismatch with the header.
        let short: String = sample_events()
            .lines()
            .take(3)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(parse_events_jsonl(&short).is_err());
        // Round logs are not event logs.
        assert!(parse_events_jsonl(&sample_jsonl()).is_err());
    }

    #[test]
    fn prometheus_validation() {
        let good = concat!(
            "# TYPE pim_ops_total counter\n",
            "pim_ops_total{op=\"get\"} 3\n",
            "pim_ops_total{op=\"upsert\"} 2\n",
            "# TYPE pim_lat histogram\n",
            "pim_lat_bucket{le=\"1\"} 1\n",
            "pim_lat_bucket{le=\"+Inf\"} 2\n",
            "pim_lat_sum 6\n",
            "pim_lat_count 2\n",
        );
        assert_eq!(validate_prometheus(good), Ok(()));
        assert!(validate_prometheus("pim_undeclared 1\n").is_err());
        assert!(validate_prometheus("").is_err());
        let no_inf = "# TYPE pim_lat histogram\npim_lat_bucket{le=\"1\"} 1\npim_lat_sum 1\npim_lat_count 1\n";
        assert!(validate_prometheus(no_inf).unwrap_err().contains("+Inf"));
        let mismatch = good.replace("pim_lat_count 2", "pim_lat_count 3");
        assert!(validate_prometheus(&mismatch)
            .unwrap_err()
            .contains("!= count"));
    }

    #[test]
    fn top_renders_the_dashboard() {
        let doc = parse_events_jsonl(&sample_events()).unwrap();
        let out = render_top(&doc, None, None);
        assert!(out.contains("admitted 2"));
        assert!(out.contains("completed 1"));
        assert!(out.contains("in-flight 1"));
        assert!(out.contains("batches 1"));
        assert!(out.contains("p50 1"));
        assert!(out.contains("machine rounds 9"));
        // Replay knob: before the dispatch tick both requests are queued.
        let early = render_top(&doc, None, Some(1));
        assert!(early.contains("admitted 2"));
        assert!(early.contains("completed 0"));
        assert!(early.contains("now 2"), "queue depth 2 at tick 1: {early}");
        // Module heat appears when a round log is supplied.
        let rounds = parse_jsonl(&sample_jsonl()).unwrap();
        let with_heat = render_top(&doc, Some(&rounds), None);
        assert!(with_heat.contains("module heat"));
        assert!(with_heat.contains("m1"));
    }
}
