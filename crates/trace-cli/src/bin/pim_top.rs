//! `pim-top`: a terminal live view over the telemetry event JSONL log.
//!
//! ```text
//! pim-top <events.jsonl> [--rounds <rounds.jsonl>] [--fps N] [--follow] [--final]
//! ```
//!
//! By default the log is *replayed*: the dashboard animates tick by tick
//! at `--fps` frames per second (default 20), exactly as the service
//! experienced it. `--follow` instead polls the file for growth and
//! always renders the newest frame — point it at the events log of a
//! running workload to watch it live. `--final` skips the animation and
//! prints the last frame once (what `pim-trace top` does).
//!
//! Exit codes: 0 ok, 2 usage or IO error.

use std::process::ExitCode;

use pim_trace_cli::{parse_events_jsonl, parse_jsonl, render_top, EventsDoc, TraceDoc};

const USAGE: &str =
    "usage: pim-top <events.jsonl> [--rounds <rounds.jsonl>] [--fps N] [--follow] [--final]";

/// Clear the screen and move the cursor home (ANSI; every terminal the
/// workspace targets understands it).
const CLEAR: &str = "\x1b[2J\x1b[H";

struct Args {
    events: String,
    rounds: Option<String>,
    fps: u64,
    follow: bool,
    final_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut events = None;
    let mut rounds = None;
    let mut fps = 20u64;
    let mut follow = false;
    let mut final_only = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rounds" => rounds = Some(it.next().ok_or("--rounds needs a path")?),
            "--fps" => {
                fps = it
                    .next()
                    .ok_or("--fps needs a number")?
                    .parse()
                    .map_err(|_| "--fps needs a number")?;
                if fps == 0 {
                    return Err("--fps must be at least 1".into());
                }
            }
            "--follow" => follow = true,
            "--final" => final_only = true,
            _ if events.is_none() => events = Some(a),
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Args {
        events: events.ok_or(USAGE)?,
        rounds,
        fps,
        follow,
        final_only,
    })
}

fn load_docs(args: &Args) -> Result<(EventsDoc, Option<TraceDoc>), String> {
    let text =
        std::fs::read_to_string(&args.events).map_err(|e| format!("{}: {e}", args.events))?;
    let events = parse_events_jsonl(&text).map_err(|e| format!("{}: {e}", args.events))?;
    let rounds = match &args.rounds {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    Ok((events, rounds))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let frame = std::time::Duration::from_millis(1000 / args.fps);

    if args.follow {
        // Live mode: poll the file and always show the newest frame. The
        // log is append-only, so a partial last line simply fails to parse
        // and we keep the previous frame until the writer finishes it.
        let mut last = String::new();
        loop {
            if let Ok((events, rounds)) = load_docs(&args) {
                let view = render_top(&events, rounds.as_ref(), None);
                if view != last {
                    print!("{CLEAR}{view}");
                    use std::io::Write as _;
                    std::io::stdout().flush().ok();
                    last = view;
                }
            }
            std::thread::sleep(frame);
        }
    }

    let (events, rounds) = load_docs(&args)?;
    if args.final_only {
        print!("{}", render_top(&events, rounds.as_ref(), None));
        return Ok(());
    }
    let last_tick = events.events.iter().map(|e| e.tick).max().unwrap_or(0);
    for tick in 0..=last_tick {
        print!(
            "{CLEAR}{}",
            render_top(&events, rounds.as_ref(), Some(tick))
        );
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        if tick < last_tick {
            std::thread::sleep(frame);
        }
    }
    println!();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
