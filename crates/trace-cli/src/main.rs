//! `pim-trace`: inspect exported PIM traces.
//!
//! ```text
//! pim-trace phases  <rounds.jsonl>     per-phase cost breakdown
//! pim-trace hprofile <rounds.jsonl>    distribution of per-round h
//! pim-trace heatmap <rounds.jsonl>     module-imbalance heatmap
//! pim-trace all     <rounds.jsonl>     all of the above
//! pim-trace validate <file>...         schema-check exports (JSONL or Chrome JSON)
//! ```
//!
//! Exit codes: 0 ok, 1 validation failure, 2 usage or IO error.

use std::process::ExitCode;

use pim_trace_cli::{parse_jsonl, render_heatmap, render_hprofile, render_phases, validate_chrome};

const USAGE: &str = "usage: pim-trace <phases|hprofile|heatmap|all|validate> <file>...";

fn load(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, files) = args.split_first().ok_or(USAGE)?;
    if files.is_empty() {
        return Err(USAGE.into());
    }
    match cmd.as_str() {
        "phases" | "hprofile" | "heatmap" | "all" => {
            for path in files {
                let doc = parse_jsonl(&load(path)?).map_err(|e| format!("{path}: {e}"))?;
                if files.len() > 1 {
                    println!("== {path} ==");
                }
                if cmd == "phases" || cmd == "all" {
                    print!("{}", render_phases(&doc));
                }
                if cmd == "hprofile" || cmd == "all" {
                    if cmd == "all" {
                        println!();
                    }
                    print!("{}", render_hprofile(&doc));
                }
                if cmd == "heatmap" || cmd == "all" {
                    if cmd == "all" {
                        println!();
                    }
                    print!("{}", render_heatmap(&doc));
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "validate" => {
            let mut failed = false;
            for path in files {
                let text = load(path)?;
                // Chrome exports are one JSON document with traceEvents;
                // everything else must be a valid JSONL round log.
                let result = if text.trim_start().starts_with('{')
                    && text.trim_start()[1..]
                        .trim_start()
                        .starts_with("\"traceEvents\"")
                {
                    validate_chrome(&text)
                } else {
                    parse_jsonl(&text).map(|_| ())
                };
                match result {
                    Ok(()) => println!("{path}: ok"),
                    Err(e) => {
                        eprintln!("{path}: INVALID: {e}");
                        failed = true;
                    }
                }
            }
            Ok(if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            })
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
