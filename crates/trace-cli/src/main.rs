//! `pim-trace`: inspect exported PIM traces.
//!
//! ```text
//! pim-trace phases  <rounds.jsonl>     per-phase cost breakdown
//! pim-trace hprofile <rounds.jsonl>    distribution of per-round h
//! pim-trace heatmap <rounds.jsonl>     module-imbalance heatmap
//! pim-trace all     <rounds.jsonl>     all of the above
//! pim-trace top     <events.jsonl> [rounds.jsonl]   telemetry dashboard (final frame)
//! pim-trace validate [--strict] <file>...   schema-check exports
//! ```
//!
//! `validate` auto-detects the artefact format: Chrome trace JSON, the
//! JSONL round log, the telemetry event JSONL log, or a Prometheus text
//! exposition. It warns when a trace or event log is *incomplete*
//! (`dropped_rounds` / `dropped_events` > 0 — entries evicted by a cap);
//! with `--strict` an incomplete artefact fails validation.
//!
//! Exit codes: 0 ok, 1 validation failure, 2 usage or IO error.

use std::process::ExitCode;

use pim_trace_cli::{
    completeness_warning, events_completeness_warning, parse_events_jsonl, parse_jsonl,
    render_heatmap, render_hprofile, render_phases, render_top, validate_chrome,
    validate_prometheus,
};

const USAGE: &str =
    "usage: pim-trace <phases|hprofile|heatmap|all|top|validate> [--strict] <file>...";

fn load(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, files) = args.split_first().ok_or(USAGE)?;
    if files.is_empty() {
        return Err(USAGE.into());
    }
    match cmd.as_str() {
        "phases" | "hprofile" | "heatmap" | "all" => {
            for path in files {
                let doc = parse_jsonl(&load(path)?).map_err(|e| format!("{path}: {e}"))?;
                if files.len() > 1 {
                    println!("== {path} ==");
                }
                if cmd == "phases" || cmd == "all" {
                    print!("{}", render_phases(&doc));
                }
                if cmd == "hprofile" || cmd == "all" {
                    if cmd == "all" {
                        println!();
                    }
                    print!("{}", render_hprofile(&doc));
                }
                if cmd == "heatmap" || cmd == "all" {
                    if cmd == "all" {
                        println!();
                    }
                    print!("{}", render_heatmap(&doc));
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "top" => {
            let events =
                parse_events_jsonl(&load(&files[0])?).map_err(|e| format!("{}: {e}", files[0]))?;
            let rounds = match files.get(1) {
                Some(path) => Some(parse_jsonl(&load(path)?).map_err(|e| format!("{path}: {e}"))?),
                None => None,
            };
            print!("{}", render_top(&events, rounds.as_ref(), None));
            Ok(ExitCode::SUCCESS)
        }
        "validate" => {
            let strict = files.iter().any(|f| f == "--strict");
            let files: Vec<&String> = files.iter().filter(|f| *f != "--strict").collect();
            if files.is_empty() {
                return Err(USAGE.into());
            }
            let mut failed = false;
            for path in files {
                let text = load(path)?;
                // Format sniffing: Chrome exports are one JSON document
                // with traceEvents; telemetry event logs open with a
                // telemetry-header line; Prometheus expositions open with
                // a # TYPE comment; everything else must be a valid JSONL
                // round log.
                let head = text.trim_start();
                let chrome =
                    head.starts_with('{') && head[1..].trim_start().starts_with("\"traceEvents\"");
                let result = if chrome {
                    validate_chrome(&text)
                } else if head.starts_with('#') {
                    validate_prometheus(&text).map(|()| None)
                } else if head
                    .lines()
                    .next()
                    .is_some_and(|l| l.contains("\"telemetry-header\""))
                {
                    parse_events_jsonl(&text).map(|doc| events_completeness_warning(&doc))
                } else {
                    parse_jsonl(&text).map(|doc| completeness_warning(&doc))
                };
                match result {
                    Ok(None) => println!("{path}: ok"),
                    Ok(Some(warning)) if strict => {
                        eprintln!("{path}: INVALID (--strict): {warning}");
                        failed = true;
                    }
                    Ok(Some(warning)) => println!("{path}: ok (warning: {warning})"),
                    Err(e) => {
                        eprintln!("{path}: INVALID: {e}");
                        failed = true;
                    }
                }
            }
            Ok(if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            })
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
