//! `pim-trace`: inspect exported PIM traces.
//!
//! ```text
//! pim-trace phases  <rounds.jsonl>     per-phase cost breakdown
//! pim-trace hprofile <rounds.jsonl>    distribution of per-round h
//! pim-trace heatmap <rounds.jsonl>     module-imbalance heatmap
//! pim-trace all     <rounds.jsonl>     all of the above
//! pim-trace validate [--strict] <file>...   schema-check exports (JSONL or Chrome JSON)
//! ```
//!
//! `validate` also warns when a JSONL trace is *incomplete* (its header
//! reports `dropped_rounds > 0` — rounds evicted by the capped ring
//! buffer); with `--strict` an incomplete trace fails validation.
//!
//! Exit codes: 0 ok, 1 validation failure, 2 usage or IO error.

use std::process::ExitCode;

use pim_trace_cli::{
    completeness_warning, parse_jsonl, render_heatmap, render_hprofile, render_phases,
    validate_chrome,
};

const USAGE: &str = "usage: pim-trace <phases|hprofile|heatmap|all|validate> [--strict] <file>...";

fn load(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, files) = args.split_first().ok_or(USAGE)?;
    if files.is_empty() {
        return Err(USAGE.into());
    }
    match cmd.as_str() {
        "phases" | "hprofile" | "heatmap" | "all" => {
            for path in files {
                let doc = parse_jsonl(&load(path)?).map_err(|e| format!("{path}: {e}"))?;
                if files.len() > 1 {
                    println!("== {path} ==");
                }
                if cmd == "phases" || cmd == "all" {
                    print!("{}", render_phases(&doc));
                }
                if cmd == "hprofile" || cmd == "all" {
                    if cmd == "all" {
                        println!();
                    }
                    print!("{}", render_hprofile(&doc));
                }
                if cmd == "heatmap" || cmd == "all" {
                    if cmd == "all" {
                        println!();
                    }
                    print!("{}", render_heatmap(&doc));
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "validate" => {
            let strict = files.iter().any(|f| f == "--strict");
            let files: Vec<&String> = files.iter().filter(|f| *f != "--strict").collect();
            if files.is_empty() {
                return Err(USAGE.into());
            }
            let mut failed = false;
            for path in files {
                let text = load(path)?;
                // Chrome exports are one JSON document with traceEvents;
                // everything else must be a valid JSONL round log.
                let chrome = text.trim_start().starts_with('{')
                    && text.trim_start()[1..]
                        .trim_start()
                        .starts_with("\"traceEvents\"");
                let result = if chrome {
                    validate_chrome(&text).map(|()| None)
                } else {
                    parse_jsonl(&text).map(|doc| completeness_warning(&doc))
                };
                match result {
                    Ok(None) => println!("{path}: ok"),
                    Ok(Some(warning)) if strict => {
                        eprintln!("{path}: INVALID (--strict): {warning}");
                        failed = true;
                    }
                    Ok(Some(warning)) => println!("{path}: ok (warning: {warning})"),
                    Err(e) => {
                        eprintln!("{path}: INVALID: {e}");
                        failed = true;
                    }
                }
            }
            Ok(if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            })
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
