//! Seeded hashing used to place lower-part nodes on PIM modules.
//!
//! The paper distributes each lower-part node to a module chosen "by a hash
//! function on the (key, level) pairs" (§3.1). The adversary controls the
//! batches but, per the model (§2.1), "cannot depend on the outcome of random
//! choices made by the algorithm" — which we realise by seeding the hash with
//! a secret drawn when the structure is created.
//!
//! The mixer is the finalizer of SplitMix64 (Steele et al.), a full-avalanche
//! 64-bit permutation; composing it over seed and inputs gives a fast keyed
//! hash adequate for load-balancing (this is a simulator, not a HashDoS
//! boundary).

/// SplitMix64 finalizer: a bijective full-avalanche mix of a 64-bit word.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keyed hash of a single word.
#[inline]
pub fn hash1(seed: u64, a: u64) -> u64 {
    mix64(seed ^ mix64(a))
}

/// Keyed hash of a pair of words (e.g. `(key, level)`).
#[inline]
pub fn hash2(seed: u64, a: u64, b: u64) -> u64 {
    mix64(seed ^ mix64(a).wrapping_add(mix64(b.wrapping_add(0xD6E8_FEB8_6659_FD93))))
}

/// The module that hosts the lower-part node `(key, level)`.
#[inline]
pub fn module_of(seed: u64, key: i64, level: u8, p: u32) -> u32 {
    debug_assert!(p > 0);
    (hash2(seed, key as u64, level as u64) % p as u64) as u32
}

/// A stateful keyed hasher for building per-module indexes.
#[derive(Debug, Clone, Copy)]
pub struct KeyedHash {
    seed: u64,
}

impl KeyedHash {
    /// Create a hasher with the given secret seed.
    pub fn new(seed: u64) -> Self {
        KeyedHash { seed }
    }

    /// Hash one word.
    #[inline]
    pub fn hash(&self, a: u64) -> u64 {
        hash1(self.seed, a)
    }

    /// Hash a pair.
    #[inline]
    pub fn hash_pair(&self, a: u64, b: u64) -> u64 {
        hash2(self.seed, a, b)
    }

    /// Reduce a hash to a bucket in `0..buckets`.
    #[inline]
    pub fn bucket(&self, a: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (hash1(self.seed, a) % buckets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_sample() {
        // A bijection cannot collide; spot-check a window.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn hash2_depends_on_both_inputs_and_order() {
        let s = 42;
        assert_ne!(hash2(s, 1, 2), hash2(s, 2, 1));
        assert_ne!(hash2(s, 1, 2), hash2(s, 1, 3));
        assert_ne!(hash2(s, 1, 2), hash2(s, 4, 2));
    }

    #[test]
    fn different_seeds_give_different_placements() {
        let p = 64;
        let a: Vec<u32> = (0..256).map(|k| module_of(1, k, 0, p)).collect();
        let b: Vec<u32> = (0..256).map(|k| module_of(2, k, 0, p)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn module_of_is_in_range_and_roughly_uniform() {
        let p = 16u32;
        let mut counts = vec![0usize; p as usize];
        for key in 0..16_000i64 {
            let m = module_of(7, key, 3, p);
            assert!(m < p);
            counts[m as usize] += 1;
        }
        let expect = 16_000 / p as usize;
        for &c in &counts {
            assert!(
                c > expect / 2 && c < expect * 2,
                "placement far from uniform: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn keyed_hash_bucket_in_range() {
        let h = KeyedHash::new(123);
        for a in 0..1000 {
            assert!(h.bucket(a, 7) < 7);
        }
    }

    #[test]
    fn levels_spread_same_key() {
        // The same key at different levels should usually land on different
        // modules — that is what spreads a tower across the machine.
        let p = 64;
        let placements: std::collections::HashSet<u32> =
            (0u8..16).map(|l| module_of(9, 12345, l, p)).collect();
        assert!(placements.len() > 4);
    }
}
