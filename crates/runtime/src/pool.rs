//! `pim-pool` — the hand-rolled deterministic parallel executor.
//!
//! Everything CPU-side that *executes* in parallel (the per-round module
//! sweep in [`crate::system::PimSystem`], the sorts and scans in
//! `pim-primitives`) routes through this module. The design contract,
//! which the CI determinism job enforces byte-for-byte:
//!
//! > **Thread count changes wall-clock time and nothing else.** Model
//! > metrics, replies, traces and span stats are bit-identical for every
//! > `PIM_THREADS` value; `PIM_THREADS=1` is bit-identical to the old
//! > sequential path.
//!
//! How that is achieved:
//!
//! * **Scoped workers.** Each parallel region spawns its workers with
//!   [`std::thread::scope`] — no global queues, no `'static` bounds, no
//!   unsafe. A region is a pure fork/join bracket.
//! * **Chunked range scheduling.** Work is split into contiguous index
//!   chunks; workers claim chunks dynamically (an atomic cursor or a
//!   popped queue). *Which worker* runs a chunk is racy; *what the chunk
//!   computes* is not.
//! * **Per-worker outboxes, merged in index order.** Workers collect
//!   `(chunk start, results)` locally; the caller sorts the outboxes by
//!   start index after the join, so the merged output order equals the
//!   sequential iteration order no matter how chunks were interleaved.
//! * **Stable sorts only.** The parallel sort is a bottom-up stable merge
//!   sort, and the sequential fallback is `slice::sort_by` (also stable).
//!   A stable sort's output permutation is *canonical* — fully determined
//!   by the input — so any chunking produces the same bytes.
//! * **Panic propagation.** A panic in any worker is re-raised in the
//!   caller after all workers have been joined (no detached threads, no
//!   deadlock), exactly like a panic in the sequential loop.
//!
//! The executor is configured by [`ExecConfig`]: explicitly via
//! [`configure`], or from the `PIM_THREADS` environment variable on first
//! use (default: all available cores). Small regions stay sequential —
//! below [`ExecConfig::par_threshold`] units of work the fork/join bracket
//! costs more than it buys — and the threshold depends only on input
//! sizes, never on timing, so it cannot break determinism.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// Executor configuration: worker count and sequential cutoffs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads per parallel region (including the calling thread).
    /// `1` disables forking entirely — the exact old sequential path.
    pub threads: usize,
    /// Minimum work units (caller-supplied hint, usually item or task
    /// counts) before a region forks; smaller regions run inline.
    pub par_threshold: usize,
    /// Minimum slice length before a sort forks.
    pub sort_threshold: usize,
}

impl ExecConfig {
    /// Threshold defaults chosen so that polylog-sized control rounds stay
    /// inline and only data-proportional sweeps fork.
    const DEFAULT_PAR_THRESHOLD: usize = 512;
    const DEFAULT_SORT_THRESHOLD: usize = 8 * 1024;

    /// Config with an explicit thread count and default cutoffs.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
            par_threshold: Self::DEFAULT_PAR_THRESHOLD,
            sort_threshold: Self::DEFAULT_SORT_THRESHOLD,
        }
    }

    /// The strictly sequential config (`threads = 1`).
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// Read `PIM_THREADS` (falling back to the machine's available
    /// parallelism, then to 1). `PIM_THREADS=0` also means "all cores".
    pub fn from_env() -> Self {
        Self::from_settings(&crate::envcfg::EnvSettings::from_env())
    }

    /// Build from pre-parsed [`crate::envcfg::EnvSettings`] (absent/zero/
    /// garbage thread counts fall back to the machine's available
    /// parallelism, then to 1).
    pub fn from_settings(settings: &crate::envcfg::EnvSettings) -> Self {
        let threads = settings.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        Self::with_threads(threads)
    }
}

/// Global config, `None` until first use ([`current`] then seeds it from
/// the environment). A `Mutex` rather than atomics: it is read once per
/// parallel region, which is noise next to a fork/join bracket.
static CONFIG: Mutex<Option<ExecConfig>> = Mutex::new(None);

/// Install an executor config process-wide (benchmark thread sweeps, tests).
pub fn configure(cfg: ExecConfig) {
    *CONFIG.lock().expect("pool config poisoned") = Some(ExecConfig {
        threads: cfg.threads.max(1),
        ..cfg
    });
}

/// The active config (seeded from `PIM_THREADS` on first call).
pub fn current() -> ExecConfig {
    let mut guard = CONFIG.lock().expect("pool config poisoned");
    *guard.get_or_insert_with(ExecConfig::from_env)
}

/// Number of worker threads parallel regions will use. This is what the
/// vendored `rayon` facade's `current_num_threads()` reports.
pub fn current_num_threads() -> usize {
    current().threads
}

// ---------------------------------------------------------------------------
// The fork/join bracket.
// ---------------------------------------------------------------------------

/// Run `body(worker_index)` on `threads` workers: the calling thread is
/// worker 0, the rest are scoped spawns. All workers are joined before
/// returning; the first worker panic is re-raised here afterwards.
fn fork_join(threads: usize, body: impl Fn(usize) + Sync) {
    if threads <= 1 {
        body(0);
        return;
    }
    std::thread::scope(|s| {
        let body = &body;
        let handles: Vec<_> = (1..threads).map(|w| s.spawn(move || body(w))).collect();
        // The caller participates; if it panics, `scope` still joins the
        // spawned workers before unwinding further.
        body(0);
        let mut panic_payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                panic_payload.get_or_insert(p);
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
    });
}

/// Chunk size for `n` items on `threads` workers: ~4 chunks per worker so
/// a straggler chunk cannot idle the rest of the pool, floored so tiny
/// chunks don't drown in claim traffic. Only load balance depends on this
/// — outputs are merged by index, so any chunking yields the same bytes.
fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1) * 4).max(16)
}

/// Collected `(start index, results)` segments → one `Vec` in index order.
fn merge_outboxes<R>(mut segments: Vec<(usize, Vec<R>)>, n: usize) -> Vec<R> {
    segments.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, seg) in segments {
        out.extend(seg);
    }
    debug_assert_eq!(out.len(), n);
    out
}

// ---------------------------------------------------------------------------
// Parallel maps.
// ---------------------------------------------------------------------------

/// Map `f` over `0..n`, returning results in index order. `weight` is the
/// caller's estimate of total work units (use `n` when in doubt); regions
/// below the threshold run inline.
pub fn par_map_indexed<R, F>(n: usize, weight: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(&current(), n, weight, f)
}

/// [`par_map_indexed`] with an explicit config (benchmarks, tests).
pub fn par_map_indexed_with<R, F>(cfg: &ExecConfig, n: usize, weight: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = cfg.threads.min(n);
    if threads <= 1 || weight < cfg.par_threshold {
        return (0..n).map(f).collect();
    }
    let chunk = chunk_size(n, threads);
    let cursor = AtomicUsize::new(0);
    let outboxes: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    fork_join(threads, |_| {
        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
        loop {
            let start = cursor.fetch_add(chunk, AtomicOrdering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            local.push((start, (start..end).map(&f).collect()));
        }
        outboxes.lock().expect("pool outbox poisoned").extend(local);
    });
    merge_outboxes(outboxes.into_inner().expect("pool outbox poisoned"), n)
}

/// Zip a mutable slice with owned per-item inputs and map in parallel:
/// `out[i] = f(i, &mut items[i], inputs[i])`, results in index order.
///
/// This is the round engine's shape: `items` are the `P` modules, `inputs`
/// their inboxes, `f` one module's task sweep ("chunked module-range
/// scheduling" — workers claim contiguous module ranges).
pub fn par_zip_map_mut<T, I, R, F>(items: &mut [T], inputs: Vec<I>, weight: usize, f: F) -> Vec<R>
where
    T: Send,
    I: Send,
    R: Send,
    F: Fn(usize, &mut T, I) -> R + Sync,
{
    par_zip_map_mut_with(&current(), items, inputs, weight, f)
}

/// [`par_zip_map_mut`] with an explicit config (benchmarks, tests).
pub fn par_zip_map_mut_with<T, I, R, F>(
    cfg: &ExecConfig,
    items: &mut [T],
    inputs: Vec<I>,
    weight: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    I: Send,
    R: Send,
    F: Fn(usize, &mut T, I) -> R + Sync,
{
    assert_eq!(items.len(), inputs.len(), "zip length mismatch");
    let n = items.len();
    let threads = cfg.threads.min(n);
    if threads <= 1 || weight < cfg.par_threshold {
        return items
            .iter_mut()
            .zip(inputs)
            .enumerate()
            .map(|(i, (t, inp))| f(i, t, inp))
            .collect();
    }
    // Pre-split into (start, module range, input range) work units; the
    // borrow checker sees disjoint `&mut` chunks, so no unsafe is needed.
    let chunk = chunk_size(n, threads);
    let mut units: Vec<(usize, &mut [T], Vec<I>)> = Vec::with_capacity(n.div_ceil(chunk));
    {
        let mut rest = items;
        let mut inputs = inputs.into_iter();
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            units.push((base, head, inputs.by_ref().take(take).collect()));
            rest = tail;
            base += take;
        }
    }
    let queue = Mutex::new(units);
    let outboxes: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    fork_join(threads, |_| {
        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
        loop {
            let unit = queue.lock().expect("pool queue poisoned").pop();
            let Some((base, ts, is)) = unit else { break };
            let rs: Vec<R> = ts
                .iter_mut()
                .zip(is)
                .enumerate()
                .map(|(j, (t, inp))| f(base + j, t, inp))
                .collect();
            local.push((base, rs));
        }
        outboxes.lock().expect("pool outbox poisoned").extend(local);
    });
    merge_outboxes(outboxes.into_inner().expect("pool outbox poisoned"), n)
}

/// Zip a mutable slice with two mutable companion slices and sweep in
/// parallel: `f(i, &mut items[i], &mut a[i], &mut b[i])`.
///
/// This is the *recycled* round-engine shape: `items` are the `P` modules,
/// `a` their inboxes (drained in place, capacity retained), `b` their
/// persistent per-module outboxes. Because every output is written into
/// its own indexed slot of `b`, the index-ordered "merge" of worker
/// results is free — there are no per-worker outboxes to collect, sort or
/// concatenate, so the parallel bracket allocates only its work-unit list.
/// The sequential path (threads ≤ 1 or weight below the threshold)
/// allocates nothing at all.
pub fn par_zip2_for_each_mut<T, A, B, F>(
    items: &mut [T],
    a: &mut [A],
    b: &mut [B],
    weight: usize,
    f: F,
) where
    T: Send,
    A: Send,
    B: Send,
    F: Fn(usize, &mut T, &mut A, &mut B) + Sync,
{
    par_zip2_for_each_mut_with(&current(), items, a, b, weight, f)
}

/// [`par_zip2_for_each_mut`] with an explicit config (benchmarks, tests).
pub fn par_zip2_for_each_mut_with<T, A, B, F>(
    cfg: &ExecConfig,
    items: &mut [T],
    a: &mut [A],
    b: &mut [B],
    weight: usize,
    f: F,
) where
    T: Send,
    A: Send,
    B: Send,
    F: Fn(usize, &mut T, &mut A, &mut B) + Sync,
{
    assert_eq!(items.len(), a.len(), "zip length mismatch");
    assert_eq!(items.len(), b.len(), "zip length mismatch");
    let n = items.len();
    let threads = cfg.threads.min(n);
    if threads <= 1 || weight < cfg.par_threshold {
        for (i, ((t, ai), bi)) in items
            .iter_mut()
            .zip(a.iter_mut())
            .zip(b.iter_mut())
            .enumerate()
        {
            f(i, t, ai, bi);
        }
        return;
    }
    // Pre-split all three slices into matching disjoint chunks; the borrow
    // checker sees disjoint `&mut` regions, so no unsafe is needed.
    type Unit<'u, T, A, B> = (usize, &'u mut [T], &'u mut [A], &'u mut [B]);
    let chunk = chunk_size(n, threads);
    let mut units: Vec<Unit<T, A, B>> = Vec::with_capacity(n.div_ceil(chunk));
    {
        let (mut rt, mut ra, mut rb) = (items, a, b);
        let mut base = 0usize;
        while !rt.is_empty() {
            let take = chunk.min(rt.len());
            let (ht, tt) = rt.split_at_mut(take);
            let (ha, ta) = ra.split_at_mut(take);
            let (hb, tb) = rb.split_at_mut(take);
            units.push((base, ht, ha, hb));
            (rt, ra, rb) = (tt, ta, tb);
            base += take;
        }
    }
    let queue = Mutex::new(units);
    fork_join(threads, |_| loop {
        let unit = queue.lock().expect("pool queue poisoned").pop();
        let Some((base, ts, asl, bsl)) = unit else {
            break;
        };
        for (j, ((t, ai), bi)) in ts
            .iter_mut()
            .zip(asl.iter_mut())
            .zip(bsl.iter_mut())
            .enumerate()
        {
            f(base + j, t, ai, bi);
        }
    });
}

// ---------------------------------------------------------------------------
// Two-stage overlap (the submit/overlap API).
// ---------------------------------------------------------------------------

/// Run `main` on the calling thread while `side` runs on one scoped spawn
/// thread; returns both results after joining. This is the pipelining
/// bracket: `main` is the committed work of the current stage (it may
/// itself open parallel regions), `side` is the *staging* of the next
/// stage, and the two must touch disjoint data.
///
/// Determinism contract: with `threads <= 1` the pair runs sequentially
/// (`side` first, then `main` — staging lands before the stage that will
/// consume it, exactly as in the overlapped schedule), and because the
/// closures are data-disjoint the results are identical either way. A
/// panic on either thread is re-raised in the caller after both have been
/// joined.
pub fn run_overlapped<RA, RB, A, B>(main: A, side: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    run_overlapped_with(&current(), main, side)
}

/// [`run_overlapped`] with an explicit config (benchmarks, tests).
pub fn run_overlapped_with<RA, RB, A, B>(cfg: &ExecConfig, main: A, side: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    if cfg.threads <= 1 {
        let rb = side();
        (main(), rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(side);
            let ra = main();
            match hb.join() {
                Ok(rb) => (ra, rb),
                Err(p) => std::panic::resume_unwind(p),
            }
        })
    }
}

/// Apply `f(i, &mut items[i])` to every element in parallel.
pub fn par_for_each_mut<T, F>(items: &mut [T], weight: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let cfg = current();
    let n = items.len();
    let threads = cfg.threads.min(n);
    if threads <= 1 || weight < cfg.par_threshold {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = chunk_size(n, threads);
    let units: Vec<(usize, &mut [T])> = split_indexed(items, chunk);
    let queue = Mutex::new(units);
    fork_join(threads, |_| loop {
        let unit = queue.lock().expect("pool queue poisoned").pop();
        let Some((base, ts)) = unit else { break };
        for (j, t) in ts.iter_mut().enumerate() {
            f(base + j, t);
        }
    });
}

/// Apply `f(chunk_index, chunk)` to fixed-size chunks of `items` in
/// parallel. The chunking is the *caller's* (e.g. a scan's block size) —
/// it must not be derived from the thread count if block identities leak
/// into outputs.
pub fn par_chunks_mut<T, F>(items: &mut [T], chunk: usize, weight: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_with(&current(), items, chunk, weight, f)
}

/// [`par_chunks_mut`] with an explicit config (benchmarks, tests).
pub fn par_chunks_mut_with<T, F>(
    cfg: &ExecConfig,
    items: &mut [T],
    chunk: usize,
    weight: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n_chunks = items.len().div_ceil(chunk);
    let threads = cfg.threads.min(n_chunks);
    if threads <= 1 || weight < cfg.par_threshold {
        for (ci, c) in items.chunks_mut(chunk).enumerate() {
            f(ci, c);
        }
        return;
    }
    let units: Vec<(usize, &mut [T])> = items.chunks_mut(chunk).enumerate().collect();
    let queue = Mutex::new(units);
    fork_join(threads, |_| loop {
        let unit = queue.lock().expect("pool queue poisoned").pop();
        let Some((ci, c)) = unit else { break };
        f(ci, c);
    });
}

/// Split a slice into `(start index, chunk)` units.
fn split_indexed<T>(items: &mut [T], chunk: usize) -> Vec<(usize, &mut [T])> {
    let mut units = Vec::with_capacity(items.len().div_ceil(chunk.max(1)));
    let mut rest = items;
    let mut base = 0usize;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        units.push((base, head));
        rest = tail;
        base += take;
    }
    units
}

// ---------------------------------------------------------------------------
// Parallel stable merge sort.
// ---------------------------------------------------------------------------

/// Sort by a comparator — **stable** at every thread count, so the output
/// permutation is canonical and byte-identical across `PIM_THREADS`
/// settings. `T: Copy` lets the merge layers ping-pong through a plain
/// auxiliary buffer without unsafe; every type sorted on the simulator's
/// hot paths (keys, key/value pairs) is `Copy`.
pub fn par_sort_by<T, F>(v: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    par_sort_by_with(&current(), v, cmp)
}

/// [`par_sort_by`] with an explicit config (benchmarks, tests).
pub fn par_sort_by_with<T, F>(cfg: &ExecConfig, v: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    if cfg.threads <= 1 || n < cfg.sort_threshold {
        v.sort_by(|a, b| cmp(a, b));
        return;
    }
    let threads = cfg.threads;
    // Initial runs: ~2 per worker, so run sorting saturates the pool and
    // the merge tree still has parallel layers.
    let width = n.div_ceil(threads * 2).max(1);
    par_chunks_mut_with(cfg, v, width, n, |_, run| run.sort_by(|a, b| cmp(a, b)));

    // Bottom-up merge, ping-ponging between `v` and an aux buffer. Pair
    // regions are disjoint, so each merge layer is an independent-unit
    // parallel sweep.
    let mut aux: Vec<T> = v.to_vec();
    let mut in_v = true;
    let mut width = width;
    while width < n {
        if in_v {
            merge_layer(&*v, &mut aux, width, threads, &cmp);
        } else {
            merge_layer(&aux, v, width, threads, &cmp);
        }
        in_v = !in_v;
        width *= 2;
    }
    if !in_v {
        v.copy_from_slice(&aux);
    }
}

/// Merge adjacent sorted runs of length `width` from `src` into `dst`.
fn merge_layer<T, F>(src: &[T], dst: &mut [T], width: usize, threads: usize, cmp: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let units: Vec<(usize, &mut [T])> = split_indexed(dst, 2 * width);
    let queue = Mutex::new(units);
    fork_join(threads, |_| loop {
        let unit = queue.lock().expect("pool queue poisoned").pop();
        let Some((base, region)) = unit else { break };
        let mid = width.min(region.len());
        let (left, right) = (
            &src[base..base + mid],
            &src[base + mid..base + region.len()],
        );
        let (mut i, mut j) = (0usize, 0usize);
        for slot in region.iter_mut() {
            // `<=` keeps the left (earlier) element on ties — stability.
            *slot = if j >= right.len()
                || (i < left.len() && cmp(&left[i], &right[j]) != Ordering::Greater)
            {
                i += 1;
                left[i - 1]
            } else {
                j += 1;
                right[j - 1]
            };
        }
    });
}

/// Stable parallel sort of an `Ord` slice.
pub fn par_sort<T: Copy + Ord + Send + Sync>(v: &mut [T]) {
    par_sort_by(v, T::cmp)
}

/// Stable parallel sort by an extracted key.
pub fn par_sort_by_key<T, K, F>(v: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    par_sort_by(v, |a, b| key(a).cmp(&key(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercise the parallel paths regardless of the host's core count or
    /// the ambient global config: thresholds at zero force forking.
    fn cfg(threads: usize) -> ExecConfig {
        ExecConfig {
            threads,
            par_threshold: 0,
            sort_threshold: 0,
        }
    }

    #[test]
    fn map_matches_sequential_for_every_thread_count() {
        let expect: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 17] {
            let got = par_map_indexed_with(&cfg(threads), 1000, 1000, |i| (i as u64) * (i as u64));
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn zip_map_mut_updates_in_place_and_orders_results() {
        for threads in [1, 4, 9] {
            let mut items: Vec<u64> = vec![0; 500];
            let inputs: Vec<u64> = (0..500u64).collect();
            let out = par_zip_map_mut_with(&cfg(threads), &mut items, inputs, 500, |i, t, inp| {
                *t = inp + 1;
                (i as u64) * 2
            });
            assert_eq!(
                items,
                (1..=500u64).collect::<Vec<_>>(),
                "threads = {threads}"
            );
            assert_eq!(out, (0..500u64).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zip2_for_each_matches_sequential_for_every_thread_count() {
        for threads in [1, 3, 8] {
            let mut items: Vec<u64> = vec![0; 333];
            let mut a: Vec<u64> = (0..333u64).collect();
            let mut b: Vec<u64> = vec![0; 333];
            par_zip2_for_each_mut_with(
                &cfg(threads),
                &mut items,
                &mut a,
                &mut b,
                333,
                |i, t, ai, bi| {
                    *t = *ai * 2;
                    *bi = i as u64 + *ai;
                },
            );
            assert_eq!(items, (0..333u64).map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(b, (0..333u64).map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(a, (0..333u64).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn sort_is_stable_and_matches_std_across_thread_counts() {
        // Key with distinguishable ties: stability is observable.
        let items: Vec<(u8, u32)> = (0..10_000u32).map(|i| ((i % 7) as u8, i)).collect();
        let mut expect = items.clone();
        expect.sort_by_key(|&(k, _)| k);
        for threads in [1, 2, 5, 8] {
            let mut got = items.clone();
            par_sort_by_with(&cfg(threads), &mut got, |a, b| a.0.cmp(&b.0));
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn sort_handles_tiny_and_ragged_lengths() {
        for n in [0usize, 1, 2, 3, 15, 16, 17, 1023] {
            let mut v: Vec<u64> = (0..n as u64).rev().collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            par_sort_by_with(&cfg(4), &mut v, u64::cmp);
            assert_eq!(v, expect, "n = {n}");
        }
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            par_map_indexed_with(&cfg(4), 256, 256, |i| {
                if i == 137 {
                    panic!("worker {i} died");
                }
                i
            })
        });
        assert!(result.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn caller_thread_panic_propagates_too() {
        // Worker 0 is the calling thread; chunk claiming means any worker
        // may hit the poisoned index, including the caller.
        let result = std::panic::catch_unwind(|| {
            par_for_each_mut(&mut [0u8; 4], usize::MAX, |_, _| panic!("boom"))
        });
        assert!(result.is_err());
    }

    #[test]
    fn sequential_cutoff_stays_inline() {
        // weight below the threshold: must not fork (observable via the
        // thread id seen by `f` — all on the caller).
        let caller = std::thread::current().id();
        let cfg = ExecConfig {
            threads: 8,
            par_threshold: 1_000_000,
            sort_threshold: 0,
        };
        let ids = par_map_indexed_with(&cfg, 64, 64, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn overlap_returns_both_results_at_every_thread_count() {
        for threads in [1, 2, 8] {
            let mut staged: Vec<u64> = Vec::new();
            let (a, ()) = run_overlapped_with(
                &cfg(threads),
                || (0..100u64).sum::<u64>(),
                || staged.extend(0..10u64),
            );
            assert_eq!(a, 4950, "threads = {threads}");
            assert_eq!(staged, (0..10u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn overlap_side_panic_propagates() {
        for threads in [1, 4] {
            let result = std::panic::catch_unwind(|| {
                run_overlapped_with(&cfg(threads), || 1u32, || panic!("side died"))
            });
            assert!(result.is_err(), "threads = {threads}");
        }
    }

    #[test]
    fn overlap_main_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_overlapped_with(&cfg(4), || panic!("main died"), || 2u32)
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_parsing_clamps_to_one() {
        assert_eq!(ExecConfig::with_threads(0).threads, 1);
        assert_eq!(ExecConfig::sequential().threads, 1);
    }

    #[test]
    fn chunk_sizes_cover_the_range() {
        for (n, t) in [(1usize, 1usize), (7, 8), (1000, 4), (16, 16)] {
            let c = chunk_size(n, t);
            assert!(c >= 1);
            assert!(c * (n.div_ceil(c)) >= n);
        }
    }
}
