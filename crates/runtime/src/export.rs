//! Trace export: Chrome trace-event JSON and a JSONL round log.
//!
//! Two machine-readable serialisations of a run, both fully deterministic
//! (no wall-clock, no hashing order — the time axis is the round index,
//! one round = 1 µs of trace time):
//!
//! * [`chrome_trace`] — the Chrome trace-event format, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. Spans
//!   become complete (`"ph":"X"`) slices with their exclusive §2.1 stats
//!   in `args`; each round emits counter (`"ph":"C"`) tracks for `h`,
//!   max work and per-module messages; injected faults become instant
//!   (`"ph":"i"`) events on the faulted round.
//! * [`rounds_jsonl`] — one JSON object per line: a header line carrying
//!   `p`, `dropped_rounds`, the span table and per-module histogram
//!   summaries, then one line per recorded round with per-module counts
//!   and fault records. This is the format the `pim-trace` CLI consumes.
//!
//! The workspace is dependency-free, so this module carries its own
//! minimal JSON value, writer and parser ([`Json`]); the parser exists so
//! the CLI and the schema-checking tests share one implementation.

use crate::fault::{FaultKind, FaultRecord};
use crate::span::ProbeReport;
use crate::trace::Trace;

// ---------------------------------------------------------------------------
// Minimal JSON value, writer, parser.
// ---------------------------------------------------------------------------

/// A JSON value. Objects preserve insertion order (determinism).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serialise to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{}", n));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Shorthand for an integral [`Json::Num`].
pub fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

/// Shorthand for a [`Json::Str`].
pub fn str(v: &str) -> Json {
    Json::Str(v.to_string())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document. Returns the value or an error with the byte
/// offset where parsing failed.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {}", pos));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {}", start))
}

// ---------------------------------------------------------------------------
// Export bundle and serialisers.
// ---------------------------------------------------------------------------

/// Everything one export needs: the machine size, the (possibly
/// ring-capped) per-round trace, and the optional span report.
#[derive(Debug, Clone, Copy)]
pub struct ExportBundle<'a> {
    /// Number of PIM modules.
    pub p: u32,
    /// The recorded rounds.
    pub trace: &'a Trace,
    /// The span/histogram report, when a probe was enabled.
    pub report: Option<&'a ProbeReport>,
}

fn fault_label(f: &FaultRecord) -> String {
    let tag = match f.kind {
        FaultKind::Crash => "crash",
        FaultKind::Stall => "stall",
        FaultKind::DropTask { .. } => "drop_task",
        FaultKind::DropReply { .. } => "drop_reply",
        FaultKind::Slow { .. } => "slow",
    };
    format!("{}(m{})", tag, f.module)
}

fn fault_json(f: &FaultRecord) -> Json {
    let mut fields = vec![("module".to_string(), num(u64::from(f.module)))];
    let kind = match f.kind {
        FaultKind::Crash => "crash",
        FaultKind::Stall => "stall",
        FaultKind::DropTask { nth } => {
            fields.push(("nth".to_string(), num(nth)));
            "drop_task"
        }
        FaultKind::DropReply { nth } => {
            fields.push(("nth".to_string(), num(nth)));
            "drop_reply"
        }
        FaultKind::Slow { factor } => {
            fields.push(("factor".to_string(), num(factor)));
            "slow"
        }
    };
    fields.insert(0, ("kind".to_string(), str(kind)));
    Json::Obj(fields)
}

fn stats_fields(m: &crate::metrics::Metrics) -> Vec<(String, Json)> {
    vec![
        ("rounds".to_string(), num(m.rounds)),
        ("io_time".to_string(), num(m.io_time)),
        ("pim_time".to_string(), num(m.pim_time)),
        ("messages".to_string(), num(m.total_messages)),
        ("work".to_string(), num(m.total_pim_work)),
        ("cpu_work".to_string(), num(m.cpu_work)),
        ("cpu_depth".to_string(), num(m.cpu_depth)),
        ("shared_mem_peak".to_string(), num(m.shared_mem_peak)),
        ("retries".to_string(), num(m.retries_issued)),
        ("recovery_rounds".to_string(), num(m.recovery_rounds)),
    ]
}

/// Serialise the bundle to Chrome trace-event JSON (Perfetto-loadable).
///
/// One round is one microsecond of trace time; zero-round spans render
/// with `dur: 1` so they stay visible (their exact round extent is in
/// `args`).
pub fn chrome_trace(bundle: &ExportBundle<'_>) -> String {
    let mut events: Vec<Json> = Vec::new();
    events.push(Json::Obj(vec![
        ("name".to_string(), str("process_name")),
        ("ph".to_string(), str("M")),
        ("pid".to_string(), num(0)),
        ("tid".to_string(), num(0)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), str("pim-machine"))]),
        ),
    ]));
    events.push(Json::Obj(vec![
        ("name".to_string(), str("thread_name")),
        ("ph".to_string(), str("M")),
        ("pid".to_string(), num(0)),
        ("tid".to_string(), num(0)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), str("spans"))]),
        ),
    ]));

    if let Some(report) = bundle.report {
        for s in &report.spans {
            let dur = (s.end_round - s.start_round).max(1);
            let mut args = stats_fields(&s.stats);
            args.insert(0, ("path".to_string(), str(&report.path(s.id))));
            events.push(Json::Obj(vec![
                ("name".to_string(), str(s.name)),
                ("cat".to_string(), str("span")),
                ("ph".to_string(), str("X")),
                ("pid".to_string(), num(0)),
                ("tid".to_string(), num(0)),
                ("ts".to_string(), num(s.start_round)),
                ("dur".to_string(), num(dur)),
                ("args".to_string(), Json::Obj(args)),
            ]));
        }
    }

    for r in &bundle.trace.rounds {
        events.push(Json::Obj(vec![
            ("name".to_string(), str("round")),
            ("ph".to_string(), str("C")),
            ("pid".to_string(), num(0)),
            ("ts".to_string(), num(r.round)),
            (
                "args".to_string(),
                Json::Obj(vec![
                    ("h".to_string(), num(r.h)),
                    ("max_work".to_string(), num(r.max_work)),
                ]),
            ),
        ]));
        if !r.per_module_messages.is_empty() {
            let lanes = r
                .per_module_messages
                .iter()
                .enumerate()
                .map(|(m, &v)| (format!("m{}", m), num(v)))
                .collect();
            events.push(Json::Obj(vec![
                ("name".to_string(), str("module_messages")),
                ("ph".to_string(), str("C")),
                ("pid".to_string(), num(0)),
                ("ts".to_string(), num(r.round)),
                ("args".to_string(), Json::Obj(lanes)),
            ]));
        }
        for f in &r.faults {
            events.push(Json::Obj(vec![
                ("name".to_string(), str(&fault_label(f))),
                ("cat".to_string(), str("fault")),
                ("ph".to_string(), str("i")),
                ("pid".to_string(), num(0)),
                ("tid".to_string(), num(0)),
                ("ts".to_string(), num(r.round)),
                ("s".to_string(), str("g")),
                ("args".to_string(), fault_json(f)),
            ]));
        }
    }

    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), str("ms")),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                ("p".to_string(), num(u64::from(bundle.p))),
                (
                    "dropped_rounds".to_string(),
                    num(bundle.trace.dropped_rounds()),
                ),
            ]),
        ),
    ])
    .to_json()
}

fn histogram_json(h: &crate::histogram::Histogram) -> Json {
    Json::Obj(vec![
        ("count".to_string(), num(h.count())),
        ("sum".to_string(), num(h.sum())),
        ("max".to_string(), num(h.max())),
        ("p50".to_string(), num(h.p50())),
        ("p95".to_string(), num(h.p95())),
        ("p99".to_string(), num(h.p99())),
        ("p999".to_string(), num(h.p999())),
        (
            "buckets".to_string(),
            Json::Arr(
                h.buckets()
                    .map(|b| {
                        Json::Obj(vec![
                            ("le".to_string(), num(b.upper)),
                            ("count".to_string(), num(b.count)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serialise the bundle to a JSONL round log.
///
/// Line 1 is a `"type":"header"` object (machine size, truncation, span
/// table, per-module histogram summaries); every further line is a
/// `"type":"round"` object. The `pim-trace` CLI consumes this format.
pub fn rounds_jsonl(bundle: &ExportBundle<'_>) -> String {
    let mut header = vec![
        ("type".to_string(), str("header")),
        ("version".to_string(), num(1)),
        ("p".to_string(), num(u64::from(bundle.p))),
        (
            "dropped_rounds".to_string(),
            num(bundle.trace.dropped_rounds()),
        ),
        (
            "recorded_rounds".to_string(),
            num(bundle.trace.rounds.len() as u64),
        ),
    ];
    if let Some(report) = bundle.report {
        let spans = report
            .spans
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("id".to_string(), num(u64::from(s.id))),
                    (
                        "parent".to_string(),
                        s.parent.map_or(Json::Null, |p| num(u64::from(p))),
                    ),
                    ("name".to_string(), str(s.name)),
                    ("path".to_string(), str(&report.path(s.id))),
                    ("depth".to_string(), num(u64::from(s.depth))),
                    ("start_round".to_string(), num(s.start_round)),
                    ("end_round".to_string(), num(s.end_round)),
                ];
                fields.extend(stats_fields(&s.stats));
                Json::Obj(fields)
            })
            .collect();
        header.push(("spans".to_string(), Json::Arr(spans)));
        let modules = (0..report.lanes.p() as usize)
            .map(|m| {
                Json::Obj(vec![
                    ("module".to_string(), num(m as u64)),
                    (
                        "messages".to_string(),
                        histogram_json(&report.lanes.messages[m]),
                    ),
                    ("work".to_string(), histogram_json(&report.lanes.work[m])),
                ])
            })
            .collect();
        header.push(("modules".to_string(), Json::Arr(modules)));
    }

    let mut out = Json::Obj(header).to_json();
    out.push('\n');
    for r in &bundle.trace.rounds {
        let line = Json::Obj(vec![
            ("type".to_string(), str("round")),
            ("round".to_string(), num(r.round)),
            ("h".to_string(), num(r.h)),
            ("max_work".to_string(), num(r.max_work)),
            ("messages".to_string(), num(r.messages)),
            ("work".to_string(), num(r.work)),
            (
                "per_module".to_string(),
                Json::Arr(r.per_module_messages.iter().map(|&v| num(v)).collect()),
            ),
            (
                "faults".to_string(),
                Json::Arr(r.faults.iter().map(fault_json).collect()),
            ),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultRecord};
    use crate::trace::RoundTrace;

    fn sample_trace() -> Trace {
        let mut t = Trace::default();
        t.record(RoundTrace {
            round: 0,
            h: 3,
            max_work: 4,
            messages: 5,
            work: 6,
            per_module_messages: vec![3, 2],
            faults: vec![],
        });
        t.record(RoundTrace {
            round: 1,
            h: 7,
            max_work: 7,
            messages: 7,
            work: 7,
            per_module_messages: vec![0, 7],
            faults: vec![FaultRecord {
                module: 1,
                kind: FaultKind::Slow { factor: 3 },
            }],
        });
        t
    }

    #[test]
    fn json_roundtrip() {
        let v = Json::Obj(vec![
            ("a".to_string(), num(3)),
            ("b".to_string(), str("x\"y\n")),
            (
                "c".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(1.5)]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let t = sample_trace();
        let out = chrome_trace(&ExportBundle {
            p: 2,
            trace: &t,
            report: None,
        });
        let v = parse(&out).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events.len() >= 4); // 2 metadata + 2 round counters
        assert!(out.contains("slow(m1)"));
        assert_eq!(
            v.get("otherData").unwrap().get("p").unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn jsonl_header_then_rounds() {
        let t = sample_trace();
        let out = rounds_jsonl(&ExportBundle {
            p: 2,
            trace: &t,
            report: None,
        });
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = parse(lines[0]).unwrap();
        assert_eq!(header.get("type").unwrap().as_str(), Some("header"));
        assert_eq!(header.get("p").unwrap().as_u64(), Some(2));
        let round1 = parse(lines[2]).unwrap();
        assert_eq!(round1.get("h").unwrap().as_u64(), Some(7));
        let faults = round1.get("faults").unwrap().as_array().unwrap();
        assert_eq!(faults[0].get("kind").unwrap().as_str(), Some("slow"));
        assert_eq!(faults[0].get("factor").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn export_is_deterministic() {
        let t = sample_trace();
        let b = ExportBundle {
            p: 2,
            trace: &t,
            report: None,
        };
        assert_eq!(chrome_trace(&b), chrome_trace(&b));
        assert_eq!(rounds_jsonl(&b), rounds_jsonl(&b));
    }
}
