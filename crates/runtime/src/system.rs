//! The PIM machine: `P` modules + bulk-synchronous network + metrics.
//!
//! [`PimSystem`] drives the network in rounds (§2.1): between barriers, a set
//! of parallel messages — each a constant number of words — moves between the
//! CPU side and the PIM side. Message accounting per round and module:
//!
//! * every task *delivered* to a module this round counts as one message
//!   into it;
//! * every [`reply`](crate::module::ModuleCtx::reply) counts as one message
//!   out of it;
//! * every cross-module [`send`](crate::module::ModuleCtx::send) counts as
//!   one message out of the sender this round (PIM → CPU leg) and one
//!   message into the receiver next round (CPU → PIM leg), exactly the
//!   model's "offload via shared memory" route.
//!
//! The round's `h` is the max per-module total; IO time is `Σ h` (see
//! [`Metrics`]). Modules execute their queues in parallel via rayon — the
//! simulation stays deterministic because messages are only visible at the
//! next barrier and per-receiver delivery order is fixed (CPU sends first,
//! then forwarded sends in sender-id order).

use rayon::prelude::*;

use crate::handle::ModuleId;
use crate::metrics::{Metrics, SharedMem};
use crate::module::{ModuleCtx, PimModule};
use crate::trace::{RoundTrace, Trace};

/// The simulated PIM machine.
pub struct PimSystem<M: PimModule> {
    modules: Vec<M>,
    /// Tasks queued for delivery at the next round, per receiving module.
    inboxes: Vec<Vec<M::Task>>,
    metrics: Metrics,
    shared_mem: SharedMem,
    trace: Option<Trace>,
}

/// Per-module output of one round, merged at the barrier.
struct RoundOut<T, R> {
    sends: Vec<(ModuleId, T)>,
    replies: Vec<R>,
    work: u64,
    delivered: u64,
}

impl<M: PimModule> PimSystem<M> {
    /// Build a machine of `p` modules, constructing each from its id.
    pub fn new(p: u32, mut make: impl FnMut(ModuleId) -> M) -> Self {
        assert!(p > 0, "a PIM machine needs at least one module");
        let modules: Vec<M> = (0..p).map(&mut make).collect();
        PimSystem {
            inboxes: (0..p).map(|_| Vec::new()).collect(),
            modules,
            metrics: Metrics::new(),
            shared_mem: SharedMem::new(),
            trace: None,
        }
    }

    /// Start recording one [`RoundTrace`] per round (experiment
    /// instrumentation; adds O(P) bookkeeping per round).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::default());
        }
    }

    /// Stop tracing and take what was recorded.
    pub fn take_trace(&mut self) -> Trace {
        self.trace.take().unwrap_or_default()
    }

    /// Number of PIM modules, `P`.
    #[inline]
    pub fn p(&self) -> u32 {
        self.modules.len() as u32
    }

    /// `ceil(log2 P)`, clamped to at least 1 — the ubiquitous batch/bound
    /// parameter.
    #[inline]
    pub fn log_p(&self) -> u32 {
        self.p().max(2).ilog2() + u32::from(!self.p().max(2).is_power_of_two())
    }

    /// CPU-side `TaskSend`: queue `task` for module `to`, delivered at the
    /// next round. Counts one CPU→PIM message.
    pub fn send(&mut self, to: ModuleId, task: M::Task) {
        self.inboxes[to as usize].push(task);
    }

    /// Broadcast one task to every module (`P` messages, `h` contribution 1
    /// per module — the replication write pattern of the upper part).
    pub fn broadcast(&mut self, mut make: impl FnMut(ModuleId) -> M::Task) {
        for id in 0..self.p() {
            self.send(id, make(id));
        }
    }

    /// Are any tasks queued for the next round?
    pub fn has_pending(&self) -> bool {
        self.inboxes.iter().any(|q| !q.is_empty())
    }

    /// Execute one bulk-synchronous round; returns the replies that reached
    /// CPU shared memory, in deterministic (module-id, issue) order.
    pub fn run_round(&mut self) -> Vec<M::Reply> {
        let round = self.metrics.rounds;
        let inboxes = std::mem::take(&mut self.inboxes);
        self.inboxes = (0..self.p()).map(|_| Vec::new()).collect();

        let outs: Vec<RoundOut<M::Task, M::Reply>> = self
            .modules
            .par_iter_mut()
            .zip(inboxes.into_par_iter())
            .enumerate()
            .map(|(id, (module, inbox))| {
                let mut sends = Vec::new();
                let mut replies = Vec::new();
                let mut work = 0u64;
                let delivered = inbox.len() as u64;
                for task in inbox {
                    let mut ctx =
                        ModuleCtx::new(id as ModuleId, round, &mut sends, &mut replies, &mut work);
                    module.execute(task, &mut ctx);
                }
                RoundOut {
                    sends,
                    replies,
                    work,
                    delivered,
                }
            })
            .collect();

        // Barrier: merge outputs, compute the h-relation and work maxima.
        let mut h = 0u64;
        let mut max_work = 0u64;
        let mut messages = 0u64;
        let mut work_total = 0u64;
        let mut replies_all = Vec::new();
        let mut per_module = self.trace.is_some().then(|| Vec::with_capacity(outs.len()));

        // Per-module message count this round: delivered (in) + replies (out)
        // + cross sends (out). `delivered` already includes both CPU sends
        // and last round's forwarded sends.
        for out in &outs {
            let msgs = out.delivered + out.replies.len() as u64 + out.sends.len() as u64;
            h = h.max(msgs);
            messages += msgs;
            max_work = max_work.max(out.work);
            work_total += out.work;
            if let Some(pm) = per_module.as_mut() {
                pm.push(msgs);
            }
        }
        if let (Some(trace), Some(per_module_messages)) = (self.trace.as_mut(), per_module) {
            trace.rounds.push(RoundTrace {
                round,
                h,
                max_work,
                messages,
                work: work_total,
                per_module_messages,
            });
        }

        for out in outs {
            for (to, task) in out.sends {
                self.inboxes[to as usize].push(task);
            }
            replies_all.extend(out.replies);
        }

        self.metrics.record_round(h, max_work, messages, work_total);
        self.metrics.observe_shared_mem(self.shared_mem.peak());
        replies_all
    }

    /// Run rounds until no tasks remain; returns all replies in order.
    pub fn run_to_quiescence(&mut self) -> Vec<M::Reply> {
        let mut replies = Vec::new();
        while self.has_pending() {
            replies.extend(self.run_round());
        }
        replies
    }

    /// Read access to a module's local state (CPU-side inspection for tests
    /// and invariant checks — not part of the model's data path).
    pub fn module(&self, id: ModuleId) -> &M {
        &self.modules[id as usize]
    }

    /// Mutable access to a module (setup / test instrumentation only).
    pub fn module_mut(&mut self, id: ModuleId) -> &mut M {
        &mut self.modules[id as usize]
    }

    /// Iterate all modules.
    pub fn modules(&self) -> impl Iterator<Item = &M> {
        self.modules.iter()
    }

    /// Local memory in words per module (Theorem 3.1's measurement).
    pub fn local_words_per_module(&self) -> Vec<u64> {
        self.modules.iter().map(|m| m.local_words()).collect()
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Mutable metrics (CPU-side cost charging).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The CPU shared-memory tracker.
    pub fn shared_mem(&mut self) -> &mut SharedMem {
        &mut self.shared_mem
    }

    /// Fold the shared-memory peak into the metrics now (also done at each
    /// round barrier).
    pub fn sample_shared_mem(&mut self) {
        self.metrics.observe_shared_mem(self.shared_mem.peak());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A module that counts, echoes, and forwards.
    struct Echo {
        hits: u64,
    }

    enum EchoTask {
        Ping(u64),
        Forward { hops: u32, payload: u64 },
    }

    impl PimModule for Echo {
        type Task = EchoTask;
        type Reply = (ModuleId, u64);

        fn execute(&mut self, task: EchoTask, ctx: &mut ModuleCtx<'_, EchoTask, Self::Reply>) {
            ctx.work(1);
            self.hits += 1;
            match task {
                EchoTask::Ping(x) => ctx.reply((ctx.me(), x)),
                EchoTask::Forward { hops, payload } => {
                    if hops == 0 {
                        ctx.reply((ctx.me(), payload));
                    } else {
                        let next = (ctx.me() + 1) % 4;
                        ctx.send(
                            next,
                            EchoTask::Forward {
                                hops: hops - 1,
                                payload,
                            },
                        );
                    }
                }
            }
        }

        fn local_words(&self) -> u64 {
            self.hits
        }
    }

    fn machine() -> PimSystem<Echo> {
        PimSystem::new(4, |_| Echo { hits: 0 })
    }

    #[test]
    fn ping_replies_and_counts_messages() {
        let mut sys = machine();
        sys.send(2, EchoTask::Ping(7));
        let replies = sys.run_round();
        assert_eq!(replies, vec![(2, 7)]);
        let m = sys.metrics();
        assert_eq!(m.rounds, 1);
        // Module 2: 1 delivered + 1 reply = h of 2.
        assert_eq!(m.io_time, 2);
        assert_eq!(m.total_messages, 2);
        assert_eq!(m.pim_time, 1);
    }

    #[test]
    fn forwarding_takes_one_round_per_hop() {
        let mut sys = machine();
        sys.send(
            0,
            EchoTask::Forward {
                hops: 3,
                payload: 99,
            },
        );
        let replies = sys.run_to_quiescence();
        assert_eq!(replies, vec![(3, 99)]);
        assert_eq!(sys.metrics().rounds, 4);
        // Each hop round: 1 in + 1 out = 2; final round: 1 in + 1 reply = 2.
        assert_eq!(sys.metrics().io_time, 8);
    }

    #[test]
    fn h_is_max_not_total() {
        let mut sys = machine();
        // 8 pings to module 0, 1 ping to each other module.
        for _ in 0..8 {
            sys.send(0, EchoTask::Ping(1));
        }
        for id in 1..4 {
            sys.send(id, EchoTask::Ping(1));
        }
        sys.run_round();
        let m = sys.metrics();
        // Module 0: 8 in + 8 replies = 16.
        assert_eq!(m.io_time, 16);
        assert_eq!(m.total_messages, 22);
        assert_eq!(m.pim_time, 8);
        assert_eq!(m.total_pim_work, 11);
    }

    #[test]
    fn broadcast_reaches_all_modules_with_h_one() {
        let mut sys = machine();
        sys.broadcast(|id| EchoTask::Ping(u64::from(id)));
        let mut replies = sys.run_round();
        replies.sort_unstable();
        assert_eq!(replies, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        // Each module: 1 in + 1 reply.
        assert_eq!(sys.metrics().io_time, 2);
    }

    #[test]
    fn determinism_under_parallel_execution() {
        let run = || {
            let mut sys = machine();
            for i in 0..64u64 {
                sys.send(
                    (i % 4) as ModuleId,
                    EchoTask::Forward {
                        hops: (i % 5) as u32,
                        payload: i,
                    },
                );
            }
            let replies = sys.run_to_quiescence();
            (replies, sys.metrics())
        };
        let (r1, m1) = run();
        let (r2, m2) = run();
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn local_words_reporting() {
        let mut sys = machine();
        sys.send(1, EchoTask::Ping(0));
        sys.send(1, EchoTask::Ping(0));
        sys.send(3, EchoTask::Ping(0));
        sys.run_round();
        assert_eq!(sys.local_words_per_module(), vec![0, 2, 0, 1]);
    }

    #[test]
    fn empty_round_is_free_of_io() {
        let mut sys = machine();
        let replies = sys.run_round();
        assert!(replies.is_empty());
        assert_eq!(sys.metrics().io_time, 0);
        assert_eq!(sys.metrics().rounds, 1);
    }

    #[test]
    #[should_panic]
    fn zero_modules_rejected() {
        let _ = PimSystem::new(0, |_| Echo { hits: 0 });
    }

    #[test]
    fn log_p_rounding() {
        assert_eq!(PimSystem::new(1, |_| Echo { hits: 0 }).log_p(), 1);
        assert_eq!(PimSystem::new(2, |_| Echo { hits: 0 }).log_p(), 1);
        assert_eq!(PimSystem::new(4, |_| Echo { hits: 0 }).log_p(), 2);
        assert_eq!(PimSystem::new(5, |_| Echo { hits: 0 }).log_p(), 3);
        assert_eq!(PimSystem::new(8, |_| Echo { hits: 0 }).log_p(), 3);
        assert_eq!(PimSystem::new(9, |_| Echo { hits: 0 }).log_p(), 4);
    }
}
