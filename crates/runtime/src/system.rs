//! The PIM machine: `P` modules + bulk-synchronous network + metrics.
//!
//! [`PimSystem`] drives the network in rounds (§2.1): between barriers, a set
//! of parallel messages — each a constant number of words — moves between the
//! CPU side and the PIM side. Message accounting per round and module:
//!
//! * every task *delivered* to a module this round counts as one message
//!   into it;
//! * every [`reply`](crate::module::ModuleCtx::reply) counts as one message
//!   out of it;
//! * every cross-module [`send`](crate::module::ModuleCtx::send) counts as
//!   one message out of the sender this round (PIM → CPU leg) and one
//!   message into the receiver next round (CPU → PIM leg), exactly the
//!   model's "offload via shared memory" route.
//!
//! The round's `h` is the max per-module total; IO time is `Σ h` (see
//! [`Metrics`]). Modules execute their queues in parallel on the
//! [`crate::pool`] executor (workers claim contiguous module ranges; the
//! per-module outputs are merged back in module-id order) — the simulation
//! stays deterministic because messages are only visible at the next
//! barrier and per-receiver delivery order is fixed (CPU sends first, then
//! forwarded sends in sender-id order). `PIM_THREADS` changes only the
//! wall-clock time of a round, never its metrics, replies or traces.

use crate::buffers::RouteBuffer;
use crate::fault::{FaultInjector, FaultKind, FaultPlan, FaultRecord};
use crate::handle::ModuleId;
use crate::metrics::{Metrics, SharedMem};
use crate::module::{ModuleCtx, PimModule};
use crate::span::{Probe, ProbeReport};
use crate::trace::{RoundTrace, Trace};

/// The simulated PIM machine.
pub struct PimSystem<M: PimModule> {
    modules: Vec<M>,
    /// Tasks queued for delivery at the next round, per receiving module.
    inboxes: Vec<Vec<M::Task>>,
    /// Last round's drained inboxes, capacity retained: swapped with
    /// `inboxes` at every round start so delivery buffers are recycled
    /// instead of rebuilt (the steady-state allocation contract — see
    /// `docs/MODEL.md` and [`crate::buffers`]).
    spare_inboxes: Vec<Vec<M::Task>>,
    /// Persistent per-module round outputs: drained at the barrier,
    /// capacity retained across rounds.
    outs: Vec<RoundOut<M::Task, M::Reply>>,
    /// Two-pass bucketed routing scratch (counts retained across rounds).
    route: RouteBuffer,
    metrics: Metrics,
    shared_mem: SharedMem,
    trace: Option<Trace>,
    /// Span-attribution probe, if enabled (`None` costs one branch per
    /// span call and nothing per round).
    probe: Option<Probe>,
    /// Installed fault schedule, if any (`None` is the fault-free machine,
    /// with zero per-round overhead).
    injector: Option<FaultInjector>,
    /// Modules that crashed since the last [`PimSystem::drain_crashed`].
    crashed: Vec<ModuleId>,
}

/// Per-module output of one round. One lives per module for the lifetime
/// of the machine; the executor writes it in place (index-ordered, so no
/// merge step exists) and the barrier drains it back to empty.
struct RoundOut<T, R> {
    sends: Vec<(ModuleId, T)>,
    replies: Vec<R>,
    work: u64,
    delivered: u64,
}

impl<T, R> RoundOut<T, R> {
    fn new() -> Self {
        RoundOut {
            sends: Vec::new(),
            replies: Vec::new(),
            work: 0,
            delivered: 0,
        }
    }
}

/// State carried from the route-commit point to the execute-commit point
/// of one round (see [`PimSystem::run_round`]). Both fault vectors are
/// empty on the fault-free machine, so carrying the stage allocates
/// nothing in steady state.
struct RoundStage {
    round: u64,
    round_faults: Vec<(ModuleId, FaultKind)>,
    post_faults: Vec<(ModuleId, FaultKind)>,
    delivered_total: usize,
}

impl<M: PimModule> PimSystem<M> {
    /// Build a machine of `p` modules, constructing each from its id.
    pub fn new(p: u32, mut make: impl FnMut(ModuleId) -> M) -> Self {
        assert!(p > 0, "a PIM machine needs at least one module");
        let modules: Vec<M> = (0..p).map(&mut make).collect();
        PimSystem {
            inboxes: (0..p).map(|_| Vec::new()).collect(),
            spare_inboxes: (0..p).map(|_| Vec::new()).collect(),
            outs: (0..p).map(|_| RoundOut::new()).collect(),
            route: RouteBuffer::new(),
            modules,
            metrics: Metrics::new(),
            shared_mem: SharedMem::new(),
            trace: None,
            probe: None,
            injector: None,
            crashed: Vec::new(),
        }
    }

    /// Install a fault schedule; rounds from now on apply its events as
    /// they come due (round indices in the plan are absolute, i.e.
    /// compared against `metrics().rounds`). An empty plan removes the
    /// injector entirely, restoring the exact fault-free execution.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = if plan.is_empty() {
            None
        } else {
            Some(FaultInjector::new(plan))
        };
    }

    /// Modules that crashed since the last call (driver-side recovery
    /// polls this at its barriers), in crash order.
    pub fn drain_crashed(&mut self) -> Vec<ModuleId> {
        std::mem::take(&mut self.crashed)
    }

    /// Drop every queued task (used by whole-structure recovery: after
    /// rebuilding all modules from the journal, in-flight traffic that
    /// addressed the old state must not be delivered).
    pub fn purge_pending(&mut self) {
        for q in &mut self.inboxes {
            q.clear();
        }
    }

    /// Start recording one [`RoundTrace`] per round (experiment
    /// instrumentation; adds O(P) bookkeeping per round).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::default());
        }
    }

    /// Like [`PimSystem::enable_tracing`] but keeping only the `cap`
    /// most-recent rounds (ring buffer); evictions are counted in
    /// [`Trace::dropped_rounds`] so exports can state truncation.
    pub fn enable_tracing_with_cap(&mut self, cap: usize) {
        if self.trace.is_none() {
            self.trace = Some(Trace::with_cap(cap));
        }
    }

    /// Stop tracing and take what was recorded (oldest round first).
    pub fn take_trace(&mut self) -> Trace {
        let mut t = self.trace.take().unwrap_or_default();
        t.finalize();
        t
    }

    /// Start span-based cost attribution (see [`crate::span`]). Costs
    /// accrued from now on are attributed to the innermost open span;
    /// until one is opened they land in the implicit root span.
    pub fn enable_probe(&mut self) {
        if self.probe.is_none() {
            self.probe = Some(Probe::new(self.p(), self.metrics));
        }
    }

    /// Whether a probe is currently recording.
    pub fn probe_enabled(&self) -> bool {
        self.probe.is_some()
    }

    /// Open a span; costs accrue to it until [`PimSystem::span_exit`].
    /// A no-op (one branch) when no probe is enabled.
    pub fn span_enter(&mut self, name: &'static str) {
        let now = self.metrics;
        if let Some(p) = self.probe.as_mut() {
            p.enter(name, now);
        }
    }

    /// Close the innermost open span. A no-op when no probe is enabled
    /// (and at the root span).
    pub fn span_exit(&mut self) {
        let now = self.metrics;
        if let Some(p) = self.probe.as_mut() {
            p.exit(now);
        }
    }

    /// Open a span and return an RAII guard that closes it on drop; the
    /// guard derefs to the system so the bracketed code reads naturally:
    ///
    /// ```ignore
    /// let mut sys = sys.span("upsert/link");
    /// sys.run_to_quiescence();
    /// ```
    pub fn span(&mut self, name: &'static str) -> SpanGuard<'_, M> {
        self.span_enter(name);
        SpanGuard { sys: self }
    }

    /// Stop probing and harvest the report (spans + per-module lanes).
    /// Returns `None` when no probe was enabled.
    pub fn take_probe(&mut self) -> Option<ProbeReport> {
        let now = self.metrics;
        self.probe.take().map(|p| p.finish(now))
    }

    /// Number of PIM modules, `P`.
    #[inline]
    pub fn p(&self) -> u32 {
        self.modules.len() as u32
    }

    /// `ceil(log2 P)`, clamped to at least 1 — the ubiquitous batch/bound
    /// parameter.
    #[inline]
    pub fn log_p(&self) -> u32 {
        self.p().max(2).ilog2() + u32::from(!self.p().max(2).is_power_of_two())
    }

    /// CPU-side `TaskSend`: queue `task` for module `to`, delivered at the
    /// next round. Counts one CPU→PIM message.
    pub fn send(&mut self, to: ModuleId, task: M::Task) {
        self.inboxes[to as usize].push(task);
    }

    /// Broadcast one task to every module (`P` messages, `h` contribution 1
    /// per module — the replication write pattern of the upper part).
    pub fn broadcast(&mut self, mut make: impl FnMut(ModuleId) -> M::Task) {
        for id in 0..self.p() {
            self.send(id, make(id));
        }
    }

    /// Are any tasks queued for the next round?
    pub fn has_pending(&self) -> bool {
        self.inboxes.iter().any(|q| !q.is_empty())
    }

    /// Execute one bulk-synchronous round; returns the replies that reached
    /// CPU shared memory, in deterministic (module-id, issue) order.
    ///
    /// A round is three phases with two commit points:
    ///
    /// 1. **route-commit** ([`Self::route_commit`]) — the queued inboxes
    ///    become this round's deliveries and the pre-delivery faults
    ///    strike. After this point the round's inputs are frozen.
    /// 2. **execute** ([`Self::execute_modules`]) — the parallel module
    ///    sweep. Nothing CPU-visible changes until the barrier.
    /// 3. **execute-commit** ([`Self::execute_commit`]) — the barrier:
    ///    outputs are merged, costs recorded, cross sends routed into the
    ///    next round's inboxes.
    ///
    /// The split exists so a pipelined driver can overlap CPU-side staging
    /// of *future* traffic with phase 2 (see
    /// [`PimSystem::run_round_overlapped`]) without ever racing a commit
    /// point.
    pub fn run_round(&mut self) -> Vec<M::Reply> {
        let stage = self.route_commit();
        self.execute_modules(stage.round, stage.delivered_total);
        self.execute_commit(stage)
    }

    /// [`PimSystem::run_round`] with a data-disjoint `side` closure that
    /// runs concurrently with the module execution phase (between the
    /// route-commit and execute-commit points). `side` must not touch the
    /// machine — it is the CPU-side staging lane of a pipelined driver —
    /// so replies, metrics and traces are byte-identical to
    /// [`PimSystem::run_round`] at every thread count (with one worker the
    /// two simply run sequentially).
    pub fn run_round_overlapped<R: Send>(
        &mut self,
        side: impl FnOnce() -> R + Send,
    ) -> (Vec<M::Reply>, R) {
        let stage = self.route_commit();
        let (round, delivered) = (stage.round, stage.delivered_total);
        let ((), side_out) =
            crate::pool::run_overlapped(|| self.execute_modules(round, delivered), side);
        (self.execute_commit(stage), side_out)
    }

    /// Phase 1 — the **route-commit point**: swap in the queued inboxes
    /// (recycling last round's drained buffers) and apply the pre-delivery
    /// faults (crash, stall, task drop). Post-execution fault kinds are
    /// deferred to the execute-commit point.
    fn route_commit(&mut self) -> RoundStage {
        let round = self.metrics.rounds;
        // Recycle, don't rebuild: this round's deliveries move into the
        // spare set (drained in place below), and last round's drained
        // buffers — empty, capacity retained — become the next round's
        // inboxes. In steady state no round allocates delivery storage.
        std::mem::swap(&mut self.inboxes, &mut self.spare_inboxes);
        debug_assert!(self.inboxes.iter().all(Vec::is_empty));
        let inboxes = &mut self.spare_inboxes;

        // Apply this round's scheduled faults. Pre-delivery kinds (crash,
        // stall, task drop) strike now; post-execution kinds (slow, reply
        // drop) are deferred past the parallel section. See `crate::fault`
        // for the exact semantics of each kind.
        let round_faults = match self.injector.as_mut() {
            Some(injector) => injector.take_round(round),
            None => Vec::new(),
        };
        let mut post_faults: Vec<(ModuleId, FaultKind)> = Vec::new();
        for &(m, kind) in &round_faults {
            let mi = m as usize;
            self.metrics.faults_injected += 1;
            match kind {
                FaultKind::Crash => {
                    self.modules[mi].on_crash();
                    let lost = inboxes[mi].len() as u64;
                    inboxes[mi].clear();
                    self.metrics.messages_dropped += lost;
                    self.metrics.module_crashes += 1;
                    self.crashed.push(m);
                }
                FaultKind::Stall => {
                    // Defer the whole inbox to the next round; the
                    // next-round inbox is still empty at this point, so the
                    // carried-over tasks stay ahead of new traffic (the
                    // swap also keeps both buffers' capacity pooled).
                    std::mem::swap(&mut self.inboxes[mi], &mut inboxes[mi]);
                    self.metrics.stalled_module_rounds += 1;
                }
                FaultKind::DropTask { nth } => {
                    // O(1) removal: the chosen slot is backfilled with the
                    // *last* queued task, then the queue shrinks by one.
                    // Deterministic (a pure function of `nth` and the queue
                    // length); the backfilled task executes at the dropped
                    // task's position, everything before it keeps its
                    // order. `drop_task_backfills_from_the_end` pins these
                    // semantics.
                    if !inboxes[mi].is_empty() {
                        let idx = (nth % inboxes[mi].len() as u64) as usize;
                        inboxes[mi].swap_remove(idx);
                        self.metrics.messages_dropped += 1;
                    }
                }
                FaultKind::Slow { .. } | FaultKind::DropReply { .. } => {
                    post_faults.push((m, kind));
                }
            }
        }

        RoundStage {
            round,
            round_faults,
            post_faults,
            delivered_total: inboxes.iter().map(Vec::len).sum(),
        }
    }

    /// Phase 2 — the parallel module sweep. Reads only the frozen
    /// deliveries (in `spare_inboxes` since the route-commit swap) and
    /// writes only the per-module `RoundOut` slots; nothing CPU-visible
    /// changes until the execute-commit barrier, which is what makes the
    /// overlap in [`PimSystem::run_round_overlapped`] safe.
    ///
    /// The weight hint is the number of delivered tasks: control rounds
    /// (a handful of messages) stay on the calling thread, while
    /// data-proportional rounds fan out across the pool's workers.
    /// Inboxes are drained in place (capacity retained for the next
    /// swap) and each module's persistent `RoundOut` is written in its
    /// own indexed slot, so the executor's index-ordered merge is free.
    fn execute_modules(&mut self, round: u64, delivered_total: usize) {
        crate::pool::par_zip2_for_each_mut(
            &mut self.modules,
            &mut self.spare_inboxes,
            &mut self.outs,
            delivered_total,
            |id, module, inbox, out| {
                debug_assert!(out.sends.is_empty() && out.replies.is_empty());
                out.work = 0;
                out.delivered = inbox.len() as u64;
                for task in inbox.drain(..) {
                    let mut ctx = ModuleCtx::new(
                        id as ModuleId,
                        round,
                        &mut out.sends,
                        &mut out.replies,
                        &mut out.work,
                    );
                    module.execute(task, &mut ctx);
                }
            },
        );
    }

    /// Phase 3 — the **execute-commit point** (the barrier): inflate slow
    /// faults, merge outputs, record trace/probe/metrics, drop faulted
    /// replies, and route cross sends into the next round's inboxes.
    fn execute_commit(&mut self, stage: RoundStage) -> Vec<M::Reply> {
        let RoundStage {
            round,
            round_faults,
            post_faults,
            delivered_total: _,
        } = stage;
        let outs = &mut self.outs;

        // A slow module's local work is inflated before the barrier maxima
        // are taken (the round waits for its slowest core).
        for &(m, kind) in &post_faults {
            if let FaultKind::Slow { factor } = kind {
                let out = &mut outs[m as usize];
                out.work = out.work.saturating_mul(factor.max(1));
            }
        }

        // Barrier: merge outputs, compute the h-relation and work maxima.
        let mut h = 0u64;
        let mut max_work = 0u64;
        let mut messages = 0u64;
        let mut work_total = 0u64;
        // The replies leave the machine (the caller owns them), so this is
        // the one unavoidable allocation per round — sized exactly once.
        let mut replies_all =
            Vec::with_capacity(outs.iter().map(|o| o.replies.len()).sum::<usize>());
        let mut per_module = self.trace.is_some().then(|| Vec::with_capacity(outs.len()));
        let mut lane_rows = self.probe.is_some().then(|| Vec::with_capacity(outs.len()));

        // Per-module message count this round: delivered (in) + replies (out)
        // + cross sends (out). `delivered` already includes both CPU sends
        // and last round's forwarded sends.
        for out in &*outs {
            let msgs = out.delivered + out.replies.len() as u64 + out.sends.len() as u64;
            h = h.max(msgs);
            messages += msgs;
            max_work = max_work.max(out.work);
            work_total += out.work;
            if let Some(pm) = per_module.as_mut() {
                pm.push(msgs);
            }
            if let Some(lr) = lane_rows.as_mut() {
                lr.push((msgs, out.work));
            }
        }
        if let (Some(trace), Some(per_module_messages)) = (self.trace.as_mut(), per_module) {
            trace.record(RoundTrace {
                round,
                h,
                max_work,
                messages,
                work: work_total,
                per_module_messages,
                faults: round_faults
                    .iter()
                    .map(|&(module, kind)| FaultRecord { module, kind })
                    .collect(),
            });
        }
        if let (Some(probe), Some(rows)) = (self.probe.as_mut(), lane_rows) {
            probe.observe_round(&rows);
        }

        // Reply drops happen on the PIM→CPU leg: the reply was transmitted
        // (and charged above), then lost before reaching shared memory.
        for &(m, kind) in &post_faults {
            if let FaultKind::DropReply { nth } = kind {
                let replies = &mut outs[m as usize].replies;
                if !replies.is_empty() {
                    let idx = (nth % replies.len() as u64) as usize;
                    replies.remove(idx);
                    self.metrics.messages_dropped += 1;
                }
            }
        }

        // Two-pass bucketed routing (see [`RouteBuffer`]): tally every
        // destination, reserve each next-round inbox exactly once, then
        // drain the outboxes in module-id order. Delivery order is
        // unchanged from the old push-per-task loop; reallocation inside
        // the fill loop is impossible.
        self.route.begin(self.inboxes.len());
        for out in &*outs {
            for &(to, _) in &out.sends {
                self.route.count(to as usize);
            }
        }
        self.route.reserve_into(&mut self.inboxes);
        for out in outs.iter_mut() {
            for (to, task) in out.sends.drain(..) {
                self.inboxes[to as usize].push(task);
            }
            replies_all.append(&mut out.replies);
        }

        self.metrics.record_round(h, max_work, messages, work_total);
        self.metrics.observe_shared_mem(self.shared_mem.peak());
        replies_all
    }

    /// Run rounds until no tasks remain; returns all replies in order.
    pub fn run_to_quiescence(&mut self) -> Vec<M::Reply> {
        let mut replies = Vec::new();
        while self.has_pending() {
            replies.extend(self.run_round());
        }
        replies
    }

    /// Read access to a module's local state (CPU-side inspection for tests
    /// and invariant checks — not part of the model's data path).
    pub fn module(&self, id: ModuleId) -> &M {
        &self.modules[id as usize]
    }

    /// Mutable access to a module (setup / test instrumentation only).
    pub fn module_mut(&mut self, id: ModuleId) -> &mut M {
        &mut self.modules[id as usize]
    }

    /// Iterate all modules.
    pub fn modules(&self) -> impl Iterator<Item = &M> {
        self.modules.iter()
    }

    /// Local memory in words per module (Theorem 3.1's measurement).
    pub fn local_words_per_module(&self) -> Vec<u64> {
        self.modules.iter().map(|m| m.local_words()).collect()
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Mutable metrics (CPU-side cost charging).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The CPU shared-memory tracker.
    pub fn shared_mem(&mut self) -> &mut SharedMem {
        &mut self.shared_mem
    }

    /// Fold the shared-memory peak into the metrics now (also done at each
    /// round barrier).
    pub fn sample_shared_mem(&mut self) {
        self.metrics.observe_shared_mem(self.shared_mem.peak());
    }
}

/// RAII guard for one open span: created by [`PimSystem::span`], closes
/// the span when dropped. Derefs to the system, so bracketed code uses it
/// exactly like the machine itself.
pub struct SpanGuard<'a, M: PimModule> {
    sys: &'a mut PimSystem<M>,
}

impl<M: PimModule> std::ops::Deref for SpanGuard<'_, M> {
    type Target = PimSystem<M>;

    fn deref(&self) -> &PimSystem<M> {
        self.sys
    }
}

impl<M: PimModule> std::ops::DerefMut for SpanGuard<'_, M> {
    fn deref_mut(&mut self) -> &mut PimSystem<M> {
        self.sys
    }
}

impl<M: PimModule> Drop for SpanGuard<'_, M> {
    fn drop(&mut self) {
        self.sys.span_exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A module that counts, echoes, and forwards.
    struct Echo {
        hits: u64,
    }

    enum EchoTask {
        Ping(u64),
        Forward { hops: u32, payload: u64 },
    }

    impl PimModule for Echo {
        type Task = EchoTask;
        type Reply = (ModuleId, u64);

        fn execute(&mut self, task: EchoTask, ctx: &mut ModuleCtx<'_, EchoTask, Self::Reply>) {
            ctx.work(1);
            self.hits += 1;
            match task {
                EchoTask::Ping(x) => ctx.reply((ctx.me(), x)),
                EchoTask::Forward { hops, payload } => {
                    if hops == 0 {
                        ctx.reply((ctx.me(), payload));
                    } else {
                        let next = (ctx.me() + 1) % 4;
                        ctx.send(
                            next,
                            EchoTask::Forward {
                                hops: hops - 1,
                                payload,
                            },
                        );
                    }
                }
            }
        }

        fn local_words(&self) -> u64 {
            self.hits
        }
    }

    fn machine() -> PimSystem<Echo> {
        PimSystem::new(4, |_| Echo { hits: 0 })
    }

    #[test]
    fn ping_replies_and_counts_messages() {
        let mut sys = machine();
        sys.send(2, EchoTask::Ping(7));
        let replies = sys.run_round();
        assert_eq!(replies, vec![(2, 7)]);
        let m = sys.metrics();
        assert_eq!(m.rounds, 1);
        // Module 2: 1 delivered + 1 reply = h of 2.
        assert_eq!(m.io_time, 2);
        assert_eq!(m.total_messages, 2);
        assert_eq!(m.pim_time, 1);
    }

    #[test]
    fn forwarding_takes_one_round_per_hop() {
        let mut sys = machine();
        sys.send(
            0,
            EchoTask::Forward {
                hops: 3,
                payload: 99,
            },
        );
        let replies = sys.run_to_quiescence();
        assert_eq!(replies, vec![(3, 99)]);
        assert_eq!(sys.metrics().rounds, 4);
        // Each hop round: 1 in + 1 out = 2; final round: 1 in + 1 reply = 2.
        assert_eq!(sys.metrics().io_time, 8);
    }

    #[test]
    fn h_is_max_not_total() {
        let mut sys = machine();
        // 8 pings to module 0, 1 ping to each other module.
        for _ in 0..8 {
            sys.send(0, EchoTask::Ping(1));
        }
        for id in 1..4 {
            sys.send(id, EchoTask::Ping(1));
        }
        sys.run_round();
        let m = sys.metrics();
        // Module 0: 8 in + 8 replies = 16.
        assert_eq!(m.io_time, 16);
        assert_eq!(m.total_messages, 22);
        assert_eq!(m.pim_time, 8);
        assert_eq!(m.total_pim_work, 11);
    }

    #[test]
    fn broadcast_reaches_all_modules_with_h_one() {
        let mut sys = machine();
        sys.broadcast(|id| EchoTask::Ping(u64::from(id)));
        let mut replies = sys.run_round();
        replies.sort_unstable();
        assert_eq!(replies, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        // Each module: 1 in + 1 reply.
        assert_eq!(sys.metrics().io_time, 2);
    }

    #[test]
    fn determinism_under_parallel_execution() {
        let run = || {
            let mut sys = machine();
            for i in 0..64u64 {
                sys.send(
                    (i % 4) as ModuleId,
                    EchoTask::Forward {
                        hops: (i % 5) as u32,
                        payload: i,
                    },
                );
            }
            let replies = sys.run_to_quiescence();
            (replies, sys.metrics())
        };
        let (r1, m1) = run();
        let (r2, m2) = run();
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn overlapped_round_is_byte_identical_and_returns_side_output() {
        // The overlapped round must produce the same replies, metrics and
        // trace as the plain one at every thread count, while the side
        // closure's output comes back intact.
        let stream = |sys: &mut PimSystem<Echo>, overlapped: bool| {
            sys.enable_tracing();
            for i in 0..48u64 {
                sys.send(
                    (i % 4) as ModuleId,
                    EchoTask::Forward {
                        hops: (i % 4) as u32,
                        payload: i,
                    },
                );
            }
            let mut replies = Vec::new();
            let mut staged = 0u64;
            while sys.has_pending() {
                if overlapped {
                    let (r, s) = sys.run_round_overlapped(|| (0..100u64).sum::<u64>());
                    assert_eq!(s, 4950);
                    staged += 1;
                    replies.extend(r);
                } else {
                    replies.extend(sys.run_round());
                }
            }
            assert!(!overlapped || staged > 0);
            (replies, sys.metrics(), sys.take_trace().rounds)
        };
        for threads in [1, 2, 8] {
            let cfg = crate::pool::ExecConfig {
                threads,
                par_threshold: 0,
                sort_threshold: 0,
            };
            crate::pool::configure(cfg);
            let mut plain = machine();
            let mut piped = machine();
            let (r1, m1, t1) = stream(&mut plain, false);
            let (r2, m2, t2) = stream(&mut piped, true);
            assert_eq!(r1, r2, "replies diverged at {threads} threads");
            assert_eq!(m1, m2, "metrics diverged at {threads} threads");
            assert_eq!(t1, t2, "traces diverged at {threads} threads");
        }
        crate::pool::configure(crate::pool::ExecConfig::from_env());
    }

    #[test]
    fn local_words_reporting() {
        let mut sys = machine();
        sys.send(1, EchoTask::Ping(0));
        sys.send(1, EchoTask::Ping(0));
        sys.send(3, EchoTask::Ping(0));
        sys.run_round();
        assert_eq!(sys.local_words_per_module(), vec![0, 2, 0, 1]);
    }

    #[test]
    fn empty_round_is_free_of_io() {
        let mut sys = machine();
        let replies = sys.run_round();
        assert!(replies.is_empty());
        assert_eq!(sys.metrics().io_time, 0);
        assert_eq!(sys.metrics().rounds, 1);
    }

    #[test]
    #[should_panic]
    fn zero_modules_rejected() {
        let _ = PimSystem::new(0, |_| Echo { hits: 0 });
    }

    /// A module whose "local memory" is its hit counter; crashes zero it.
    struct Crashy {
        hits: u64,
    }

    impl PimModule for Crashy {
        type Task = u64;
        type Reply = u64;

        fn execute(&mut self, task: u64, ctx: &mut ModuleCtx<'_, u64, u64>) {
            ctx.work(task);
            self.hits += 1;
            ctx.reply(self.hits)
        }

        fn on_crash(&mut self) {
            self.hits = 0;
        }
    }

    #[test]
    fn stall_defers_the_inbox_one_round() {
        let mut sys = machine();
        sys.set_fault_plan(FaultPlan::new().at(0, 1, FaultKind::Stall));
        sys.send(1, EchoTask::Ping(5));
        assert!(sys.run_round().is_empty(), "stalled round yields nothing");
        assert!(sys.has_pending(), "the task must carry over");
        assert_eq!(sys.run_round(), vec![(1, 5)]);
        let m = sys.metrics();
        assert_eq!(m.stalled_module_rounds, 1);
        assert_eq!(m.faults_injected, 1);
        assert_eq!(m.messages_dropped, 0);
        // Round 0 carried no delivered messages for module 1.
        assert_eq!(m.io_time, 2);
    }

    #[test]
    fn drop_task_loses_exactly_one_delivery() {
        let mut sys = machine();
        sys.set_fault_plan(FaultPlan::new().at(0, 2, FaultKind::DropTask { nth: 7 }));
        sys.send(2, EchoTask::Ping(1));
        sys.send(2, EchoTask::Ping(2));
        let mut replies = sys.run_round();
        replies.sort_unstable();
        assert_eq!(replies.len(), 1);
        assert_eq!(sys.metrics().messages_dropped, 1);
    }

    #[test]
    fn drop_task_backfills_from_the_end() {
        // The documented DropTask semantics: the chosen slot is backfilled
        // with the last queued task (O(1) swap-to-end + truncate), so the
        // survivor from the end executes at the dropped slot's position.
        let mut sys = machine();
        // len 4, nth 1 → drop index 1; task 3 backfills slot 1.
        sys.set_fault_plan(FaultPlan::new().at(0, 2, FaultKind::DropTask { nth: 1 }));
        for payload in 0..4 {
            sys.send(2, EchoTask::Ping(payload));
        }
        let replies = sys.run_round();
        assert_eq!(replies, vec![(2, 0), (2, 3), (2, 2)]);
        assert_eq!(sys.metrics().messages_dropped, 1);
    }

    #[test]
    fn warm_engine_replays_identically_to_cold() {
        // Buffer recycling must be observation-free: a second pass of the
        // same traffic through a *warm* machine (pools at their high-water
        // marks) produces byte-identical replies, metrics deltas and
        // traces to the first (cold) pass.
        let stream = |sys: &mut PimSystem<Echo>| {
            sys.enable_tracing();
            for i in 0..48u64 {
                sys.send(
                    (i % 4) as ModuleId,
                    EchoTask::Forward {
                        hops: (i % 4) as u32,
                        payload: i,
                    },
                );
            }
            let replies = sys.run_to_quiescence();
            (replies, sys.take_trace().rounds)
        };
        let mut sys = machine();
        let before_cold = sys.metrics();
        let (cold_replies, cold_trace) = stream(&mut sys);
        let cold_metrics = sys.metrics() - before_cold;
        let before_warm = sys.metrics();
        let (warm_replies, warm_trace) = stream(&mut sys);
        let warm_metrics = sys.metrics() - before_warm;
        assert_eq!(cold_replies, warm_replies);
        assert_eq!(cold_metrics, warm_metrics);
        let strip_round = |rs: Vec<RoundTrace>| -> Vec<RoundTrace> {
            rs.into_iter()
                .map(|mut r| {
                    r.round = 0;
                    r
                })
                .collect()
        };
        assert_eq!(strip_round(cold_trace), strip_round(warm_trace));
    }

    #[test]
    fn drop_reply_is_charged_then_lost() {
        let mut sys = machine();
        sys.set_fault_plan(FaultPlan::new().at(0, 2, FaultKind::DropReply { nth: 0 }));
        sys.send(2, EchoTask::Ping(1));
        let replies = sys.run_round();
        assert!(replies.is_empty());
        let m = sys.metrics();
        // Delivered + transmitted reply both counted, then the reply died.
        assert_eq!(m.io_time, 2);
        assert_eq!(m.messages_dropped, 1);
    }

    #[test]
    fn crash_wipes_state_and_inbox() {
        let mut sys = PimSystem::new(2, |_| Crashy { hits: 0 });
        sys.send(0, 1);
        sys.send(0, 1);
        sys.run_round();
        assert_eq!(sys.module(0).hits, 2);

        sys.set_fault_plan(FaultPlan::new().at(1, 0, FaultKind::Crash));
        sys.send(0, 1);
        sys.send(1, 1);
        let replies = sys.run_round();
        // Module 0's delivery died with it; module 1 replied normally.
        assert_eq!(replies, vec![1]);
        assert_eq!(sys.module(0).hits, 0, "crash must wipe local state");
        assert_eq!(sys.drain_crashed(), vec![0]);
        assert!(sys.drain_crashed().is_empty());
        let m = sys.metrics();
        assert_eq!(m.module_crashes, 1);
        assert_eq!(m.messages_dropped, 1);
    }

    #[test]
    fn slow_module_inflates_pim_time_only() {
        let healthy = {
            let mut sys = PimSystem::new(2, |_| Crashy { hits: 0 });
            sys.send(0, 10);
            sys.run_round();
            sys.metrics()
        };
        let mut sys = PimSystem::new(2, |_| Crashy { hits: 0 });
        sys.set_fault_plan(FaultPlan::new().at(0, 0, FaultKind::Slow { factor: 3 }));
        sys.send(0, 10);
        sys.run_round();
        let m = sys.metrics();
        assert_eq!(m.pim_time, 3 * healthy.pim_time);
        assert_eq!(m.io_time, healthy.io_time);
        assert_eq!(m.rounds, healthy.rounds);
    }

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        let run = |with_empty_plan: bool| {
            let mut sys = machine();
            if with_empty_plan {
                sys.set_fault_plan(FaultPlan::new());
            }
            sys.enable_tracing();
            for i in 0..32u64 {
                sys.send(
                    (i % 4) as ModuleId,
                    EchoTask::Forward {
                        hops: (i % 3) as u32,
                        payload: i,
                    },
                );
            }
            let replies = sys.run_to_quiescence();
            (replies, sys.metrics(), sys.take_trace().rounds)
        };
        let (r1, m1, t1) = run(false);
        let (r2, m2, t2) = run(true);
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn same_plan_replays_identically() {
        let run = || {
            let mut sys = PimSystem::new(4, |_| Crashy { hits: 0 });
            sys.set_fault_plan(FaultPlan::random(99, 4, 6, 10));
            sys.enable_tracing();
            for round in 0..6u64 {
                for m in 0..4u32 {
                    sys.send(m, round + u64::from(m));
                }
                sys.run_round();
            }
            (sys.metrics(), sys.take_trace().rounds)
        };
        let (m1, t1) = run();
        let (m2, t2) = run();
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
        assert!(m1.faults_injected > 0, "the random plan must have fired");
    }

    #[test]
    fn purge_pending_clears_queues() {
        let mut sys = machine();
        sys.send(0, EchoTask::Ping(1));
        sys.send(3, EchoTask::Ping(2));
        assert!(sys.has_pending());
        sys.purge_pending();
        assert!(!sys.has_pending());
    }

    #[test]
    fn no_probe_is_bit_identical_to_probe_free_machine() {
        let run = |with_probe: bool| {
            let mut sys = machine();
            if with_probe {
                sys.enable_probe();
            }
            sys.enable_tracing();
            for i in 0..32u64 {
                sys.send(
                    (i % 4) as ModuleId,
                    EchoTask::Forward {
                        hops: (i % 3) as u32,
                        payload: i,
                    },
                );
            }
            let replies = sys.run_to_quiescence();
            (replies, sys.metrics(), sys.take_trace().rounds)
        };
        // Probe enabled but no spans opened: results, metrics and trace
        // must be bit-identical (the probe only *reads* the metrics).
        let (r1, m1, t1) = run(false);
        let (r2, m2, t2) = run(true);
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn span_calls_without_probe_are_no_ops() {
        let mut sys = machine();
        sys.span_enter("phantom");
        sys.send(0, EchoTask::Ping(1));
        {
            let mut guarded = sys.span("also-phantom");
            guarded.run_round();
        }
        sys.span_exit();
        assert!(sys.take_probe().is_none());
        assert_eq!(sys.metrics().rounds, 1);
    }

    #[test]
    fn probe_attributes_rounds_to_spans_and_conserves_totals() {
        let mut sys = machine();
        sys.enable_probe();
        let before = sys.metrics();

        sys.send(0, EchoTask::Ping(1));
        sys.run_round(); // unattributed → root

        sys.span_enter("op");
        sys.send(1, EchoTask::Ping(2));
        sys.run_round();
        {
            let mut inner = sys.span("op/phase");
            inner.send(
                2,
                EchoTask::Forward {
                    hops: 1,
                    payload: 3,
                },
            );
            inner.run_to_quiescence();
        }
        sys.span_exit();

        let report = sys.take_probe().expect("probe was enabled");
        let after = sys.metrics();
        let delta = after - before;

        let names: Vec<&str> = report.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["run", "op", "op/phase"]);
        assert_eq!(report.spans[0].stats.rounds, 1);
        assert_eq!(report.spans[1].stats.rounds, 1);
        assert_eq!(report.spans[2].stats.rounds, 2);

        // Conservation: every additive counter sums back to the delta.
        let total = report.total();
        assert_eq!(total.rounds, delta.rounds);
        assert_eq!(total.io_time, delta.io_time);
        assert_eq!(total.pim_time, delta.pim_time);
        assert_eq!(total.total_messages, delta.total_messages);
        assert_eq!(total.total_pim_work, delta.total_pim_work);
        assert_eq!(total.cpu_work, delta.cpu_work);
        assert_eq!(total.cpu_depth, delta.cpu_depth);

        // Lanes saw every round for every module.
        assert_eq!(report.lanes.p(), 4);
        assert_eq!(report.lanes.messages[0].count(), after.rounds);
    }

    #[test]
    fn capped_tracing_drops_oldest_rounds() {
        let mut sys = machine();
        sys.enable_tracing_with_cap(2);
        for _ in 0..5 {
            sys.send(0, EchoTask::Ping(1));
            sys.run_round();
        }
        let trace = sys.take_trace();
        assert_eq!(trace.rounds.len(), 2);
        assert_eq!(trace.dropped_rounds(), 3);
        let kept: Vec<u64> = trace.rounds.iter().map(|r| r.round).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn log_p_rounding() {
        assert_eq!(PimSystem::new(1, |_| Echo { hits: 0 }).log_p(), 1);
        assert_eq!(PimSystem::new(2, |_| Echo { hits: 0 }).log_p(), 1);
        assert_eq!(PimSystem::new(4, |_| Echo { hits: 0 }).log_p(), 2);
        assert_eq!(PimSystem::new(5, |_| Echo { hits: 0 }).log_p(), 3);
        assert_eq!(PimSystem::new(8, |_| Echo { hits: 0 }).log_p(), 3);
        assert_eq!(PimSystem::new(9, |_| Echo { hits: 0 }).log_p(), 4);
    }
}
