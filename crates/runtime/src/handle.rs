//! Node handles: global addresses in the PIM machine.
//!
//! A [`Handle`] names one slot of one PIM module's local memory. The paper's
//! skip list stores two kinds of nodes (§3.1): *lower-part* nodes living in
//! exactly one module, and *upper-part* nodes replicated across **all**
//! modules at the same local address. The [`Arena`] discriminant records
//! which of the two address spaces a handle points into; for replicated
//! handles the module field is irrelevant (any module can resolve them
//! locally), which is exactly the property the algorithms exploit to avoid
//! network traffic in the upper part.

use std::fmt;

/// Identifier of a PIM module, `0..P`.
pub type ModuleId = u32;

/// Which of the two per-module address spaces a handle refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arena {
    /// Replicated storage: the same slot exists in every module.
    Replicated,
    /// Distributed storage: the slot exists only in `Handle::module()`.
    Local,
}

/// A packed global address: `(arena kind, module id, slot index)`.
///
/// Packing keeps handles `Copy` and exactly one machine word, matching the
/// model's assumption that messages carry a constant number of words.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(u64);

const NULL_BITS: u64 = u64::MAX;
const REPL_BIT: u64 = 1 << 63;
const MODULE_SHIFT: u32 = 32;
const MODULE_MASK: u64 = 0x7FFF_FFFF;
const SLOT_MASK: u64 = 0xFFFF_FFFF;

impl Handle {
    /// The distinguished null handle (no node).
    pub const NULL: Handle = Handle(NULL_BITS);

    /// A handle to a distributed (single-module) slot.
    #[inline]
    pub fn local(module: ModuleId, slot: u32) -> Handle {
        debug_assert!((module as u64) < MODULE_MASK);
        Handle(((module as u64) << MODULE_SHIFT) | slot as u64)
    }

    /// A handle to a replicated slot (present in every module).
    #[inline]
    pub fn replicated(slot: u32) -> Handle {
        Handle(REPL_BIT | slot as u64)
    }

    /// Is this the null handle?
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == NULL_BITS
    }

    /// Is this a non-null handle?
    #[inline]
    pub fn is_some(self) -> bool {
        !self.is_null()
    }

    /// Which arena the handle addresses. Panics on null in debug builds.
    #[inline]
    pub fn arena(self) -> Arena {
        debug_assert!(!self.is_null(), "arena() on null handle");
        if self.0 & REPL_BIT != 0 {
            Arena::Replicated
        } else {
            Arena::Local
        }
    }

    /// True if the handle addresses the replicated arena.
    #[inline]
    pub fn is_replicated(self) -> bool {
        self.is_some() && self.0 & REPL_BIT != 0
    }

    /// The owning module of a [`Arena::Local`] handle.
    ///
    /// For replicated handles there is no unique owner; callers must not ask.
    #[inline]
    pub fn module(self) -> ModuleId {
        debug_assert!(
            self.is_some() && self.0 & REPL_BIT == 0,
            "module() requires a non-null Local handle"
        );
        ((self.0 >> MODULE_SHIFT) & MODULE_MASK) as ModuleId
    }

    /// Slot index within the arena.
    #[inline]
    pub fn slot(self) -> u32 {
        debug_assert!(!self.is_null(), "slot() on null handle");
        (self.0 & SLOT_MASK) as u32
    }

    /// Raw bit pattern (one machine word, as shipped in messages).
    #[inline]
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from [`Handle::to_bits`].
    #[inline]
    pub fn from_bits(bits: u64) -> Handle {
        Handle(bits)
    }

    /// The module whose local memory resolves this handle *from the
    /// perspective of module `me`*: replicated handles resolve locally,
    /// distributed handles resolve at their owner.
    #[inline]
    pub fn resolver(self, me: ModuleId) -> ModuleId {
        if self.is_replicated() {
            me
        } else {
            self.module()
        }
    }
}

impl Default for Handle {
    fn default() -> Self {
        Handle::NULL
    }
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Handle(NULL)")
        } else if self.is_replicated() {
            write!(f, "Handle(R:{})", self.slot())
        } else {
            write!(f, "Handle({}:{})", self.module(), self.slot())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        assert!(Handle::NULL.is_null());
        assert!(!Handle::NULL.is_some());
        assert_eq!(Handle::from_bits(Handle::NULL.to_bits()), Handle::NULL);
        assert_eq!(Handle::default(), Handle::NULL);
    }

    #[test]
    fn local_fields() {
        let h = Handle::local(17, 123_456);
        assert!(h.is_some());
        assert!(!h.is_replicated());
        assert_eq!(h.arena(), Arena::Local);
        assert_eq!(h.module(), 17);
        assert_eq!(h.slot(), 123_456);
    }

    #[test]
    fn replicated_fields() {
        let h = Handle::replicated(99);
        assert!(h.is_replicated());
        assert_eq!(h.arena(), Arena::Replicated);
        assert_eq!(h.slot(), 99);
    }

    #[test]
    fn resolver_semantics() {
        let local = Handle::local(3, 5);
        let repl = Handle::replicated(5);
        assert_eq!(local.resolver(7), 3);
        assert_eq!(repl.resolver(7), 7);
        assert_eq!(repl.resolver(0), 0);
    }

    #[test]
    fn bit_roundtrip_distinguishes_arenas() {
        let a = Handle::local(0, 5);
        let b = Handle::replicated(5);
        assert_ne!(a, b);
        assert_eq!(Handle::from_bits(a.to_bits()), a);
        assert_eq!(Handle::from_bits(b.to_bits()), b);
    }

    #[test]
    fn max_local_fields() {
        let h = Handle::local(0x7FFF_FFFE, u32::MAX - 1);
        assert_eq!(h.module(), 0x7FFF_FFFE);
        assert_eq!(h.slot(), u32::MAX - 1);
        assert!(!h.is_null());
    }
}
