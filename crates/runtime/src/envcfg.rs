//! One parser for every `PIM_*` environment knob.
//!
//! Before this module each layer scraped the environment on its own —
//! the pool read `PIM_THREADS`, the core config read `PIM_PIPELINE`, and
//! the cluster tier would have added a third copy for `PIM_SHARDS`. All
//! of that now lives here: [`EnvSettings::from_env`] is the single place
//! the process environment is consulted, and the layered configs
//! ([`crate::pool::ExecConfig::from_env`], `pim_core::Config::from_env`,
//! `pim_cluster::ClusterConfig::from_env`) consume the parsed struct.
//!
//! Parsing is injectable ([`EnvSettings::from_lookup`]) so unit tests
//! never mutate the process environment (which is global and racy under
//! a parallel test harness).

/// The parsed `PIM_*` environment, `None` where a variable is absent or
/// unparseable (each consumer applies its own default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnvSettings {
    /// `PIM_THREADS`: executor worker threads. `0` and garbage both mean
    /// "use every core", which is the absent default too — so those parse
    /// to `None` here.
    pub threads: Option<usize>,
    /// `PIM_PIPELINE`: inter-batch round pipelining. `1`/`true` → on,
    /// `0`/`false` → off, anything else (including absent) → `None`
    /// (consumers default to off).
    pub pipeline: Option<bool>,
    /// `PIM_SHARDS`: cluster shard count `S ≥ 1` (consumers default
    /// to 1 — a single-machine cluster).
    pub shards: Option<u32>,
    /// `PIM_PUSH_PULL`: CPU-side hot-node cache for batch search.
    /// `1`/`true` → on, `0`/`false` → off, anything else (including
    /// absent) → `None` (consumers default to off).
    pub push_pull: Option<bool>,
}

impl EnvSettings {
    /// Parse the real process environment.
    pub fn from_env() -> Self {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// Parse through an injected lookup (unit tests; the real environment
    /// is process-global, so tests must not touch it).
    pub fn from_lookup(var: impl Fn(&str) -> Option<String>) -> Self {
        let threads = var("PIM_THREADS")
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let pipeline = var("PIM_PIPELINE").and_then(|v| match v.trim() {
            "1" | "true" => Some(true),
            "0" | "false" => Some(false),
            _ => None,
        });
        let shards = var("PIM_SHARDS")
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n >= 1);
        let push_pull = var("PIM_PUSH_PULL").and_then(|v| match v.trim() {
            "1" | "true" => Some(true),
            "0" | "false" => Some(false),
            _ => None,
        });
        EnvSettings {
            threads,
            pipeline,
            shards,
            push_pull,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(name, _)| *name == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn absent_environment_parses_to_none() {
        assert_eq!(EnvSettings::from_lookup(|_| None), EnvSettings::default());
    }

    #[test]
    fn threads_zero_and_garbage_mean_all_cores() {
        assert_eq!(
            EnvSettings::from_lookup(lookup(&[("PIM_THREADS", "8")])).threads,
            Some(8)
        );
        assert_eq!(
            EnvSettings::from_lookup(lookup(&[("PIM_THREADS", "0")])).threads,
            None
        );
        assert_eq!(
            EnvSettings::from_lookup(lookup(&[("PIM_THREADS", "lots")])).threads,
            None
        );
        assert_eq!(
            EnvSettings::from_lookup(lookup(&[("PIM_THREADS", " 4 ")])).threads,
            Some(4)
        );
    }

    #[test]
    fn pipeline_accepts_both_spellings_either_way() {
        for (v, want) in [
            ("1", Some(true)),
            ("true", Some(true)),
            ("0", Some(false)),
            ("false", Some(false)),
            ("yes", None),
            ("", None),
        ] {
            assert_eq!(
                EnvSettings::from_lookup(lookup(&[("PIM_PIPELINE", v)])).pipeline,
                want,
                "PIM_PIPELINE={v}"
            );
        }
    }

    #[test]
    fn shards_require_a_positive_count() {
        assert_eq!(
            EnvSettings::from_lookup(lookup(&[("PIM_SHARDS", "4")])).shards,
            Some(4)
        );
        assert_eq!(
            EnvSettings::from_lookup(lookup(&[("PIM_SHARDS", "0")])).shards,
            None
        );
        assert_eq!(
            EnvSettings::from_lookup(lookup(&[("PIM_SHARDS", "-2")])).shards,
            None
        );
    }

    #[test]
    fn push_pull_parses_like_pipeline() {
        for (v, want) in [
            ("1", Some(true)),
            ("true", Some(true)),
            ("0", Some(false)),
            ("false", Some(false)),
            ("on", None),
            ("", None),
        ] {
            assert_eq!(
                EnvSettings::from_lookup(lookup(&[("PIM_PUSH_PULL", v)])).push_pull,
                want,
                "PIM_PUSH_PULL={v}"
            );
        }
    }

    #[test]
    fn all_knobs_parse_together() {
        let s = EnvSettings::from_lookup(lookup(&[
            ("PIM_THREADS", "2"),
            ("PIM_PIPELINE", "1"),
            ("PIM_SHARDS", "8"),
            ("PIM_PUSH_PULL", "true"),
        ]));
        assert_eq!(
            s,
            EnvSettings {
                threads: Some(2),
                pipeline: Some(true),
                shards: Some(8),
                push_pull: Some(true),
            }
        );
    }
}
