//! Span-based cost attribution.
//!
//! [`crate::metrics::Metrics`] answers "what did the whole run cost";
//! spans answer "which *phase* spent it". A [`Probe`] keeps a stack of
//! named spans; every cost the machine accrues — rounds, `h`, messages,
//! work, CPU charges, shared-memory peaks, fault counters — is attributed
//! to the innermost span open at the moment it accrues (its *exclusive*
//! cost). The attribution is snapshot-based: the probe remembers the
//! metrics at the last span transition and flushes the delta into the open
//! span at every enter/exit, so instrumented code never threads cost
//! values around — it only brackets phases.
//!
//! Two invariants, both tested:
//!
//! * **Zero overhead when disabled.** The system holds `Option<Probe>`;
//!   with no probe the span calls are a single `None` check and all
//!   metrics/trace outputs are bit-identical to a build without this
//!   module.
//! * **Conservation.** Every additive counter of the whole-run `Metrics`
//!   delta equals the sum of the same counter over all spans' exclusive
//!   stats. Cost accrued outside any explicit span lands in the implicit
//!   root span (id 0, named `"run"`), so nothing is lost.
//!
//! There is no wall-clock anywhere: a span's extent is measured in round
//! indices (`start_round ..= end_round`), which is also the time axis of
//! the trace export.

use crate::histogram::ModuleLanes;
use crate::metrics::Metrics;

/// Identifier of a span within one [`ProbeReport`] (dense, 0 = root).
pub type SpanId = u32;

/// One named phase of a computation, with its exclusive cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Dense id; 0 is the implicit root span.
    pub id: SpanId,
    /// Parent span id (`None` only for the root).
    pub parent: Option<SpanId>,
    /// Static name, conventionally `op` or `op/phase` (see the span
    /// taxonomy in `docs/MODEL.md`).
    pub name: &'static str,
    /// Nesting depth (root = 0).
    pub depth: u32,
    /// Machine round index at which the span was entered.
    pub start_round: u64,
    /// Machine round index at which the span was exited.
    pub end_round: u64,
    /// Exclusive cost: metrics accrued while this span was innermost.
    ///
    /// Additive fields are exact; `shared_mem_peak` is the machine peak
    /// observed by the time the span closed (peaks are high-water marks,
    /// not counters, so they max rather than add).
    pub stats: Metrics,
}

fn absorb(into: &mut Metrics, delta: Metrics) {
    into.rounds += delta.rounds;
    into.io_time += delta.io_time;
    into.pim_time += delta.pim_time;
    into.total_messages += delta.total_messages;
    into.total_pim_work += delta.total_pim_work;
    into.cpu_work += delta.cpu_work;
    into.cpu_depth += delta.cpu_depth;
    into.shared_mem_peak = into.shared_mem_peak.max(delta.shared_mem_peak);
    into.faults_injected += delta.faults_injected;
    into.messages_dropped += delta.messages_dropped;
    into.module_crashes += delta.module_crashes;
    into.stalled_module_rounds += delta.stalled_module_rounds;
    into.retries_issued += delta.retries_issued;
    into.recovery_rounds += delta.recovery_rounds;
}

/// The recording half of the observability layer.
///
/// Owned by the system as `Option<Probe>`; created by
/// `PimSystem::enable_probe`, harvested by `PimSystem::take_probe`.
#[derive(Debug)]
pub struct Probe {
    spans: Vec<Span>,
    stack: Vec<SpanId>,
    last: Metrics,
    lanes: ModuleLanes,
}

impl Probe {
    /// A probe for a `p`-module machine whose metrics currently read `now`.
    pub(crate) fn new(p: u32, now: Metrics) -> Self {
        Probe {
            spans: vec![Span {
                id: 0,
                parent: None,
                name: "run",
                depth: 0,
                start_round: now.rounds,
                end_round: now.rounds,
                stats: Metrics::default(),
            }],
            stack: vec![0],
            last: now,
            lanes: ModuleLanes::new(p),
        }
    }

    /// Flush the metrics delta since the last transition into the
    /// innermost open span.
    fn flush(&mut self, now: Metrics) {
        let delta = now - self.last;
        let top = *self.stack.last().expect("root span never pops");
        absorb(&mut self.spans[top as usize].stats, delta);
        self.last = now;
    }

    /// Open a span as a child of the innermost open one.
    pub(crate) fn enter(&mut self, name: &'static str, now: Metrics) {
        self.flush(now);
        let parent = *self.stack.last().expect("root span never pops");
        let id = self.spans.len() as SpanId;
        self.spans.push(Span {
            id,
            parent: Some(parent),
            name,
            depth: self.spans[parent as usize].depth + 1,
            start_round: now.rounds,
            end_round: now.rounds,
            stats: Metrics::default(),
        });
        self.stack.push(id);
    }

    /// Close the innermost open span (no-op at the root).
    pub(crate) fn exit(&mut self, now: Metrics) {
        self.flush(now);
        if self.stack.len() > 1 {
            let id = self.stack.pop().expect("checked non-root");
            self.spans[id as usize].end_round = now.rounds;
        }
    }

    /// Feed one round's per-module `(messages, work)` into the lanes.
    pub(crate) fn observe_round(&mut self, per_module: &[(u64, u64)]) {
        self.lanes.observe_round(per_module);
    }

    /// Close every open span and produce the report.
    pub(crate) fn finish(mut self, now: Metrics) -> ProbeReport {
        self.flush(now);
        while self.stack.len() > 1 {
            let id = self.stack.pop().expect("checked non-root");
            self.spans[id as usize].end_round = now.rounds;
        }
        self.spans[0].end_round = now.rounds;
        ProbeReport {
            p: self.lanes.p(),
            spans: self.spans,
            lanes: self.lanes,
        }
    }
}

/// The harvested result of a probed run.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// Number of PIM modules of the machine that produced the report.
    pub p: u32,
    /// All spans in creation order; index equals [`Span::id`], entry 0 is
    /// the implicit root.
    pub spans: Vec<Span>,
    /// Per-module streaming histograms of per-round messages and work.
    pub lanes: ModuleLanes,
}

impl ProbeReport {
    /// Sum of the exclusive stats of *all* spans.
    ///
    /// By the conservation invariant this equals the whole-run metrics
    /// delta over the probed interval, additive counter by additive
    /// counter (peaks max instead).
    pub fn total(&self) -> Metrics {
        let mut t = Metrics::default();
        for s in &self.spans {
            absorb(&mut t, s.stats);
        }
        t
    }

    /// Inclusive stats of span `id`: its exclusive stats plus those of
    /// every descendant.
    pub fn inclusive(&self, id: SpanId) -> Metrics {
        let mut t = Metrics::default();
        for s in &self.spans {
            if self.has_ancestor_or_self(s.id, id) {
                absorb(&mut t, s.stats);
            }
        }
        t
    }

    /// Whether `id` equals `ancestor` or has it on its parent chain.
    pub fn has_ancestor_or_self(&self, id: SpanId, ancestor: SpanId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.spans[c as usize].parent;
        }
        false
    }

    /// The full path of span `id`: ancestor names joined with `" > "`,
    /// root omitted (the root itself renders as `"run"`).
    pub fn path(&self, id: SpanId) -> String {
        let mut names = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let s = &self.spans[c as usize];
            if s.parent.is_some() || s.id == id {
                names.push(s.name);
            }
            cur = s.parent;
        }
        names.reverse();
        names.join(" > ")
    }

    /// Aggregate spans by full path: `(path, depth, occurrences, summed
    /// exclusive stats)` in first-appearance order.
    pub fn by_path(&self) -> Vec<(String, u32, u64, Metrics)> {
        let mut order: Vec<String> = Vec::new();
        let mut agg: Vec<(u32, u64, Metrics)> = Vec::new();
        for s in &self.spans {
            let path = self.path(s.id);
            match order.iter().position(|p| *p == path) {
                Some(i) => {
                    agg[i].1 += 1;
                    absorb(&mut agg[i].2, s.stats);
                }
                None => {
                    order.push(path);
                    agg.push((s.depth, 1, s.stats));
                }
            }
        }
        order
            .into_iter()
            .zip(agg)
            .map(|(p, (d, n, m))| (p, d, n, m))
            .collect()
    }

    /// Ids of spans whose name matches `name` exactly.
    pub fn spans_named(&self, name: &str) -> Vec<SpanId> {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_after(rounds: u64, io: u64, cpu: u64) -> Metrics {
        let mut m = Metrics::default();
        for _ in 0..rounds {
            m.record_round(io, io, io * 2, io * 2);
        }
        m.charge_cpu(cpu, cpu);
        m
    }

    #[test]
    fn exclusive_attribution_and_conservation() {
        let mut m = Metrics::default();
        let mut p = Probe::new(2, m);

        m.record_round(3, 3, 6, 6); // before any span → root
        p.enter("get", m);
        m.record_round(5, 5, 10, 10);
        p.enter("get/lookup", m);
        m.record_round(7, 7, 14, 14);
        m.charge_cpu(100, 10);
        p.exit(m);
        m.record_round(1, 1, 2, 2); // back in "get"
        p.exit(m);
        let report = p.finish(m);

        assert_eq!(report.spans.len(), 3);
        let get = &report.spans[report.spans_named("get")[0] as usize];
        let lookup = &report.spans[report.spans_named("get/lookup")[0] as usize];
        assert_eq!(get.stats.io_time, 6); // 5 + 1, not the nested 7
        assert_eq!(lookup.stats.io_time, 7);
        assert_eq!(lookup.stats.cpu_work, 100);
        assert_eq!(report.spans[0].stats.io_time, 3);

        let total = report.total();
        assert_eq!(total.rounds, m.rounds);
        assert_eq!(total.io_time, m.io_time);
        assert_eq!(total.total_messages, m.total_messages);
        assert_eq!(total.cpu_work, m.cpu_work);
        assert_eq!(total.cpu_depth, m.cpu_depth);
    }

    #[test]
    fn inclusive_rolls_up_descendants() {
        let mut m = Metrics::default();
        let mut p = Probe::new(2, m);
        p.enter("upsert", m);
        m.record_round(2, 2, 4, 4);
        p.enter("upsert/link", m);
        m.record_round(3, 3, 6, 6);
        p.exit(m);
        p.exit(m);
        let report = p.finish(m);
        let upsert = report.spans_named("upsert")[0];
        assert_eq!(report.inclusive(upsert).io_time, 5);
        assert_eq!(report.spans[upsert as usize].stats.io_time, 2);
    }

    #[test]
    fn unbalanced_spans_are_closed_by_finish() {
        let mut m = Metrics::default();
        let mut p = Probe::new(2, m);
        p.enter("leaky", m);
        m.record_round(4, 4, 8, 8);
        let report = p.finish(m);
        let leaky = &report.spans[report.spans_named("leaky")[0] as usize];
        assert_eq!(leaky.end_round, m.rounds);
        assert_eq!(report.total().io_time, 4);
    }

    #[test]
    fn exit_at_root_is_a_no_op() {
        let mut m = Metrics::default();
        let mut p = Probe::new(2, m);
        p.exit(m);
        p.exit(m);
        m.record_round(1, 1, 2, 2);
        let report = p.finish(m);
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.total().rounds, 1);
    }

    #[test]
    fn span_rounds_mark_extent() {
        let mut m = metrics_after(3, 1, 0);
        let mut p = Probe::new(2, m);
        p.enter("op", m);
        m.record_round(1, 1, 2, 2);
        m.record_round(1, 1, 2, 2);
        p.exit(m);
        let report = p.finish(m);
        let op = &report.spans[report.spans_named("op")[0] as usize];
        assert_eq!(op.start_round, 3);
        assert_eq!(op.end_round, 5);
        assert_eq!(op.stats.rounds, 2);
    }

    #[test]
    fn paths_and_aggregation() {
        let mut m = Metrics::default();
        let mut p = Probe::new(2, m);
        for _ in 0..2 {
            p.enter("get", m);
            m.record_round(1, 1, 2, 2);
            p.enter("get/lookup", m);
            m.record_round(2, 2, 4, 4);
            p.exit(m);
            p.exit(m);
        }
        let report = p.finish(m);
        let rows = report.by_path();
        assert_eq!(rows.len(), 3); // run, get, get > get/lookup
        let (path, depth, n, stats) = &rows[2];
        assert_eq!(path, "get > get/lookup");
        assert_eq!(*depth, 2);
        assert_eq!(*n, 2);
        assert_eq!(stats.io_time, 4);
        let (_, _, n_get, get_stats) = &rows[1];
        assert_eq!(*n_get, 2);
        assert_eq!(get_stats.io_time, 2);
    }
}
