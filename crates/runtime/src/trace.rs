//! Optional per-round tracing.
//!
//! The aggregate metrics of [`crate::metrics::Metrics`] summarise a whole
//! computation; some experiments need the *profile* — how the `h`-relation
//! and the PIM work evolve round by round (e.g. the step structure of the
//! naïve search in §4.2, or the phase boundaries of the pivot divide and
//! conquer). When enabled, the system records one [`RoundTrace`] per round,
//! including the per-module message counts the round's `h` was the max of.

use crate::fault::{FaultKind, FaultRecord};
use crate::handle::ModuleId;

/// One bulk-synchronous round's record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTrace {
    /// Round index (machine lifetime, 0-based).
    pub round: u64,
    /// The `h` of this round's `h`-relation.
    pub h: u64,
    /// Max local work on any module this round.
    pub max_work: u64,
    /// Total messages this round.
    pub messages: u64,
    /// Total PIM work this round.
    pub work: u64,
    /// Per-module message counts (in + out), length `P`.
    pub per_module_messages: Vec<u64>,
    /// Faults the injector applied this round (empty on healthy rounds).
    pub faults: Vec<FaultRecord>,
}

impl RoundTrace {
    /// Which module realised the round's `h`.
    ///
    /// Ties resolve to the lowest module id; `None` when no per-module
    /// counts were recorded (rather than silently blaming module 0).
    pub fn hottest_module(&self) -> Option<ModuleId> {
        let mut best: Option<(usize, u64)> = None;
        for (i, &m) in self.per_module_messages.iter().enumerate() {
            if best.is_none_or(|(_, bm)| m > bm) {
                best = Some((i, m));
            }
        }
        best.map(|(i, _)| i as ModuleId)
    }

    /// Messages of the busiest module divided by the mean — the round's
    /// own imbalance factor.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_module_messages.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.per_module_messages.len() as f64;
        self.h as f64 / mean
    }
}

/// A sequence of round traces with summary helpers.
///
/// Memory can be bounded with [`Trace::with_cap`]: once `cap` rounds are
/// held the buffer becomes a ring — each new round overwrites the oldest
/// and bumps [`Trace::dropped_rounds`], so exports can state truncation
/// explicitly instead of silently growing without limit on long chaos
/// runs. [`Trace::finalize`] rotates the ring back to oldest-first order;
/// the system calls it when the trace is taken.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The recorded rounds, oldest first (after [`Trace::finalize`]).
    pub rounds: Vec<RoundTrace>,
    cap: Option<usize>,
    dropped: u64,
    ring_start: usize,
}

impl Trace {
    /// An unbounded trace (every round kept).
    pub fn new() -> Self {
        Self::default()
    }

    /// A trace keeping at most `cap` most-recent rounds (`cap ≥ 1`).
    pub fn with_cap(cap: usize) -> Self {
        Trace {
            cap: Some(cap.max(1)),
            ..Trace::default()
        }
    }

    /// Record one round, evicting the oldest when at capacity.
    pub fn record(&mut self, rt: RoundTrace) {
        match self.cap {
            Some(cap) if self.rounds.len() >= cap => {
                self.rounds[self.ring_start] = rt;
                self.ring_start = (self.ring_start + 1) % cap;
                self.dropped += 1;
            }
            _ => self.rounds.push(rt),
        }
    }

    /// Rounds evicted by the ring cap (0 when unbounded or under cap).
    pub fn dropped_rounds(&self) -> u64 {
        self.dropped
    }

    /// The configured cap, if any.
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    /// Restore oldest-first order after ring wrap-around.
    pub fn finalize(&mut self) {
        if self.ring_start > 0 {
            self.rounds.rotate_left(self.ring_start);
            self.ring_start = 0;
        }
    }
    /// Rounds whose `h` is at least `threshold` (hot rounds).
    pub fn hot_rounds(&self, threshold: u64) -> Vec<&RoundTrace> {
        self.rounds.iter().filter(|r| r.h >= threshold).collect()
    }

    /// The largest `h` observed.
    pub fn max_h(&self) -> u64 {
        self.rounds.iter().map(|r| r.h).max().unwrap_or(0)
    }

    /// A compact text histogram of `h` per round (experiment output).
    ///
    /// Rounds that suffered injected faults are annotated so hot-round
    /// diagnostics can tell workload skew apart from injected adversity:
    /// `!crash(m)`, `!stall(m)`, `!drop(m)` (task or reply loss) and
    /// `!slow(m)`, one marker per applied fault.
    pub fn h_profile(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let max = self.max_h().max(1);
        for r in &self.rounds {
            let bars = (r.h * 40 / max) as usize;
            let _ = write!(out, "{:>5} | {:<40} h={}", r.round, "#".repeat(bars), r.h);
            for f in &r.faults {
                let tag = match f.kind {
                    FaultKind::Crash => "crash",
                    FaultKind::Stall => "stall",
                    FaultKind::DropTask { .. } | FaultKind::DropReply { .. } => "drop",
                    FaultKind::Slow { .. } => "slow",
                };
                let _ = write!(out, " !{}({})", tag, f.module);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(round: u64, per_module: Vec<u64>) -> RoundTrace {
        let h = per_module.iter().copied().max().unwrap_or(0);
        let messages = per_module.iter().sum();
        RoundTrace {
            round,
            h,
            max_work: h,
            messages,
            work: messages,
            per_module_messages: per_module,
            faults: Vec::new(),
        }
    }

    #[test]
    fn hottest_module_and_imbalance() {
        let r = rt(0, vec![1, 5, 2, 0]);
        assert_eq!(r.hottest_module(), Some(1));
        assert!((r.imbalance() - 5.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn hottest_module_ties_resolve_to_lowest_id() {
        let r = rt(0, vec![2, 5, 5, 1]);
        assert_eq!(r.hottest_module(), Some(1));
        let all_equal = rt(0, vec![3, 3, 3]);
        assert_eq!(all_equal.hottest_module(), Some(0));
    }

    #[test]
    fn hottest_module_of_empty_is_none() {
        let r = rt(0, vec![]);
        assert_eq!(r.hottest_module(), None);
    }

    #[test]
    fn imbalance_of_idle_round_is_one() {
        let r = rt(0, vec![0, 0]);
        assert_eq!(r.imbalance(), 1.0);
    }

    #[test]
    fn trace_summaries() {
        let t = Trace {
            rounds: vec![rt(0, vec![1, 1]), rt(1, vec![9, 0]), rt(2, vec![2, 3])],
            ..Trace::default()
        };
        assert_eq!(t.max_h(), 9);
        assert_eq!(t.hot_rounds(4).len(), 1);
        assert_eq!(t.hot_rounds(3).len(), 2);
        let profile = t.h_profile();
        assert!(profile.contains("h=9"));
        assert_eq!(profile.lines().count(), 3);
    }

    #[test]
    fn h_profile_annotates_faulted_rounds() {
        let mut crashed = rt(1, vec![9, 0]);
        crashed.faults.push(FaultRecord {
            module: 1,
            kind: FaultKind::Crash,
        });
        crashed.faults.push(FaultRecord {
            module: 0,
            kind: FaultKind::Slow { factor: 3 },
        });
        let mut stalled = rt(2, vec![2, 3]);
        stalled.faults.push(FaultRecord {
            module: 0,
            kind: FaultKind::Stall,
        });
        let t = Trace {
            rounds: vec![rt(0, vec![1, 1]), crashed, stalled],
            ..Trace::default()
        };
        let profile = t.h_profile();
        let lines: Vec<&str> = profile.lines().collect();
        assert!(!lines[0].contains('!'), "healthy round must be unmarked");
        assert!(lines[1].contains("!crash(1)"));
        assert!(lines[1].contains("!slow(0)"));
        assert!(lines[2].contains("!stall(0)"));
    }

    #[test]
    fn unbounded_trace_keeps_everything() {
        let mut t = Trace::new();
        for i in 0..100 {
            t.record(rt(i, vec![1, 1]));
        }
        assert_eq!(t.rounds.len(), 100);
        assert_eq!(t.dropped_rounds(), 0);
        assert_eq!(t.cap(), None);
    }

    #[test]
    fn ring_cap_evicts_oldest_and_counts_drops() {
        let mut t = Trace::with_cap(3);
        for i in 0..7 {
            t.record(rt(i, vec![i, 0]));
        }
        assert_eq!(t.rounds.len(), 3);
        assert_eq!(t.dropped_rounds(), 4);
        t.finalize();
        let kept: Vec<u64> = t.rounds.iter().map(|r| r.round).collect();
        assert_eq!(kept, vec![4, 5, 6], "the most recent rounds survive");
    }

    #[test]
    fn finalize_under_cap_is_identity() {
        let mut t = Trace::with_cap(10);
        for i in 0..4 {
            t.record(rt(i, vec![1]));
        }
        t.finalize();
        let kept: Vec<u64> = t.rounds.iter().map(|r| r.round).collect();
        assert_eq!(kept, vec![0, 1, 2, 3]);
        assert_eq!(t.dropped_rounds(), 0);
    }

    #[test]
    fn cap_of_zero_is_clamped_to_one() {
        let mut t = Trace::with_cap(0);
        t.record(rt(0, vec![1]));
        t.record(rt(1, vec![1]));
        t.finalize();
        assert_eq!(t.rounds.len(), 1);
        assert_eq!(t.rounds[0].round, 1);
        assert_eq!(t.dropped_rounds(), 1);
    }
}
