//! Optional per-round tracing.
//!
//! The aggregate metrics of [`crate::metrics::Metrics`] summarise a whole
//! computation; some experiments need the *profile* — how the `h`-relation
//! and the PIM work evolve round by round (e.g. the step structure of the
//! naïve search in §4.2, or the phase boundaries of the pivot divide and
//! conquer). When enabled, the system records one [`RoundTrace`] per round,
//! including the per-module message counts the round's `h` was the max of.

use crate::fault::{FaultKind, FaultRecord};
use crate::handle::ModuleId;

/// One bulk-synchronous round's record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTrace {
    /// Round index (machine lifetime, 0-based).
    pub round: u64,
    /// The `h` of this round's `h`-relation.
    pub h: u64,
    /// Max local work on any module this round.
    pub max_work: u64,
    /// Total messages this round.
    pub messages: u64,
    /// Total PIM work this round.
    pub work: u64,
    /// Per-module message counts (in + out), length `P`.
    pub per_module_messages: Vec<u64>,
    /// Faults the injector applied this round (empty on healthy rounds).
    pub faults: Vec<FaultRecord>,
}

impl RoundTrace {
    /// Which module realised the round's `h`.
    pub fn hottest_module(&self) -> ModuleId {
        self.per_module_messages
            .iter()
            .enumerate()
            .max_by_key(|(_, &m)| m)
            .map(|(i, _)| i as ModuleId)
            .unwrap_or(0)
    }

    /// Messages of the busiest module divided by the mean — the round's
    /// own imbalance factor.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_module_messages.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.per_module_messages.len() as f64;
        self.h as f64 / mean
    }
}

/// A sequence of round traces with summary helpers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The recorded rounds, oldest first.
    pub rounds: Vec<RoundTrace>,
}

impl Trace {
    /// Rounds whose `h` is at least `threshold` (hot rounds).
    pub fn hot_rounds(&self, threshold: u64) -> Vec<&RoundTrace> {
        self.rounds.iter().filter(|r| r.h >= threshold).collect()
    }

    /// The largest `h` observed.
    pub fn max_h(&self) -> u64 {
        self.rounds.iter().map(|r| r.h).max().unwrap_or(0)
    }

    /// A compact text histogram of `h` per round (experiment output).
    ///
    /// Rounds that suffered injected faults are annotated so hot-round
    /// diagnostics can tell workload skew apart from injected adversity:
    /// `!crash(m)`, `!stall(m)`, `!drop(m)` (task or reply loss) and
    /// `!slow(m)`, one marker per applied fault.
    pub fn h_profile(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let max = self.max_h().max(1);
        for r in &self.rounds {
            let bars = (r.h * 40 / max) as usize;
            let _ = write!(out, "{:>5} | {:<40} h={}", r.round, "#".repeat(bars), r.h);
            for f in &r.faults {
                let tag = match f.kind {
                    FaultKind::Crash => "crash",
                    FaultKind::Stall => "stall",
                    FaultKind::DropTask { .. } | FaultKind::DropReply { .. } => "drop",
                    FaultKind::Slow { .. } => "slow",
                };
                let _ = write!(out, " !{}({})", tag, f.module);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(round: u64, per_module: Vec<u64>) -> RoundTrace {
        let h = per_module.iter().copied().max().unwrap_or(0);
        let messages = per_module.iter().sum();
        RoundTrace {
            round,
            h,
            max_work: h,
            messages,
            work: messages,
            per_module_messages: per_module,
            faults: Vec::new(),
        }
    }

    #[test]
    fn hottest_module_and_imbalance() {
        let r = rt(0, vec![1, 5, 2, 0]);
        assert_eq!(r.hottest_module(), 1);
        assert!((r.imbalance() - 5.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_of_idle_round_is_one() {
        let r = rt(0, vec![0, 0]);
        assert_eq!(r.imbalance(), 1.0);
    }

    #[test]
    fn trace_summaries() {
        let t = Trace {
            rounds: vec![rt(0, vec![1, 1]), rt(1, vec![9, 0]), rt(2, vec![2, 3])],
        };
        assert_eq!(t.max_h(), 9);
        assert_eq!(t.hot_rounds(4).len(), 1);
        assert_eq!(t.hot_rounds(3).len(), 2);
        let profile = t.h_profile();
        assert!(profile.contains("h=9"));
        assert_eq!(profile.lines().count(), 3);
    }

    #[test]
    fn h_profile_annotates_faulted_rounds() {
        let mut crashed = rt(1, vec![9, 0]);
        crashed.faults.push(FaultRecord {
            module: 1,
            kind: FaultKind::Crash,
        });
        crashed.faults.push(FaultRecord {
            module: 0,
            kind: FaultKind::Slow { factor: 3 },
        });
        let mut stalled = rt(2, vec![2, 3]);
        stalled.faults.push(FaultRecord {
            module: 0,
            kind: FaultKind::Stall,
        });
        let t = Trace {
            rounds: vec![rt(0, vec![1, 1]), crashed, stalled],
        };
        let profile = t.h_profile();
        let lines: Vec<&str> = profile.lines().collect();
        assert!(!lines[0].contains('!'), "healthy round must be unmarked");
        assert!(lines[1].contains("!crash(1)"));
        assert!(lines[1].contains("!slow(0)"));
        assert!(lines[2].contains("!stall(0)"));
    }
}
