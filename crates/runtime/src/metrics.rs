//! Cost metrics of the PIM model (§2.1).
//!
//! The model is analysed in five currencies:
//!
//! * **IO time** — the network runs in bulk-synchronous rounds; round `i`
//!   realises an `h_i`-relation where `h_i` is the *maximum* number of
//!   messages to/from any one PIM module; IO time is `Σ h_i`.
//! * **PIM time** — maximum local work on any one PIM core (we account it
//!   per round and sum, which equals the max along the barrier-aligned
//!   schedule the simulator executes).
//! * **CPU work / CPU depth** — standard work/span of the CPU side, charged
//!   analytically by the instrumented CPU-side primitives.
//! * **rounds** — number of bulk-synchronous rounds (synchronisation cost is
//!   `rounds · log P`, reported separately as in Theorem 5.1's discussion).
//! * **shared memory** — high-water mark of CPU-side staging space in words
//!   (the minimal `M` column of Table 1).
//!
//! Totals (`total_messages`, `total_pim_work`) are kept as well so that
//! PIM-*balance* — PIM time `O(W/P)` and IO time `O(I/P)` — can be checked
//! directly, which is the paper's central algorithmic property.

use std::ops::Sub;

/// Accumulated costs of a (portion of a) computation on the PIM machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of bulk-synchronous rounds executed.
    pub rounds: u64,
    /// `Σ_i h_i`: sum over rounds of the max per-module message count.
    pub io_time: u64,
    /// Sum over rounds of the max per-module local work.
    pub pim_time: u64,
    /// `I`: total messages crossing the network (both directions).
    pub total_messages: u64,
    /// `W`: total work executed by all PIM cores.
    pub total_pim_work: u64,
    /// Total CPU-side work (charged by instrumented primitives).
    pub cpu_work: u64,
    /// CPU-side depth/span (sequential phases add, parallel phases max).
    pub cpu_depth: u64,
    /// High-water mark of CPU shared-memory words in use.
    pub shared_mem_peak: u64,
    /// Fault events applied by the injector (all kinds).
    pub faults_injected: u64,
    /// Tasks and replies lost to drops and crash inbox wipes.
    pub messages_dropped: u64,
    /// Module crash events (cold restarts).
    pub module_crashes: u64,
    /// (module, round) pairs in which a module was stalled.
    pub stalled_module_rounds: u64,
    /// Tasks re-issued by the driver's recovery path.
    pub retries_issued: u64,
    /// Rounds spent exclusively on recovery traffic (re-installs,
    /// shard rebuilds) rather than the application's own operations.
    pub recovery_rounds: u64,
}

impl Metrics {
    /// A zeroed metrics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one bulk-synchronous round.
    ///
    /// `h` is the max per-module message count, `max_work` the max per-module
    /// local work, `messages`/`work` the corresponding totals.
    pub fn record_round(&mut self, h: u64, max_work: u64, messages: u64, work: u64) {
        self.rounds += 1;
        self.io_time += h;
        self.pim_time += max_work;
        self.total_messages += messages;
        self.total_pim_work += work;
    }

    /// Charge CPU-side cost: sequential composition (depth adds).
    pub fn charge_cpu(&mut self, work: u64, depth: u64) {
        self.cpu_work += work;
        self.cpu_depth += depth;
    }

    /// Raise the shared-memory high-water mark to at least `words`.
    pub fn observe_shared_mem(&mut self, words: u64) {
        self.shared_mem_peak = self.shared_mem_peak.max(words);
    }

    /// Synchronisation cost of the rounds, `rounds · ceil(log2 P)`
    /// (`P` is clamped to 2, so the per-round factor is at least 1).
    pub fn sync_cost(&self, p: u32) -> u64 {
        self.rounds * u64::from(crate::ceil_log2(u64::from(p.max(2))))
    }

    /// The PIM-balance ratio for local work: `pim_time / (W/P)`.
    ///
    /// An algorithm is PIM-balanced when this is `O(1)`; a serialised
    /// algorithm degrades towards `P`.
    pub fn pim_balance_work(&self, p: u32) -> f64 {
        if self.total_pim_work == 0 {
            return 1.0;
        }
        self.pim_time as f64 / (self.total_pim_work as f64 / f64::from(p))
    }

    /// The PIM-balance ratio for communication: `io_time / (I/P)`.
    pub fn pim_balance_io(&self, p: u32) -> f64 {
        if self.total_messages == 0 {
            return 1.0;
        }
        self.io_time as f64 / (self.total_messages as f64 / f64::from(p))
    }
}

impl Sub for Metrics {
    type Output = Metrics;

    /// Difference of two snapshots: costs incurred between them.
    ///
    /// `shared_mem_peak` is not a counter; the difference keeps the later
    /// snapshot's peak (the peak observed *by the end* of the interval).
    fn sub(self, earlier: Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds - earlier.rounds,
            io_time: self.io_time - earlier.io_time,
            pim_time: self.pim_time - earlier.pim_time,
            total_messages: self.total_messages - earlier.total_messages,
            total_pim_work: self.total_pim_work - earlier.total_pim_work,
            cpu_work: self.cpu_work - earlier.cpu_work,
            cpu_depth: self.cpu_depth - earlier.cpu_depth,
            shared_mem_peak: self.shared_mem_peak,
            faults_injected: self.faults_injected - earlier.faults_injected,
            messages_dropped: self.messages_dropped - earlier.messages_dropped,
            module_crashes: self.module_crashes - earlier.module_crashes,
            stalled_module_rounds: self.stalled_module_rounds - earlier.stalled_module_rounds,
            retries_issued: self.retries_issued - earlier.retries_issued,
            recovery_rounds: self.recovery_rounds - earlier.recovery_rounds,
        }
    }
}

/// Tracker for CPU shared-memory usage (the model's `M`).
///
/// CPU-side algorithms bracket their staging allocations with
/// [`SharedMem::alloc`] / [`SharedMem::free`]; the peak is folded into
/// [`Metrics::shared_mem_peak`] by the system at each round boundary and can
/// be sampled directly.
#[derive(Debug, Default, Clone)]
pub struct SharedMem {
    current: u64,
    peak: u64,
}

impl SharedMem {
    /// New tracker with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `words` words of shared memory.
    pub fn alloc(&mut self, words: u64) {
        self.current += words;
        self.peak = self.peak.max(self.current);
    }

    /// Free `words` words previously allocated.
    pub fn free(&mut self, words: u64) {
        debug_assert!(self.current >= words, "freeing more than allocated");
        self.current = self.current.saturating_sub(words);
    }

    /// Words currently in use.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark since creation (or last [`SharedMem::reset_peak`]).
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Reset the peak to the current usage (start of a new measurement).
    pub fn reset_peak(&mut self) {
        self.peak = self.current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_recording_accumulates() {
        let mut m = Metrics::new();
        m.record_round(3, 10, 30, 50);
        m.record_round(2, 5, 16, 20);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.io_time, 5);
        assert_eq!(m.pim_time, 15);
        assert_eq!(m.total_messages, 46);
        assert_eq!(m.total_pim_work, 70);
    }

    #[test]
    fn snapshot_difference() {
        let mut m = Metrics::new();
        m.record_round(3, 10, 30, 50);
        let snap = m;
        m.record_round(2, 5, 16, 20);
        m.charge_cpu(100, 7);
        let d = m - snap;
        assert_eq!(d.rounds, 1);
        assert_eq!(d.io_time, 2);
        assert_eq!(d.pim_time, 5);
        assert_eq!(d.cpu_work, 100);
        assert_eq!(d.cpu_depth, 7);
    }

    #[test]
    fn balance_ratios() {
        let mut m = Metrics::new();
        // Perfectly balanced: P=4, each module 5 messages and 5 work.
        m.record_round(5, 5, 20, 20);
        assert!((m.pim_balance_work(4) - 1.0).abs() < 1e-9);
        assert!((m.pim_balance_io(4) - 1.0).abs() < 1e-9);
        // Fully serialised round on top: one module does everything.
        m.record_round(20, 20, 20, 20);
        assert!(m.pim_balance_io(4) > 2.0);
    }

    #[test]
    fn balance_ratio_of_empty_is_one() {
        let m = Metrics::new();
        assert_eq!(m.pim_balance_work(8), 1.0);
        assert_eq!(m.pim_balance_io(8), 1.0);
    }

    #[test]
    fn sync_cost_uses_log_p() {
        let mut m = Metrics::new();
        m.record_round(1, 1, 1, 1);
        m.record_round(1, 1, 1, 1);
        assert_eq!(m.sync_cost(16), 2 * 4);
        assert_eq!(m.sync_cost(1), 2); // clamped to log 2
    }

    #[test]
    fn sync_cost_uses_ceil_log_for_non_powers_of_two() {
        let mut m = Metrics::new();
        m.record_round(1, 1, 1, 1);
        // Regression: `ilog2` is floor (P=5 would give 2); the doc promises
        // `rounds · ceil(log2 P)` = 3 per round.
        assert_eq!(m.sync_cost(5), 3);
        assert_eq!(m.sync_cost(9), 4);
        assert_eq!(m.sync_cost(8), 3);
    }

    #[test]
    fn shared_mem_peak_tracking() {
        let mut s = SharedMem::new();
        s.alloc(10);
        s.alloc(5);
        s.free(12);
        s.alloc(4);
        assert_eq!(s.current(), 7);
        assert_eq!(s.peak(), 15);
        s.reset_peak();
        assert_eq!(s.peak(), 7);
    }
}
