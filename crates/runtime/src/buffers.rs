//! Recycled buffer storage for the round engine's hot path.
//!
//! The model charges nothing for CPU-side orchestration, but the
//! *simulator's* wall clock does: rebuilding every per-module inbox `Vec`
//! each round and routing sends one `push` at a time made the allocator
//! the dominant per-round cost (the lesson of the UPMEM benchmarking
//! literature — real PIM throughput is bounded by CPU-side orchestration
//! overhead, not by the PIM cores). This module provides the two pieces
//! the engine uses to be allocation-free in steady state:
//!
//! * [`BufferPool`] — a stack of drained `Vec`s whose *capacity* is
//!   recycled. Buffers are taken, filled, drained in place, and returned;
//!   after warm-up no round allocates.
//! * [`RouteBuffer`] — two-pass bucketed routing: pass one counts the
//!   tasks headed to each destination module, then every destination inbox
//!   reserves exactly once, then pass two fills. No inbox ever reallocates
//!   mid-route, so routing cost is exactly one write per task.
//!
//! Neither structure touches model metrics: recycling changes *where the
//! bytes live*, never what the simulated machine observes. The
//! steady-state allocation contract is documented in `docs/MODEL.md` and
//! enforced by the `alloc-regression` CI gate.

/// A pool of empty `Vec<T>`s retaining their capacity.
///
/// `take` pops a drained buffer (or mints a fresh one on a cold pool);
/// `put` clears a used buffer and shelves it. The pool never shrinks on
/// its own — steady-state capacity converges to the high-water mark of
/// the workload, which is precisely the point.
#[derive(Debug)]
pub struct BufferPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        BufferPool { free: Vec::new() }
    }
}

impl<T> BufferPool<T> {
    /// An empty (cold) pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pop a recycled buffer, or allocate a fresh empty one when the pool
    /// is cold. The returned buffer is always empty.
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool. It is cleared here (dropping its
    /// elements, keeping its capacity); zero-capacity buffers are not
    /// worth shelving and are dropped.
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Number of buffers currently shelved (test/diagnostic visibility).
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Is the pool cold?
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// Two-pass bucketed routing: count per-destination tasks, reserve each
/// destination exactly once, then fill.
///
/// The round engine's outboxes are written in module-index order by the
/// executor (`pim-pool` writes each module's [`RoundOut`] into its own
/// indexed slot, so the "merge" is free); this buffer then turns those
/// outboxes into next-round inboxes without a single reallocation:
///
/// 1. [`RouteBuffer::begin`] resets the per-destination counters,
/// 2. [`RouteBuffer::count`] tallies every `(destination, task)` pair,
/// 3. [`RouteBuffer::reserve_into`] grows each inbox once, exactly,
/// 4. the caller drains the outboxes into the reserved inboxes.
///
/// The counter vector itself is retained across rounds, so steady-state
/// routing performs zero allocations.
///
/// [`RoundOut`]: crate::system::PimSystem
#[derive(Debug, Default)]
pub struct RouteBuffer {
    counts: Vec<usize>,
}

impl RouteBuffer {
    /// An empty routing buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for a round over `p` destinations (retains capacity).
    pub fn begin(&mut self, p: usize) {
        self.counts.clear();
        self.counts.resize(p, 0);
    }

    /// Pass one: tally one task headed for `to`.
    #[inline]
    pub fn count(&mut self, to: usize) {
        self.counts[to] += 1;
    }

    /// Tasks tallied for `to` so far this round.
    pub fn tally(&self, to: usize) -> usize {
        self.counts[to]
    }

    /// Pass two setup: reserve exactly the tallied headroom in every
    /// destination queue. After this, pushing the tallied tasks cannot
    /// reallocate.
    pub fn reserve_into<T>(&self, queues: &mut [Vec<T>]) {
        debug_assert_eq!(queues.len(), self.counts.len());
        for (q, &extra) in queues.iter_mut().zip(&self.counts) {
            if extra > 0 {
                q.reserve(extra);
            }
        }
    }
}

/// Double-buffered staging state for pipelined execution: one *front*
/// buffer being consumed by the in-flight stage and one *back* buffer
/// being filled for the next stage, swapped at each stage boundary.
///
/// The two halves are handed out as disjoint `&mut`s by
/// [`DoubleBuffer::split_mut`], so a [`crate::pool::run_overlapped`]
/// bracket can consume the front on the main thread while the side thread
/// fills the back — no locks, no aliasing, and (like every buffer in this
/// module) the capacities of both halves are retained across stages.
#[derive(Debug, Default)]
pub struct DoubleBuffer<T> {
    front: T,
    back: T,
}

impl<T> DoubleBuffer<T> {
    /// A double buffer from explicit halves.
    pub fn new(front: T, back: T) -> Self {
        DoubleBuffer { front, back }
    }

    /// The buffer the current stage consumes.
    pub fn front_mut(&mut self) -> &mut T {
        &mut self.front
    }

    /// The buffer the next stage is staged into.
    pub fn back_mut(&mut self) -> &mut T {
        &mut self.back
    }

    /// Both halves at once, disjointly borrowed: `(front, back)`.
    pub fn split_mut(&mut self) -> (&mut T, &mut T) {
        (&mut self.front, &mut self.back)
    }

    /// Stage boundary: the freshly staged back becomes the new front.
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.front, &mut self.back);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let mut pool: BufferPool<u64> = BufferPool::new();
        let mut a = pool.take();
        assert_eq!(a.capacity(), 0, "cold pool mints fresh buffers");
        a.extend(0..100);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.len(), 1);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffers come back empty");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_drops_zero_capacity_buffers() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        pool.put(Vec::new());
        assert!(pool.is_empty());
    }

    #[test]
    fn route_counts_and_reserves_exactly() {
        let mut route = RouteBuffer::new();
        route.begin(3);
        for to in [0usize, 2, 2, 2, 0] {
            route.count(to);
        }
        assert_eq!(route.tally(0), 2);
        assert_eq!(route.tally(1), 0);
        assert_eq!(route.tally(2), 3);
        let mut queues: Vec<Vec<u32>> = vec![Vec::new(); 3];
        route.reserve_into(&mut queues);
        assert!(queues[0].capacity() >= 2);
        assert_eq!(queues[1].capacity(), 0, "untouched queues stay unallocated");
        assert!(queues[2].capacity() >= 3);
        // Filling within the tally cannot move the buffer.
        let base = queues[2].as_ptr();
        queues[2].extend([1, 2, 3]);
        assert_eq!(queues[2].as_ptr(), base);
    }

    #[test]
    fn double_buffer_swaps_and_splits_disjointly() {
        let mut db: DoubleBuffer<Vec<u32>> = DoubleBuffer::new(vec![1], Vec::new());
        {
            let (front, back) = db.split_mut();
            assert_eq!(front, &vec![1]);
            back.extend([2, 3]);
        }
        db.swap();
        assert_eq!(db.front_mut(), &vec![2, 3]);
        assert_eq!(db.back_mut(), &vec![1]);
    }

    #[test]
    fn route_begin_resets_between_rounds() {
        let mut route = RouteBuffer::new();
        route.begin(2);
        route.count(1);
        route.begin(2);
        assert_eq!(route.tally(1), 0);
    }
}
