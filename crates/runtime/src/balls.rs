//! Balls-in-bins experiments (Lemmas 2.1 and 2.2).
//!
//! The paper's PIM-balance arguments rest on two randomised load-balancing
//! facts:
//!
//! * **Lemma 2.1** (Raab–Steger): throwing `T = Ω(P log P)` balls into `P`
//!   bins uniformly yields `Θ(T/P)` balls in every bin whp.
//! * **Lemma 2.2** (with the paper's Appendix whp proof via Bernstein):
//!   throwing weighted balls with total weight `W` and per-ball weight cap
//!   `W/(P log P)` yields `O(W/P)` weight in every bin whp.
//!
//! These helpers run the experiments and report max/mean statistics so the
//! bench harness can plot the constant in front of `T/P` (resp. `W/P`) as
//! `P` grows — the empirical analogue of "whp in `P`".

use crate::hashfn::hash2;

/// Outcome statistics of one balls-in-bins trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinStats {
    /// Number of bins `P`.
    pub bins: usize,
    /// Total weight thrown (ball count for the unweighted game).
    pub total: u64,
    /// Heaviest bin.
    pub max: u64,
    /// Lightest bin.
    pub min: u64,
    /// Mean load `total / bins`.
    pub mean: f64,
    /// `max / mean` — the PIM-imbalance factor; Θ(1) whp per the lemmas.
    pub max_over_mean: f64,
}

fn stats(loads: &[u64]) -> BinStats {
    let total: u64 = loads.iter().sum();
    let max = loads.iter().copied().max().unwrap_or(0);
    let min = loads.iter().copied().min().unwrap_or(0);
    let mean = total as f64 / loads.len() as f64;
    BinStats {
        bins: loads.len(),
        total,
        max,
        min,
        mean,
        max_over_mean: if mean > 0.0 { max as f64 / mean } else { 1.0 },
    }
}

/// Throw `t` unit balls into `p` bins uniformly (Lemma 2.1); returns loads.
pub fn throw_uniform(t: u64, p: usize, seed: u64) -> Vec<u64> {
    assert!(p > 0);
    let mut loads = vec![0u64; p];
    for i in 0..t {
        loads[(hash2(seed, i, 0x5ba11) % p as u64) as usize] += 1;
    }
    loads
}

/// Throw weighted balls into `p` bins uniformly (Lemma 2.2); returns loads.
pub fn throw_weighted(weights: &[u64], p: usize, seed: u64) -> Vec<u64> {
    assert!(p > 0);
    let mut loads = vec![0u64; p];
    for (i, &w) in weights.iter().enumerate() {
        loads[(hash2(seed, i as u64, 0x3eb) % p as u64) as usize] += w;
    }
    loads
}

/// Run the Lemma 2.1 game and summarise.
pub fn lemma21_trial(t: u64, p: usize, seed: u64) -> BinStats {
    stats(&throw_uniform(t, p, seed))
}

/// Run the Lemma 2.2 game and summarise. Panics if any weight exceeds the
/// lemma's cap `W/(P log P)` by more than rounding (callers build compliant
/// inputs with [`cap_weights`]).
pub fn lemma22_trial(weights: &[u64], p: usize, seed: u64) -> BinStats {
    let w: u64 = weights.iter().sum();
    let cap = weight_cap(w, p);
    for &wi in weights {
        assert!(
            wi <= cap.max(1),
            "weight {wi} exceeds Lemma 2.2 cap {cap} (W={w}, P={p})"
        );
    }
    stats(&throw_weighted(weights, p, seed))
}

/// Lemma 2.2's per-ball weight limit, `W/(P log P)`.
pub fn weight_cap(total_weight: u64, p: usize) -> u64 {
    let logp = (p.max(2)).ilog2() as u64;
    (total_weight / (p as u64 * logp.max(1))).max(1)
}

/// Split an arbitrary weight multiset into one obeying Lemma 2.2's cap by
/// chopping heavy balls into cap-sized pieces (this is exactly what the
/// paper's algorithms do when they split oversized subranges, §5.2 step 4).
pub fn cap_weights(weights: &[u64], p: usize) -> Vec<u64> {
    let w: u64 = weights.iter().sum();
    let cap = weight_cap(w, p);
    let mut out = Vec::with_capacity(weights.len());
    for &wi in weights {
        let mut rest = wi;
        while rest > cap {
            out.push(cap);
            rest -= cap;
        }
        if rest > 0 {
            out.push(rest);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_loads_sum_to_t() {
        let loads = throw_uniform(10_000, 16, 1);
        assert_eq!(loads.iter().sum::<u64>(), 10_000);
        assert_eq!(loads.len(), 16);
    }

    #[test]
    fn lemma21_balanced_when_t_is_p_log_p_scaled() {
        // T = 64 * P log P: the constant in front of T/P should be small.
        let p = 64;
        let t = 64 * (p as u64) * 6;
        let s = lemma21_trial(t, p, 42);
        assert!(s.max_over_mean < 1.6, "imbalance {}", s.max_over_mean);
        assert!(s.min > 0);
    }

    #[test]
    fn lemma21_small_t_shows_log_over_loglog_imbalance() {
        // T = P: classic Θ(log P / log log P) max load — imbalance must be
        // clearly above the large-T regime, motivating the minimum batch
        // sizes in Table 1.
        let p = 1024;
        let s = lemma21_trial(p as u64, p, 7);
        assert!(s.max >= 3, "max load {} too small", s.max);
    }

    #[test]
    fn weighted_loads_sum_to_w() {
        let weights: Vec<u64> = (1..=100).collect();
        let loads = throw_weighted(&weights, 8, 3);
        assert_eq!(loads.iter().sum::<u64>(), weights.iter().sum::<u64>());
    }

    #[test]
    fn cap_weights_obeys_cap_and_preserves_total() {
        let p = 16;
        let weights = vec![1000, 3, 5, 2000, 1];
        let total: u64 = weights.iter().sum();
        let capped = cap_weights(&weights, p);
        assert_eq!(capped.iter().sum::<u64>(), total);
        let cap = weight_cap(total, p);
        assert!(capped.iter().all(|&w| w <= cap));
    }

    #[test]
    fn lemma22_balanced_with_capped_weights() {
        let p = 64;
        // Many balls, geometric-ish weights, then cap.
        let raw: Vec<u64> = (0..20_000u64).map(|i| 1 + (i % 37)).collect();
        let capped = cap_weights(&raw, p);
        let s = lemma22_trial(&capped, p, 5);
        assert!(s.max_over_mean < 1.5, "imbalance {}", s.max_over_mean);
    }

    #[test]
    #[should_panic]
    fn lemma22_rejects_overweight_balls() {
        // One ball holds the entire weight: violates the cap.
        let _ = lemma22_trial(&[1_000_000, 1, 1], 64, 9);
    }

    #[test]
    fn weight_cap_floor_is_one() {
        assert_eq!(weight_cap(0, 8), 1);
        assert_eq!(weight_cap(5, 1024), 1);
    }
}
