//! Streaming per-module load histograms.
//!
//! The PIM-balance story of the paper is about *distributions*: skew shows
//! up as the shape of per-module load, not as a single aggregate ratio
//! (PIM-tree's per-module load plots make the same point for real
//! hardware). [`Histogram`] is a dependency-free streaming summary —
//! count/sum/max plus approximate quantiles from power-of-two buckets — so
//! the machine can keep one lane per module ([`ModuleLanes`]) at `O(1)`
//! words per observation and `O(P)` total space, independent of run
//! length. Everything is integer-exact except the quantiles, which are
//! upper bounds within 2× (the bucket width), deterministic by
//! construction.

/// One bucket per power of two: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A streaming histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the `ceil(q·count)`-th smallest observation, clamped
    /// to the observed maximum — an overestimate by at most 2×.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Approximate median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Approximate 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Approximate 99th percentile (tail-latency reporting in the service
    /// layer's sustained-throughput benchmarks).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Approximate 99.9th percentile — the deep tail. A p99 column alone
    /// hides one-in-a-thousand stragglers, which is exactly where
    /// coalescing-policy pathologies (a request lingering behind many full
    /// batches) surface first.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Iterate the non-empty buckets in increasing value order, so
    /// exporters can dump the full distribution instead of a fixed
    /// quantile list. Bucket 0 covers exactly the value 0; bucket `i ≥ 1`
    /// covers `[2^(i-1), 2^i - 1]` (the top bucket's upper bound
    /// saturates at `u64::MAX`).
    pub fn buckets(&self) -> impl Iterator<Item = HistBucket> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| HistBucket {
                lower: if i <= 1 { 0 } else { 1u64 << (i - 1) },
                upper: if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                },
                count: c,
            })
    }
}

/// One occupied histogram bucket: the closed value range it covers and
/// how many observations landed in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistBucket {
    /// Smallest value the bucket covers.
    pub lower: u64,
    /// Largest value the bucket covers (inclusive).
    pub upper: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Per-module streaming lanes: one histogram of per-round messages and one
/// of per-round local work for each of the `P` modules.
#[derive(Debug, Clone, Default)]
pub struct ModuleLanes {
    /// Per-round message counts (in + out), one histogram per module.
    pub messages: Vec<Histogram>,
    /// Per-round local work, one histogram per module.
    pub work: Vec<Histogram>,
}

impl ModuleLanes {
    /// Lanes for a machine of `p` modules.
    pub fn new(p: u32) -> Self {
        ModuleLanes {
            messages: vec![Histogram::new(); p as usize],
            work: vec![Histogram::new(); p as usize],
        }
    }

    /// Record one round's per-module `(messages, work)` pairs.
    pub fn observe_round(&mut self, per_module: &[(u64, u64)]) {
        debug_assert_eq!(per_module.len(), self.messages.len());
        for (m, &(msgs, work)) in per_module.iter().enumerate() {
            self.messages[m].record(msgs);
            self.work[m].record(work);
        }
    }

    /// Number of modules.
    pub fn p(&self) -> u32 {
        self.messages.len() as u32
    }

    /// The module with the largest total message count, with that total
    /// (ties resolve to the lowest module id; `None` when no module
    /// exists).
    pub fn hottest_by_messages(&self) -> Option<(u32, u64)> {
        let mut best: Option<(u32, u64)> = None;
        for (m, h) in self.messages.iter().enumerate() {
            if best.is_none_or(|(_, s)| h.sum() > s) {
                best = Some((m as u32, h.sum()));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sum_max_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 112);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.4).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(4); // bucket [4, 8) → upper bound 7
        }
        h.record(1000);
        assert_eq!(h.p50(), 7);
        assert_eq!(h.quantile(1.0), 1000); // clamped to observed max
        assert_eq!(h.p95(), 7);
        assert_eq!(h.p99(), 7);
    }

    #[test]
    fn p99_lands_in_the_tail_bucket() {
        let mut h = Histogram::new();
        for _ in 0..98 {
            h.record(4);
        }
        for _ in 0..2 {
            h.record(1000); // bucket [512, 1024) → upper bound 1023→1000
        }
        assert_eq!(h.p95(), 7);
        assert_eq!(h.p99(), 1000);
    }

    #[test]
    fn p999_sees_the_one_in_a_thousand_straggler() {
        let mut h = Histogram::new();
        for _ in 0..999 {
            h.record(4);
        }
        h.record(100_000);
        assert_eq!(h.p99(), 7, "p99 hides the straggler");
        assert_eq!(h.p999(), 7, "rank 999 of 1000 is still the bulk");
        assert_eq!(h.quantile(1.0), 100_000);
        // With two stragglers in 1000, p999 reaches the tail bucket.
        h.record(100_000);
        assert_eq!(h.p999(), 100_000);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
    }

    #[test]
    fn zero_values_have_their_own_bucket() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        h.record(5);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 5);
    }

    #[test]
    fn bucket_iteration_covers_exact_boundaries() {
        let mut h = Histogram::new();
        // Exercise every boundary class: zero, the 1-bucket, an exact
        // power of two (lands in the bucket it *opens*), and one below
        // a power of two (lands in the bucket it *closes*).
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(7);
        h.record(8);
        let got: Vec<HistBucket> = h.buckets().collect();
        assert_eq!(
            got,
            vec![
                HistBucket {
                    lower: 0,
                    upper: 0,
                    count: 1
                },
                HistBucket {
                    lower: 0,
                    upper: 1,
                    count: 1
                },
                HistBucket {
                    lower: 2,
                    upper: 3,
                    count: 2
                },
                HistBucket {
                    lower: 4,
                    upper: 7,
                    count: 2
                },
                HistBucket {
                    lower: 8,
                    upper: 15,
                    count: 1
                },
            ]
        );
        assert_eq!(got.iter().map(|b| b.count).sum::<u64>(), h.count());
    }

    #[test]
    fn bucket_iteration_saturates_at_the_top() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let got: Vec<HistBucket> = h.buckets().collect();
        assert_eq!(
            got,
            vec![HistBucket {
                lower: 1u64 << 63,
                upper: u64::MAX,
                count: 2
            }]
        );
    }

    #[test]
    fn bucket_iteration_of_empty_is_empty() {
        assert_eq!(Histogram::new().buckets().count(), 0);
    }

    #[test]
    fn lanes_track_per_module_distributions() {
        let mut lanes = ModuleLanes::new(3);
        lanes.observe_round(&[(1, 10), (5, 2), (1, 1)]);
        lanes.observe_round(&[(2, 20), (9, 4), (1, 1)]);
        assert_eq!(lanes.messages[1].sum(), 14);
        assert_eq!(lanes.messages[1].max(), 9);
        assert_eq!(lanes.work[0].sum(), 30);
        assert_eq!(lanes.hottest_by_messages(), Some((1, 14)));
    }

    #[test]
    fn hottest_ties_resolve_to_lowest_module() {
        let mut lanes = ModuleLanes::new(2);
        lanes.observe_round(&[(3, 0), (3, 0)]);
        assert_eq!(lanes.hottest_by_messages(), Some((0, 3)));
    }
}
