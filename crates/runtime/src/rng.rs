//! Deterministic pseudo-randomness for the simulator.
//!
//! All random choices made by the algorithms (hash seeds, coin tosses for
//! skip-list heights, random module targets, list-contraction priorities)
//! flow from [`Rng`], a SplitMix64 generator. Determinism given a seed is
//! what lets every experiment and test in this repository be reproducible,
//! and matches the model's adversary constraint: the adversary fixes the
//! batches *before* the algorithm's coins are revealed.

use crate::hashfn::mix64;

/// A SplitMix64 PRNG: tiny state, full 64-bit output, splittable.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: mix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform value in `0..n` (Lemire reduction; `n > 0`).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Fair coin.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Geometric level draw for a skip list: the number of successful fair
    /// coin tosses, capped at `max_level`. A tower of height `h` occupies
    /// levels `0..=h`; `P(level >= i) = 2^-i` — "a level i node also appears
    /// in level i+1 with probability 1/2" (paper footnote 4).
    #[inline]
    pub fn skiplist_height(&mut self, max_level: u8) -> u8 {
        // Count trailing ones of a random word: P(k ones) = 2^-(k+1).
        let r = self.next_u64();
        (r.trailing_ones() as u8).min(max_level)
    }

    /// Split off an independent generator (for handing to parallel tasks).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn heights_are_geometric() {
        let mut r = Rng::new(3);
        let n = 100_000;
        let mut counts = [0u64; 20];
        for _ in 0..n {
            counts[r.skiplist_height(19) as usize] += 1;
        }
        // ~1/2 of towers have height 0, ~1/4 height 1, ...
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!((counts[1] as f64 / n as f64 - 0.25).abs() < 0.02);
        assert!((counts[2] as f64 / n as f64 - 0.125).abs() < 0.02);
    }

    #[test]
    fn height_cap_respected() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            assert!(r.skiplist_height(4) <= 4);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(11);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_decorrelates() {
        let mut a = Rng::new(5);
        let mut b = a.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
