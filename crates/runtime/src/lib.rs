//! # pim-runtime — a simulator of the Processing-in-Memory model
//!
//! This crate implements the machine model of *"The Processing-in-Memory
//! Model"* (Kang, Gibbons, Blelloch, Dhulipala, Gu, McGuffey — SPAA 2021),
//! §2.1:
//!
//! * a **CPU side** of parallel cores with a small shared memory of `M`
//!   words (realised by driver code running on the [`pool`] executor plus
//!   the [`metrics::SharedMem`] tracker),
//! * a **PIM side** of `P` modules, each a core with `Θ(n/P)` words of
//!   local memory (the [`module::PimModule`] trait), and
//! * a **network** operating in bulk-synchronous rounds, with `TaskSend`
//!   offloading and per-round `h`-relation accounting (the
//!   [`system::PimSystem`] engine and [`metrics::Metrics`]).
//!
//! The complexity metrics of the model — CPU work, CPU depth, PIM time, IO
//! time, number of rounds, minimum shared-memory size — are all first-class
//! measurements here, so that algorithms built on top (the `pim-core` skip
//! list, the `pim-baseline` comparators) can be checked against the paper's
//! bounds *as the model defines them*, not via noisy hardware proxies.
//!
//! ## Quick tour
//!
//! ```
//! use pim_runtime::{PimModule, PimSystem, ModuleCtx};
//!
//! // A module whose local memory is a single counter.
//! struct Counter(u64);
//! enum Task { Add(u64), Report }
//!
//! impl PimModule for Counter {
//!     type Task = Task;
//!     type Reply = u64;
//!     fn execute(&mut self, t: Task, ctx: &mut ModuleCtx<'_, Task, u64>) {
//!         ctx.work(1); // one unit of local work
//!         match t {
//!             Task::Add(x) => self.0 += x,
//!             Task::Report => ctx.reply(self.0),
//!         }
//!     }
//! }
//!
//! let mut sys = PimSystem::new(4, |_| Counter(0));
//! sys.send(2, Task::Add(5));
//! sys.run_round();
//! sys.send(2, Task::Report);
//! assert_eq!(sys.run_round(), vec![5]);
//! // Model costs were tracked throughout:
//! assert_eq!(sys.metrics().rounds, 2);
//! ```

#![warn(missing_docs)]

pub mod balls;
pub mod buffers;
pub mod crc;
pub mod envcfg;
pub mod export;
pub mod fault;
pub mod handle;
pub mod hashfn;
pub mod histogram;
pub mod metrics;
pub mod module;
pub mod pool;
pub mod rng;
pub mod span;
pub mod system;
pub mod telemetry;
pub mod trace;

pub use buffers::{BufferPool, DoubleBuffer, RouteBuffer};
pub use crc::{crc32, Crc32};
pub use envcfg::EnvSettings;
pub use export::{chrome_trace, rounds_jsonl, ExportBundle, Json};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRecord};
pub use handle::{Arena, Handle, ModuleId};
pub use histogram::{HistBucket, Histogram, ModuleLanes};
pub use metrics::{Metrics, SharedMem};
pub use module::{ModuleCtx, PimModule};
pub use pool::ExecConfig;
pub use rng::Rng;
pub use span::{ProbeReport, Span, SpanId};
pub use system::{PimSystem, SpanGuard};
pub use telemetry::{CounterId, GaugeId, HistId, Telemetry, TelemetryEvent, TelemetrySnapshot};
pub use trace::{RoundTrace, Trace};

/// `ceil(log2 x)` clamped to at least 1 — the convention used for batch
/// sizes (`P log P`, `P log² P`) and the lower-part height throughout the
/// reproduction (all logarithms base 2, per the paper).
pub fn ceil_log2(x: u64) -> u32 {
    let x = x.max(2);
    x.ilog2() + u32::from(!x.is_power_of_two())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 1);
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }
}
