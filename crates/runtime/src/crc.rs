//! Hand-rolled CRC-32 (ISO-HDLC / IEEE 802.3, the `crc32` of zlib and
//! Ethernet) — the frame checksum of the durability layer.
//!
//! Like the [`crate::export::Json`] implementation, this is deliberately
//! dependency-free: the build environment is hermetic, and 30 lines of
//! table-driven CRC beat a vendored crate. The polynomial is reflected
//! `0xEDB88320`, init and final XOR are `0xFFFF_FFFF`, matching every
//! standard `crc32` implementation — so WAL files written here can be
//! checked with any external tool.

/// The reflected CRC-32 lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (one-shot).
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Streaming CRC-32 hasher for multi-part frames.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher (init value `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything folded in so far (final XOR applied;
    /// the hasher can keep absorbing afterwards).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"write-ahead logs are checked frame by frame";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"frame payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
