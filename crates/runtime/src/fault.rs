//! Deterministic fault injection for the simulated PIM machine.
//!
//! Real PIM hardware is not the analysed perfect network: UPMEM-class
//! devices exhibit transient DPU faults, stalled tasklets and lost
//! transfers. This module gives the simulator a *failure surface* without
//! giving up reproducibility: a [`FaultPlan`] is an explicit, seedable
//! schedule of per-round, per-module [`FaultKind`]s, applied by
//! [`crate::system::PimSystem`] at round barriers. The same plan against
//! the same workload replays the exact same execution — trace, metrics and
//! results — which is what makes chaos failures debuggable.
//!
//! Fault semantics (where in the round each kind strikes):
//!
//! * [`FaultKind::Crash`] — before delivery: the module's local memory is
//!   wiped ([`crate::module::PimModule::on_crash`]) and every task queued
//!   for it this round dies with it. The module keeps running from a cold
//!   state; *recovering its contents is the driver's job*.
//! * [`FaultKind::Stall`] — before delivery: the module executes nothing
//!   this round; its inbox carries over to the next round unchanged.
//! * [`FaultKind::DropTask`] — before delivery: one queued task is lost on
//!   the CPU→PIM leg (never delivered, never charged as a message).
//! * [`FaultKind::DropReply`] — after execution: one reply is lost on the
//!   PIM→CPU leg (it was transmitted, so it *is* charged, then vanishes).
//! * [`FaultKind::Slow`] — after execution: the module's local work this
//!   round is multiplied (a congested or thermally-throttled core).

use crate::handle::ModuleId;
use crate::rng::Rng;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The module executes no tasks this round; its inbox carries over.
    Stall,
    /// Lose the `nth % queued` task queued for the module this round
    /// (no-op if nothing is queued).
    DropTask {
        /// Selector into the module's inbox, reduced modulo its length.
        nth: u64,
    },
    /// Lose the `nth % produced` reply the module produced this round
    /// (no-op if it produced none).
    DropReply {
        /// Selector into the module's replies, reduced modulo their count.
        nth: u64,
    },
    /// Wipe the module's local memory and restart it cold; tasks queued
    /// for it this round are lost.
    Crash,
    /// Multiply the module's local work this round (≥ 1).
    Slow {
        /// The work multiplier.
        factor: u64,
    },
}

/// A fault scheduled for one module at one absolute round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute round index (machine lifetime, i.e. `Metrics::rounds` at
    /// the moment the round starts).
    pub round: u64,
    /// The afflicted module.
    pub module: ModuleId,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A fault that was actually applied, as recorded in round traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// The afflicted module.
    pub module: ModuleId,
    /// The applied fault.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
///
/// Build one explicitly with [`FaultPlan::at`] or draw one from a seed
/// with [`FaultPlan::random`]; install it with
/// [`crate::system::PimSystem::set_fault_plan`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injecting it is exactly the fault-free machine).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` for `module` at absolute round `round`.
    pub fn at(mut self, round: u64, module: ModuleId, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            round,
            module,
            kind,
        });
        self
    }

    /// Draw `events` faults uniformly over rounds `0..max_round` and
    /// modules `0..p`, with a kind mix biased towards transient faults
    /// (drops and stalls) over crashes — deterministic in `seed`.
    pub fn random(seed: u64, p: u32, max_round: u64, events: usize) -> Self {
        assert!(p > 0, "fault plan needs at least one module");
        assert!(max_round > 0, "fault plan needs a nonempty round range");
        let mut rng = Rng::new(seed ^ 0xFA01_75FA_0175);
        let mut plan = FaultPlan::new();
        for _ in 0..events {
            let round = rng.below(max_round);
            let module = rng.below(u64::from(p)) as ModuleId;
            let kind = match rng.below(8) {
                0 | 1 => FaultKind::DropTask {
                    nth: rng.next_u64(),
                },
                2 | 3 => FaultKind::DropReply {
                    nth: rng.next_u64(),
                },
                4 | 5 => FaultKind::Stall,
                6 => FaultKind::Slow {
                    factor: 2 + rng.below(6),
                },
                _ => FaultKind::Crash,
            };
            plan = plan.at(round, module, kind);
        }
        plan
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events (arbitrary order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// Executor state for a [`FaultPlan`]: hands the system each round's
/// faults in deterministic (module, schedule) order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Events grouped by absolute round.
    by_round: std::collections::BTreeMap<u64, Vec<(ModuleId, FaultKind)>>,
}

impl FaultInjector {
    /// Compile a plan into per-round schedules.
    pub fn new(plan: FaultPlan) -> Self {
        let mut by_round: std::collections::BTreeMap<u64, Vec<(ModuleId, FaultKind)>> =
            std::collections::BTreeMap::new();
        let mut events = plan.events;
        // Deterministic application order regardless of insertion order:
        // by round, then module, then the schedule's own sequence.
        events.sort_by_key(|e| (e.round, e.module));
        for e in events {
            by_round
                .entry(e.round)
                .or_default()
                .push((e.module, e.kind));
        }
        FaultInjector { by_round }
    }

    /// Remove and return the faults scheduled for `round`.
    pub fn take_round(&mut self, round: u64) -> Vec<(ModuleId, FaultKind)> {
        self.by_round.remove(&round).unwrap_or_default()
    }

    /// Are any faults still pending?
    pub fn has_pending(&self) -> bool {
        !self.by_round.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_injector_ordering() {
        let plan = FaultPlan::new()
            .at(5, 3, FaultKind::Stall)
            .at(2, 1, FaultKind::Crash)
            .at(2, 0, FaultKind::DropTask { nth: 7 });
        assert_eq!(plan.len(), 3);
        let mut inj = FaultInjector::new(plan);
        assert!(inj.has_pending());
        assert_eq!(
            inj.take_round(2),
            vec![(0, FaultKind::DropTask { nth: 7 }), (1, FaultKind::Crash)]
        );
        assert!(inj.take_round(3).is_empty());
        assert_eq!(inj.take_round(5), vec![(3, FaultKind::Stall)]);
        assert!(!inj.has_pending());
    }

    #[test]
    fn random_plans_are_deterministic() {
        let a = FaultPlan::random(42, 8, 100, 25);
        let b = FaultPlan::random(42, 8, 100, 25);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        for e in a.events() {
            assert!(e.round < 100);
            assert!(e.module < 8);
            if let FaultKind::Slow { factor } = e.kind {
                assert!((2..8).contains(&factor));
            }
        }
        let c = FaultPlan::random(43, 8, 100, 25);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn empty_plan_has_no_events() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.has_pending());
        assert!(inj.take_round(0).is_empty());
    }
}
