//! The PIM-module abstraction: a core plus its local memory (§2.1).
//!
//! A [`PimModule`] owns `Θ(n/P)` words of local state and executes tasks
//! delivered through the network. "Each PIM core repeatedly invokes an
//! iterator that removes a task from its queue and then executes the task"
//! — [`PimModule::execute`] is the body of that iterator. During execution
//! a task may:
//!
//! * perform local work (charged explicitly through [`ModuleCtx::work`]),
//! * return a value to CPU shared memory ([`ModuleCtx::reply`]), and/or
//! * offload a continuation to another PIM module ([`ModuleCtx::send`]) —
//!   which the model routes *via the CPU side* ("this is done by A returning
//!   a value to the shared memory, which in turn causes the offload from the
//!   CPU side to B"), so it costs a message at both endpoints.

use crate::handle::ModuleId;

/// Per-task execution context handed to [`PimModule::execute`].
///
/// Collects the task's outputs (cross-module sends, replies to the CPU) and
/// its local-work charge. The runtime aggregates these per round to compute
/// the `h`-relation and PIM-time of the round.
pub struct ModuleCtx<'a, T, R> {
    me: ModuleId,
    round: u64,
    sends: &'a mut Vec<(ModuleId, T)>,
    replies: &'a mut Vec<R>,
    work: &'a mut u64,
}

impl<'a, T, R> ModuleCtx<'a, T, R> {
    pub(crate) fn new(
        me: ModuleId,
        round: u64,
        sends: &'a mut Vec<(ModuleId, T)>,
        replies: &'a mut Vec<R>,
        work: &'a mut u64,
    ) -> Self {
        ModuleCtx {
            me,
            round,
            sends,
            replies,
            work,
        }
    }

    /// The executing module's id.
    #[inline]
    pub fn me(&self) -> ModuleId {
        self.me
    }

    /// The current bulk-synchronous round number (0-based).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Charge `units` of local work to this module for this round.
    #[inline]
    pub fn work(&mut self, units: u64) {
        *self.work += units;
    }

    /// Offload a task to module `to`, delivered next round.
    ///
    /// Sending to `self` is allowed (it models re-queueing across a barrier)
    /// and still costs messages: the route goes through the CPU side.
    #[inline]
    pub fn send(&mut self, to: ModuleId, task: T) {
        self.sends.push((to, task));
    }

    /// Return a value to CPU shared memory (one message from this module).
    #[inline]
    pub fn reply(&mut self, r: R) {
        self.replies.push(r);
    }
}

/// A PIM module: local state driven by tasks.
///
/// Implementations must be `Send` so the `P` modules can be driven in
/// parallel by the CPU-side scheduler; each individual module is only ever
/// executed by one thread at a time (one PIM core per module).
pub trait PimModule: Send {
    /// Task type routed to this module (the `TaskSend` payload: function id
    /// plus arguments, constant words each).
    type Task: Send;
    /// Values returned to CPU shared memory.
    type Reply: Send;

    /// Execute one task against local memory.
    fn execute(&mut self, task: Self::Task, ctx: &mut ModuleCtx<'_, Self::Task, Self::Reply>);

    /// Words of local memory currently occupied (for Theorem 3.1's space
    /// accounting). Default 0 for modules that do not track space.
    fn local_words(&self) -> u64 {
        0
    }

    /// Wipe local memory: the module restarts cold after an injected
    /// [`crate::fault::FaultKind::Crash`]. Implementations must reset
    /// every piece of local state to its just-constructed value; the
    /// default is a no-op for modules with no durable local state.
    fn on_crash(&mut self) {}
}
