//! Always-on metrics registry and request-lifecycle event log.
//!
//! The span/trace layer ([`crate::span`], [`crate::trace`]) answers
//! *offline* questions — where did one instrumented run spend its cost.
//! A server needs *continuous* observability: counters that accumulate
//! across the whole process lifetime, gauges sampled every tick, latency
//! histograms, and a structured log of per-request lifecycle events. This
//! module is that layer, with the same two contracts as every other
//! observer in the runtime:
//!
//! * **Deterministic in the tick/round domain.** Nothing here reads a
//!   wall clock or iterates a hash map: metric identity is an ordered
//!   `(name, labels)` list, events are stamped with the service tick and
//!   machine round, and every rendered artifact
//!   ([`TelemetrySnapshot::render_prometheus`],
//!   [`Telemetry::events_jsonl`]) is byte-identical across
//!   `PIM_THREADS` settings.
//! * **Zero overhead when dark.** The registry is owned behind an
//!   `Option` by whoever publishes into it; a structure that never
//!   enabled telemetry pays exactly one `is_some` branch per batch.
//!
//! ## Registry shape
//!
//! Metrics are registered once — [`Telemetry::counter`],
//! [`Telemetry::gauge`], [`Telemetry::histogram`] return stable integer
//! handles, idempotently per `(name, labels)` — and updated through the
//! handle at `O(1)` with no allocation. Histograms reuse the power-of-two
//! [`Histogram`], so the Prometheus exposition's `le` boundaries are the
//! same log2 buckets every other exporter in the workspace uses.
//!
//! The event log is bounded ([`Telemetry::with_max_events`]); overflow
//! keeps the earliest events and counts the rest in `dropped_events`,
//! which every exporter stamps (the same truncation-honesty rule as the
//! round trace's `dropped_rounds`).

use crate::export::{num, str as jstr, Json};
use crate::histogram::Histogram;

/// Handle to a registered monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (a sampled instantaneous value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// One named series: a metric name plus its ordered label set.
#[derive(Debug, Clone)]
struct Series<T> {
    name: String,
    labels: Vec<(String, String)>,
    value: T,
}

/// One structured lifecycle event, stamped in the deterministic clocks
/// (service tick + machine round — never wall time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Event kind (`"admit"`, `"coalesce"`, `"execute"`, `"reply"`,
    /// `"ack"`, …).
    pub kind: &'static str,
    /// Service tick the event occurred on (0 outside a service).
    pub tick: u64,
    /// Machine round counter at the event.
    pub round: u64,
    /// Extra integer fields, e.g. `("id", request_id)`.
    pub fields: Vec<(&'static str, u64)>,
}

impl TelemetryEvent {
    /// Look up one extra field by name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }
}

/// Default bound on the retained event log.
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

/// The metrics registry + event log. See the module docs.
#[derive(Debug, Clone)]
pub struct Telemetry {
    counters: Vec<Series<u64>>,
    gauges: Vec<Series<u64>>,
    hists: Vec<Series<Histogram>>,
    events: Vec<TelemetryEvent>,
    max_events: usize,
    dropped_events: u64,
    /// Labels prepended to every series registered in this registry (the
    /// cluster tier stamps `shard="i"` here so per-shard registries stay
    /// distinguishable after a merge). Registration calls pass only their
    /// own labels; the base is invisible to handle-based updates.
    base_labels: Vec<(String, String)>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            events: Vec::new(),
            max_events: DEFAULT_MAX_EVENTS,
            dropped_events: 0,
            base_labels: Vec::new(),
        }
    }
}

impl Telemetry {
    /// An empty registry with the default event cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the event-log bound (overflow is counted, not kept).
    pub fn with_max_events(mut self, cap: usize) -> Self {
        self.max_events = cap;
        self
    }

    /// Prepend `labels` to every series registered from now on (normally
    /// set before any registration — e.g. `shard="3"` on a cluster
    /// shard's registry, so its series keep their identity when merged
    /// into a cluster-wide exposition).
    pub fn with_base_labels(mut self, labels: &[(&str, &str)]) -> Self {
        self.base_labels = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self
    }

    /// The labels every registered series carries (empty by default).
    pub fn base_labels(&self) -> &[(String, String)] {
        &self.base_labels
    }

    fn find_or_insert<T>(
        all: &mut Vec<Series<T>>,
        base: &[(String, String)],
        name: &str,
        labels: &[(&str, &str)],
        fresh: T,
    ) -> usize {
        let matches = |s: &Series<T>| {
            s.name == name
                && s.labels.len() == base.len() + labels.len()
                && s.labels[..base.len()] == *base
                && s.labels[base.len()..]
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        };
        if let Some(i) = all.iter().position(matches) {
            return i;
        }
        let mut full: Vec<(String, String)> = base.to_vec();
        full.extend(labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())));
        all.push(Series {
            name: name.to_string(),
            labels: full,
            value: fresh,
        });
        all.len() - 1
    }

    /// Register (or look up) the counter `name{labels}`.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterId {
        CounterId(Self::find_or_insert(
            &mut self.counters,
            &self.base_labels,
            name,
            labels,
            0,
        ))
    }

    /// Register (or look up) the gauge `name{labels}`.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeId {
        GaugeId(Self::find_or_insert(
            &mut self.gauges,
            &self.base_labels,
            name,
            labels,
            0,
        ))
    }

    /// Register (or look up) the histogram `name{labels}`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> HistId {
        HistId(Self::find_or_insert(
            &mut self.hists,
            &self.base_labels,
            name,
            labels,
            Histogram::new(),
        ))
    }

    /// Add `v` to a counter.
    pub fn add(&mut self, id: CounterId, v: u64) {
        self.counters[id.0].value += v;
    }

    /// Publish an externally maintained monotonic total into a counter
    /// (used by sources that keep their own running counts, e.g. the
    /// durable layer's fsync total). Never moves the counter backwards.
    pub fn store(&mut self, id: CounterId, total: u64) {
        let c = &mut self.counters[id.0];
        c.value = c.value.max(total);
    }

    /// Set a gauge to its current value.
    pub fn set(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0].value = v;
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].value.record(v);
    }

    /// Current value of a counter (tests and dashboards).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].value
    }

    /// The histogram behind a handle.
    pub fn histogram_value(&self, id: HistId) -> &Histogram {
        &self.hists[id.0].value
    }

    /// Append one lifecycle event (dropped and counted past the cap).
    pub fn emit(
        &mut self,
        kind: &'static str,
        tick: u64,
        round: u64,
        fields: &[(&'static str, u64)],
    ) {
        if self.events.len() >= self.max_events {
            self.dropped_events += 1;
            return;
        }
        self.events.push(TelemetryEvent {
            kind,
            tick,
            round,
            fields: fields.to_vec(),
        });
    }

    /// The retained events, in emission order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Events lost to the cap.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Render the event log as JSONL: a `"type":"telemetry-header"` line
    /// stamping the schema version and truncation, then one
    /// `"type":"event"` line per retained event. Deterministic byte for
    /// byte (only tick/round clocks, insertion-ordered fields).
    pub fn events_jsonl(&self) -> String {
        let header = Json::Obj(vec![
            ("type".to_string(), jstr("telemetry-header")),
            ("version".to_string(), num(1)),
            ("events".to_string(), num(self.events.len() as u64)),
            ("dropped_events".to_string(), num(self.dropped_events)),
        ]);
        let mut out = header.to_json();
        out.push('\n');
        for e in &self.events {
            let mut fields = vec![
                ("type".to_string(), jstr("event")),
                ("kind".to_string(), jstr(e.kind)),
                ("tick".to_string(), num(e.tick)),
                ("round".to_string(), num(e.round)),
            ];
            fields.extend(e.fields.iter().map(|&(k, v)| (k.to_string(), num(v))));
            out.push_str(&Json::Obj(fields).to_json());
            out.push('\n');
        }
        out
    }

    /// Freeze the registry into a render-ready snapshot (sorted by
    /// `(name, labels)` so the exposition is independent of registration
    /// order). The snapshot stamps the event-log truncation as its own
    /// metric pair (`pim_telemetry_events` / `pim_telemetry_dropped_events`)
    /// so a Prometheus scrape is as truncation-honest as the JSONL log.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters = self.counters.clone();
        counters.push(Series {
            name: "pim_telemetry_events".to_string(),
            labels: self.base_labels.clone(),
            value: self.events.len() as u64,
        });
        counters.push(Series {
            name: "pim_telemetry_dropped_events".to_string(),
            labels: self.base_labels.clone(),
            value: self.dropped_events,
        });
        let mut gauges = self.gauges.clone();
        let mut hists = self.hists.clone();
        fn key<T>(s: &Series<T>) -> (String, Vec<(String, String)>) {
            (s.name.clone(), s.labels.clone())
        }
        counters.sort_by_key(key);
        gauges.sort_by_key(key);
        hists.sort_by_key(key);
        TelemetrySnapshot {
            counters,
            gauges,
            hists,
        }
    }
}

fn lookup<'a, T>(series: &'a [Series<T>], name: &str, labels: &[(&str, &str)]) -> Option<&'a T> {
    series
        .iter()
        .find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
        .map(|s| &s.value)
}

/// A frozen, sorted view of the registry, ready to render.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    counters: Vec<Series<u64>>,
    gauges: Vec<Series<u64>>,
    hists: Vec<Series<Histogram>>,
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

fn write_type_once(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        out.push_str("# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        last.clear();
        last.push_str(name);
    }
}

impl TelemetrySnapshot {
    /// Merge several snapshots into one sorted view — the cluster tier's
    /// exposition path: each shard's registry snapshots independently
    /// (its series carry a `shard="i"` base label, so nothing collides)
    /// and the merged snapshot renders as a single scrape target.
    /// Identical `(name, labels)` series coming from different parts are
    /// kept side by side, not summed; give parts distinct base labels.
    pub fn merged(parts: impl IntoIterator<Item = TelemetrySnapshot>) -> TelemetrySnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for p in parts {
            counters.extend(p.counters);
            gauges.extend(p.gauges);
            hists.extend(p.hists);
        }
        fn key<T>(s: &Series<T>) -> (String, Vec<(String, String)>) {
            (s.name.clone(), s.labels.clone())
        }
        counters.sort_by_key(key);
        gauges.sort_by_key(key);
        hists.sort_by_key(key);
        TelemetrySnapshot {
            counters,
            gauges,
            hists,
        }
    }

    /// Value of the counter with exactly this name and label set.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        lookup(&self.counters, name, labels).copied()
    }

    /// Value of the gauge with exactly this name and label set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        lookup(&self.gauges, name, labels).copied()
    }

    /// The histogram with exactly this name and label set.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        lookup(&self.hists, name, labels)
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4). File- or callback-based — no sockets: write the
    /// returned string wherever a scraper can read it. Histograms render
    /// as cumulative `_bucket{le=…}` series over the log2 bucket bounds,
    /// plus `_sum` and `_count`. Deterministic byte for byte.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last = String::new();
        for s in &self.counters {
            write_type_once(&mut out, &mut last, &s.name, "counter");
            out.push_str(&s.name);
            write_labels(&mut out, &s.labels, None);
            out.push_str(&format!(" {}\n", s.value));
        }
        for s in &self.gauges {
            write_type_once(&mut out, &mut last, &s.name, "gauge");
            out.push_str(&s.name);
            write_labels(&mut out, &s.labels, None);
            out.push_str(&format!(" {}\n", s.value));
        }
        for s in &self.hists {
            write_type_once(&mut out, &mut last, &s.name, "histogram");
            let mut cum = 0u64;
            for b in s.value.buckets() {
                cum += b.count;
                out.push_str(&s.name);
                out.push_str("_bucket");
                write_labels(&mut out, &s.labels, Some(("le", &b.upper.to_string())));
                out.push_str(&format!(" {cum}\n"));
            }
            out.push_str(&s.name);
            out.push_str("_bucket");
            write_labels(&mut out, &s.labels, Some(("le", "+Inf")));
            out.push_str(&format!(" {}\n", s.value.count()));
            out.push_str(&s.name);
            out.push_str("_sum");
            write_labels(&mut out, &s.labels, None);
            out.push_str(&format!(" {}\n", s.value.sum()));
            out.push_str(&s.name);
            out.push_str("_count");
            write_labels(&mut out, &s.labels, None);
            out.push_str(&format!(" {}\n", s.value.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_handles_are_stable() {
        let mut t = Telemetry::new();
        let a = t.counter("pim_ops_total", &[("op", "get")]);
        let b = t.counter("pim_ops_total", &[("op", "upsert")]);
        let a2 = t.counter("pim_ops_total", &[("op", "get")]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        t.add(a, 3);
        t.add(a2, 2);
        t.add(b, 7);
        assert_eq!(t.counter_value(a), 5);
        assert_eq!(t.counter_value(b), 7);
    }

    #[test]
    fn store_never_regresses_a_counter() {
        let mut t = Telemetry::new();
        let c = t.counter("pim_wal_fsyncs_total", &[]);
        t.store(c, 9);
        t.store(c, 4);
        assert_eq!(t.counter_value(c), 9);
    }

    #[test]
    fn gauges_and_histograms_update_through_handles() {
        let mut t = Telemetry::new();
        let g = t.gauge("pim_service_queue_depth", &[]);
        let h = t.histogram("pim_service_latency_ticks", &[]);
        t.set(g, 11);
        t.set(g, 4);
        t.observe(h, 3);
        t.observe(h, 100);
        assert_eq!(t.gauge_value(g), 4);
        assert_eq!(t.histogram_value(h).count(), 2);
        assert_eq!(t.histogram_value(h).max(), 100);
    }

    #[test]
    fn event_log_caps_and_counts_drops() {
        let mut t = Telemetry::new().with_max_events(2);
        t.emit("admit", 1, 0, &[("id", 0)]);
        t.emit("admit", 1, 0, &[("id", 1)]);
        t.emit("admit", 2, 0, &[("id", 2)]);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped_events(), 1);
        let log = t.events_jsonl();
        let header: Vec<&str> = log.lines().collect();
        assert_eq!(header.len(), 3);
        assert!(header[0].contains("\"dropped_events\":1"));
        assert!(header[1].contains("\"kind\":\"admit\""));
        assert_eq!(t.events()[1].field("id"), Some(1));
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_stamped() {
        let mut t = Telemetry::new();
        let b = t.counter("pim_zzz_total", &[]);
        let a = t.counter("pim_aaa_total", &[("op", "get")]);
        t.add(a, 1);
        t.add(b, 2);
        let h = t.histogram("pim_lat", &[]);
        t.observe(h, 1);
        t.observe(h, 5);
        let text = t.snapshot().render_prometheus();
        let aaa = text.find("pim_aaa_total{op=\"get\"} 1").unwrap();
        let zzz = text.find("pim_zzz_total 2").unwrap();
        assert!(aaa < zzz, "sorted by name");
        assert!(text.contains("# TYPE pim_aaa_total counter"));
        assert!(text.contains("pim_telemetry_dropped_events 0"));
        assert!(text.contains("pim_lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("pim_lat_bucket{le=\"7\"} 2"));
        assert!(text.contains("pim_lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pim_lat_sum 6"));
        assert!(text.contains("pim_lat_count 2"));
    }

    #[test]
    fn snapshot_is_registration_order_independent() {
        let mut x = Telemetry::new();
        let xa = x.counter("pim_a", &[]);
        let xb = x.counter("pim_b", &[]);
        x.add(xa, 1);
        x.add(xb, 2);
        let mut y = Telemetry::new();
        let yb = y.counter("pim_b", &[]);
        let ya = y.counter("pim_a", &[]);
        y.add(yb, 2);
        y.add(ya, 1);
        assert_eq!(
            x.snapshot().render_prometheus(),
            y.snapshot().render_prometheus()
        );
    }

    #[test]
    fn base_labels_stamp_every_series() {
        let mut t = Telemetry::new().with_base_labels(&[("shard", "3")]);
        let c = t.counter("pim_ops_total", &[("op", "get")]);
        let g = t.gauge("pim_depth", &[]);
        let h = t.histogram("pim_lat", &[]);
        t.add(c, 4);
        t.set(g, 2);
        t.observe(h, 1);
        // Handle lookup is idempotent with the base applied.
        assert_eq!(c, t.counter("pim_ops_total", &[("op", "get")]));
        let text = t.snapshot().render_prometheus();
        assert!(text.contains("pim_ops_total{shard=\"3\",op=\"get\"} 4"));
        assert!(text.contains("pim_depth{shard=\"3\"} 2"));
        assert!(text.contains("pim_lat_count{shard=\"3\"} 1"));
        assert!(text.contains("pim_telemetry_events{shard=\"3\"}"));
        // Snapshot lookups use the full (base + given) label set.
        let snap = t.snapshot();
        assert_eq!(
            snap.counter("pim_ops_total", &[("shard", "3"), ("op", "get")]),
            Some(4)
        );
    }

    #[test]
    fn merged_snapshots_render_as_one_sorted_exposition() {
        let mut a = Telemetry::new().with_base_labels(&[("shard", "0")]);
        let mut b = Telemetry::new().with_base_labels(&[("shard", "1")]);
        let ca = a.counter("pim_ops_total", &[("op", "get")]);
        let cb = b.counter("pim_ops_total", &[("op", "get")]);
        a.add(ca, 1);
        b.add(cb, 2);
        let merged = TelemetrySnapshot::merged([a.snapshot(), b.snapshot()]);
        let text = merged.render_prometheus();
        let s0 = text
            .find("pim_ops_total{shard=\"0\",op=\"get\"} 1")
            .unwrap();
        let s1 = text
            .find("pim_ops_total{shard=\"1\",op=\"get\"} 2")
            .unwrap();
        assert!(s0 < s1, "sorted by label value");
        // One TYPE line per metric name, not per part.
        assert_eq!(text.matches("# TYPE pim_ops_total counter").count(), 1);
        // Merge order does not matter: byte-identical either way.
        let swapped = TelemetrySnapshot::merged([b.snapshot(), a.snapshot()]);
        assert_eq!(text, swapped.render_prometheus());
    }
}
