//! Property-based testing of the `pim-pool` executor.
//!
//! The pool's contract is that its results are a pure function of the
//! input — never of the thread count, chunk boundaries, or scheduling
//! order. Random inputs are run at several forced thread counts (explicit
//! [`ExecConfig`]s with zero thresholds, so even tiny inputs actually
//! fork) and must agree with each other and with the std reference.

use proptest::prelude::*;

use pim_runtime::pool::{self, ExecConfig};

/// A config that forks at the given width no matter how small the input.
fn forced(threads: usize) -> ExecConfig {
    ExecConfig {
        threads,
        par_threshold: 0,
        sort_threshold: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn par_sort_matches_std_stable_sort(
        v in prop::collection::vec((0u8..8, any::<u32>()), 0..600),
        threads in 1usize..9,
    ) {
        // Keys collide constantly (u8 % 8): this is a tie-heavy input, so
        // agreement with the *stable* std sort pins the exact output
        // permutation, not just sortedness.
        let mut ours = v.clone();
        pool::par_sort_by_with(&forced(threads), &mut ours, |a, b| a.0.cmp(&b.0));
        let mut expect = v;
        expect.sort_by_key(|a| a.0);
        prop_assert_eq!(ours, expect);
    }

    #[test]
    fn par_sort_matches_sort_unstable_on_total_orders(
        v in prop::collection::vec(any::<i64>(), 0..600),
        threads in 1usize..9,
    ) {
        // Under a total order stability is unobservable, so the parallel
        // merge sort and pdqsort must produce identical slices.
        let mut ours = v.clone();
        pool::par_sort_by_with(&forced(threads), &mut ours, |a, b| a.cmp(b));
        let mut expect = v;
        expect.sort_unstable();
        prop_assert_eq!(ours, expect);
    }

    #[test]
    fn par_sort_is_thread_count_invariant(
        v in prop::collection::vec((0u8..4, any::<u16>()), 0..400),
    ) {
        let mut at1 = v.clone();
        pool::par_sort_by_with(&forced(1), &mut at1, |a, b| a.0.cmp(&b.0));
        for threads in [2usize, 3, 5, 8] {
            let mut atn = v.clone();
            pool::par_sort_by_with(&forced(threads), &mut atn, |a, b| a.0.cmp(&b.0));
            prop_assert_eq!(&atn, &at1, "threads = {}", threads);
        }
    }

    #[test]
    fn par_map_is_thread_count_invariant(
        n in 0usize..500,
        salt in any::<u64>(),
    ) {
        let f = |i: usize| (i as u64).wrapping_mul(salt).rotate_left(7);
        let at1: Vec<u64> = pool::par_map_indexed_with(&forced(1), n, usize::MAX, f);
        for threads in [2usize, 4, 8] {
            let atn: Vec<u64> = pool::par_map_indexed_with(&forced(threads), n, usize::MAX, f);
            prop_assert_eq!(&atn, &at1, "threads = {}", threads);
        }
    }

    #[test]
    fn par_chunks_is_chunk_boundary_faithful(
        n in 1usize..500,
        chunk in 1usize..64,
        threads in 1usize..9,
    ) {
        // Every element must be visited exactly once, by the chunk index
        // that owns it.
        let mut v = vec![0u64; n];
        pool::par_chunks_mut_with(&forced(threads), &mut v, chunk, usize::MAX, |ci, c| {
            for (off, x) in c.iter_mut().enumerate() {
                *x = (ci * chunk + off) as u64 + 1;
            }
        });
        let expect: Vec<u64> = (1..=n as u64).collect();
        prop_assert_eq!(v, expect);
    }
}
