//! The structure a [`crate::PimService`] fronts.
//!
//! The service tier schedules requests; it does not care whether the
//! thing executing them is one PIM machine or a sharded cluster of them.
//! [`Backend`] is that seam: everything the scheduler needs — the typed
//! mixed-stream execute contract, the machine round clock, probe spans,
//! durability hooks, a telemetry registry, and (for multi-shard backends)
//! *lanes* for per-shard backpressure. `pim_core::PimSkipList` implements
//! it as the trivial single-lane case; `pim-cluster` implements it with
//! one lane per shard.

use pim_core::{Op, PimResult, PimSkipList, Reply};
use pim_runtime::Telemetry;

/// What the request scheduler requires of the structure it fronts.
///
/// The contract mirrors `pim_core::PimSkipList`'s public surface
/// one-to-one (the provided lane methods are the only addition), so the
/// determinism guarantees of the service — same config, same arrival
/// sequence → byte-identical completions — hold for any implementor
/// whose `execute_ops` is itself deterministic.
pub trait Backend {
    /// Execute a typed mixed op stream and answer positionally — the
    /// `pim_core::op` contract ([`pim_core::PimSkipList::execute`]).
    ///
    /// Panics if the machine exhausts fault-recovery retries; on a
    /// fault-free machine it never panics.
    fn execute_ops(&mut self, ops: &[Op]) -> Vec<Reply>;

    /// Machine rounds executed so far (the machine clock behind
    /// [`crate::Completion::latency_rounds`]). For a cluster this is the
    /// sum over shards — still monotone, still deterministic.
    fn rounds(&self) -> u64;

    /// Open a probe span attributing subsequent machine cost to `name`.
    fn span_enter(&mut self, name: &'static str);

    /// Close the innermost open probe span.
    fn span_exit(&mut self);

    /// Override inter-batch round pipelining (wall-clock only; replies
    /// and metrics are byte-identical either way).
    fn set_pipeline(&mut self, pipeline: bool);

    /// Override push-pull batch search (replies and contents identical
    /// either way; see `pim_core::Config::push_pull`). Default: no-op
    /// for backends without the feature.
    fn set_push_pull(&mut self, _on: bool) {}

    /// Is a durable journal attached?
    fn is_durable(&self) -> bool;

    /// Durable stream position reached (`None` when not durable).
    fn durable_seq(&self) -> Option<u64>;

    /// Durable stream position fsync has covered (`None` when not
    /// durable).
    fn durable_synced_seq(&self) -> Option<u64>;

    /// Force a covering WAL fsync (no-op when not durable).
    fn durable_sync(&mut self) -> PimResult<()>;

    /// The telemetry registry, when lit (the service registers its own
    /// series and emits lifecycle events into it).
    fn telemetry_mut(&mut self) -> Option<&mut Telemetry>;

    /// The paper-recommended dispatch batch size (`P log² P`; summed
    /// over shards for a cluster).
    fn recommended_batch(&self) -> usize;

    /// Number of backpressure lanes. A single machine is one lane; a
    /// cluster reports one lane per shard so
    /// [`crate::ServiceConfig::max_lane_queue`] can refuse admission for
    /// a hot shard while cold shards keep accepting.
    fn lanes(&self) -> usize {
        1
    }

    /// The lane `op` routes to (`< lanes()`). Must be a pure function of
    /// the op and the backend's routing table — admission control uses
    /// it before dispatch, so it must agree with where `execute_ops`
    /// will actually send the op.
    fn lane(&self, op: &Op) -> usize {
        let _ = op;
        0
    }
}

impl Backend for PimSkipList {
    fn execute_ops(&mut self, ops: &[Op]) -> Vec<Reply> {
        self.execute(ops)
    }

    fn rounds(&self) -> u64 {
        self.metrics().rounds
    }

    fn span_enter(&mut self, name: &'static str) {
        PimSkipList::span_enter(self, name);
    }

    fn span_exit(&mut self) {
        PimSkipList::span_exit(self);
    }

    fn set_pipeline(&mut self, pipeline: bool) {
        PimSkipList::set_pipeline(self, pipeline);
    }

    fn set_push_pull(&mut self, on: bool) {
        PimSkipList::set_push_pull(self, on);
    }

    fn is_durable(&self) -> bool {
        PimSkipList::is_durable(self)
    }

    fn durable_seq(&self) -> Option<u64> {
        PimSkipList::durable_seq(self)
    }

    fn durable_synced_seq(&self) -> Option<u64> {
        PimSkipList::durable_synced_seq(self)
    }

    fn durable_sync(&mut self) -> PimResult<()> {
        PimSkipList::durable_sync(self)
    }

    fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        PimSkipList::telemetry_mut(self)
    }

    fn recommended_batch(&self) -> usize {
        self.config().batch_large()
    }
}
