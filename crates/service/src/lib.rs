//! `pim-service` — a deterministic request-scheduling front-end for the
//! PIM skip list.
//!
//! The paper's data structure consumes *homogeneous batches*; real clients
//! produce an *open stream* of mixed point and range requests. This crate
//! is the bridge: a [`PimService`] accepts typed [`Op`] requests one at a
//! time (each stamped with a request id and an arrival tick), coalesces
//! them under a policy ([`ServiceConfig`]: max batch size, max linger,
//! bounded queue with backpressure), and periodically dispatches the
//! queue's head through the structure's mixed-stream entry point
//! ([`pim_core::PimSkipList::execute`]). Replies are routed back to their
//! request ids as [`Completion`]s carrying per-request latency in both
//! *ticks* (service clock, arrival → reply) and *rounds* (machine clock).
//!
//! # Ordering semantics
//!
//! Dispatch preserves the **read/write epoch order** of arrivals: the
//! batch is split at every boundary between mutating and non-mutating
//! operations (see [`Op::is_write`]), epochs execute in arrival order, and
//! only *within a read epoch* are operations re-grouped by kind (reads
//! commute, so grouping them widens the model-legal runs the structure
//! can batch). A `Get` therefore never observes an `Upsert` that arrived
//! after it, and always observes every earlier one. Write epochs run in
//! strict arrival order — mutations on the same key do not commute.
//!
//! # Determinism
//!
//! The service owns no clock but its tick counter and no randomness at
//! all: the same `ServiceConfig`, the same arrival sequence (ops + the
//! tick pattern of `submit`/`tick` calls) produce byte-identical
//! completions, metrics, and traces — at any `PIM_THREADS`, because the
//! underlying executor is deterministic by construction.
//!
//! ```
//! use pim_core::{Config, Op, PimSkipList, Reply};
//! use pim_service::{PimService, ServiceConfig};
//!
//! let list = PimSkipList::new(Config::new(4, 1 << 10, 42));
//! let mut svc = PimService::new(list, ServiceConfig::new(4).with_max_linger(2));
//! svc.submit(Op::Upsert { key: 7, value: 70 }).unwrap();
//! svc.submit(Op::Get { key: 7 }).unwrap();
//! let mut done = Vec::new();
//! while done.len() < 2 {
//!     done.extend(svc.tick());
//! }
//! assert_eq!(done[1].reply, Reply::Value(Some(70)));
//! assert!(done[1].latency_ticks <= 2);
//! ```

#![warn(missing_docs)]

pub mod backend;

pub use backend::Backend;

use pim_core::{Op, OpKind, PimSkipList, Reply};
use pim_runtime::telemetry::{CounterId, GaugeId, HistId};
use pim_runtime::Histogram;

/// When a [`Completion`] is released relative to durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckPolicy {
    /// Release as soon as the batch executes (default). Fast, but under a
    /// durable list with a lazy fsync policy an acknowledged op may still
    /// be lost by a crash.
    #[default]
    AfterExecute,
    /// Hold completions until a WAL fsync covers their batch: an
    /// acknowledged op survives any crash. The service drives the sync
    /// from its tick clock (every [`ServiceConfig::sync_every`] ticks), so
    /// the extra latency is deterministic and shows up in
    /// [`ServiceStats::latency_ticks`]. With a non-durable list (or a
    /// durable one on [`pim_core::FsyncPolicy::EveryFrame`]) this degrades
    /// gracefully to same-tick release.
    AfterFsync,
}

/// Coalescing policy of a [`PimService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Dispatch as soon as this many requests are queued (and never put
    /// more than this many in one batch). The paper's preferred batch
    /// size is [`pim_core::Config::batch_large`] — see
    /// [`ServiceConfig::for_list`].
    pub max_batch: usize,
    /// Dispatch when the *oldest* queued request has waited this many
    /// ticks, even if the batch is not full. `0` dispatches every tick.
    pub max_linger: u64,
    /// Bound on the number of queued requests; beyond it
    /// [`PimService::submit`] refuses (backpressure). Defaults to
    /// `4 × max_batch`.
    pub max_queue: usize,
    /// Completion-release policy relative to durability.
    pub ack: AckPolicy,
    /// Under [`AckPolicy::AfterFsync`]: fsync the WAL every this many
    /// ticks while acks are pending (the every-T-ticks group-commit
    /// cadence; clamped to at least 1). Ignored otherwise.
    pub sync_every: u64,
    /// Inter-batch round pipelining override for the fronted backend
    /// (`Some(x)` calls [`Backend::set_pipeline`]`(x)` at construction;
    /// `None` leaves the backend's own configuration — usually seeded
    /// from `PIM_PIPELINE` via [`pim_core::Config::from_env`] —
    /// untouched). The service's dispatch plan orders each read epoch
    /// into maximal same-kind runs precisely so the pipelined driver can
    /// stage run *k+1* while run *k* executes; completions, stats,
    /// metrics, and traces are byte-identical either way (wall-clock
    /// only — see `docs/MODEL.md`).
    pub pipeline: Option<bool>,
    /// Per-lane admission bound for multi-lane backends (a cluster: one
    /// lane per shard). A submit whose lane already holds this many
    /// queued requests is refused with [`Rejected::LaneFull`] even when
    /// the global queue has room — backpressure lands on the hot shard
    /// while cold shards keep accepting. `None` (default) disables lane
    /// accounting; single-lane backends are never lane-refused.
    pub max_lane_queue: Option<usize>,
}

impl ServiceConfig {
    /// A policy dispatching at `max_batch` requests, lingering at most 8
    /// ticks, with a `4 × max_batch` queue bound.
    pub fn new(max_batch: usize) -> Self {
        let max_batch = max_batch.max(1);
        ServiceConfig {
            max_batch,
            max_linger: 8,
            max_queue: 4 * max_batch,
            ack: AckPolicy::AfterExecute,
            sync_every: 1,
            pipeline: None,
            max_lane_queue: None,
        }
    }

    /// The paper-recommended policy derived from a core [`pim_core::Config`]:
    /// batches of [`pim_core::Config::batch_large`] (`P log² P`). The
    /// service wraps the structure's own configuration rather than
    /// duplicating its parameters; build the `Config` with
    /// [`pim_core::Config::from_env`] to honour `PIM_*` overrides.
    pub fn for_config(core: &pim_core::Config) -> Self {
        ServiceConfig::new(core.batch_large())
    }

    /// [`ServiceConfig::for_config`] for an already-built backend
    /// (batches of [`Backend::recommended_batch`]).
    pub fn for_backend<B: Backend>(backend: &B) -> Self {
        ServiceConfig::new(backend.recommended_batch())
    }

    /// The paper-recommended policy for `list`: batches of
    /// [`pim_core::Config::batch_large`] (`P log² P`).
    pub fn for_list(list: &PimSkipList) -> Self {
        Self::for_config(list.config())
    }

    /// Override the linger bound.
    pub fn with_max_linger(mut self, ticks: u64) -> Self {
        self.max_linger = ticks;
        self
    }

    /// Override the queue bound (clamped to at least `max_batch`).
    pub fn with_max_queue(mut self, cap: usize) -> Self {
        self.max_queue = cap.max(self.max_batch);
        self
    }

    /// Hold completions until a WAL fsync covers them, syncing every
    /// `sync_every` ticks (see [`AckPolicy::AfterFsync`]).
    pub fn with_ack_after_fsync(mut self, sync_every: u64) -> Self {
        self.ack = AckPolicy::AfterFsync;
        self.sync_every = sync_every.max(1);
        self
    }

    /// Force inter-batch round pipelining on (or off) for the fronted
    /// backend, overriding its `PIM_PIPELINE`-seeded default (see
    /// [`ServiceConfig::pipeline`]).
    pub fn with_pipeline(mut self, pipeline: bool) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Bound each backend lane's share of the queue (see
    /// [`ServiceConfig::max_lane_queue`]; clamped to at least 1).
    pub fn with_max_lane_queue(mut self, cap: usize) -> Self {
        self.max_lane_queue = Some(cap.max(1));
        self
    }
}

/// Identifier assigned by [`PimService::submit`], echoed on the matching
/// [`Completion`]. Sequential from 0.
pub type RequestId = u64;

/// Why [`PimService::submit`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The queue is at [`ServiceConfig::max_queue`]; retry after a tick
    /// has drained a batch.
    QueueFull,
    /// The request's backend lane (its shard) is at
    /// [`ServiceConfig::max_lane_queue`]; other lanes may still have
    /// room. Retry after a tick, or route load away from the hot shard.
    LaneFull {
        /// The saturated lane index ([`Backend::lane`] of the refused op).
        lane: usize,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull => write!(f, "service queue full (backpressure)"),
            Rejected::LaneFull { lane } => {
                write!(f, "service lane {lane} full (per-shard backpressure)")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// One answered request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The id [`PimService::submit`] assigned.
    pub id: RequestId,
    /// The typed answer.
    pub reply: Reply,
    /// Tick the request was submitted on.
    pub arrival: u64,
    /// Tick the request's batch dispatched. Under [`AckPolicy::AfterExecute`]
    /// this is also the completion tick; under [`AckPolicy::AfterFsync`]
    /// release may come later, once a WAL fsync covers the batch.
    pub dispatched: u64,
    /// Service-clock latency, arrival → acknowledgement, in ticks (under
    /// [`AckPolicy::AfterFsync`] this includes the wait for the covering
    /// fsync — the durability premium, visible in
    /// [`ServiceStats::latency_ticks`]).
    pub latency_ticks: u64,
    /// Machine-clock latency: rounds the machine ran between this
    /// request's arrival and its reply (includes rounds spent on batches
    /// dispatched ahead of it).
    pub latency_rounds: u64,
}

/// Streaming service statistics (deterministic; all integer-exact except
/// histogram quantiles, which are deterministic bucket upper bounds).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Requests accepted by [`PimService::submit`].
    pub submitted: u64,
    /// Requests refused with [`Rejected::QueueFull`].
    pub rejected: u64,
    /// Completions delivered.
    pub completed: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Per-completion latency in ticks.
    pub latency_ticks: Histogram,
    /// Per-completion latency in machine rounds.
    pub latency_rounds: Histogram,
    /// Queue depth sampled at the start of every tick.
    pub queue_depth: Histogram,
    /// Requests per dispatched batch.
    pub batch_occupancy: Histogram,
    /// WAL fsyncs this service triggered ([`AckPolicy::AfterFsync`] only).
    pub fsyncs: u64,
}

/// Pre-resolved registry handles for the service's series (all `Copy`,
/// resolved once the fronted list's telemetry is lit — see
/// [`PimService::sync_telemetry`]).
#[derive(Debug, Clone, Copy)]
struct ServiceTelem {
    queue_depth: GaugeId,
    rejected: CounterId,
    fsyncs: CounterId,
    occupancy: HistId,
    latency_ticks: HistId,
    latency_rounds: HistId,
    ack_hold: HistId,
}

/// A pending request in the FIFO queue.
#[derive(Debug, Clone)]
struct Pending {
    id: RequestId,
    op: Op,
    arrival: u64,
    rounds_at_arrival: u64,
    /// Backend lane the op routes to (0 unless lane accounting is on).
    lane: usize,
}

/// The batch-coalescing request scheduler, generic over the structure it
/// fronts — a single [`PimSkipList`] machine (the default) or any other
/// [`Backend`] such as a `pim-cluster` of shards. Owns the backend;
/// reclaim it with [`PimService::into_list`].
pub struct PimService<B: Backend = PimSkipList> {
    list: B,
    cfg: ServiceConfig,
    queue: std::collections::VecDeque<Pending>,
    now: u64,
    next_id: RequestId,
    stats: ServiceStats,
    // Recycled dispatch staging: drained and refilled every batch, so a
    // steady-state service allocates only the `Completion` vector it hands
    // back (the service-side half of the steady-state allocation contract
    // in `docs/MODEL.md`).
    pend: Vec<Pending>,
    order: Vec<usize>,
    ops: Vec<Op>,
    slots: Vec<Option<Reply>>,
    // Completions executed but awaiting a covering WAL fsync, with the
    // durable stream position each needs synced (AfterFsync only; FIFO, so
    // release order is arrival order).
    held: std::collections::VecDeque<(u64, Completion)>,
    // Registry handles, resolved lazily once the list's telemetry is lit
    // (`None` while dark — the hot path then pays one `is_none` branch).
    telem: Option<ServiceTelem>,
    // Queued requests per backend lane (sized `lanes()`; all zeros and
    // untouched unless `max_lane_queue` is set).
    lane_depth: Vec<usize>,
}

impl<B: Backend> PimService<B> {
    /// Front `list` with the given coalescing policy.
    pub fn new(mut list: B, cfg: ServiceConfig) -> Self {
        if let Some(pipeline) = cfg.pipeline {
            list.set_pipeline(pipeline);
        }
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            cfg.max_queue >= cfg.max_batch,
            "max_queue must admit at least one full batch"
        );
        let lane_depth = vec![0; list.lanes().max(1)];
        PimService {
            list,
            cfg,
            queue: std::collections::VecDeque::new(),
            now: 0,
            next_id: 0,
            stats: ServiceStats::default(),
            pend: Vec::new(),
            order: Vec::new(),
            ops: Vec::new(),
            slots: Vec::new(),
            held: std::collections::VecDeque::new(),
            telem: None,
            lane_depth,
        }
    }

    /// Resolve the service's registry handles if the fronted list's
    /// telemetry is lit (idempotent; no-op while dark). Called from
    /// `submit`/`tick`, so enabling telemetry on the list at any point —
    /// before or after construction of the service — just works.
    fn sync_telemetry(&mut self) {
        if self.telem.is_some() {
            return;
        }
        let Some(reg) = self.list.telemetry_mut() else {
            return;
        };
        self.telem = Some(ServiceTelem {
            queue_depth: reg.gauge("pim_service_queue_depth", &[]),
            rejected: reg.counter("pim_service_rejected_total", &[]),
            fsyncs: reg.counter("pim_service_fsyncs_total", &[]),
            occupancy: reg.histogram("pim_service_batch_occupancy", &[]),
            latency_ticks: reg.histogram("pim_service_latency_ticks", &[]),
            latency_rounds: reg.histogram("pim_service_latency_rounds", &[]),
            ack_hold: reg.histogram("pim_service_ack_hold_ticks", &[]),
        });
    }

    /// The current service tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The coalescing policy.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Streaming statistics so far.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The fronted backend (read-only; mutate only through the service
    /// while requests are in flight, or ordering guarantees are void).
    pub fn list(&self) -> &B {
        &self.list
    }

    /// Mutable access to the fronted structure — for instrumentation
    /// (`enable_probe`, `enable_tracing`, `set_fault_plan`), not for
    /// concurrent mutation.
    pub fn list_mut(&mut self) -> &mut B {
        &mut self.list
    }

    /// Tear down the service (dropping any still-queued requests) and
    /// return the backend.
    pub fn into_list(self) -> B {
        self.list
    }

    /// Enqueue one request at the current tick. Refuses with
    /// [`Rejected::QueueFull`] when the queue is at
    /// [`ServiceConfig::max_queue`].
    pub fn submit(&mut self, op: Op) -> Result<RequestId, Rejected> {
        self.sync_telemetry();
        if self.queue.len() >= self.cfg.max_queue {
            self.stats.rejected += 1;
            if let (Some(th), Some(reg)) = (self.telem, self.list.telemetry_mut()) {
                reg.add(th.rejected, 1);
            }
            return Err(Rejected::QueueFull);
        }
        let lane = match self.cfg.max_lane_queue {
            Some(cap) => {
                let lane = self.list.lane(&op).min(self.lane_depth.len() - 1);
                if self.lane_depth[lane] >= cap {
                    self.stats.rejected += 1;
                    if let (Some(th), Some(reg)) = (self.telem, self.list.telemetry_mut()) {
                        reg.add(th.rejected, 1);
                    }
                    return Err(Rejected::LaneFull { lane });
                }
                self.lane_depth[lane] += 1;
                lane
            }
            None => 0,
        };
        let id = self.next_id;
        self.next_id += 1;
        self.stats.submitted += 1;
        let rounds_at_arrival = self.list.rounds();
        if self.telem.is_some() {
            if let Some(reg) = self.list.telemetry_mut() {
                reg.emit("admit", self.now, rounds_at_arrival, &[("id", id)]);
            }
        }
        self.queue.push_back(Pending {
            id,
            op,
            arrival: self.now,
            rounds_at_arrival,
            lane,
        });
        Ok(id)
    }

    /// Advance the service clock one tick and dispatch every batch the
    /// policy calls for: while the queue holds a full
    /// [`ServiceConfig::max_batch`], or its oldest request has lingered
    /// [`ServiceConfig::max_linger`] ticks, the head of the queue goes to
    /// the machine. Returns the completions, in arrival order.
    ///
    /// Panics if the machine exhausts its fault-recovery retries (see
    /// [`pim_core::PimSkipList::try_execute`]); on a fault-free machine it
    /// never panics.
    pub fn tick(&mut self) -> Vec<Completion> {
        self.now += 1;
        self.sync_telemetry();
        self.stats.queue_depth.record(self.queue.len() as u64);
        if let (Some(th), Some(reg)) = (self.telem, self.list.telemetry_mut()) {
            reg.set(th.queue_depth, self.queue.len() as u64);
        }
        let mut out = Vec::new();
        while self.should_dispatch() {
            out.extend(self.dispatch());
        }
        if self.cfg.ack == AckPolicy::AfterFsync {
            if !self.held.is_empty() && self.now.is_multiple_of(self.cfg.sync_every.max(1)) {
                self.list
                    .durable_sync()
                    .unwrap_or_else(|e| panic!("wal fsync: {e}"));
                self.stats.fsyncs += 1;
                self.note_fsync();
            }
            out.extend(self.release_ready());
        }
        out
    }

    /// Dispatch everything still queued, ignoring batch-size and linger
    /// thresholds, and force a covering fsync for any held acks
    /// (end-of-run drain). Does not advance the tick.
    pub fn flush(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            out.extend(self.dispatch());
        }
        if !self.held.is_empty() {
            self.list
                .durable_sync()
                .unwrap_or_else(|e| panic!("wal fsync: {e}"));
            self.stats.fsyncs += 1;
            self.note_fsync();
            out.extend(self.release_ready());
        }
        out
    }

    /// Publish one service-driven fsync into the registry + event log.
    fn note_fsync(&mut self) {
        let synced = self.list.durable_synced_seq().unwrap_or(0);
        let round = self.list.rounds();
        if let (Some(th), Some(reg)) = (self.telem, self.list.telemetry_mut()) {
            reg.add(th.fsyncs, 1);
            reg.emit("fsync", self.now, round, &[("synced_seq", synced)]);
        }
    }

    /// Completions executed but not yet acknowledged (awaiting a covering
    /// WAL fsync; always 0 under [`AckPolicy::AfterExecute`]).
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// Release every held completion the durable layer has synced past.
    fn release_ready(&mut self) -> Vec<Completion> {
        let synced = self.list.durable_synced_seq().unwrap_or(u64::MAX);
        let mut out = Vec::new();
        while let Some(&(need, _)) = self.held.front() {
            if need > synced {
                break;
            }
            let (_, c) = self.held.pop_front().expect("front exists");
            out.push(self.record(c));
        }
        out
    }

    /// Stamp a *held* completion's acknowledgement latency at its release
    /// tick and fold it into the streaming stats.
    fn record(&mut self, mut c: Completion) -> Completion {
        c.latency_ticks = self.now.saturating_sub(c.arrival);
        self.stats.completed += 1;
        self.stats.latency_ticks.record(c.latency_ticks);
        self.stats.latency_rounds.record(c.latency_rounds);
        let held_ticks = self.now.saturating_sub(c.dispatched);
        let round = self.list.rounds();
        if let (Some(th), Some(reg)) = (self.telem, self.list.telemetry_mut()) {
            reg.observe(th.latency_ticks, c.latency_ticks);
            reg.observe(th.latency_rounds, c.latency_rounds);
            reg.observe(th.ack_hold, held_ticks);
            reg.emit(
                "ack",
                self.now,
                round,
                &[
                    ("id", c.id),
                    ("held_ticks", held_ticks),
                    ("latency_ticks", c.latency_ticks),
                    ("latency_rounds", c.latency_rounds),
                ],
            );
        }
        c
    }

    fn should_dispatch(&self) -> bool {
        match self.queue.front() {
            None => false,
            Some(oldest) => {
                self.queue.len() >= self.cfg.max_batch
                    || self.now.saturating_sub(oldest.arrival) >= self.cfg.max_linger
            }
        }
    }

    /// Take the head of the queue (at most one `max_batch`), execute it,
    /// and route replies. The three phases are bracketed with probe spans
    /// (`service/coalesce`, `service/dispatch`, `service/reply`) so span
    /// reports attribute machine cost to the layer that caused it.
    fn dispatch(&mut self) -> Vec<Completion> {
        let n = self.queue.len().min(self.cfg.max_batch);
        self.pend.clear();
        self.pend.extend(self.queue.drain(..n));
        if self.cfg.max_lane_queue.is_some() {
            for p in &self.pend {
                self.lane_depth[p.lane] -= 1;
            }
        }
        let batch = self.stats.batches;
        self.stats.batches += 1;
        self.stats.batch_occupancy.record(n as u64);

        self.list.span_enter("service/coalesce");
        plan_order_into(&self.pend, &mut self.order);
        self.ops.clear();
        self.ops.extend(self.order.iter().map(|&i| self.pend[i].op));
        self.list.span_exit();
        let rounds_before = self.list.rounds();
        if let Some(th) = self.telem {
            if let Some(reg) = self.list.telemetry_mut() {
                reg.observe(th.occupancy, n as u64);
                for (pos, &i) in self.order.iter().enumerate() {
                    reg.emit(
                        "coalesce",
                        self.now,
                        rounds_before,
                        &[
                            ("id", self.pend[i].id),
                            ("batch", batch),
                            ("pos", pos as u64),
                        ],
                    );
                }
            }
        }

        self.list.span_enter("service/dispatch");
        let replies = self.list.execute_ops(&self.ops);
        self.list.span_exit();

        self.list.span_enter("service/reply");
        let rounds_now = self.list.rounds();
        if self.telem.is_some() {
            if let Some(reg) = self.list.telemetry_mut() {
                reg.emit(
                    "execute",
                    self.now,
                    rounds_now,
                    &[
                        ("batch", batch),
                        ("n", n as u64),
                        ("rounds", rounds_now - rounds_before),
                    ],
                );
            }
        }
        self.slots.clear();
        self.slots.resize(n, None);
        for (&i, reply) in self.order.iter().zip(replies) {
            self.slots[i] = Some(reply);
        }
        let hold = self.cfg.ack == AckPolicy::AfterFsync && self.list.is_durable();
        // Everything this batch committed is durable once the WAL reaches
        // this stream position.
        let need = self.list.durable_seq().unwrap_or(0);
        let th = self.telem;
        let now = self.now;
        let mut out = Vec::with_capacity(if hold { 0 } else { n });
        for (p, reply) in self.pend.drain(..).zip(self.slots.drain(..)) {
            let latency_ticks = self.now.saturating_sub(p.arrival);
            let latency_rounds = rounds_now.saturating_sub(p.rounds_at_arrival);
            let c = Completion {
                id: p.id,
                reply: reply.expect("every dispatched op answered"),
                arrival: p.arrival,
                dispatched: self.now,
                latency_ticks,
                latency_rounds,
            };
            if hold {
                self.held.push_back((need, c));
            } else {
                self.stats.completed += 1;
                self.stats.latency_ticks.record(latency_ticks);
                self.stats.latency_rounds.record(latency_rounds);
                if let Some(th) = th {
                    if let Some(reg) = self.list.telemetry_mut() {
                        reg.observe(th.latency_ticks, latency_ticks);
                        reg.observe(th.latency_rounds, latency_rounds);
                        reg.emit(
                            "reply",
                            now,
                            rounds_now,
                            &[
                                ("id", c.id),
                                ("latency_ticks", latency_ticks),
                                ("latency_rounds", latency_rounds),
                            ],
                        );
                    }
                }
                out.push(c);
            }
        }
        self.list.span_exit();
        if hold {
            // A list fsyncing eagerly (EveryFrame / a tripped EveryOps
            // threshold) may already cover this batch — release same-tick.
            out.extend(self.release_ready());
        }
        out
    }
}

/// The dispatch permutation, written into `order`: positions of `pend` in
/// execution order. Read/write epochs stay in arrival order; within a read
/// epoch, operations are stably grouped by kind (reads commute, and
/// grouping widens the coalescible runs `execute` can batch).
fn plan_order_into(pend: &[Pending], order: &mut Vec<usize>) {
    order.clear();
    let mut i = 0;
    while i < pend.len() {
        let write = pend[i].op.is_write();
        let mut j = i + 1;
        while j < pend.len() && pend[j].op.is_write() == write {
            j += 1;
        }
        let start = order.len();
        order.extend(i..j);
        if !write {
            order[start..].sort_by_key(|&k| read_group(pend[k].op.kind()));
        }
        i = j;
    }
}

/// Grouping rank of a read-only operation kind (stable sort key; ties
/// keep arrival order, and `execute` further splits range runs by
/// function).
fn read_group(kind: OpKind) -> u8 {
    match kind {
        OpKind::Get => 0,
        OpKind::Predecessor => 1,
        OpKind::Successor => 2,
        OpKind::Range => 3,
        // Writes never reach here (epochs are class-pure), but the match
        // must be total.
        OpKind::Update => 4,
        OpKind::Upsert => 5,
        OpKind::Delete => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::Config;

    fn small_list(seed: u64) -> PimSkipList {
        PimSkipList::new(Config::new(4, 1 << 10, seed))
    }

    #[test]
    fn batch_threshold_triggers_dispatch() {
        let mut svc = PimService::new(small_list(1), ServiceConfig::new(4).with_max_linger(100));
        for k in 0..3 {
            svc.submit(Op::Upsert { key: k, value: 1 }).unwrap();
        }
        assert!(svc.tick().is_empty(), "3 < max_batch and linger not hit");
        svc.submit(Op::Upsert { key: 9, value: 1 }).unwrap();
        let done = svc.tick();
        assert_eq!(done.len(), 4);
        assert_eq!(svc.queue_len(), 0);
        assert_eq!(svc.stats().batches, 1);
    }

    #[test]
    fn linger_bounds_queue_wait() {
        let mut svc = PimService::new(small_list(2), ServiceConfig::new(64).with_max_linger(3));
        svc.submit(Op::Upsert { key: 1, value: 10 }).unwrap();
        assert!(svc.tick().is_empty()); // waited 1
        assert!(svc.tick().is_empty()); // waited 2
        let done = svc.tick(); // waited 3 == max_linger
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].latency_ticks, 3);
    }

    #[test]
    fn replies_route_by_request_id_in_arrival_order() {
        let mut svc = PimService::new(small_list(3), ServiceConfig::new(8).with_max_linger(0));
        let a = svc.submit(Op::Upsert { key: 1, value: 11 }).unwrap();
        let b = svc.submit(Op::Upsert { key: 2, value: 22 }).unwrap();
        let c = svc.submit(Op::Get { key: 1 }).unwrap();
        let d = svc.submit(Op::Get { key: 2 }).unwrap();
        let done = svc.tick();
        assert_eq!(
            done.iter().map(|c| c.id).collect::<Vec<_>>(),
            vec![a, b, c, d]
        );
        assert_eq!(done[2].reply, Reply::Value(Some(11)));
        assert_eq!(done[3].reply, Reply::Value(Some(22)));
    }

    #[test]
    fn read_never_observes_later_write() {
        // Get{5} arrives BEFORE Upsert{5}: must answer None even though
        // both dispatch in the same batch.
        let mut svc = PimService::new(small_list(4), ServiceConfig::new(8).with_max_linger(0));
        svc.submit(Op::Get { key: 5 }).unwrap();
        svc.submit(Op::Upsert { key: 5, value: 50 }).unwrap();
        svc.submit(Op::Get { key: 5 }).unwrap();
        let done = svc.tick();
        assert_eq!(
            done[0].reply,
            Reply::Value(None),
            "earlier Get sees no later Upsert"
        );
        assert_eq!(
            done[2].reply,
            Reply::Value(Some(50)),
            "later Get sees earlier Upsert"
        );
    }

    #[test]
    fn reads_regroup_within_epoch_for_coalescing() {
        // G S G S → plan groups the Gets then the Successors (2 runs
        // instead of 4), with replies still landing at arrival positions.
        let mut svc = PimService::new(small_list(5), ServiceConfig::new(8).with_max_linger(0));
        svc.submit(Op::Upsert { key: 10, value: 1 }).unwrap();
        svc.tick();
        svc.submit(Op::Get { key: 10 }).unwrap();
        svc.submit(Op::Successor { key: 0 }).unwrap();
        svc.submit(Op::Get { key: 11 }).unwrap();
        svc.submit(Op::Successor { key: 11 }).unwrap();
        let done = svc.flush();
        assert_eq!(done[0].reply, Reply::Value(Some(1)));
        assert_eq!(done[1].reply.as_entry().unwrap().unwrap().0, 10);
        assert_eq!(done[2].reply, Reply::Value(None));
        assert!(done[3].reply.as_entry().unwrap().is_none());
    }

    #[test]
    fn backpressure_rejects_past_queue_bound() {
        let cfg = ServiceConfig::new(2).with_max_queue(2).with_max_linger(100);
        let mut svc = PimService::new(small_list(6), cfg);
        svc.submit(Op::Get { key: 1 }).unwrap();
        svc.submit(Op::Get { key: 2 }).unwrap();
        assert_eq!(svc.submit(Op::Get { key: 3 }), Err(Rejected::QueueFull));
        assert_eq!(svc.stats().rejected, 1);
        svc.tick(); // drains the full batch
        assert!(svc.submit(Op::Get { key: 3 }).is_ok());
    }

    #[test]
    fn flush_drains_everything() {
        let mut svc = PimService::new(small_list(7), ServiceConfig::new(64).with_max_linger(100));
        for k in 0..5 {
            svc.submit(Op::Upsert {
                key: k,
                value: k as u64,
            })
            .unwrap();
        }
        let done = svc.flush();
        assert_eq!(done.len(), 5);
        assert_eq!(svc.queue_len(), 0);
        assert_eq!(svc.into_list().len(), 5);
    }

    #[test]
    fn latency_rounds_counts_machine_rounds_since_arrival() {
        let mut svc = PimService::new(small_list(8), ServiceConfig::new(1).with_max_linger(0));
        svc.submit(Op::Upsert { key: 1, value: 1 }).unwrap();
        let done = svc.tick();
        assert_eq!(done.len(), 1);
        assert!(done[0].latency_rounds > 0, "an upsert runs machine rounds");
        assert_eq!(
            done[0].latency_rounds,
            svc.list().metrics().rounds,
            "first request arrived at round 0"
        );
    }

    fn durable_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pim-service-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn ack_after_fsync_holds_until_covering_sync() {
        use pim_core::{DurabilityPolicy, FsyncPolicy};
        let dir = durable_dir("holds");
        let mut list = small_list(20);
        // The list itself never fsyncs — the service clock drives it.
        list.enable_durability(
            &dir,
            DurabilityPolicy::default().with_fsync(FsyncPolicy::Manual),
        )
        .unwrap();
        let cfg = ServiceConfig::new(1)
            .with_max_linger(0)
            .with_ack_after_fsync(4);
        let mut svc = PimService::new(list, cfg);
        svc.submit(Op::Upsert { key: 1, value: 1 }).unwrap();
        // Tick 1: dispatched (executed) but unacknowledged — sync due at 4.
        assert!(svc.tick().is_empty());
        assert_eq!(svc.held_len(), 1);
        assert!(svc.tick().is_empty()); // tick 2
        assert!(svc.tick().is_empty()); // tick 3
        let done = svc.tick(); // tick 4: fsync covers the batch
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].dispatched, 1);
        assert_eq!(done[0].latency_ticks, 4, "durability premium visible");
        assert_eq!(svc.stats().fsyncs, 1);
        assert_eq!(svc.stats().latency_ticks.max(), 4);
        assert_eq!(svc.list().durable_synced_seq(), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ack_after_fsync_with_eager_wal_releases_same_tick() {
        use pim_core::DurabilityPolicy;
        let dir = durable_dir("eager");
        let mut list = small_list(21);
        // EveryFrame: the WAL is already synced when dispatch returns.
        list.enable_durability(&dir, DurabilityPolicy::default())
            .unwrap();
        let cfg = ServiceConfig::new(1)
            .with_max_linger(0)
            .with_ack_after_fsync(8);
        let mut svc = PimService::new(list, cfg);
        svc.submit(Op::Upsert { key: 1, value: 1 }).unwrap();
        let done = svc.tick();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].latency_ticks, 1, "no extra wait");
        assert_eq!(svc.stats().fsyncs, 0, "service never had to sync");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ack_after_fsync_without_durability_degenerates() {
        let cfg = ServiceConfig::new(1)
            .with_max_linger(0)
            .with_ack_after_fsync(16);
        let mut svc = PimService::new(small_list(22), cfg);
        svc.submit(Op::Get { key: 1 }).unwrap();
        let done = svc.tick();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].latency_ticks, 1);
        assert_eq!(svc.held_len(), 0);
    }

    #[test]
    fn flush_forces_covering_sync_for_held_acks() {
        use pim_core::{DurabilityPolicy, FsyncPolicy};
        let dir = durable_dir("flushsync");
        let mut list = small_list(23);
        list.enable_durability(
            &dir,
            DurabilityPolicy::default().with_fsync(FsyncPolicy::Manual),
        )
        .unwrap();
        let cfg = ServiceConfig::new(2)
            .with_max_linger(0)
            .with_ack_after_fsync(1000);
        let mut svc = PimService::new(list, cfg);
        for k in 0..5 {
            svc.submit(Op::Upsert { key: k, value: 9 }).unwrap();
        }
        let done = svc.flush();
        assert_eq!(done.len(), 5, "flush releases every held ack");
        assert_eq!(svc.held_len(), 0);
        assert_eq!(svc.stats().fsyncs, 1);
        let list = svc.into_list();
        assert_eq!(list.durable_synced_seq(), list.durable_seq());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_traces_the_request_lifecycle() {
        let mut list = small_list(30);
        list.enable_telemetry();
        let mut svc = PimService::new(list, ServiceConfig::new(2).with_max_linger(0));
        svc.submit(Op::Upsert { key: 1, value: 10 }).unwrap();
        svc.submit(Op::Get { key: 1 }).unwrap();
        let done = svc.tick();
        assert_eq!(done.len(), 2);
        let reg = svc.list_mut().take_telemetry().unwrap();
        let kinds: Vec<&str> = reg.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec!["admit", "admit", "coalesce", "coalesce", "execute", "reply", "reply"]
        );
        // Request 0 is traceable end to end by id.
        let for_id0: Vec<&str> = reg
            .events()
            .iter()
            .filter(|e| e.field("id") == Some(0))
            .map(|e| e.kind)
            .collect();
        assert_eq!(for_id0, vec!["admit", "coalesce", "reply"]);
        let exec = &reg.events()[4];
        assert_eq!(exec.field("n"), Some(2));
        assert!(exec.field("rounds").unwrap() > 0);
        // The registry aggregates match the streaming stats.
        let snap = reg.snapshot().render_prometheus();
        assert!(snap.contains("pim_ops_total{op=\"get\"} 1"));
        assert!(snap.contains("pim_ops_total{op=\"upsert\"} 1"));
        assert!(snap.contains("pim_service_latency_ticks_count 2"));
    }

    #[test]
    fn telemetry_ack_events_carry_the_durability_premium() {
        use pim_core::{DurabilityPolicy, FsyncPolicy};
        let dir = durable_dir("telem-ack");
        let mut list = small_list(31);
        list.enable_durability(
            &dir,
            DurabilityPolicy::default().with_fsync(FsyncPolicy::Manual),
        )
        .unwrap();
        list.enable_telemetry();
        let cfg = ServiceConfig::new(1)
            .with_max_linger(0)
            .with_ack_after_fsync(4);
        let mut svc = PimService::new(list, cfg);
        svc.submit(Op::Upsert { key: 1, value: 1 }).unwrap();
        let mut done = Vec::new();
        for _ in 0..4 {
            done.extend(svc.tick());
        }
        assert_eq!(done.len(), 1);
        let mut list = svc.into_list();
        let snap = list.telemetry_snapshot().unwrap().render_prometheus();
        assert!(snap.contains("pim_service_fsyncs_total 1"));
        assert!(
            snap.contains("pim_wal_fsyncs_total 1"),
            "durable totals folded in"
        );
        assert!(snap.contains("pim_wal_frames_total 1"));
        let reg = list.take_telemetry().unwrap();
        let ack = reg.events().iter().find(|e| e.kind == "ack").unwrap();
        assert_eq!(ack.field("id"), Some(0));
        assert_eq!(
            ack.field("held_ticks"),
            Some(3),
            "dispatched at 1, acked at 4"
        );
        assert_eq!(ack.field("latency_ticks"), Some(4));
        assert!(reg.events().iter().any(|e| e.kind == "fsync"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_dark_service_behaves_identically() {
        let run = |lit: bool| -> (Vec<Completion>, pim_runtime::Metrics) {
            let mut list = small_list(32);
            if lit {
                list.enable_telemetry();
            }
            let mut svc = PimService::new(
                list,
                ServiceConfig::new(2).with_max_linger(1).with_max_queue(16),
            );
            for k in 0..10 {
                svc.submit(Op::Upsert {
                    key: k,
                    value: k as u64,
                })
                .unwrap();
            }
            let mut done = svc.tick();
            done.extend(svc.flush());
            (done, svc.into_list().metrics())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn pipelined_service_is_byte_identical() {
        // The hard contract of inter-batch round pipelining: same config,
        // same arrival sequence → byte-identical completions, stats,
        // metrics, and telemetry events, with or without the pipeline.
        // Mixed read epochs (Get + Successor runs) exercise the staged
        // hand-off; the write epochs exercise pair staging.
        let run = |pipeline: bool| {
            let mut list = small_list(33);
            list.enable_telemetry();
            let cfg = ServiceConfig::new(6)
                .with_max_linger(1)
                .with_max_queue(64)
                .with_pipeline(pipeline);
            let mut svc = PimService::new(list, cfg);
            for k in 0..12i64 {
                svc.submit(Op::Upsert {
                    key: k,
                    value: k as u64 * 10,
                })
                .unwrap();
                svc.submit(Op::Get { key: k }).unwrap();
                svc.submit(Op::Successor { key: k }).unwrap();
            }
            let mut done = svc.tick();
            done.extend(svc.flush());
            let mut list = svc.into_list();
            let events = format!("{:?}", list.take_telemetry().unwrap().events());
            (done, list.metrics(), events)
        };
        let (done_off, metrics_off, events_off) = run(false);
        let (done_on, metrics_on, events_on) = run(true);
        assert_eq!(done_off, done_on, "completions identical");
        assert_eq!(metrics_off, metrics_on, "metrics identical");
        assert_eq!(events_off, events_on, "telemetry events identical");
    }

    /// A two-lane backend (keys route by parity) for exercising per-lane
    /// backpressure without pulling the cluster crate into the dev-deps.
    struct TwoLane(PimSkipList);

    impl Backend for TwoLane {
        fn execute_ops(&mut self, ops: &[Op]) -> Vec<Reply> {
            self.0.execute(ops)
        }
        fn rounds(&self) -> u64 {
            self.0.metrics().rounds
        }
        fn span_enter(&mut self, name: &'static str) {
            self.0.span_enter(name);
        }
        fn span_exit(&mut self) {
            self.0.span_exit();
        }
        fn set_pipeline(&mut self, pipeline: bool) {
            self.0.set_pipeline(pipeline);
        }
        fn is_durable(&self) -> bool {
            self.0.is_durable()
        }
        fn durable_seq(&self) -> Option<u64> {
            self.0.durable_seq()
        }
        fn durable_synced_seq(&self) -> Option<u64> {
            self.0.durable_synced_seq()
        }
        fn durable_sync(&mut self) -> pim_core::PimResult<()> {
            self.0.durable_sync()
        }
        fn telemetry_mut(&mut self) -> Option<&mut pim_runtime::Telemetry> {
            self.0.telemetry_mut()
        }
        fn recommended_batch(&self) -> usize {
            self.0.config().batch_large()
        }
        fn lanes(&self) -> usize {
            2
        }
        fn lane(&self, op: &Op) -> usize {
            (op.key().unwrap_or(0).rem_euclid(2)) as usize
        }
    }

    #[test]
    fn lane_backpressure_refuses_only_the_hot_lane() {
        let cfg = ServiceConfig::new(64)
            .with_max_linger(100)
            .with_max_queue(64)
            .with_max_lane_queue(2);
        let mut svc = PimService::new(TwoLane(small_list(40)), cfg);
        // Saturate lane 0 (even keys); lane 1 must keep accepting.
        svc.submit(Op::Get { key: 0 }).unwrap();
        svc.submit(Op::Get { key: 2 }).unwrap();
        assert_eq!(
            svc.submit(Op::Get { key: 4 }),
            Err(Rejected::LaneFull { lane: 0 })
        );
        svc.submit(Op::Get { key: 1 }).unwrap();
        svc.submit(Op::Get { key: 3 }).unwrap();
        assert_eq!(
            svc.submit(Op::Get { key: 5 }),
            Err(Rejected::LaneFull { lane: 1 })
        );
        assert_eq!(svc.stats().rejected, 2);
        // Draining the queue frees both lanes.
        let done = svc.flush();
        assert_eq!(done.len(), 4);
        assert!(svc.submit(Op::Get { key: 4 }).is_ok());
        assert!(svc.submit(Op::Get { key: 5 }).is_ok());
    }

    #[test]
    fn stats_histograms_accumulate() {
        let mut svc = PimService::new(small_list(9), ServiceConfig::new(2).with_max_linger(0));
        for k in 0..6 {
            svc.submit(Op::Upsert { key: k, value: 1 }).unwrap();
        }
        let done = svc.tick();
        assert_eq!(done.len(), 6);
        let s = svc.stats();
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 6);
        assert_eq!(s.batches, 3);
        assert_eq!(s.batch_occupancy.max(), 2);
        assert_eq!(s.latency_ticks.count(), 6);
        assert_eq!(s.latency_rounds.count(), 6);
    }
}
