//! Integration suite for the service layer: the scheduler against a
//! sequential `BTreeMap` oracle, coalescing-policy equivalence on final
//! contents, bit-exact determinism, and span-sum conservation with the
//! `service/*` spans in the report.

use std::collections::BTreeMap;

use pim_core::{Config, Op, PimSkipList, RangeFunc, Reply, UpsertOutcome};
use pim_runtime::Metrics;
use pim_service::{Completion, PimService, ServiceConfig};
use pim_workloads::{value_for, ArrivalGen, ArrivalOp, OpMix};

fn to_op(a: ArrivalOp) -> Op {
    match a {
        ArrivalOp::Get(key) => Op::Get { key },
        ArrivalOp::Update(key, value) => Op::Update { key, value },
        ArrivalOp::Upsert(key, value) => Op::Upsert { key, value },
        ArrivalOp::Delete(key) => Op::Delete { key },
        ArrivalOp::Predecessor(key) => Op::Predecessor { key },
        ArrivalOp::Successor(key) => Op::Successor { key },
        ArrivalOp::RangeSum(lo, hi) => Op::Range {
            lo,
            hi,
            func: RangeFunc::Sum,
        },
    }
}

/// The shared arrival schedule: Zipf(0.8) keys over the resident set,
/// mixed op families, Poisson arrivals — as `(tick, op)` pairs.
fn schedule(seed: u64, resident: &[i64], rate: f64, ticks: u64) -> Vec<(u64, Op)> {
    ArrivalGen::new(seed, resident.to_vec(), 0.8, rate, OpMix::mixed())
        .with_range_span(600)
        .schedule(ticks)
        .into_iter()
        .map(|e| (e.tick, to_op(e.op)))
        .collect()
}

/// The preloaded structure every test starts from, plus its oracle image.
fn loaded_list(seed: u64) -> (PimSkipList, BTreeMap<i64, u64>, Vec<i64>) {
    let pairs: Vec<(i64, u64)> = (0..300).map(|i| (i * 4, i as u64 * 10 + 1)).collect();
    let mut list = PimSkipList::new(Config::new(4, 1 << 10, seed));
    list.bulk_load(&pairs);
    let oracle: BTreeMap<i64, u64> = pairs.iter().copied().collect();
    let resident: Vec<i64> = pairs.iter().map(|&(k, _)| k).collect();
    (list, oracle, resident)
}

/// Submit the schedule tick by tick, collecting completions through
/// `tick()` and a final `flush()`. The queue is sized so nothing rejects.
fn drive(svc: &mut PimService, sched: &[(u64, Op)]) -> Vec<Completion> {
    let mut out = Vec::new();
    let mut i = 0;
    let last_tick = sched.last().map_or(0, |e| e.0);
    for tick in 0..=last_tick {
        while i < sched.len() && sched[i].0 == tick {
            svc.submit(sched[i].1)
                .expect("queue sized for the schedule");
            i += 1;
        }
        out.extend(svc.tick());
    }
    out.extend(svc.flush());
    out
}

/// Apply `op` to the oracle and check `reply` against it. `Entry` replies
/// are compared by key (the oracle cannot know node handles).
fn check_against_oracle(oracle: &mut BTreeMap<i64, u64>, op: Op, reply: &Reply) {
    match op {
        Op::Get { key } => {
            assert_eq!(
                *reply,
                Reply::Value(oracle.get(&key).copied()),
                "Get({key})"
            );
        }
        Op::Update { key, value } => {
            let hit = oracle.contains_key(&key);
            if hit {
                oracle.insert(key, value);
            }
            assert_eq!(*reply, Reply::Updated(hit), "Update({key})");
        }
        Op::Upsert { key, value } => {
            let want = if oracle.insert(key, value).is_some() {
                UpsertOutcome::Updated
            } else {
                UpsertOutcome::Inserted
            };
            assert_eq!(*reply, Reply::Upserted(want), "Upsert({key})");
        }
        Op::Delete { key } => {
            assert_eq!(
                *reply,
                Reply::Deleted(oracle.remove(&key).is_some()),
                "Delete({key})"
            );
        }
        Op::Predecessor { key } => {
            let want = oracle.range(..=key).next_back().map(|(k, _)| *k);
            assert_eq!(
                reply.as_entry().expect("Entry reply").map(|e| e.0),
                want,
                "Predecessor({key})"
            );
        }
        Op::Successor { key } => {
            let want = oracle.range(key..).next().map(|(k, _)| *k);
            assert_eq!(
                reply.as_entry().expect("Entry reply").map(|e| e.0),
                want,
                "Successor({key})"
            );
        }
        Op::Range { lo, hi, .. } => {
            let mut count = 0u64;
            let mut sum = 0u64;
            for (_, v) in oracle.range(lo..=hi) {
                count += 1;
                sum = sum.wrapping_add(*v);
            }
            match reply {
                Reply::Range(r) => {
                    assert_eq!(r.count, count, "Range({lo}, {hi}) count");
                    assert_eq!(r.sum, sum, "Range({lo}, {hi}) sum");
                }
                other => panic!("Range({lo}, {hi}) answered {other:?}"),
            }
        }
    }
}

#[test]
fn open_stream_matches_sequential_oracle() {
    // max_batch = 1: every request is its own batch, so the service is an
    // exact sequential machine and the BTreeMap oracle applies verbatim.
    let (list, mut oracle, resident) = loaded_list(21);
    let sched = schedule(0xA11CE, &resident, 10.0, 20);
    let cfg = ServiceConfig::new(1)
        .with_max_linger(0)
        .with_max_queue(sched.len() + 1);
    let mut svc = PimService::new(list, cfg);
    let done = drive(&mut svc, &sched);

    assert_eq!(done.len(), sched.len(), "every request completes");
    for (i, c) in done.iter().enumerate() {
        assert_eq!(c.id, i as u64, "completions arrive in request-id order");
        check_against_oracle(&mut oracle, sched[i].1, &c.reply);
    }
    let list = svc.into_list();
    assert_eq!(
        list.collect_items(),
        oracle.into_iter().collect::<Vec<_>>(),
        "final contents equal the oracle"
    );
    list.validate().expect("structure valid after the stream");
}

#[test]
fn coalesced_contents_match_sequential_oracle() {
    // Key-derived write values make duplicate writes within a coalesced
    // run order-insensitive, so any policy must converge to the contents
    // of the sequential application.
    let fix = |op: Op| match op {
        Op::Update { key, .. } => Op::Update {
            key,
            value: value_for(key),
        },
        Op::Upsert { key, .. } => Op::Upsert {
            key,
            value: value_for(key),
        },
        other => other,
    };
    let (_, _, resident) = loaded_list(22);
    let sched: Vec<(u64, Op)> = schedule(0xB0B, &resident, 24.0, 16)
        .into_iter()
        .map(|(t, op)| (t, fix(op)))
        .collect();

    let mut oracle: BTreeMap<i64, u64> = loaded_list(22).1;
    for &(_, op) in &sched {
        match op {
            Op::Update { key, value } if oracle.contains_key(&key) => {
                oracle.insert(key, value);
            }
            Op::Upsert { key, value } => {
                oracle.insert(key, value);
            }
            Op::Delete { key } => {
                oracle.remove(&key);
            }
            _ => {}
        }
    }
    let expected: Vec<(i64, u64)> = oracle.into_iter().collect();

    for (max_batch, max_linger) in [(8, 1), (48, 4), (256, 16)] {
        let (list, _, _) = loaded_list(22);
        let cfg = ServiceConfig::new(max_batch)
            .with_max_linger(max_linger)
            .with_max_queue(sched.len() + 1);
        let mut svc = PimService::new(list, cfg);
        let done = drive(&mut svc, &sched);
        assert_eq!(done.len(), sched.len());
        let list = svc.into_list();
        assert_eq!(
            list.collect_items(),
            expected,
            "policy ({max_batch}, {max_linger}) diverged from sequential contents"
        );
        list.validate().expect("valid under coalescing policy");
    }
}

#[test]
fn completions_and_stats_are_deterministic() {
    let run = || {
        let (list, _, resident) = loaded_list(23);
        let sched = schedule(0xD0_0D, &resident, 18.0, 12);
        let cfg = ServiceConfig::new(32)
            .with_max_linger(3)
            .with_max_queue(sched.len() + 1);
        let mut svc = PimService::new(list, cfg);
        let done = drive(&mut svc, &sched);
        let stats = svc.stats().clone();
        let list = svc.into_list();
        (done, stats, list.metrics(), list.collect_items())
    };
    let (d1, s1, m1, items1) = run();
    let (d2, s2, m2, items2) = run();
    assert_eq!(d1, d2, "identical completion streams");
    assert_eq!(m1, m2, "identical machine metrics");
    assert_eq!(items1, items2);
    assert_eq!(
        (s1.submitted, s1.rejected, s1.completed, s1.batches),
        (s2.submitted, s2.rejected, s2.completed, s2.batches)
    );
    assert_eq!(
        (s1.latency_ticks.p99(), s1.latency_rounds.p99()),
        (s2.latency_ticks.p99(), s2.latency_rounds.p99())
    );
    assert!(s1.batches > 1, "the schedule must exercise several batches");
}

/// Every additive counter of [`Metrics`] (all but `shared_mem_peak`,
/// which is a high-water mark).
fn additive(m: &Metrics) -> [u64; 13] {
    [
        m.rounds,
        m.io_time,
        m.pim_time,
        m.total_messages,
        m.total_pim_work,
        m.cpu_work,
        m.cpu_depth,
        m.faults_injected,
        m.messages_dropped,
        m.module_crashes,
        m.stalled_module_rounds,
        m.retries_issued,
        m.recovery_rounds,
    ]
}

#[test]
fn service_spans_conserve_and_attribute() {
    let (list, _, resident) = loaded_list(24);
    let sched = schedule(0x5AA5, &resident, 20.0, 10);
    let cfg = ServiceConfig::new(24)
        .with_max_linger(2)
        .with_max_queue(sched.len() + 1);
    let mut svc = PimService::new(list, cfg);
    let before = svc.list().metrics();
    svc.list_mut().enable_probe();
    drive(&mut svc, &sched);
    let mut list = svc.into_list();
    let after = list.metrics();
    let report = list.take_probe().expect("probe was enabled");

    // Conservation: the exclusive per-span stats — now including the
    // service/* spans — sum to the run's metrics delta.
    let delta = after - before;
    assert_eq!(
        additive(&report.total()),
        additive(&delta),
        "span sums must conserve every additive counter"
    );

    // Attribution: the three scheduler phases appear as top-level spans,
    // and the structure's own spans nest under service/dispatch.
    let paths: Vec<String> = report
        .by_path()
        .into_iter()
        .map(|(path, _, _, _)| path)
        .collect();
    for phase in ["service/coalesce", "service/dispatch", "service/reply"] {
        assert!(
            paths.iter().any(|p| p == phase),
            "missing top-level span {phase}; got {paths:?}"
        );
    }
    assert!(
        paths.iter().any(|p| p.starts_with("service/dispatch > ")),
        "structure spans must nest under service/dispatch; got {paths:?}"
    );
}
