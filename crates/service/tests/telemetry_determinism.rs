//! Telemetry artifacts live in the tick/round domain, so the executor
//! thread count must not move a single byte of them: the JSONL event log
//! and the Prometheus snapshot rendered from the same service session are
//! compared byte for byte across `PIM_THREADS` 1 and 8. CI enforces the
//! same contract on the `experiments service --out` artifacts; this test
//! enforces it in-process with forced forking (zero parallel thresholds).

use std::sync::Mutex;

use pim_core::{Config, Op, PimSkipList, RangeFunc};
use pim_runtime::pool::{self, ExecConfig};
use pim_service::{PimService, ServiceConfig};

/// The pool configuration is process-global; serialise the ladder steps.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic mixed op stream (splitmix64 of the op index).
fn op_at(i: u64) -> Op {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let key = (x % 4096) as i64;
    match (x >> 8) % 8 {
        0..=2 => Op::Upsert {
            key,
            value: x >> 16,
        },
        3..=4 => Op::Get { key },
        5 => Op::Delete { key },
        6 => Op::Successor { key },
        _ => Op::Range {
            lo: key,
            hi: key + 64,
            func: RangeFunc::Sum,
        },
    }
}

/// One telemetry-lit service session: open-loop arrivals (0–3 per tick),
/// coalescing with a short linger. Returns the two serialised artifacts.
fn artifacts(seed: u64) -> (String, String) {
    let pairs: Vec<(i64, u64)> = (0..800).map(|i| (i * 5, i as u64)).collect();
    let mut list = PimSkipList::new(Config::new(8, 1 << 12, seed));
    list.bulk_load(&pairs);
    list.enable_telemetry();
    let cfg = ServiceConfig::for_list(&list)
        .with_max_linger(2)
        .with_max_queue(1 << 12);
    let mut svc = PimService::new(list, cfg);

    let mut i = 0u64;
    for tick in 0..400u64 {
        for _ in 0..(tick % 4) {
            svc.submit(op_at(i)).expect("queue sized for the stream");
            i += 1;
        }
        svc.tick();
    }
    svc.flush();

    let mut list = svc.into_list();
    let prom = list
        .telemetry_snapshot()
        .expect("telemetry was enabled")
        .render_prometheus();
    let events = list
        .take_telemetry()
        .expect("telemetry was enabled")
        .events_jsonl();
    (events, prom)
}

fn artifacts_at(threads: usize, seed: u64) -> (String, String) {
    pool::configure(ExecConfig {
        threads,
        // Zero thresholds force real forking even on test-sized batches.
        par_threshold: 0,
        sort_threshold: 0,
    });
    let out = artifacts(seed);
    pool::configure(ExecConfig::from_env());
    out
}

#[test]
fn telemetry_artifacts_are_byte_identical_across_thread_counts() {
    let _guard = POOL_LOCK.lock().unwrap();
    let (events_1, prom_1) = artifacts_at(1, 0xBEEF);
    let (events_8, prom_8) = artifacts_at(8, 0xBEEF);
    assert_eq!(events_1, events_8, "event log must not see the executor");
    assert_eq!(prom_1, prom_8, "snapshot must not see the executor");
    // Sanity: the session actually produced a full lifecycle worth of
    // events and a populated exposition.
    for kind in ["\"admit\"", "\"coalesce\"", "\"execute\"", "\"reply\""] {
        assert!(events_1.contains(kind), "event log must carry {kind}");
    }
    assert!(prom_1.contains("pim_service_latency_ticks_bucket"));
    assert!(prom_1.contains("pim_ops_total{op=\"get\"}"));
}
