//! Measurement plumbing: metric diffs around one batch.

use pim_core::{Config, Key, PimSkipList, Value};
use pim_runtime::Metrics;
use pim_workloads::PointGen;

/// The model costs of one batch operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchCosts {
    /// Batch size the costs were measured at.
    pub batch: usize,
    /// Bulk-synchronous rounds.
    pub rounds: u64,
    /// IO time (`Σ h_i`).
    pub io_time: u64,
    /// PIM time (max local work per round, summed).
    pub pim_time: u64,
    /// Total network messages.
    pub total_messages: u64,
    /// Total PIM work.
    pub total_pim_work: u64,
    /// CPU work.
    pub cpu_work: u64,
    /// CPU depth.
    pub cpu_depth: u64,
    /// Shared-memory high-water mark (words).
    pub shared_mem_peak: u64,
}

impl BatchCosts {
    /// Diff two metric snapshots around a batch of the given size.
    pub fn from_diff(batch: usize, before: Metrics, after: Metrics) -> Self {
        let d = after - before;
        BatchCosts {
            batch,
            rounds: d.rounds,
            io_time: d.io_time,
            pim_time: d.pim_time,
            total_messages: d.total_messages,
            total_pim_work: d.total_pim_work,
            cpu_work: d.cpu_work,
            cpu_depth: d.cpu_depth,
            shared_mem_peak: d.shared_mem_peak,
        }
    }

    /// Costs of one phase from a span's exclusive stats (see
    /// [`pim_runtime::ProbeReport`]): the same §2.1 columns every table
    /// prints, but attributed to a single instrumented phase instead of
    /// diffed around the whole batch.
    pub fn from_span_stats(batch: usize, stats: &Metrics) -> Self {
        BatchCosts {
            batch,
            rounds: stats.rounds,
            io_time: stats.io_time,
            pim_time: stats.pim_time,
            total_messages: stats.total_messages,
            total_pim_work: stats.total_pim_work,
            cpu_work: stats.cpu_work,
            cpu_depth: stats.cpu_depth,
            shared_mem_peak: stats.shared_mem_peak,
        }
    }

    /// CPU work per operation.
    pub fn cpu_work_per_op(&self) -> f64 {
        self.cpu_work as f64 / self.batch.max(1) as f64
    }

    /// IO-balance ratio `io_time / (I/P)` (1.0 = perfectly balanced).
    pub fn io_balance(&self, p: u32) -> f64 {
        if self.total_messages == 0 {
            return 1.0;
        }
        self.io_time as f64 / (self.total_messages as f64 / f64::from(p))
    }

    /// Work-balance ratio `pim_time / (W/P)`.
    pub fn work_balance(&self, p: u32) -> f64 {
        if self.total_pim_work == 0 {
            return 1.0;
        }
        self.pim_time as f64 / (self.total_pim_work as f64 / f64::from(p))
    }
}

/// Measure one batch operation on a skip list: runs `op`, returns costs.
pub fn measure_batch<R>(
    list: &mut PimSkipList,
    batch: usize,
    op: impl FnOnce(&mut PimSkipList) -> R,
) -> (R, BatchCosts) {
    let before = list.metrics();
    let r = op(list);
    let after = list.metrics();
    (r, BatchCosts::from_diff(batch, before, after))
}

/// Build a skip list on `p` modules holding `n` distinct uniform keys.
/// Returns the structure and its (sorted) resident keys.
pub fn build_loaded_list(p: u32, n: usize, seed: u64) -> (PimSkipList, Vec<Key>) {
    build_loaded_list_with(Config::new(p, n as u64, seed), n, seed)
}

/// Build with an explicit config (ablations).
pub fn build_loaded_list_with(cfg: Config, n: usize, seed: u64) -> (PimSkipList, Vec<Key>) {
    let mut list = PimSkipList::new(cfg);
    let mut gen = PointGen::new(seed ^ 0x10AD, 0, (n as i64) * 64);
    let mut keys = gen.distinct_uniform(n);
    let pairs: Vec<(Key, Value)> = keys.iter().map(|&k| (k, k as u64)).collect();
    // Load in large batches regardless of P (loading speed is not under
    // measurement; minimum batch sizes only matter for the measured ops).
    for chunk in pairs.chunks(4096) {
        list.batch_upsert(chunk);
    }
    keys.sort_unstable();
    (list, keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_measure_roundtrip() {
        let (mut list, keys) = build_loaded_list(8, 500, 1);
        assert_eq!(list.len(), 500);
        let batch: Vec<i64> = keys.iter().copied().take(64).collect();
        let (res, costs) = measure_batch(&mut list, batch.len(), |l| l.batch_get(&batch));
        assert!(res.iter().all(|v| v.is_some()));
        assert!(costs.rounds >= 1);
        assert!(costs.io_time > 0);
        assert!(costs.io_balance(8) >= 1.0);
    }

    #[test]
    fn costs_per_op_math() {
        let c = BatchCosts {
            batch: 100,
            cpu_work: 250,
            ..Default::default()
        };
        assert!((c.cpu_work_per_op() - 2.5).abs() < 1e-9);
        assert_eq!(c.io_balance(4), 1.0);
    }
}
