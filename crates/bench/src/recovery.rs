//! Recovery-time episode: how long does crash recovery take as a function
//! of WAL length, and how much does snapshot compaction buy?
//!
//! One deterministic mixed op stream is persisted under several snapshot
//! cadences (`none` = replay the full WAL from an empty structure, tighter
//! cadences = bulk-load the newest snapshot and replay only the suffix).
//! Each resulting directory is then recovered with
//! [`PimSkipList::recover_from_dir`] and timed; the table reports what
//! recovery had to read and replay alongside the wall-clock cost, so the
//! snapshot-interval / recovery-time trade-off is directly visible.

use std::time::Instant;

use pim_core::{Config, DurabilityPolicy, FsyncPolicy, Op, PimSkipList, RangeFunc};
use pim_runtime::export::{num, Json};

/// Deterministic mixed op stream (splitmix64 of the op index).
fn op_at(i: u64) -> Op {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let key = (x % 100_000) as i64;
    match (x >> 8) % 10 {
        0..=4 => Op::Upsert {
            key,
            value: x >> 16,
        },
        5..=6 => Op::Get { key },
        7 => Op::Delete { key },
        8 => Op::Successor { key },
        _ => Op::Range {
            lo: key,
            hi: key + 50,
            func: RangeFunc::Sum,
        },
    }
}

/// Total bytes and file count of the WAL segments in `dir`.
fn wal_footprint(dir: &std::path::Path) -> (u64, usize) {
    let mut bytes = 0;
    let mut files = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-") && name.ends_with(".log") {
                bytes += e.metadata().map(|m| m.len()).unwrap_or(0);
                files += 1;
            }
        }
    }
    (bytes, files)
}

/// One measured recovery episode.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// Snapshot cadence the directory was persisted under (`None`: no
    /// snapshots — full-WAL replay).
    pub snapshot_every: Option<u64>,
    /// Stream position recovery started from (`None`: empty structure).
    pub base_seq: Option<u64>,
    /// Ops replayed from the WAL suffix.
    pub ops_replayed: u64,
    /// Live WAL bytes recovery had to consider.
    pub wal_bytes: u64,
    /// Live WAL segment files.
    pub wal_segments: usize,
    /// Best wall-clock recovery time over the episode's iterations.
    pub recover_ms: f64,
}

/// Persist `total` ops under the given snapshot cadence and time recovery
/// (best of `iters`).
fn episode(total: u64, snapshot_every: Option<u64>, seed: u64, iters: usize) -> RecoveryPoint {
    let dir = std::env::temp_dir().join(format!(
        "pim-bench-recovery-{}-{}",
        std::process::id(),
        snapshot_every.unwrap_or(0)
    ));
    std::fs::remove_dir_all(&dir).ok();

    // Group-commit fsync keeps the (untimed) load phase out of the way;
    // the bytes are all written either way, which is what recovery reads.
    let mut policy = DurabilityPolicy::default().with_fsync(FsyncPolicy::EveryOps(4096));
    if let Some(every) = snapshot_every {
        policy = policy.with_snapshot_every(every);
    }
    let cfg = Config::new(8, total, seed);
    let mut list = PimSkipList::new(cfg.clone());
    list.enable_durability(&dir, policy).unwrap();
    const BATCH: u64 = 64;
    let mut start = 0;
    while start < total {
        let ops: Vec<Op> = (start..(start + BATCH).min(total)).map(op_at).collect();
        list.execute(&ops);
        start += BATCH;
    }
    let final_len = list.len();
    drop(list);

    let (wal_bytes, wal_segments) = wal_footprint(&dir);
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..iters {
        let t = Instant::now();
        let (rec, rep) = PimSkipList::recover_from_dir(cfg.clone(), &dir, policy).unwrap();
        best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(rec.len(), final_len, "recovery lost or invented items");
        assert_eq!(rep.next_seq, total);
        report = Some(rep);
    }
    std::fs::remove_dir_all(&dir).ok();

    let rep = report.unwrap();
    RecoveryPoint {
        snapshot_every,
        base_seq: rep.snapshot_seq,
        ops_replayed: rep.ops_replayed,
        wal_bytes,
        wal_segments,
        recover_ms: best_ms,
    }
}

/// Serialise one episode for the `pim-recovery-bench/1` report.
fn point_json(pt: &RecoveryPoint) -> Json {
    Json::Obj(vec![
        (
            "snapshot_every".into(),
            pt.snapshot_every.map_or(Json::Null, num),
        ),
        ("base_seq".into(), pt.base_seq.map_or(Json::Null, num)),
        ("ops_replayed".into(), num(pt.ops_replayed)),
        ("wal_bytes".into(), num(pt.wal_bytes)),
        ("wal_segments".into(), num(pt.wal_segments as u64)),
        ("recover_ms".into(), Json::Num(pt.recover_ms)),
    ])
}

/// Print the recovery-time table: snapshot cadence vs WAL left to replay
/// vs wall-clock recovery time, over one fixed op stream. With
/// `json_out`, the episodes are also written as a `pim-recovery-bench/1`
/// report (provenance header + one object per episode).
pub fn run_recovery(quick: bool, seed: u64, json_out: Option<&str>) -> std::io::Result<()> {
    let total: u64 = if quick { 20_000 } else { 200_000 };
    let iters = if quick { 2 } else { 3 };
    let intervals = [None, Some(total / 4), Some(total / 16), Some(total / 64)];
    println!("recovery time vs snapshot cadence  (p=8, {total} mixed ops, batch 64)");
    println!(
        "{:>14} {:>12} {:>12} {:>10} {:>9} {:>11}",
        "snapshot_every", "base_seq", "ops_replayed", "wal_KiB", "segments", "recover_ms"
    );
    let mut points = Vec::new();
    for every in intervals {
        let pt = episode(total, every, seed, iters);
        let every = pt.snapshot_every.map_or("none".into(), |e| e.to_string());
        let base = pt.base_seq.map_or("empty".into(), |s| s.to_string());
        println!(
            "{every:>14} {base:>12} {:>12} {:>10} {:>9} {:>11.2}",
            pt.ops_replayed,
            pt.wal_bytes / 1024,
            pt.wal_segments,
            pt.recover_ms,
        );
        points.push(pt);
    }
    println!("(base_seq \"empty\": full-WAL replay, bit-identical tier; otherwise");
    println!(" newest-snapshot bulk load + suffix replay, logical-identity tier)");
    if let Some(path) = json_out {
        let report = crate::report::document(
            "pim-recovery-bench/1",
            vec![
                ("quick".into(), Json::Bool(quick)),
                ("total_ops".into(), num(total)),
                ("seed".into(), num(seed)),
                (
                    "points".into(),
                    Json::Arr(points.iter().map(point_json).collect()),
                ),
            ],
        );
        std::fs::write(path, report.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}
