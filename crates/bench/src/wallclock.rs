//! Wall-clock benchmark harness and CI perf gate.
//!
//! The model metrics the rest of this crate prints are thread-count
//! invariant by design (the determinism contract of `pim-pool`,
//! [`pim_runtime::pool`]). This module measures the one thing that *is*
//! allowed to change with `PIM_THREADS`: real elapsed time. It sweeps the
//! executor over a fixed thread ladder, times every Table-1 batch
//! operation, and emits a deterministic-schema JSON report
//! (`pim-wallclock/1`, conventionally `BENCH_PR5.json`) that CI diffs
//! against a committed baseline with [`perf_gate`].
//!
//! Cross-machine comparability: raw batches/sec on a laptop and on a CI
//! runner are not comparable, so every run also times a fixed scalar
//! busy-loop ([`calibrate`]) and records its throughput as
//! `calibration_mops`. The gate compares *calibration-normalised*
//! throughput (batches/sec per calibration Mop/s) by default, which
//! cancels single-core speed differences between the machine that
//! produced the baseline and the machine running the gate; `raw = true`
//! compares unnormalised numbers for same-machine A/B runs.

use std::time::Instant;

use pim_core::{Key, Op, PimSkipList, Value};
use pim_runtime::export::{num, str as jstr, Json};
use pim_runtime::pool::{self, ExecConfig};
use pim_service::{PimService, ServiceConfig};
use pim_workloads::{ArrivalGen, OpMix, PointGen};

use crate::measure::build_loaded_list;
use crate::service::to_op;

/// Schema tag written into every report.
pub const SCHEMA: &str = "pim-wallclock/1";

/// Thread ladder every run sweeps. Fixed (not host-derived) so the report
/// schema is identical on every machine.
pub const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// The operations the harness times, in report order: the Table-1 batch
/// family plus one `Service` episode (a fixed open-loop schedule pushed
/// through the `pim-service` coalescing front-end — the end-to-end path a
/// real client exercises).
pub const OPS: [&str; 7] = [
    "Get",
    "Update",
    "Successor",
    "Predecessor",
    "Upsert",
    "Delete",
    "Service",
];

/// Sizing and repetition knobs for one run.
#[derive(Debug, Clone, Copy)]
pub struct WallclockParams {
    /// Modules.
    pub p: u32,
    /// Resident keys.
    pub n: usize,
    /// Untimed warmup batches per (op, threads) point.
    pub warmup: usize,
    /// Minimum timed batches per (op, threads) point.
    pub reps: usize,
    /// Minimum accumulated timed seconds per point: fast ops keep
    /// repeating past `reps` until this much measured time has elapsed,
    /// which is what makes microsecond-scale batches stable enough for a
    /// 25%-tolerance CI gate.
    pub min_secs: f64,
    /// Workload seed.
    pub seed: u64,
}

impl WallclockParams {
    /// CI-sized run (`--quick`).
    pub fn quick(seed: u64) -> Self {
        WallclockParams {
            p: 16,
            n: 4_000,
            warmup: 1,
            reps: 3,
            min_secs: 0.05,
            seed,
        }
    }

    /// Full-sized run.
    pub fn full(seed: u64) -> Self {
        WallclockParams {
            p: 32,
            n: 16_000,
            warmup: 2,
            reps: 5,
            min_secs: 0.2,
            seed,
        }
    }
}

/// One timed point: an operation at one thread count.
#[derive(Debug, Clone)]
pub struct OpTiming {
    /// Operation name (one of [`OPS`]).
    pub op: &'static str,
    /// Worker threads the pool was configured with.
    pub threads: usize,
    /// Operations per batch.
    pub batch: usize,
    /// Timed batches per second (mean over the reps).
    pub batches_per_sec: f64,
}

/// Steady-state allocation profile of one op, measured at `threads == 1`
/// (the only thread count where the counts are deterministic — see
/// [`crate::allocs`]).
#[derive(Debug, Clone)]
pub struct AllocPoint {
    /// Operation name (one of [`OPS`]).
    pub op: &'static str,
    /// Heap allocations per batch, averaged over the measured reps.
    pub allocs_per_batch: f64,
    /// Bytes requested per batch.
    pub bytes_per_batch: f64,
    /// Machine rounds per batch, mean over the measured reps (the
    /// denominator the CI alloc gate uses to express allocations per
    /// round).
    pub rounds_per_batch: f64,
    /// Fewest rounds any single measured batch took. Mutating ops (and
    /// warm push-pull searches) legitimately vary per batch; the spread
    /// is the signal, so the report carries all three.
    pub rounds_per_batch_min: f64,
    /// Most rounds any single measured batch took.
    pub rounds_per_batch_max: f64,
}

/// Measured batches per [`AllocPoint`].
const ALLOC_REPS: usize = 3;

/// Measure the steady-state allocation profile of every op in [`OPS`] at
/// one thread. Returns `None` unless the build counts allocations (the
/// `alloc-stats` feature). Warmup batches run first so the engine's
/// recycled buffers (`pim_runtime::buffers`, `pim-core`'s scratch) reach
/// their steady capacity before counting starts. Leaves the global pool
/// configured for one thread.
pub fn measure_allocs(params: &WallclockParams) -> Option<Vec<AllocPoint>> {
    if !crate::allocs::enabled() {
        return None;
    }
    pool::configure(ExecConfig::with_threads(1));
    let (mut list, keys) = build_loaded_list(params.p, params.n, params.seed);
    let workloads = OpWorkloads::build(params, &keys);
    let mut out = Vec::new();
    for op in OPS {
        for _ in 0..params.warmup.max(2) {
            workloads.run_once(op, &mut list);
        }
        let before = crate::allocs::snapshot();
        let mut per_rep = [0u64; ALLOC_REPS];
        for r in &mut per_rep {
            let rounds_before = list.metrics().rounds;
            workloads.run_once(op, &mut list);
            *r = list.metrics().rounds - rounds_before;
        }
        let d = crate::allocs::snapshot().since(before);
        let total: u64 = per_rep.iter().sum();
        out.push(AllocPoint {
            op,
            allocs_per_batch: d.allocs as f64 / ALLOC_REPS as f64,
            bytes_per_batch: d.bytes as f64 / ALLOC_REPS as f64,
            rounds_per_batch: total as f64 / ALLOC_REPS as f64,
            rounds_per_batch_min: per_rep.iter().copied().min().unwrap_or(0) as f64,
            rounds_per_batch_max: per_rep.iter().copied().max().unwrap_or(0) as f64,
        });
    }
    Some(out)
}

/// Calibration busy-loop: a fixed amount of scalar integer work, timed.
/// Returns its throughput in Mop/s. This is the unit the perf gate
/// normalises by, so it must not depend on the thread ladder or on any
/// simulator state — it is a pure single-core speed probe.
pub fn calibrate() -> f64 {
    const ITERS: u64 = 40_000_000;
    let start = Instant::now();
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..ITERS {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    ITERS as f64 / secs / 1e6
}

/// The per-op workloads, generated once and reused across thread counts so
/// every timed point does identical model work.
struct OpWorkloads {
    small: usize,
    large: usize,
    get_batch: Vec<Key>,
    update_pairs: Vec<(Key, Value)>,
    succ_batch: Vec<Key>,
    pred_batch: Vec<Key>,
    fresh_pairs: Vec<(Key, Value)>,
    delete_keys: Vec<Key>,
    /// Open-loop schedule for the `Service` episode: `(tick, op)` pairs,
    /// reads and in-place updates only so the resident set is unchanged
    /// and every rep does identical work.
    service_sched: Vec<(u64, Op)>,
}

impl OpWorkloads {
    fn build(params: &WallclockParams, keys: &[Key]) -> Self {
        let lg = u64::from(pim_runtime::ceil_log2(u64::from(params.p)));
        let small = (u64::from(params.p) * lg) as usize;
        let large = (u64::from(params.p) * lg * lg) as usize;
        let mut gen = PointGen::new(params.seed ^ 0x0A11, 0, (params.n as i64) * 64);
        let get_batch = gen.from_existing(keys, small);
        let update_pairs: Vec<(Key, Value)> = gen
            .from_existing(keys, small)
            .into_iter()
            .map(|k| (k, 1))
            .collect();
        let succ_batch = gen.uniform(large);
        let pred_batch = gen.uniform(large);
        let fresh_pairs: Vec<(Key, Value)> = gen
            .distinct_uniform(large)
            .into_iter()
            .map(|k| (k + (params.n as i64) * 128, k as u64))
            .collect();
        let delete_keys = gen.distinct_from_existing(keys, large.min(keys.len()));
        let service_sched: Vec<(u64, Op)> = ArrivalGen::new(
            params.seed ^ 0x5E12,
            keys.to_vec(),
            0.8,
            small as f64,
            OpMix::read_heavy(),
        )
        .schedule(8)
        .into_iter()
        .map(|e| (e.tick, to_op(e.op)))
        .collect();
        OpWorkloads {
            small,
            large,
            get_batch,
            update_pairs,
            succ_batch,
            pred_batch,
            fresh_pairs,
            delete_keys,
            service_sched,
        }
    }

    fn batch_size(&self, op: &str) -> usize {
        match op {
            "Get" | "Update" => self.small,
            "Delete" => self.delete_keys.len(),
            "Service" => self.service_sched.len(),
            _ => self.large,
        }
    }

    /// Run `op` once, timed, returning elapsed seconds. Mutating ops are
    /// followed by an *untimed* restore so every rep sees the same
    /// resident set.
    fn run_once(&self, op: &str, list: &mut PimSkipList) -> f64 {
        match op {
            "Get" => {
                let t = Instant::now();
                std::hint::black_box(list.batch_get(&self.get_batch));
                t.elapsed().as_secs_f64()
            }
            "Update" => {
                let t = Instant::now();
                list.batch_update(&self.update_pairs);
                t.elapsed().as_secs_f64()
            }
            "Successor" => {
                let t = Instant::now();
                std::hint::black_box(list.batch_successor(&self.succ_batch));
                t.elapsed().as_secs_f64()
            }
            "Predecessor" => {
                let t = Instant::now();
                std::hint::black_box(list.batch_predecessor(&self.pred_batch));
                t.elapsed().as_secs_f64()
            }
            "Upsert" => {
                let t = Instant::now();
                list.batch_upsert(&self.fresh_pairs);
                let secs = t.elapsed().as_secs_f64();
                // Untimed restore: remove the fresh keys again.
                let fresh_keys: Vec<Key> = self.fresh_pairs.iter().map(|&(k, _)| k).collect();
                list.batch_delete(&fresh_keys);
                secs
            }
            "Delete" => {
                let t = Instant::now();
                list.batch_delete(&self.delete_keys);
                let secs = t.elapsed().as_secs_f64();
                // Untimed restore: put the deleted keys back.
                let pairs: Vec<(Key, Value)> =
                    self.delete_keys.iter().map(|&k| (k, k as u64)).collect();
                list.batch_upsert(&pairs);
                secs
            }
            "Service" => {
                // One open-loop episode through the pim-service front-end.
                // The service temporarily owns the structure; a throwaway
                // placeholder stands in until it is returned. The queue is
                // sized to the whole schedule so nothing is rejected and
                // every rep completes identical work.
                let placeholder = PimSkipList::new(pim_core::Config::new(1, 16, 0));
                let owned = std::mem::replace(list, placeholder);
                let cfg = ServiceConfig::new(self.small)
                    .with_max_linger(2)
                    .with_max_queue(self.service_sched.len().max(self.small));
                let mut svc = PimService::new(owned, cfg);
                let t = Instant::now();
                let mut i = 0;
                let last_tick = self.service_sched.last().map_or(0, |e| e.0);
                for tick in 0..=last_tick {
                    while i < self.service_sched.len() && self.service_sched[i].0 == tick {
                        svc.submit(self.service_sched[i].1)
                            .expect("queue sized for the whole schedule");
                        i += 1;
                    }
                    std::hint::black_box(svc.tick());
                }
                std::hint::black_box(svc.flush());
                let secs = t.elapsed().as_secs_f64();
                *list = svc.into_list();
                secs
            }
            other => unreachable!("unknown op {other}"),
        }
    }
}

/// Run the full sweep: every op in [`OPS`] at every thread count in
/// [`THREAD_LADDER`]. Leaves the global pool configured with the last
/// ladder entry; callers that care should reconfigure afterwards.
pub fn run_sweep(params: &WallclockParams) -> Vec<OpTiming> {
    let mut timings = Vec::new();
    for &threads in &THREAD_LADDER {
        pool::configure(ExecConfig::with_threads(threads));
        let (mut list, keys) = build_loaded_list(params.p, params.n, params.seed);
        let workloads = OpWorkloads::build(params, &keys);
        for op in OPS {
            for _ in 0..params.warmup {
                workloads.run_once(op, &mut list);
            }
            // Best of three trials: external interference only ever slows
            // a trial down, so the fastest observed rate is the most
            // repeatable statistic on shared CI runners.
            let mut best = 0.0f64;
            for _ in 0..3 {
                let mut total = 0.0f64;
                let mut count = 0usize;
                while count < params.reps || total < params.min_secs {
                    total += workloads.run_once(op, &mut list);
                    count += 1;
                }
                best = best.max(count as f64 / total);
            }
            timings.push(OpTiming {
                op,
                threads,
                batch: workloads.batch_size(op),
                batches_per_sec: best,
            });
        }
    }
    timings
}

/// Assemble the `pim-wallclock/1` report. The key order and structure are
/// fixed; only the measured values vary run to run.
pub fn report_json(
    params: &WallclockParams,
    quick: bool,
    calibration_mops: f64,
    timings: &[OpTiming],
    allocs: Option<&[AllocPoint]>,
) -> Json {
    let mut ops_arr = Vec::new();
    for op in OPS {
        let per_op: Vec<&OpTiming> = timings.iter().filter(|t| t.op == op).collect();
        let batch = per_op.first().map_or(0, |t| t.batch);
        let threads_arr: Vec<Json> = per_op
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("threads".into(), num(t.threads as u64)),
                    ("batches_per_sec".into(), Json::Num(t.batches_per_sec)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("op".into(), jstr(op)),
            ("batch".into(), num(batch as u64)),
            ("threads".into(), Json::Arr(threads_arr)),
        ];
        if let Some(a) = allocs.and_then(|pts| pts.iter().find(|a| a.op == op)) {
            fields.push(("allocs_per_batch".into(), Json::Num(a.allocs_per_batch)));
            fields.push(("bytes_per_batch".into(), Json::Num(a.bytes_per_batch)));
            fields.push(("rounds_per_batch".into(), Json::Num(a.rounds_per_batch)));
            fields.push((
                "rounds_per_batch_min".into(),
                Json::Num(a.rounds_per_batch_min),
            ));
            fields.push((
                "rounds_per_batch_max".into(),
                Json::Num(a.rounds_per_batch_max),
            ));
        }
        ops_arr.push(Json::Obj(fields));
    }
    crate::report::document(
        SCHEMA,
        vec![
            ("quick".into(), Json::Bool(quick)),
            ("p".into(), num(u64::from(params.p))),
            ("n".into(), num(params.n as u64)),
            ("warmup".into(), num(params.warmup as u64)),
            ("reps".into(), num(params.reps as u64)),
            ("seed".into(), num(params.seed)),
            (
                "host_cpus".into(),
                num(std::thread::available_parallelism().map_or(1, |c| c.get() as u64)),
            ),
            ("calibration_mops".into(), Json::Num(calibration_mops)),
            ("ops".into(), Json::Arr(ops_arr)),
        ],
    )
}

/// Run the whole harness and write the report to `out_path`. Prints a
/// human-readable table (batches/sec and speedup vs 1 thread) to stdout.
pub fn run_wallclock(quick: bool, out_path: &str, seed: u64) -> std::io::Result<()> {
    let params = if quick {
        WallclockParams::quick(seed)
    } else {
        WallclockParams::full(seed)
    };
    println!(
        "== Wall-clock sweep: Table-1 ops × PIM_THREADS ∈ {:?} (P = {}, n = {}) ==",
        THREAD_LADDER, params.p, params.n
    );
    let calibration_mops = calibrate();
    let timings = run_sweep(&params);
    let allocs = measure_allocs(&params);
    // Restore the environment-selected configuration for any later work in
    // this process.
    pool::configure(ExecConfig::from_env());

    println!(
        "{:<12} {:>8} {:>9} {:>14} {:>12}",
        "op", "threads", "batch", "batches/sec", "vs 1 thread"
    );
    for op in OPS {
        let base = timings
            .iter()
            .find(|t| t.op == op && t.threads == 1)
            .map_or(0.0, |t| t.batches_per_sec);
        for t in timings.iter().filter(|t| t.op == op) {
            println!(
                "{:<12} {:>8} {:>9} {:>14.2} {:>11.2}x",
                t.op,
                t.threads,
                t.batch,
                t.batches_per_sec,
                if base > 0.0 {
                    t.batches_per_sec / base
                } else {
                    0.0
                }
            );
        }
    }
    println!("(calibration: {calibration_mops:.0} Mop/s scalar busy-loop; model metrics are identical at every thread count)");

    if let Some(pts) = &allocs {
        println!("-- steady-state allocations (1 thread, over {ALLOC_REPS} batches) --");
        println!(
            "{:<12} {:>15} {:>15} {:>22} {:>14}",
            "op", "allocs/batch", "bytes/batch", "rounds/batch min/μ/max", "allocs/round"
        );
        for a in pts {
            println!(
                "{:<12} {:>15.1} {:>15.0} {:>8.0}/{:>5.1}/{:>6.0} {:>14.2}",
                a.op,
                a.allocs_per_batch,
                a.bytes_per_batch,
                a.rounds_per_batch_min,
                a.rounds_per_batch,
                a.rounds_per_batch_max,
                a.allocs_per_batch / a.rounds_per_batch.max(1.0),
            );
        }
    }

    let report = report_json(
        &params,
        quick,
        calibration_mops,
        &timings,
        allocs.as_deref(),
    );
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(out_path, report.to_json() + "\n")?;
    println!("wrote {out_path}");
    Ok(())
}

/// One gate comparison row.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Operation name.
    pub op: String,
    /// Thread count.
    pub threads: u64,
    /// Baseline (normalised) throughput.
    pub baseline: f64,
    /// Current (normalised) throughput.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Whether this row regressed beyond the tolerance.
    pub failed: bool,
}

fn normalised_points(doc: &Json, raw: bool) -> Result<Vec<(String, u64, f64)>, String> {
    crate::report::expect_schema(doc, SCHEMA)?;
    let cal = doc
        .get("calibration_mops")
        .and_then(Json::as_f64)
        .ok_or("missing calibration_mops")?;
    if cal <= 0.0 {
        return Err("calibration_mops must be positive".into());
    }
    let scale = if raw { 1.0 } else { 1.0 / cal };
    let mut out = Vec::new();
    for op in doc
        .get("ops")
        .and_then(Json::as_array)
        .ok_or("missing ops array")?
    {
        let name = op
            .get("op")
            .and_then(Json::as_str)
            .ok_or("op entry missing name")?;
        for t in op
            .get("threads")
            .and_then(Json::as_array)
            .ok_or("op entry missing threads array")?
        {
            let threads = t
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or("thread entry missing count")?;
            let bps = t
                .get("batches_per_sec")
                .and_then(Json::as_f64)
                .ok_or("thread entry missing batches_per_sec")?;
            out.push((name.to_string(), threads, bps * scale));
        }
    }
    Ok(out)
}

/// Compare two parsed reports. A row fails when the current (normalised)
/// throughput drops below `baseline × (1 − tolerance)`. Every (op,
/// threads) point present in the *baseline* must exist in the current
/// report — a missing point is an error, so a schema change cannot
/// silently disable the gate.
pub fn gate_compare(
    current: &Json,
    baseline: &Json,
    tolerance: f64,
    raw: bool,
) -> Result<Vec<GateRow>, String> {
    assert!((0.0..1.0).contains(&tolerance));
    let cur = normalised_points(current, raw).map_err(|e| format!("current: {e}"))?;
    let base = normalised_points(baseline, raw).map_err(|e| format!("baseline: {e}"))?;
    let mut rows = Vec::new();
    for (op, threads, b) in base {
        let c = cur
            .iter()
            .find(|(o, t, _)| *o == op && *t == threads)
            .map(|&(_, _, v)| v)
            .ok_or_else(|| format!("current report is missing {op} @ {threads} threads"))?;
        let ratio = if b > 0.0 { c / b } else { f64::INFINITY };
        rows.push(GateRow {
            op,
            threads,
            baseline: b,
            current: c,
            ratio,
            failed: c < b * (1.0 - tolerance),
        });
    }
    Ok(rows)
}

/// CLI entry: load both reports, compare, print the table, and return
/// whether the gate passed. Errors (unreadable/ill-formed reports) are
/// gate failures — the gate must never pass vacuously.
pub fn perf_gate(
    current_path: &str,
    baseline_path: &str,
    tolerance: f64,
    raw: bool,
) -> Result<bool, String> {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        pim_runtime::export::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let current = load(current_path)?;
    let baseline = load(baseline_path)?;
    let rows = gate_compare(&current, &baseline, tolerance, raw)?;
    let unit = if raw { "batches/s" } else { "norm" };
    println!(
        "== perf gate: {current_path} vs {baseline_path} (tolerance {:.0}%, {unit}) ==",
        tolerance * 100.0
    );
    println!(
        "{:<12} {:>8} {:>14} {:>14} {:>8} {:>6}",
        "op", "threads", "baseline", "current", "ratio", "gate"
    );
    let mut pass = true;
    for r in &rows {
        println!(
            "{:<12} {:>8} {:>14.4} {:>14.4} {:>8.2} {:>6}",
            r.op,
            r.threads,
            r.baseline,
            r.current,
            r.ratio,
            if r.failed { "FAIL" } else { "ok" }
        );
        pass &= !r.failed;
    }
    Ok(pass)
}

/// Per-op allocation points of a report: `(op, allocs_per_batch,
/// rounds_per_batch)`. Ops without allocation fields (reports produced
/// without `alloc-stats`) are skipped.
fn report_alloc_points(doc: &Json) -> Result<Vec<(String, f64, f64)>, String> {
    crate::report::expect_schema(doc, SCHEMA)?;
    let mut out = Vec::new();
    for op in doc
        .get("ops")
        .and_then(Json::as_array)
        .ok_or("missing ops array")?
    {
        let name = op
            .get("op")
            .and_then(Json::as_str)
            .ok_or("op entry missing name")?;
        let allocs = op.get("allocs_per_batch").and_then(Json::as_f64);
        let rounds = op.get("rounds_per_batch").and_then(Json::as_f64);
        if let (Some(a), Some(r)) = (allocs, rounds) {
            out.push((name.to_string(), a, r));
        }
    }
    Ok(out)
}

/// Compare steady-state allocations per round against a baseline. A row
/// fails when the current rate exceeds `baseline × (1 + tolerance)`;
/// improvements always pass. Every baseline op with allocation data must
/// exist in the current report, and a baseline with *no* allocation data
/// is an error (the gate must never pass vacuously — regenerate the
/// baseline with `--features alloc-stats`).
pub fn alloc_gate_compare(
    current: &Json,
    baseline: &Json,
    tolerance: f64,
) -> Result<Vec<GateRow>, String> {
    assert!(tolerance >= 0.0);
    let cur = report_alloc_points(current).map_err(|e| format!("current: {e}"))?;
    let base = report_alloc_points(baseline).map_err(|e| format!("baseline: {e}"))?;
    if base.is_empty() {
        return Err(
            "baseline has no allocation data; regenerate it with --features alloc-stats".into(),
        );
    }
    let per_round = |a: f64, r: f64| a / r.max(1.0);
    let mut rows = Vec::new();
    for (op, a, r) in base {
        let b = per_round(a, r);
        let c = cur
            .iter()
            .find(|(o, _, _)| *o == op)
            .map(|&(_, a, r)| per_round(a, r))
            .ok_or_else(|| format!("current report has no allocation data for {op}"))?;
        let ratio = if b > 0.0 { c / b } else { f64::INFINITY };
        rows.push(GateRow {
            op,
            threads: 1,
            baseline: b,
            current: c,
            ratio,
            failed: c > b * (1.0 + tolerance),
        });
    }
    Ok(rows)
}

/// CLI entry for the allocation gate: load both reports, compare
/// allocations per round, print the table, and return whether the gate
/// passed. Errors are gate failures.
pub fn alloc_gate(current_path: &str, baseline_path: &str, tolerance: f64) -> Result<bool, String> {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        pim_runtime::export::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let current = load(current_path)?;
    let baseline = load(baseline_path)?;
    let rows = alloc_gate_compare(&current, &baseline, tolerance)?;
    println!(
        "== alloc gate: {current_path} vs {baseline_path} (tolerance {:.0}%, allocs/round @ 1 thread) ==",
        tolerance * 100.0
    );
    println!(
        "{:<12} {:>14} {:>14} {:>8} {:>6}",
        "op", "baseline", "current", "ratio", "gate"
    );
    let mut pass = true;
    for r in &rows {
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>8.2} {:>6}",
            r.op,
            r.baseline,
            r.current,
            r.ratio,
            if r.failed { "FAIL" } else { "ok" }
        );
        pass &= !r.failed;
    }
    Ok(pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_report(bps: f64, cal: f64) -> Json {
        let params = WallclockParams {
            p: 16,
            n: 4_000,
            warmup: 0,
            reps: 1,
            min_secs: 0.0,
            seed: 1,
        };
        let timings: Vec<OpTiming> = OPS
            .iter()
            .flat_map(|&op| {
                THREAD_LADDER.iter().map(move |&threads| OpTiming {
                    op,
                    threads,
                    batch: 64,
                    batches_per_sec: bps,
                })
            })
            .collect();
        report_json(&params, true, cal, &timings, None)
    }

    fn synthetic_alloc_report(allocs_per_batch: f64) -> Json {
        let params = WallclockParams {
            p: 16,
            n: 4_000,
            warmup: 0,
            reps: 1,
            min_secs: 0.0,
            seed: 1,
        };
        let timings: Vec<OpTiming> = OPS
            .iter()
            .map(|&op| OpTiming {
                op,
                threads: 1,
                batch: 64,
                batches_per_sec: 100.0,
            })
            .collect();
        let allocs: Vec<AllocPoint> = OPS
            .iter()
            .map(|&op| AllocPoint {
                op,
                allocs_per_batch,
                bytes_per_batch: allocs_per_batch * 64.0,
                rounds_per_batch: 10.0,
                rounds_per_batch_min: 9.0,
                rounds_per_batch_max: 11.0,
            })
            .collect();
        report_json(&params, true, 1000.0, &timings, Some(&allocs))
    }

    #[test]
    fn gate_fails_on_doubled_baseline() {
        // The acceptance check for the gate itself: a baseline claiming 2×
        // the current throughput must fail at 25% tolerance.
        let current = synthetic_report(100.0, 1000.0);
        let doubled = synthetic_report(200.0, 1000.0);
        let rows = gate_compare(&current, &doubled, 0.25, false).unwrap();
        assert!(!rows.is_empty());
        assert!(
            rows.iter().all(|r| r.failed),
            "every row must fail against a 2x baseline"
        );
        // And the same comparison the right way round passes.
        let rows = gate_compare(&doubled, &current, 0.25, false).unwrap();
        assert!(rows.iter().all(|r| !r.failed));
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let current = synthetic_report(80.0, 1000.0);
        let baseline = synthetic_report(100.0, 1000.0);
        // 20% down, 25% tolerance: pass.
        let rows = gate_compare(&current, &baseline, 0.25, false).unwrap();
        assert!(rows.iter().all(|r| !r.failed));
        // 20% down, 10% tolerance: fail.
        let rows = gate_compare(&current, &baseline, 0.10, false).unwrap();
        assert!(rows.iter().all(|r| r.failed));
    }

    #[test]
    fn gate_normalises_by_calibration() {
        // Same machine-relative speed: current ran on a machine measured
        // 2x slower (half the calibration Mop/s, half the throughput) —
        // normalisation cancels and the gate passes.
        let current = synthetic_report(50.0, 500.0);
        let baseline = synthetic_report(100.0, 1000.0);
        let rows = gate_compare(&current, &baseline, 0.25, false).unwrap();
        assert!(rows.iter().all(|r| !r.failed));
        // Raw mode sees the 2x drop and fails.
        let rows = gate_compare(&current, &baseline, 0.25, true).unwrap();
        assert!(rows.iter().all(|r| r.failed));
    }

    #[test]
    fn gate_errors_on_missing_points() {
        let current = synthetic_report(100.0, 1000.0);
        let baseline = synthetic_report(100.0, 1000.0);
        // Strip one op from the current report.
        let mut cur = match current {
            Json::Obj(fields) => fields,
            _ => unreachable!(),
        };
        for (k, v) in &mut cur {
            if k == "ops" {
                if let Json::Arr(arr) = v {
                    arr.pop();
                }
            }
        }
        let err = gate_compare(&Json::Obj(cur), &baseline, 0.25, false).unwrap_err();
        assert!(err.contains("missing"), "got: {err}");
    }

    #[test]
    fn gate_rejects_wrong_schema() {
        let good = synthetic_report(1.0, 1.0);
        let bad = Json::Obj(vec![("schema".into(), jstr("something-else"))]);
        assert!(gate_compare(&good, &bad, 0.25, false).is_err());
        assert!(gate_compare(&bad, &good, 0.25, false).is_err());
    }

    #[test]
    fn report_schema_is_deterministic() {
        // Two reports with different values must have identical key
        // structure (the committed baseline diff relies on it).
        let strip = |j: &Json| -> String {
            // Key skeleton: serialise with all numbers zeroed.
            fn zero(j: &Json) -> Json {
                match j {
                    Json::Num(_) => Json::Num(0.0),
                    Json::Arr(a) => Json::Arr(a.iter().map(zero).collect()),
                    Json::Obj(f) => {
                        Json::Obj(f.iter().map(|(k, v)| (k.clone(), zero(v))).collect())
                    }
                    other => other.clone(),
                }
            }
            zero(j).to_json()
        };
        assert_eq!(
            strip(&synthetic_report(1.0, 2.0)),
            strip(&synthetic_report(9.0, 7.0))
        );
    }

    #[test]
    fn alloc_gate_fails_on_regression_only() {
        let lean = synthetic_alloc_report(100.0);
        let bloated = synthetic_alloc_report(1000.0);
        // 10x more allocations than baseline: every row fails.
        let rows = alloc_gate_compare(&bloated, &lean, 0.10).unwrap();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.failed));
        // An improvement of any size passes.
        let rows = alloc_gate_compare(&lean, &bloated, 0.10).unwrap();
        assert!(rows.iter().all(|r| !r.failed));
        // Within tolerance passes.
        let rows = alloc_gate_compare(&synthetic_alloc_report(105.0), &lean, 0.10).unwrap();
        assert!(rows.iter().all(|r| !r.failed));
    }

    #[test]
    fn alloc_gate_never_passes_vacuously() {
        let with_data = synthetic_alloc_report(100.0);
        let without = synthetic_report(100.0, 1000.0);
        // Baseline lacking allocation data is an error, not a pass.
        let err = alloc_gate_compare(&with_data, &without, 0.10).unwrap_err();
        assert!(err.contains("alloc"), "got: {err}");
        // Current lacking data for a baseline op is an error too.
        let err = alloc_gate_compare(&without, &with_data, 0.10).unwrap_err();
        assert!(err.contains("no allocation data"), "got: {err}");
    }

    #[test]
    fn sweep_smoke() {
        // Tiny run: every op × thread point produces a positive rate.
        let params = WallclockParams {
            p: 4,
            n: 300,
            warmup: 0,
            reps: 1,
            min_secs: 0.0,
            seed: 3,
        };
        let timings = run_sweep(&params);
        pool::configure(ExecConfig::from_env());
        assert_eq!(timings.len(), OPS.len() * THREAD_LADDER.len());
        assert!(timings.iter().all(|t| t.batches_per_sec > 0.0));
        assert!(timings.iter().all(|t| t.batch > 0));
    }
}
