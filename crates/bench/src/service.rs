//! SVC: the service-layer benchmark — sustained throughput and latency
//! percentiles of the `pim-service` request scheduler under open-loop
//! arrivals.
//!
//! Closed-loop batch benchmarks (Table 1) measure the data structure;
//! this experiment measures the *system*: a deterministic Poisson/Zipf
//! arrival schedule (see [`pim_workloads::arrival`]) is fed through a
//! [`PimService`] at a sweep of coalescing policies (max batch ×
//! max linger), and each point reports sustained throughput in both
//! clocks — ops per machine round (deterministic) and ops per wall-clock
//! second (the only thread-count-sensitive column) — plus p50/p95/p99/p999
//! request latency in service ticks and machine rounds, queue depth, and
//! backpressure rejections.
//!
//! `--out DIR` additionally runs one instrumented session (probe + round
//! trace) and writes `DIR/trace.json` / `DIR/rounds.jsonl`; the CI
//! determinism job byte-compares these exports at `PIM_THREADS=1` vs `8`.

use std::time::Instant;

use pim_core::{Op, RangeFunc};
use pim_runtime::export::{num, Json};
use pim_service::{PimService, ServiceConfig};
use pim_workloads::{ArrivalEvent, ArrivalGen, ArrivalOp, OpMix};

use crate::measure::{build_loaded_list, BatchCosts};

/// Map a workload-level arrival onto the structure's typed operation
/// (1:1; range arrivals become `Sum` aggregates).
pub fn to_op(a: ArrivalOp) -> Op {
    match a {
        ArrivalOp::Get(key) => Op::Get { key },
        ArrivalOp::Update(key, value) => Op::Update { key, value },
        ArrivalOp::Upsert(key, value) => Op::Upsert { key, value },
        ArrivalOp::Delete(key) => Op::Delete { key },
        ArrivalOp::Predecessor(key) => Op::Predecessor { key },
        ArrivalOp::Successor(key) => Op::Successor { key },
        ArrivalOp::RangeSum(lo, hi) => Op::Range {
            lo,
            hi,
            func: RangeFunc::Sum,
        },
    }
}

/// One measured policy point of the sweep.
#[derive(Debug, Clone)]
pub struct ServicePoint {
    /// Policy: dispatch threshold / batch cap.
    pub max_batch: usize,
    /// Policy: linger bound in ticks.
    pub max_linger: u64,
    /// Requests completed (submitted minus rejected).
    pub completed: u64,
    /// Requests refused by backpressure.
    pub rejected: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Machine rounds consumed by the run.
    pub rounds: u64,
    /// Completed ops per machine round (deterministic throughput).
    pub ops_per_round: f64,
    /// Completed ops per wall-clock second (thread-count sensitive).
    pub ops_per_sec: f64,
    /// p50/p95/p99/p999 request latency in service ticks.
    pub latency_ticks: [u64; 4],
    /// p50/p95/p99/p999 request latency in machine rounds (p999 exposes
    /// the one-in-a-thousand straggler a coalescing policy parks behind a
    /// full queue — invisible at p99 on these sweep sizes).
    pub latency_rounds: [u64; 4],
    /// Largest queue depth observed at a tick boundary.
    pub max_queue_depth: u64,
    /// Mean requests per dispatched batch.
    pub mean_occupancy: f64,
}

/// Drive one service run: `schedule` through a fresh loaded list under
/// the given policy. Returns the measured point.
pub fn run_service_point(
    p: u32,
    n: usize,
    seed: u64,
    schedule: &[ArrivalEvent],
    max_batch: usize,
    max_linger: u64,
) -> ServicePoint {
    let (list, _keys) = build_loaded_list(p, n, seed);
    let rounds_before = list.metrics().rounds;
    let cfg = ServiceConfig::new(max_batch).with_max_linger(max_linger);
    let mut svc = PimService::new(list, cfg);

    let t = Instant::now();
    let mut i = 0;
    let last_tick = schedule.last().map_or(0, |e| e.tick);
    for tick in 0..=last_tick {
        while i < schedule.len() && schedule[i].tick == tick {
            // Backpressure rejections are part of the measurement.
            let _ = svc.submit(to_op(schedule[i].op));
            i += 1;
        }
        std::hint::black_box(svc.tick());
    }
    std::hint::black_box(svc.flush());
    let secs = t.elapsed().as_secs_f64();

    let stats = svc.stats().clone();
    let list = svc.into_list();
    let rounds = list.metrics().rounds - rounds_before;
    ServicePoint {
        max_batch,
        max_linger,
        completed: stats.completed,
        rejected: stats.rejected,
        batches: stats.batches,
        rounds,
        ops_per_round: stats.completed as f64 / rounds.max(1) as f64,
        ops_per_sec: stats.completed as f64 / secs.max(1e-12),
        latency_ticks: [
            stats.latency_ticks.p50(),
            stats.latency_ticks.p95(),
            stats.latency_ticks.p99(),
            stats.latency_ticks.p999(),
        ],
        latency_rounds: [
            stats.latency_rounds.p50(),
            stats.latency_rounds.p95(),
            stats.latency_rounds.p99(),
            stats.latency_rounds.p999(),
        ],
        max_queue_depth: stats.queue_depth.max(),
        mean_occupancy: stats.batch_occupancy.mean(),
    }
}

/// The deterministic arrival schedule every sweep point replays: Zipf(0.8)
/// keys over the resident set, [`OpMix::mixed`] op types, Poisson arrivals
/// at `rate` per tick.
pub fn service_schedule(n: usize, seed: u64, rate: f64, ticks: u64) -> Vec<ArrivalEvent> {
    // The same derivation as build_loaded_list's resident keys (they are
    // independent of P), without paying for a build.
    let mut gen = pim_workloads::PointGen::new(seed ^ 0x10AD, 0, (n as i64) * 64);
    let mut resident = gen.distinct_uniform(n);
    resident.sort_unstable();
    ArrivalGen::new(seed ^ 0x5E12_71CE, resident, 0.8, rate, OpMix::mixed())
        .with_range_span((n as i64) * 4)
        .schedule(ticks)
}

/// Serialise one sweep point for the `pim-service-bench/1` report.
fn point_json(pt: &ServicePoint) -> Json {
    let quants = |q: &[u64; 4]| Json::Arr(q.iter().map(|&v| num(v)).collect());
    Json::Obj(vec![
        ("max_batch".into(), num(pt.max_batch as u64)),
        ("max_linger".into(), num(pt.max_linger)),
        ("completed".into(), num(pt.completed)),
        ("rejected".into(), num(pt.rejected)),
        ("batches".into(), num(pt.batches)),
        ("rounds".into(), num(pt.rounds)),
        ("ops_per_round".into(), Json::Num(pt.ops_per_round)),
        ("ops_per_sec".into(), Json::Num(pt.ops_per_sec)),
        ("latency_ticks".into(), quants(&pt.latency_ticks)),
        ("latency_rounds".into(), quants(&pt.latency_rounds)),
        ("max_queue_depth".into(), num(pt.max_queue_depth)),
        ("mean_occupancy".into(), Json::Num(pt.mean_occupancy)),
    ])
}

/// SVC: run the policy sweep and print the table. `quick` shrinks sizes to
/// CI scale. With `json_out`, the sweep is also written as a
/// `pim-service-bench/1` report (provenance header + one object per
/// point).
pub fn run_service(quick: bool, seed: u64, json_out: Option<&str>) -> std::io::Result<()> {
    let (p, n, ticks) = if quick {
        (16, 4_000, 24)
    } else {
        (32, 16_000, 48)
    };
    let lg = u64::from(pim_runtime::ceil_log2(u64::from(p)));
    let small = (u64::from(p) * lg) as usize;
    let large = (u64::from(p) * lg * lg) as usize;
    let rate = large as f64; // ~one large batch arriving per tick
    let schedule = service_schedule(n, seed, rate, ticks);

    println!(
        "== Service layer: open-loop mixed stream (P = {p}, n = {n}, λ = {rate:.0}/tick, {} arrivals over {ticks} ticks) ==",
        schedule.len()
    );
    println!(
        "{:>6} {:>7} {:>9} {:>7} {:>8} {:>8} {:>10} {:>12} {:>22} {:>25} {:>7} {:>7}",
        "batch",
        "linger",
        "completed",
        "reject",
        "batches",
        "rounds",
        "ops/round",
        "ops/sec",
        "lat ticks 50/95/99/999",
        "lat rounds 50/95/99/999",
        "maxQ",
        "occ"
    );
    let mut points = Vec::new();
    for &max_batch in &[small, large, 2 * large] {
        for &max_linger in &[1u64, 4, 16] {
            let pt = run_service_point(p, n, seed, &schedule, max_batch, max_linger);
            println!(
                "{:>6} {:>7} {:>9} {:>7} {:>8} {:>8} {:>10.2} {:>12.0} {:>7}/{:>4}/{:>4}/{:>4} {:>10}/{:>4}/{:>4}/{:>4} {:>7} {:>7.1}",
                pt.max_batch,
                pt.max_linger,
                pt.completed,
                pt.rejected,
                pt.batches,
                pt.rounds,
                pt.ops_per_round,
                pt.ops_per_sec,
                pt.latency_ticks[0],
                pt.latency_ticks[1],
                pt.latency_ticks[2],
                pt.latency_ticks[3],
                pt.latency_rounds[0],
                pt.latency_rounds[1],
                pt.latency_rounds[2],
                pt.latency_rounds[3],
                pt.max_queue_depth,
                pt.mean_occupancy,
            );
            points.push(pt);
        }
    }
    println!("(ops/round and both latency columns are deterministic; ops/sec is the wall clock)");
    if let Some(path) = json_out {
        let report = crate::report::document(
            "pim-service-bench/1",
            vec![
                ("quick".into(), Json::Bool(quick)),
                ("p".into(), num(u64::from(p))),
                ("n".into(), num(n as u64)),
                ("seed".into(), num(seed)),
                ("ticks".into(), num(ticks)),
                ("arrivals".into(), num(schedule.len() as u64)),
                (
                    "points".into(),
                    Json::Arr(points.iter().map(point_json).collect()),
                ),
            ],
        );
        std::fs::write(path, report.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// SVC-TRACE: one instrumented service session — probe + round trace +
/// telemetry on, the mixed schedule through the service — exported as
/// `DIR/trace.json` (Chrome trace-event), `DIR/rounds.jsonl`,
/// `DIR/events.jsonl` (request-lifecycle telemetry) and `DIR/metrics.prom`
/// (Prometheus text exposition). Every byte of all four files is
/// thread-count invariant; the CI determinism job compares them at
/// `PIM_THREADS=1` vs `8`.
pub fn service_trace_export(out_dir: &str, p: u32, n: usize, seed: u64) -> std::io::Result<()> {
    let (mut list, _keys) = build_loaded_list(p, n, seed);
    list.enable_tracing_with_cap(1 << 16);
    list.enable_probe();
    list.enable_telemetry();

    let lg = u64::from(pim_runtime::ceil_log2(u64::from(p)));
    let large = (u64::from(p) * lg * lg) as usize;
    let schedule = service_schedule(n, seed, large as f64, 8);
    let cfg = ServiceConfig::new(large).with_max_linger(2);
    let mut svc = PimService::new(list, cfg);
    let mut i = 0;
    let last_tick = schedule.last().map_or(0, |e| e.tick);
    for tick in 0..=last_tick {
        while i < schedule.len() && schedule[i].tick == tick {
            let _ = svc.submit(to_op(schedule[i].op));
            i += 1;
        }
        svc.tick();
    }
    svc.flush();

    let mut list = svc.into_list();
    let report = list.take_probe().expect("probe was enabled");
    let snapshot = list.telemetry_snapshot().expect("telemetry was enabled");
    let telemetry = list.take_telemetry().expect("telemetry was enabled");
    let trace = list.take_trace();
    let bundle = pim_runtime::ExportBundle {
        p,
        trace: &trace,
        report: Some(&report),
    };
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(
        format!("{out_dir}/trace.json"),
        pim_runtime::chrome_trace(&bundle),
    )?;
    std::fs::write(
        format!("{out_dir}/rounds.jsonl"),
        pim_runtime::rounds_jsonl(&bundle),
    )?;
    std::fs::write(format!("{out_dir}/events.jsonl"), telemetry.events_jsonl())?;
    std::fs::write(
        format!("{out_dir}/metrics.prom"),
        snapshot.render_prometheus(),
    )?;

    println!("== Service trace: per-phase cost breakdown (P = {p}, n = {n}) ==");
    println!(
        "{:<40} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "phase", "calls", "rounds", "IO", "PIM", "msgs", "CPUw", "sharedM"
    );
    for (path, _depth, count, stats) in report.by_path() {
        let c = BatchCosts::from_span_stats(count as usize, &stats);
        println!(
            "{:<40} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            path,
            count,
            c.rounds,
            c.io_time,
            c.pim_time,
            c.total_messages,
            c.cpu_work,
            c.shared_mem_peak,
        );
    }
    println!(
        "wrote {out_dir}/trace.json, {out_dir}/rounds.jsonl, {out_dir}/events.jsonl and {out_dir}/metrics.prom"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_and_point_are_deterministic() {
        let sched = service_schedule(300, 7, 16.0, 6);
        assert_eq!(sched, service_schedule(300, 7, 16.0, 6));
        let a = run_service_point(4, 300, 7, &sched, 16, 2);
        let b = run_service_point(4, 300, 7, &sched, 16, 2);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.latency_ticks, b.latency_ticks);
        assert_eq!(a.latency_rounds, b.latency_rounds);
        assert!(a.completed > 0);
        assert!(a.ops_per_round > 0.0);
    }

    #[test]
    fn bigger_batches_spend_fewer_rounds() {
        // The paper's economy of scale: the same arrival stream coalesced
        // into larger batches amortises the O(log)-round critical path
        // over more operations.
        let sched = service_schedule(600, 11, 48.0, 8);
        let small = run_service_point(8, 600, 11, &sched, 24, 4);
        let large = run_service_point(8, 600, 11, &sched, 192, 4);
        assert!(
            large.ops_per_round > small.ops_per_round,
            "large {} vs small {}",
            large.ops_per_round,
            small.ops_per_round
        );
    }
}
