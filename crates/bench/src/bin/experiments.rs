//! Regenerate the paper's tables and figures from the simulator.
//!
//! ```text
//! cargo run --release -p pim-bench --bin experiments -- <which> [--quick]
//!
//! which ∈ { table1, space, balls, contention, adversarial, range,
//!           baselines, ablation, hprofile, paths, trace-export,
//!           service, wallclock, skew, skew-gate, pipeline, recovery,
//!           cluster, perf-gate, alloc-gate, all }
//!
//! `trace-export [--quick] [--out DIR]` runs an instrumented session and
//! writes `DIR/trace.json` (Chrome trace-event, Perfetto-loadable) and
//! `DIR/rounds.jsonl` (the `pim-trace` CLI's input); DIR defaults to
//! `target/trace-export`.
//!
//! `service [--quick] [--out DIR] [--json PATH]` sweeps the `pim-service`
//! coalescing policy (max batch × max linger) over a deterministic
//! open-loop mixed stream and prints sustained throughput (ops/round,
//! ops/sec) and p50/p95/p99 request latency. With `--out DIR` it
//! additionally runs one instrumented telemetry-enabled service session
//! and writes `DIR/trace.json` / `DIR/rounds.jsonl` plus the telemetry
//! artifacts `DIR/events.jsonl` / `DIR/metrics.prom` (all byte-identical
//! at every `PIM_THREADS`; the CI determinism job diffs them). With
//! `--json PATH` the sweep itself is written as a `pim-service-bench/1`
//! report with a provenance header.
//!
//! `wallclock [--quick] [--out PATH]` sweeps every Table-1 op over
//! PIM_THREADS ∈ {1, 2, 4, 8} and writes a `pim-wallclock/1` JSON report
//! (default `target/BENCH_PR5.json`). Unlike every other subcommand this
//! one measures *elapsed time*, the only observable the executor's thread
//! count is allowed to change.
//!
//! `recovery [--quick] [--json PATH]` persists one mixed op stream under
//! several snapshot cadences and times `PimSkipList::recover_from_dir` on
//! each resulting directory — the snapshot-interval / recovery-time
//! trade-off. Like `wallclock`, this measures elapsed time. With `--json
//! PATH` the episodes are written as a `pim-recovery-bench/1` report with
//! a provenance header.
//!
//! `cluster [--quick] [--json PATH] [--out DIR]` sweeps the sharded
//! `pim-cluster` router over `S ∈ {1, 2, 4, 8}`, byte-comparing every
//! configuration's wire-encoded replies against the single-machine
//! oracle (the run FAILS on drift), and reports rounds, wall-clock
//! throughput, and shard load spread. With `--json PATH` the sweep is a
//! `pim-cluster-bench/1` report; with `--out DIR` telemetry-enabled
//! sessions at S ∈ {1, 4} (or the single `PIM_SHARDS` value when set)
//! write `metrics-sN.prom` / `events-sN.jsonl` / `replies-sN.bin` for
//! the CI cluster-determinism byte-diff.
//!
//! `skew [--quick] [--out PATH]` sweeps Zipf(θ) and adversarial query
//! batches over push-pull ∈ {off, on} and writes a `pim-skew-bench/1`
//! JSON report of model metrics (default `target/BENCH_PR10.json`);
//! on-mode replies are byte-compared against off-mode in-process.
//!
//! `skew-gate CURRENT BASELINE` fails unless warm push-pull at least
//! halves rounds/batch on every workload, skewed/adversarial on-mode
//! costs stay within 1.25× of uniform, and the (deterministic) model
//! metrics exactly match the committed baseline (`ci/skew-baseline.json`).
//!
//! `pipeline [--quick] [--out PATH]` times mixed-run episodes with the
//! inter-batch pipelined driver on and off across PIM_THREADS ∈
//! {1, 2, 4, 8} and writes a `pim-pipeline-bench/1` JSON report (default
//! `target/BENCH_PR8.json`). Every configuration's replies are
//! byte-compared against the unpipelined 1-thread reference in-process.
//!
//! `perf-gate CURRENT BASELINE [TOLERANCE] [--raw]` compares two reports
//! (calibration-normalised unless `--raw`) and exits 1 when any (op,
//! threads) point regressed beyond TOLERANCE (default 0.25). With
//! `--require-speedup` both reports must be `pim-pipeline-bench/1`
//! documents and the gate instead *fails* unless the pipelined engine at
//! ≥ 2 threads beats the unpipelined 1-thread throughput on Get and
//! Upsert; speedup evidence comes from whichever report was produced on
//! a multi-core host (current preferred, else the recorded baseline),
//! and the gate errors out rather than passing when neither was.
//!
//! `alloc-gate CURRENT BASELINE [TOLERANCE]` compares steady-state
//! allocations per round (1-thread, deterministic; present only in
//! reports produced with `--features alloc-stats`) and exits 1 when any
//! op allocates beyond TOLERANCE (default 0.10) more than the baseline.
//! ```
//!
//! Every table prints *model metrics* (IO time, PIM time, CPU work/depth,
//! rounds, shared-memory peak) as defined in §2.1, measured on the real
//! algorithms running on the simulated machine.

use pim_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let seed = 0x5EED_2021;

    let (ps, n, big_n): (&[u32], usize, usize) = if quick {
        (&[8, 16, 32], 4_000, 8_000)
    } else {
        (&[8, 16, 32, 64, 128], 16_000, 65_536)
    };

    let run_table1 = || exp::print_table1(ps, n, seed);
    let run_space = || {
        let ns: Vec<usize> = if quick {
            vec![2_000, 8_000]
        } else {
            vec![4_000, 16_000, big_n]
        };
        exp::space_experiment(ps, &ns, seed);
    };
    let run_balls = || exp::balls_experiment(&[64, 256, 1024], seed);
    let run_contention = || exp::print_contention(ps, seed);
    let run_adversarial = || exp::print_adversarial(ps, seed);
    let run_range = || exp::print_ranges(if quick { 16 } else { 32 }, n, seed);
    let run_baselines = || exp::print_baselines(if quick { 16 } else { 32 }, n, seed);
    let run_ablation = || exp::print_ablation(16, n, seed);
    let run_hprofile = || exp::print_hprofile(if quick { 16 } else { 32 }, seed);
    let run_paths = || exp::print_path_split(seed);
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let run_wallclock = || {
        let out = flag("--out")
            .map(String::as_str)
            .unwrap_or("target/BENCH_PR5.json");
        if let Err(e) = pim_bench::wallclock::run_wallclock(quick, out, seed) {
            eprintln!("wallclock: {e}");
            std::process::exit(1);
        }
    };
    let run_skew = || {
        let out = flag("--out")
            .map(String::as_str)
            .unwrap_or("target/BENCH_PR10.json");
        if let Err(e) = pim_bench::skew::run_skew(quick, out, seed) {
            eprintln!("skew: {e}");
            std::process::exit(1);
        }
    };
    let run_skew_gate = || {
        let pos: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
        let (current, baseline) = match (pos.first(), pos.get(1)) {
            (Some(c), Some(b)) => (c.as_str(), b.as_str()),
            _ => {
                eprintln!("usage: experiments -- skew-gate CURRENT BASELINE");
                std::process::exit(2);
            }
        };
        match pim_bench::skew::skew_gate(current, baseline) {
            Ok(true) => println!("skew gate: PASS"),
            Ok(false) => {
                eprintln!("skew gate: FAIL");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("skew gate: ERROR: {e}");
                std::process::exit(1);
            }
        }
    };
    let run_pipeline = || {
        let out = flag("--out")
            .map(String::as_str)
            .unwrap_or("target/BENCH_PR8.json");
        if let Err(e) = pim_bench::pipeline::run_pipeline(quick, out, seed) {
            eprintln!("pipeline: {e}");
            std::process::exit(1);
        }
    };
    let run_perf_gate = || {
        // Positional args after the subcommand: CURRENT BASELINE [TOL].
        let pos: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
        let (current, baseline) = match (pos.first(), pos.get(1)) {
            (Some(c), Some(b)) => (c.as_str(), b.as_str()),
            _ => {
                eprintln!(
                    "usage: experiments -- perf-gate CURRENT BASELINE [TOLERANCE] [--raw] \
                     [--require-speedup]"
                );
                std::process::exit(2);
            }
        };
        if args.iter().any(|a| a == "--require-speedup") {
            match pim_bench::pipeline::speedup_gate(current, baseline) {
                Ok(true) => println!("speedup gate: PASS"),
                Ok(false) => {
                    eprintln!(
                        "speedup gate: FAIL (pipelined ≥2-thread throughput does not beat \
                         the unpipelined 1-thread baseline)"
                    );
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("speedup gate: ERROR: {e}");
                    std::process::exit(1);
                }
            }
            return;
        }
        let tolerance: f64 = pos.get(2).and_then(|t| t.parse().ok()).unwrap_or(0.25);
        let raw = args.iter().any(|a| a == "--raw");
        match pim_bench::wallclock::perf_gate(current, baseline, tolerance, raw) {
            Ok(true) => println!("perf gate: PASS"),
            Ok(false) => {
                eprintln!("perf gate: FAIL (regression beyond {tolerance:.2} tolerance)");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("perf gate: ERROR: {e}");
                std::process::exit(1);
            }
        }
    };
    let run_alloc_gate = || {
        let pos: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
        let (current, baseline) = match (pos.first(), pos.get(1)) {
            (Some(c), Some(b)) => (c.as_str(), b.as_str()),
            _ => {
                eprintln!("usage: experiments -- alloc-gate CURRENT BASELINE [TOLERANCE]");
                std::process::exit(2);
            }
        };
        let tolerance: f64 = pos.get(2).and_then(|t| t.parse().ok()).unwrap_or(0.10);
        match pim_bench::wallclock::alloc_gate(current, baseline, tolerance) {
            Ok(true) => println!("alloc gate: PASS"),
            Ok(false) => {
                eprintln!("alloc gate: FAIL (allocation growth beyond {tolerance:.2} tolerance)");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("alloc gate: ERROR: {e}");
                std::process::exit(1);
            }
        }
    };
    let run_service = || {
        let json = flag("--json").map(String::as_str);
        if let Err(e) = pim_bench::service::run_service(quick, seed, json) {
            eprintln!("service: {e}");
            std::process::exit(1);
        }
        if let Some(out_dir) = flag("--out") {
            let (sp, sn) = if quick { (16, 4_000) } else { (32, 16_000) };
            if let Err(e) = pim_bench::service::service_trace_export(out_dir, sp, sn, seed) {
                eprintln!("service trace export: {e}");
                std::process::exit(1);
            }
        }
    };
    let run_cluster = || {
        let json = flag("--json").map(String::as_str);
        if let Err(e) = pim_bench::cluster::run_cluster(quick, seed, json) {
            eprintln!("cluster: {e}");
            std::process::exit(1);
        }
        if let Some(out_dir) = flag("--out") {
            // PIM_SHARDS pins the export to one shard count (the CI
            // byte-diff crosses it with PIM_THREADS); absent, export the
            // within-run comparison pair.
            let shard_counts = match pim_runtime::EnvSettings::from_env().shards {
                Some(s) => vec![s],
                None => vec![1u32, 4],
            };
            for shards in shard_counts {
                if let Err(e) = pim_bench::cluster::cluster_export(out_dir, quick, seed, shards) {
                    eprintln!("cluster export: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let run_recovery = || {
        let json = flag("--json").map(String::as_str);
        if let Err(e) = pim_bench::recovery::run_recovery(quick, seed, json) {
            eprintln!("recovery: {e}");
            std::process::exit(1);
        }
    };
    let run_trace_export = || {
        let out_dir = flag("--out")
            .map(String::as_str)
            .unwrap_or("target/trace-export");
        let (dp, dn) = if quick { (16, 4_000) } else { (32, 16_000) };
        let p = flag("--p").and_then(|v| v.parse().ok()).unwrap_or(dp);
        let tn = flag("--n").and_then(|v| v.parse().ok()).unwrap_or(dn);
        if let Err(e) = exp::trace_export(out_dir, p, tn, seed) {
            eprintln!("trace-export: {e}");
            std::process::exit(1);
        }
    };

    match which {
        "table1" => run_table1(),
        "space" => run_space(),
        "balls" => run_balls(),
        "contention" => run_contention(),
        "adversarial" => run_adversarial(),
        "range" => run_range(),
        "baselines" => run_baselines(),
        "ablation" => run_ablation(),
        "hprofile" => run_hprofile(),
        "paths" => run_paths(),
        "trace-export" => run_trace_export(),
        "service" => run_service(),
        "wallclock" => run_wallclock(),
        "skew" => run_skew(),
        "skew-gate" => run_skew_gate(),
        "pipeline" => run_pipeline(),
        "recovery" => run_recovery(),
        "cluster" => run_cluster(),
        "perf-gate" => run_perf_gate(),
        "alloc-gate" => run_alloc_gate(),
        "all" => {
            run_table1();
            println!();
            run_space();
            println!();
            run_balls();
            println!();
            run_contention();
            println!();
            run_adversarial();
            println!();
            run_range();
            println!();
            run_baselines();
            println!();
            run_ablation();
            println!();
            run_hprofile();
            println!();
            run_paths();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("choose from: table1 space balls contention adversarial range baselines ablation hprofile paths trace-export service wallclock skew skew-gate pipeline recovery cluster perf-gate alloc-gate all");
            std::process::exit(2);
        }
    }
}
