//! # pim-bench — experiment harness regenerating the paper's artifacts
//!
//! The paper's evaluation is Table 1 (asymptotic costs of every batch
//! point operation in five metrics) plus a theorem/lemma per claim. This
//! crate provides:
//!
//! * shared experiment runners ([`experiments`]) used by both the
//!   `experiments` binary (model-metric tables, the paper-shape artifacts)
//!   and the Criterion benches (wall-clock trends of the simulator);
//! * measurement plumbing ([`measure`]) that diffs [`pim_runtime::Metrics`]
//!   snapshots around one batch.
//!
//! Run `cargo run --release -p pim-bench --bin experiments -- all` to
//! regenerate every table and figure; see `EXPERIMENTS.md` for the
//! recorded paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod allocs;
pub mod cluster;
pub mod experiments;
pub mod measure;
pub mod pipeline;
pub mod provenance;
pub mod recovery;
pub mod report;
pub mod service;
pub mod skew;
pub mod wallclock;

pub use measure::{build_loaded_list, BatchCosts};
