//! Zipf/adversarial skew sweep for push-pull batch search, and its CI gate.
//!
//! The push-pull tentpole claims two things: warm caches *cut the round
//! tail* of Successor/Predecessor batches (≥ 2× fewer rounds per batch
//! than push-pull off), and they keep the per-batch cost *flat under
//! skew* — a Zipf-θ or adversarial batch costs no more than ~the uniform
//! batch, because the hot descent prefixes resolve CPU-side. This module
//! measures both claims with model metrics only (rounds, IO time, PIM
//! time, messages, CPU work — all §2.1, all deterministic in the seed
//! and independent of `PIM_THREADS`), so the report is byte-reproducible
//! and the gate can compare against a committed baseline exactly.
//!
//! Protocol per workload: generate `reps` query batches up front, run
//! `warm_passes` full passes over them (admission needs observed access
//! counts; push-pull off does the identical passes so both modes see the
//! same op stream), then measure each batch once. Off- and on-mode
//! replies are byte-compared in-process — a report from a diverging
//! engine is a panic, not a number.
//!
//! Workloads: Zipf(θ) for θ ∈ [`THETAS`] scattered over the resident key
//! order ([`pim_workloads::zipf_scatter_batches`]), the paper's §3.3
//! same-successor flood, and a rotating hotspot
//! ([`pim_workloads::rotating_hotspot`]) whose hot window jumps between
//! batches — the anti-caching adversary.
//!
//! [`skew_gate`] is the CI teeth: it fails unless (a) every workload's
//! warm on-mode rounds/batch is at most half the off-mode rounds/batch,
//! (b) every skewed/adversarial on-mode cost stays within
//! [`FLATNESS_FACTOR`] of the uniform (θ = 0) on-mode cost, and (c) the
//! current report's model metrics exactly match the committed baseline
//! (`ci/skew-baseline.json`) — any drift, better or worse, must be
//! reviewed and re-committed, never absorbed silently.

use pim_core::{Config, Key, PimSkipList};
use pim_runtime::export::{num, str as jstr, Json};
use pim_workloads::{rotating_hotspot, same_successor_flood, zipf_scatter_batches};

use crate::measure::{build_loaded_list_with, measure_batch, BatchCosts};

/// Schema tag written into every report.
pub const SCHEMA: &str = "pim-skew-bench/1";

/// The θ ladder (1.0 itself is a pole of the Zipf normaliser; 0.99 is the
/// customary stand-in, as in YCSB).
pub const THETAS: [f64; 5] = [0.0, 0.5, 0.99, 1.2, 1.5];

/// Batch search ops under measurement.
pub const OPS: [&str; 2] = ["Successor", "Predecessor"];

/// Flatness bound the gate enforces: every skewed/adversarial on-mode
/// cost ≤ `FLATNESS_FACTOR ×` the uniform on-mode cost (+ [`FLATNESS_GRACE`]).
pub const FLATNESS_FACTOR: f64 = 1.25;

/// Additive grace on the flatness bound — warm on-mode costs are tiny
/// (often zero rounds), where a pure ratio would amplify noise-scale
/// integer differences into gate failures.
pub const FLATNESS_GRACE: f64 = 2.0;

/// Sizing knobs for one sweep.
#[derive(Debug, Clone, Copy)]
pub struct SkewParams {
    /// Modules.
    pub p: u32,
    /// Resident keys.
    pub n: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Measured batches per workload (generated up front; the working
    /// set the warm passes cover).
    pub reps: usize,
    /// Full passes over the batch set before measurement.
    pub warm_passes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl SkewParams {
    /// CI-sized run (`--quick`).
    pub fn quick(seed: u64) -> Self {
        SkewParams {
            p: 16,
            n: 4_000,
            batch: 256,
            reps: 4,
            warm_passes: 8,
            seed,
        }
    }

    /// Full-sized run.
    pub fn full(seed: u64) -> Self {
        SkewParams {
            p: 32,
            n: 16_000,
            batch: 512,
            reps: 4,
            warm_passes: 8,
            seed,
        }
    }
}

/// Aggregated model costs of one (workload, op, mode) cell over the
/// measured batches.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModeCosts {
    /// Fewest rounds any measured batch took.
    pub rounds_min: f64,
    /// Mean rounds per measured batch.
    pub rounds_mean: f64,
    /// Most rounds any measured batch took.
    pub rounds_max: f64,
    /// Mean IO time (`Σ h_i`) per measured batch.
    pub io_mean: f64,
    /// Mean PIM time per measured batch.
    pub pim_mean: f64,
    /// Mean network messages per measured batch.
    pub msgs_mean: f64,
    /// Mean CPU work per measured batch.
    pub cpu_mean: f64,
    /// Hot-node cache records resident after the measured pass (0 when
    /// push-pull is off).
    pub cache_len: u64,
}

impl ModeCosts {
    fn from_batches(costs: &[BatchCosts], cache_len: u64) -> Self {
        let n = costs.len().max(1) as f64;
        let mean =
            |f: &dyn Fn(&BatchCosts) -> u64| costs.iter().map(|c| f(c) as f64).sum::<f64>() / n;
        ModeCosts {
            rounds_min: costs.iter().map(|c| c.rounds).min().unwrap_or(0) as f64,
            rounds_mean: mean(&|c| c.rounds),
            rounds_max: costs.iter().map(|c| c.rounds).max().unwrap_or(0) as f64,
            io_mean: mean(&|c| c.io_time),
            pim_mean: mean(&|c| c.pim_time),
            msgs_mean: mean(&|c| c.total_messages),
            cpu_mean: mean(&|c| c.cpu_work),
            cache_len,
        }
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("rounds_min".into(), Json::Num(self.rounds_min)),
            ("rounds_mean".into(), Json::Num(self.rounds_mean)),
            ("rounds_max".into(), Json::Num(self.rounds_max)),
            ("io_mean".into(), Json::Num(self.io_mean)),
            ("pim_mean".into(), Json::Num(self.pim_mean)),
            ("msgs_mean".into(), Json::Num(self.msgs_mean)),
            ("cpu_mean".into(), Json::Num(self.cpu_mean)),
            ("cache_len".into(), num(self.cache_len)),
        ])
    }
}

/// One report row: a workload measured at one op, both modes.
#[derive(Debug, Clone)]
pub struct SkewRow {
    /// Workload label (`uniform`, `zipf-0.99`, `same-successor`,
    /// `rotating-hotspot`).
    pub label: String,
    /// Zipf exponent, when the workload is a Zipf sweep point.
    pub theta: Option<f64>,
    /// Op name (one of [`OPS`]).
    pub op: &'static str,
    /// Push-pull off.
    pub off: ModeCosts,
    /// Push-pull on.
    pub on: ModeCosts,
}

/// Build the workload suite: `(label, theta, batches)` triples over the
/// resident key set. Deterministic in `params.seed`.
fn build_workloads(params: &SkewParams, keys: &[Key]) -> Vec<(String, Option<f64>, Vec<Vec<Key>>)> {
    let mut out = Vec::new();
    for (i, &theta) in THETAS.iter().enumerate() {
        let label = if theta == 0.0 {
            "uniform".to_string()
        } else {
            format!("zipf-{theta:.2}")
        };
        let batches = zipf_scatter_batches(
            params.seed ^ (0x51EF + i as u64),
            keys,
            theta,
            params.batch,
            params.reps,
        );
        out.push((label, Some(theta), batches));
    }

    // §3.3 same-successor flood: distinct keys inside the widest empty
    // gap between resident keys, so every query shares one successor.
    let (gap_lo, gap_hi) = keys
        .windows(2)
        .map(|w| (w[0], w[1]))
        .max_by_key(|&(lo, hi)| hi - lo)
        .expect("≥ 2 resident keys");
    assert!(
        gap_hi - gap_lo > params.batch as i64 + 1,
        "widest resident gap too narrow for a same-successor flood"
    );
    let flood: Vec<Vec<Key>> = (0..params.reps)
        .map(|i| {
            same_successor_flood(
                params.seed ^ (0xF100D + i as u64),
                gap_lo,
                gap_hi,
                params.batch,
            )
        })
        .collect();
    out.push(("same-successor".into(), None, flood));

    out.push((
        "rotating-hotspot".into(),
        None,
        rotating_hotspot(
            params.seed ^ 0x407,
            keys,
            params.batch,
            params.batch,
            params.reps,
            2,
        ),
    ));
    out
}

/// Measure one workload in one mode: warm passes, then one measured pass
/// per op. Returns per-op costs plus the measured-pass replies (the
/// off/on byte-identity check).
#[allow(clippy::type_complexity)]
fn measure_mode(
    params: &SkewParams,
    batches: &[Vec<Key>],
    push_pull: bool,
) -> ([ModeCosts; 2], Vec<Vec<Option<(Key, pim_runtime::Handle)>>>) {
    let cfg = Config::new(params.p, params.n as u64, params.seed).with_push_pull(push_pull);
    let (mut list, _) = build_loaded_list_with(cfg, params.n, params.seed);
    let mut per_op = [ModeCosts::default(); 2];
    let mut replies = Vec::new();
    for (oi, op) in OPS.iter().enumerate() {
        let run = |l: &mut PimSkipList, b: &[Key]| match *op {
            "Successor" => l.batch_successor(b),
            _ => l.batch_predecessor(b),
        };
        for _ in 0..params.warm_passes {
            for b in batches {
                run(&mut list, b);
            }
        }
        let mut costs = Vec::with_capacity(batches.len());
        for b in batches {
            let (r, c) = measure_batch(&mut list, b.len(), |l| run(l, b));
            costs.push(c);
            replies.push(r);
        }
        per_op[oi] = ModeCosts::from_batches(&costs, list.hot_cache_len() as u64);
    }
    (per_op, replies)
}

/// Run the full sweep. Panics if any workload's on-mode replies diverge
/// from off-mode (the in-process identity check).
pub fn run_sweep(params: &SkewParams) -> Vec<SkewRow> {
    let cfg = Config::new(params.p, params.n as u64, params.seed);
    let (_, keys) = build_loaded_list_with(cfg, params.n, params.seed);
    let mut rows = Vec::new();
    for (label, theta, batches) in build_workloads(params, &keys) {
        let (off, off_replies) = measure_mode(params, &batches, false);
        let (on, on_replies) = measure_mode(params, &batches, true);
        assert_eq!(
            off_replies, on_replies,
            "{label}: push-pull on diverged from off"
        );
        for (oi, op) in OPS.iter().enumerate() {
            rows.push(SkewRow {
                label: label.clone(),
                theta,
                op,
                off: off[oi],
                on: on[oi],
            });
        }
    }
    rows
}

/// Assemble the `pim-skew-bench/1` report. Key order and structure are
/// fixed; only measured values vary run to run.
pub fn report_json(params: &SkewParams, quick: bool, rows: &[SkewRow]) -> Json {
    let rows_arr: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("workload".into(), jstr(&r.label)),
                ("theta".into(), r.theta.map_or(Json::Null, Json::Num)),
                ("op".into(), jstr(r.op)),
                ("off".into(), r.off.to_json()),
                ("on".into(), r.on.to_json()),
            ])
        })
        .collect();
    crate::report::document(
        SCHEMA,
        vec![
            ("quick".into(), Json::Bool(quick)),
            ("p".into(), num(u64::from(params.p))),
            ("n".into(), num(params.n as u64)),
            ("batch".into(), num(params.batch as u64)),
            ("reps".into(), num(params.reps as u64)),
            ("warm_passes".into(), num(params.warm_passes as u64)),
            ("seed".into(), num(params.seed)),
            ("rows".into(), Json::Arr(rows_arr)),
        ],
    )
}

/// Run the whole harness, print the table, write the report.
pub fn run_skew(quick: bool, out_path: &str, seed: u64) -> std::io::Result<()> {
    let params = if quick {
        SkewParams::quick(seed)
    } else {
        SkewParams::full(seed)
    };
    println!(
        "== Skew sweep: θ ∈ {:?} + adversaries × push-pull ∈ {{off, on}} (P = {}, n = {}, batch = {}) ==",
        THETAS, params.p, params.n, params.batch
    );
    let rows = run_sweep(&params);
    print_rows(&rows);
    println!("(on-mode replies byte-compared against off-mode in-process)");

    let report = report_json(&params, quick, &rows);
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(out_path, report.to_json() + "\n")?;
    println!("wrote {out_path}");
    Ok(())
}

fn print_rows(rows: &[SkewRow]) {
    println!(
        "{:<18} {:<12} {:>22} {:>22} {:>7} {:>10} {:>10}",
        "workload",
        "op",
        "off rounds min/μ/max",
        "on rounds min/μ/max",
        "gain",
        "off IO μ",
        "on IO μ"
    );
    for r in rows {
        let gain = if r.on.rounds_mean > 0.0 {
            format!("{:.1}x", r.off.rounds_mean / r.on.rounds_mean)
        } else {
            "∞".into()
        };
        println!(
            "{:<18} {:<12} {:>8.0}/{:>5.1}/{:>6.0} {:>8.0}/{:>5.1}/{:>6.0} {:>7} {:>10.0} {:>10.0}",
            r.label,
            r.op,
            r.off.rounds_min,
            r.off.rounds_mean,
            r.off.rounds_max,
            r.on.rounds_min,
            r.on.rounds_mean,
            r.on.rounds_max,
            gain,
            r.off.io_mean,
            r.on.io_mean,
        );
    }
}

/// One parsed gate cell.
#[derive(Debug, Clone)]
struct GateRow {
    label: String,
    op: String,
    off: Vec<(String, f64)>,
    on: Vec<(String, f64)>,
}

fn mode_fields(j: &Json, which: &str) -> Result<Vec<(String, f64)>, String> {
    match j {
        Json::Obj(fields) => fields
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|f| (k.clone(), f))
                    .ok_or_else(|| format!("{which}.{k} is not a number"))
            })
            .collect(),
        _ => Err(format!("{which} is not an object")),
    }
}

fn field(fields: &[(String, f64)], key: &str) -> Result<f64, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| format!("missing field {key}"))
}

fn doc_rows(doc: &Json) -> Result<Vec<GateRow>, String> {
    crate::report::expect_schema(doc, SCHEMA)?;
    let mut out = Vec::new();
    for row in doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("missing rows array")?
    {
        let label = row
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("row missing workload")?
            .to_string();
        let op = row
            .get("op")
            .and_then(Json::as_str)
            .ok_or("row missing op")?
            .to_string();
        let off = mode_fields(row.get("off").ok_or("row missing off")?, "off")?;
        let on = mode_fields(row.get("on").ok_or("row missing on")?, "on")?;
        out.push(GateRow { label, op, off, on });
    }
    Ok(out)
}

/// Judge a current report against the committed baseline. Returns the
/// list of violations (empty = pass): the ≥ 2× round-reduction claim,
/// the [`FLATNESS_FACTOR`] skew-flatness claim, and exact model-metric
/// agreement with the baseline (all metrics here are deterministic —
/// drift means the engine changed and the baseline must be re-reviewed).
pub fn skew_gate_compare(current: &Json, baseline: &Json) -> Result<Vec<String>, String> {
    let rows = doc_rows(current).map_err(|e| format!("current: {e}"))?;
    let base = doc_rows(baseline).map_err(|e| format!("baseline: {e}"))?;
    if rows.is_empty() {
        return Err("current: empty rows array".into());
    }
    let mut bad = Vec::new();

    for r in &rows {
        let off = field(&r.off, "rounds_mean")?;
        let on = field(&r.on, "rounds_mean")?;
        if on * 2.0 > off {
            bad.push(format!(
                "{}/{}: warm push-pull rounds/batch {on:.1} is not ≤ half of off-mode {off:.1}",
                r.label, r.op
            ));
        }
    }

    for op in OPS {
        let uniform = rows
            .iter()
            .find(|r| r.label == "uniform" && r.op == op)
            .ok_or_else(|| format!("current: missing uniform/{op} row"))?;
        for metric in ["rounds_mean", "io_mean"] {
            let u = field(&uniform.on, metric)?;
            let bound = FLATNESS_FACTOR * u + FLATNESS_GRACE;
            for r in rows.iter().filter(|r| r.op == op && r.label != "uniform") {
                let v = field(&r.on, metric)?;
                if v > bound {
                    bad.push(format!(
                        "{}/{op}: on-mode {metric} {v:.1} exceeds {FLATNESS_FACTOR}× uniform \
                         ({u:.1}) + {FLATNESS_GRACE} grace",
                        r.label
                    ));
                }
            }
        }
    }

    for r in &rows {
        let Some(b) = base.iter().find(|b| b.label == r.label && b.op == r.op) else {
            bad.push(format!("{}/{}: row absent from baseline", r.label, r.op));
            continue;
        };
        for (mine, theirs, which) in [(&r.off, &b.off, "off"), (&r.on, &b.on, "on")] {
            for (k, v) in mine {
                match theirs.iter().find(|(bk, _)| bk == k) {
                    Some((_, bv)) if bv == v => {}
                    Some((_, bv)) => bad.push(format!(
                        "{}/{}: {which}.{k} drifted from committed baseline: {v} vs {bv} \
                         (regenerate ci/skew-baseline.json if intentional)",
                        r.label, r.op
                    )),
                    None => bad.push(format!(
                        "{}/{}: {which}.{k} absent from baseline",
                        r.label, r.op
                    )),
                }
            }
        }
    }
    if base.len() != rows.len() {
        bad.push(format!(
            "row count drifted: current {} vs baseline {}",
            rows.len(),
            base.len()
        ));
    }
    Ok(bad)
}

/// CLI entry for `skew-gate CURRENT BASELINE`: load both reports, judge,
/// print verdicts, return whether the gate passed.
pub fn skew_gate(current_path: &str, baseline_path: &str) -> Result<bool, String> {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        pim_runtime::export::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let current = load(current_path)?;
    let baseline = load(baseline_path)?;
    let bad = skew_gate_compare(&current, &baseline)?;
    println!("== skew gate: {current_path} vs {baseline_path} ==");
    if bad.is_empty() {
        println!(
            "round reduction ≥ 2×, skew flatness ≤ {FLATNESS_FACTOR}×, baseline exact: all rows ok"
        );
        return Ok(true);
    }
    for b in &bad {
        eprintln!("skew gate: {b}");
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_costs(off_rounds: f64, on_rounds: f64, on_io: f64) -> (ModeCosts, ModeCosts) {
        let off = ModeCosts {
            rounds_min: off_rounds,
            rounds_mean: off_rounds,
            rounds_max: off_rounds,
            io_mean: 4_000.0,
            pim_mean: 300.0,
            msgs_mean: 2_000.0,
            cpu_mean: 9_000.0,
            cache_len: 0,
        };
        let on = ModeCosts {
            rounds_min: on_rounds,
            rounds_mean: on_rounds,
            rounds_max: on_rounds,
            io_mean: on_io,
            pim_mean: 10.0,
            msgs_mean: on_io,
            cpu_mean: 11_000.0,
            cache_len: 2_000,
        };
        (off, on)
    }

    fn synthetic_report(adversary_on_rounds: f64, adversary_on_io: f64) -> Json {
        let params = SkewParams::quick(1);
        let mut rows = Vec::new();
        let mut labels: Vec<(String, Option<f64>)> = THETAS
            .iter()
            .map(|&t| {
                if t == 0.0 {
                    ("uniform".to_string(), Some(t))
                } else {
                    (format!("zipf-{t:.2}"), Some(t))
                }
            })
            .collect();
        labels.push(("same-successor".into(), None));
        labels.push(("rotating-hotspot".into(), None));
        for (label, theta) in labels {
            let adversarial = theta.is_none();
            let (off, on) = if adversarial {
                synthetic_costs(100.0, adversary_on_rounds, adversary_on_io)
            } else {
                synthetic_costs(100.0, 1.0, 40.0)
            };
            for op in OPS {
                rows.push(SkewRow {
                    label: label.clone(),
                    theta,
                    op,
                    off,
                    on,
                });
            }
        }
        report_json(&params, true, &rows)
    }

    #[test]
    fn gate_passes_a_flat_report_and_its_own_baseline() {
        let doc = synthetic_report(1.0, 40.0);
        assert_eq!(skew_gate_compare(&doc, &doc).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn gate_fails_when_round_reduction_is_lost() {
        // Adversarial on-mode rounds at 80 vs off 100: less than 2×.
        let doc = synthetic_report(80.0, 40.0);
        let bad = skew_gate_compare(&doc, &doc).unwrap();
        assert!(
            bad.iter().any(|b| b.contains("not ≤ half")),
            "expected a round-reduction violation, got {bad:?}"
        );
    }

    #[test]
    fn gate_fails_when_skew_costs_more_than_uniform() {
        // Adversarial on-mode IO at 3× the uniform row's 40.
        let doc = synthetic_report(1.0, 120.0);
        let bad = skew_gate_compare(&doc, &doc).unwrap();
        assert!(
            bad.iter().any(|b| b.contains("exceeds")),
            "expected a flatness violation, got {bad:?}"
        );
    }

    #[test]
    fn gate_fails_on_baseline_drift() {
        let current = synthetic_report(1.0, 40.0);
        let baseline = synthetic_report(1.0, 41.0);
        let bad = skew_gate_compare(&current, &baseline).unwrap();
        assert!(
            bad.iter()
                .any(|b| b.contains("drifted from committed baseline")),
            "expected a drift violation, got {bad:?}"
        );
    }

    #[test]
    fn gate_rejects_wrong_schema() {
        let good = synthetic_report(1.0, 40.0);
        let bad = Json::Obj(vec![("schema".into(), jstr("something-else"))]);
        assert!(skew_gate_compare(&bad, &good).is_err());
    }

    #[test]
    fn report_schema_is_deterministic() {
        let strip = |j: &Json| -> String {
            fn zero(j: &Json) -> Json {
                match j {
                    Json::Num(_) => Json::Num(0.0),
                    Json::Arr(a) => Json::Arr(a.iter().map(zero).collect()),
                    Json::Obj(f) => {
                        Json::Obj(f.iter().map(|(k, v)| (k.clone(), zero(v))).collect())
                    }
                    other => other.clone(),
                }
            }
            zero(j).to_json()
        };
        assert_eq!(
            strip(&synthetic_report(1.0, 40.0)),
            strip(&synthetic_report(80.0, 500.0))
        );
    }

    #[test]
    fn sweep_smoke() {
        // Tiny end-to-end run: rows for every workload × op, the off/on
        // reply identity holds (asserted inside), and the warm on-mode
        // beats off on rounds for every workload.
        let params = SkewParams {
            p: 4,
            n: 400,
            batch: 32,
            reps: 2,
            warm_passes: 4,
            seed: 7,
        };
        let rows = run_sweep(&params);
        assert_eq!(rows.len(), (THETAS.len() + 2) * OPS.len());
        for r in &rows {
            assert!(
                r.on.rounds_mean * 2.0 <= r.off.rounds_mean,
                "{}/{}: on {} vs off {}",
                r.label,
                r.op,
                r.on.rounds_mean,
                r.off.rounds_mean
            );
            assert!(r.on.cache_len > 0, "{}: cache never warmed", r.label);
        }
    }
}
