//! Self-describing bench reports: the shared provenance header.
//!
//! A `BENCH_*.json` file divorced from the machine and tree that produced
//! it is an archaeology problem — was that run with 8 threads? with
//! alloc-stats skewing the timings? which commit? Every bench report
//! (`wallclock`, `service`, `recovery`) embeds [`provenance_json`] under a
//! `"provenance"` key so the answer travels with the numbers. Gates read
//! reports by key, so the extra field is invisible to them — and bench
//! reports are wall-clock artefacts, *not* determinism-gated ones, so the
//! timestamp is allowed here (it must never leak into telemetry or trace
//! exports, which are byte-diffed across thread counts).

use pim_runtime::export::{num, str as jstr, Json};
use pim_runtime::ExecConfig;

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repo) is unavailable — a bench run must never fail
/// over missing provenance.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The common provenance header: host CPU count, the executor's resolved
/// thread count plus the raw `PIM_THREADS` setting, the tree version,
/// whether alloc-stats instrumentation is compiled in, and a unix
/// timestamp.
pub fn provenance_json() -> Json {
    Json::Obj(vec![
        (
            "host_cpus".into(),
            num(std::thread::available_parallelism().map_or(1, |c| c.get() as u64)),
        ),
        (
            "pim_threads".into(),
            num(ExecConfig::from_env().threads as u64),
        ),
        (
            "pim_threads_env".into(),
            match std::env::var("PIM_THREADS") {
                Ok(v) => jstr(&v),
                Err(_) => Json::Null,
            },
        ),
        ("git".into(), jstr(&git_describe())),
        (
            "alloc_stats".into(),
            Json::Bool(cfg!(feature = "alloc-stats")),
        ),
        (
            "timestamp".into(),
            num(std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs())),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_has_every_field() {
        let p = provenance_json();
        for key in [
            "host_cpus",
            "pim_threads",
            "pim_threads_env",
            "git",
            "alloc_stats",
            "timestamp",
        ] {
            assert!(p.get(key).is_some(), "missing {key}");
        }
        assert!(p.get("host_cpus").unwrap().as_u64().unwrap() >= 1);
        assert!(p.get("pim_threads").unwrap().as_u64().unwrap() >= 1);
    }
}
