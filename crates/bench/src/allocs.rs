//! Heap-allocation accounting for the wallclock harness.
//!
//! With the `alloc-stats` cargo feature, this module installs a counting
//! [`GlobalAlloc`](std::alloc::GlobalAlloc) that forwards to the system
//! allocator and tallies every allocation (count and requested bytes) in
//! two relaxed atomics. The wallclock harness snapshots the counters
//! around a fixed number of batches at `threads == 1` — the sequential
//! path is fully deterministic, so the per-batch counts are *exact and
//! reproducible across machines* — and the CI `alloc-gate` diffs them
//! against the committed baseline, which is how the steady-state
//! allocation contract of `docs/MODEL.md` is enforced.
//!
//! Thread counts above 1 are never measured: the pool's dynamic chunk
//! claiming makes *which worker allocates* race-dependent (the totals
//! drift by scheduling), while at one thread the engine's recycled
//! buffers make the counts a stable fingerprint of the hot path.
//!
//! Without the feature the module compiles to a no-op ([`enabled`]
//! returns `false`, snapshots are all-zero) so the harness needs no
//! `cfg` at its call sites.

/// Counter state at one instant. Differences of two snapshots bracket a
/// region's allocation cost; deallocations are deliberately not tracked
/// (the contract is about allocator pressure, not live bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations (including reallocations and zeroed allocations).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counters accumulated since `earlier` (saturating, so a disabled
    /// build's all-zero snapshots stay all-zero).
    pub fn since(&self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

#[cfg(feature = "alloc-stats")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    pub static BYTES: AtomicU64 = AtomicU64::new(0);

    /// Forwards to [`System`], counting on every acquisition path.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Whether this build counts allocations (the `alloc-stats` feature).
pub fn enabled() -> bool {
    cfg!(feature = "alloc-stats")
}

/// Read the counters (all-zero when [`enabled`] is false).
pub fn snapshot() -> AllocSnapshot {
    #[cfg(feature = "alloc-stats")]
    {
        use std::sync::atomic::Ordering;
        AllocSnapshot {
            allocs: counting::ALLOCS.load(Ordering::Relaxed),
            bytes: counting::BYTES.load(Ordering::Relaxed),
        }
    }
    #[cfg(not(feature = "alloc-stats"))]
    AllocSnapshot::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_is_saturating() {
        let a = AllocSnapshot {
            allocs: 10,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocs: 4,
            bytes: 40,
        };
        assert_eq!(
            a.since(b),
            AllocSnapshot {
                allocs: 6,
                bytes: 60
            }
        );
        assert_eq!(b.since(a), AllocSnapshot::default());
    }

    #[cfg(feature = "alloc-stats")]
    #[test]
    fn counting_sees_a_vec_allocation() {
        let before = snapshot();
        let v: Vec<u64> = Vec::with_capacity(1 << 12);
        std::hint::black_box(&v);
        let d = snapshot().since(before);
        assert!(d.allocs >= 1, "allocation was counted");
        assert!(d.bytes >= (1 << 12) * 8, "bytes were counted");
    }
}
