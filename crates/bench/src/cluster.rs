//! CLUSTER: the sharded-router experiment — oracle equivalence and
//! scaling shape of `pim-cluster` across shard counts.
//!
//! For each `S ∈ {1, 2, 4, 8}` the same deterministic mixed op stream
//! (open-loop arrival schedule over a domain-spread resident set, see
//! [`pim_workloads::domain_spread_keys`]) runs against a fresh
//! `PimCluster` *and* against the single-machine oracle, and the two
//! reply streams are **byte-compared** through the canonical wire
//! encoding ([`pim_cluster::wire`]) — the cluster's correctness contract
//! is checked on every bench run, not assumed. Each point then reports
//! total machine rounds, wall-clock throughput, and the shard load
//! spread (max/min resident keys — how well the uniform cuts balanced
//! the workload).
//!
//! With `--json PATH` the sweep is written as a `pim-cluster-bench/1`
//! report ([`crate::report`] header). With `--out DIR` one
//! telemetry-enabled session per `S ∈ {1, 4}` additionally writes
//! `DIR/metrics-sN.prom`, `DIR/events-sN.jsonl` and `DIR/replies-sN.bin`:
//! the `.bin` files must be byte-identical across `S` (router
//! transparency), and all three must be byte-identical across
//! `PIM_THREADS` (determinism) — the CI `cluster` job diffs both axes.

use std::time::Instant;

use pim_cluster::{wire, ClusterConfig, PimCluster};
use pim_core::{Op, PimSkipList, Reply};
use pim_runtime::export::{num, Json};
use pim_workloads::{domain_spread_keys, value_for, ArrivalGen, OpMix};

use crate::service::to_op;

/// Shard counts the sweep visits.
pub const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// One measured point of the shard sweep.
#[derive(Debug, Clone)]
pub struct ClusterPoint {
    /// Shard count.
    pub shards: u32,
    /// Replies byte-equal to the single-machine oracle (wire encoding)?
    pub oracle_equal: bool,
    /// Ops executed.
    pub ops: u64,
    /// Total machine rounds across shards.
    pub rounds: u64,
    /// Ops per wall-clock second (the only thread/shard-sensitive column).
    pub ops_per_sec: f64,
    /// Resident keys on the fullest shard after the run.
    pub max_shard_len: u64,
    /// Resident keys on the emptiest shard after the run.
    pub min_shard_len: u64,
}

/// The deterministic cluster workload: load `n` domain-spread pairs,
/// then a mixed open-loop stream batched into execute calls.
fn workload(n: usize, seed: u64) -> (Vec<(i64, u64)>, Vec<Vec<Op>>) {
    let resident = domain_spread_keys(seed, n);
    let pairs: Vec<(i64, u64)> = resident.iter().map(|&k| (k, value_for(k))).collect();
    // Rate × ticks sized so the stream is a few times the resident set.
    let mut gen = ArrivalGen::new(seed ^ 0xC1A5, resident, 0.8, 64.0, OpMix::mixed());
    let events = gen.schedule((n as u64) / 16);
    let batch = 512;
    let mut batches = Vec::new();
    let mut cur = Vec::with_capacity(batch);
    for e in events {
        cur.push(to_op(e.op));
        if cur.len() == batch {
            batches.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    (pairs, batches)
}

fn run_stream(
    cluster: &mut PimCluster,
    pairs: &[(i64, u64)],
    batches: &[Vec<Op>],
) -> (Vec<Reply>, f64) {
    let load: Vec<Op> = pairs
        .iter()
        .map(|&(key, value)| Op::Upsert { key, value })
        .collect();
    let start = Instant::now();
    let mut replies = Vec::new();
    replies.extend(cluster.execute(&load));
    for b in batches {
        replies.extend(cluster.execute(b));
    }
    (replies, start.elapsed().as_secs_f64())
}

/// Run the shard sweep; returns the points (every point's
/// `oracle_equal` must hold — the caller turns a miss into a failure).
pub fn sweep(quick: bool, seed: u64) -> Vec<ClusterPoint> {
    let (p, n) = if quick { (16, 2_000) } else { (32, 8_000) };
    let (pairs, batches) = workload(n, seed);
    let total_ops = (pairs.len() + batches.iter().map(Vec::len).sum::<usize>()) as u64;

    // The oracle: one machine, same stream.
    let core = pim_core::Config::new(p, n as u64, seed);
    let mut oracle_cluster = PimCluster::new(ClusterConfig::new(core.clone(), 1));
    let (oracle_replies, _) = run_stream(&mut oracle_cluster, &pairs, &batches);
    let mut oracle = PimSkipList::new(core.clone());
    let mut direct = Vec::new();
    direct.extend(
        oracle.execute(
            &pairs
                .iter()
                .map(|&(key, value)| Op::Upsert { key, value })
                .collect::<Vec<_>>(),
        ),
    );
    for b in &batches {
        direct.extend(oracle.execute(b));
    }
    assert_eq!(
        oracle_replies, direct,
        "S=1 must be byte-identical to the machine, handles included"
    );
    let want = wire::encode_replies(&direct);

    SHARD_COUNTS
        .iter()
        .map(|&s| {
            let mut cluster = PimCluster::new(ClusterConfig::new(core.clone(), s));
            let (replies, secs) = run_stream(&mut cluster, &pairs, &batches);
            let got = wire::encode_replies(&replies);
            let lens: Vec<u64> = cluster.stats().shards.iter().map(|sh| sh.len).collect();
            ClusterPoint {
                shards: s,
                oracle_equal: got == want,
                ops: total_ops,
                rounds: cluster.rounds(),
                ops_per_sec: total_ops as f64 / secs.max(1e-9),
                max_shard_len: lens.iter().copied().max().unwrap_or(0),
                min_shard_len: lens.iter().copied().min().unwrap_or(0),
            }
        })
        .collect()
}

fn point_json(pt: &ClusterPoint) -> Json {
    Json::Obj(vec![
        ("shards".into(), num(u64::from(pt.shards))),
        ("oracle_equal".into(), Json::Bool(pt.oracle_equal)),
        ("ops".into(), num(pt.ops)),
        ("rounds".into(), num(pt.rounds)),
        ("ops_per_sec".into(), Json::Num(pt.ops_per_sec)),
        ("max_shard_len".into(), num(pt.max_shard_len)),
        ("min_shard_len".into(), num(pt.min_shard_len)),
    ])
}

/// Run the experiment, print the table, optionally write the
/// `pim-cluster-bench/1` report. Fails (exit-worthy error) if any shard
/// count's replies drift from the oracle.
pub fn run_cluster(quick: bool, seed: u64, json_out: Option<&str>) -> Result<(), String> {
    println!("CLUSTER: sharded router vs single-machine oracle (reply byte-compare)");
    let points = sweep(quick, seed);
    println!(
        "{:>7} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "shards", "oracle", "rounds", "ops/sec", "max shard", "min shard"
    );
    let mut ok = true;
    for pt in &points {
        println!(
            "{:>7} {:>8} {:>10} {:>12.0} {:>12} {:>10}",
            pt.shards,
            if pt.oracle_equal { "EQUAL" } else { "DRIFT" },
            pt.rounds,
            pt.ops_per_sec,
            pt.max_shard_len,
            pt.min_shard_len,
        );
        ok &= pt.oracle_equal;
    }
    println!("(oracle column byte-compares wire-encoded replies; rounds sum over shards)");
    if let Some(path) = json_out {
        let report = crate::report::document(
            "pim-cluster-bench/1",
            vec![
                ("quick".into(), Json::Bool(quick)),
                ("seed".into(), num(seed)),
                (
                    "points".into(),
                    Json::Arr(points.iter().map(point_json).collect()),
                ),
            ],
        );
        std::fs::write(path, report.to_json() + "\n").map_err(|e| e.to_string())?;
        println!("cluster report -> {path}");
    }
    if ok {
        Ok(())
    } else {
        Err("cluster replies drifted from the single-machine oracle".into())
    }
}

/// Deterministic export session for the CI byte-diff: run the telemetry-
/// enabled cluster at `shards` and write `DIR/metrics-s{S}.prom`,
/// `DIR/events-s{S}.jsonl`, `DIR/replies-s{S}.bin`. The replies file is
/// shard-count-independent; all three are thread-count-independent.
pub fn cluster_export(out_dir: &str, quick: bool, seed: u64, shards: u32) -> Result<(), String> {
    let (p, n) = if quick { (16, 2_000) } else { (32, 8_000) };
    let (pairs, batches) = workload(n, seed);
    let core = pim_core::Config::new(p, n as u64, seed);
    let mut cluster = PimCluster::new(ClusterConfig::new(core, shards));
    cluster.enable_telemetry();
    if let Some(t) = cluster.telemetry_mut() {
        t.emit("cluster_start", 0, 0, &[("shards", u64::from(shards))]);
    }
    let (replies, _) = run_stream(&mut cluster, &pairs, &batches);
    let rounds = cluster.rounds();
    if let Some(t) = cluster.telemetry_mut() {
        t.emit("cluster_end", 0, rounds, &[("ops", replies.len() as u64)]);
    }
    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let snap = cluster
        .telemetry_snapshot()
        .ok_or("telemetry was not lit")?;
    let base = std::path::Path::new(out_dir);
    std::fs::write(
        base.join(format!("metrics-s{shards}.prom")),
        snap.render_prometheus(),
    )
    .map_err(|e| e.to_string())?;
    let events = cluster
        .telemetry_mut()
        .map(|t| t.events_jsonl())
        .unwrap_or_default();
    std::fs::write(base.join(format!("events-s{shards}.jsonl")), events)
        .map_err(|e| e.to_string())?;
    std::fs::write(
        base.join(format!("replies-s{shards}.bin")),
        wire::encode_replies(&replies),
    )
    .map_err(|e| e.to_string())?;
    println!("cluster export (S={shards}) -> {out_dir}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_matches_oracle_at_every_shard_count() {
        let points = sweep(true, 0xC1A5_7E57);
        assert_eq!(points.len(), SHARD_COUNTS.len());
        for pt in &points {
            assert!(pt.oracle_equal, "S={} drifted", pt.shards);
            assert!(pt.rounds > 0 && pt.ops > 0);
        }
        // The domain-spread resident set actually lands on every shard.
        let wide = points.last().unwrap();
        assert!(wide.min_shard_len > 0, "an S=8 shard ended up empty");
    }
}
