//! The experiment runners — one per paper artifact (see DESIGN.md's
//! experiment index). Each prints a table of *model metrics* and returns
//! the raw rows so tests can assert the paper's shapes.

use pim_baseline::{FineGrainedSkipList, RangePartitionedList};
use pim_core::{Config, PimSkipList, RangeFunc};
use pim_runtime::balls;
use pim_workloads::{same_successor_flood, single_range_flood, PointGen};

use crate::measure::{build_loaded_list, build_loaded_list_with, measure_batch, BatchCosts};

fn logp(p: u32) -> u64 {
    u64::from(pim_runtime::ceil_log2(u64::from(p)))
}

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Operation name.
    pub op: &'static str,
    /// Modules.
    pub p: u32,
    /// Measured costs.
    pub costs: BatchCosts,
    /// The paper's bound for IO time, evaluated at this `P` (up to the
    /// constant): `log P`, `log² P` or `log³ P`.
    pub io_bound: u64,
    /// The paper's bound for PIM time at this `P` and `n`.
    pub pim_bound: u64,
}

impl Table1Row {
    /// Measured IO time divided by its bound — flat across `P` if the
    /// bound's shape holds.
    pub fn io_constant(&self) -> f64 {
        self.costs.io_time as f64 / self.io_bound.max(1) as f64
    }

    /// Measured PIM time divided by its bound.
    pub fn pim_constant(&self) -> f64 {
        self.costs.pim_time as f64 / self.pim_bound.max(1) as f64
    }
}

/// T1-GET/T1-SUCC/T1-UPS/T1-DEL: measure every Table 1 row for one `P`.
pub fn table1_rows(p: u32, n: usize, seed: u64) -> Vec<Table1Row> {
    let (mut list, keys) = build_loaded_list(p, n, seed);
    let lg = logp(p);
    let ln = u64::from(pim_runtime::ceil_log2(n as u64));
    let small = (u64::from(p) * lg) as usize;
    let large = (u64::from(p) * lg * lg) as usize;
    let mut gen = PointGen::new(seed ^ 0xE1, 0, (n as i64) * 64);
    let mut rows = Vec::new();

    // Get: batch P log P of resident keys.
    let batch = gen.from_existing(&keys, small);
    let (_, costs) = measure_batch(&mut list, small, |l| l.batch_get(&batch));
    rows.push(Table1Row {
        op: "Get",
        p,
        costs,
        io_bound: lg,
        pim_bound: lg,
    });

    // Update.
    let pairs: Vec<(i64, u64)> = gen
        .from_existing(&keys, small)
        .into_iter()
        .map(|k| (k, 1))
        .collect();
    let (_, costs) = measure_batch(&mut list, small, |l| l.batch_update(&pairs));
    rows.push(Table1Row {
        op: "Update",
        p,
        costs,
        io_bound: lg,
        pim_bound: lg,
    });

    // Successor: batch P log² P uniform keys.
    let batch = gen.uniform(large);
    let (_, costs) = measure_batch(&mut list, large, |l| l.batch_successor(&batch));
    rows.push(Table1Row {
        op: "Successor",
        p,
        costs,
        io_bound: lg * lg * lg,
        pim_bound: lg * lg * ln,
    });

    // Predecessor (same bounds).
    let batch = gen.uniform(large);
    let (_, costs) = measure_batch(&mut list, large, |l| l.batch_predecessor(&batch));
    rows.push(Table1Row {
        op: "Predecessor",
        p,
        costs,
        io_bound: lg * lg * lg,
        pim_bound: lg * lg * ln,
    });

    // Upsert: batch P log² P fresh keys (all inserts — the expensive path).
    let fresh: Vec<(i64, u64)> = gen
        .distinct_uniform(large)
        .into_iter()
        .map(|k| (k + (n as i64) * 128, k as u64))
        .collect();
    let (_, costs) = measure_batch(&mut list, large, |l| l.batch_upsert(&fresh));
    rows.push(Table1Row {
        op: "Upsert",
        p,
        costs,
        io_bound: lg * lg * lg,
        pim_bound: lg * lg * ln,
    });

    // Delete: batch P log² P resident keys.
    let batch = gen.distinct_from_existing(&keys, large.min(keys.len()));
    let (_, costs) = measure_batch(&mut list, batch.len(), |l| l.batch_delete(&batch));
    rows.push(Table1Row {
        op: "Delete",
        p,
        costs,
        io_bound: lg * lg,
        pim_bound: lg * lg,
    });

    rows
}

/// Print the Table 1 reproduction across a `P` sweep.
pub fn print_table1(ps: &[u32], n: usize, seed: u64) {
    println!("== Table 1: batch point-operation costs (n = {n}) ==");
    println!(
        "{:<12} {:>5} {:>7} {:>9} {:>9} {:>10} {:>9} {:>8} {:>9} {:>8} {:>8}",
        "op",
        "P",
        "batch",
        "IO",
        "PIM",
        "CPUw/op",
        "CPUdepth",
        "rounds",
        "sharedM",
        "IO/bnd",
        "PIM/bnd"
    );
    for &p in ps {
        for row in table1_rows(p, n, seed) {
            println!(
                "{:<12} {:>5} {:>7} {:>9} {:>9} {:>10.2} {:>9} {:>8} {:>9} {:>8.2} {:>8.2}",
                row.op,
                row.p,
                row.costs.batch,
                row.costs.io_time,
                row.costs.pim_time,
                row.costs.cpu_work_per_op(),
                row.costs.cpu_depth,
                row.costs.rounds,
                row.costs.shared_mem_peak,
                row.io_constant(),
                row.pim_constant(),
            );
        }
    }
    println!("(IO/bnd and PIM/bnd are measured cost divided by the paper's bound — flat columns mean the shape holds)");
}

/// THM31: space per module.
pub fn space_experiment(ps: &[u32], ns: &[usize], seed: u64) {
    println!("== Theorem 3.1: O(n) total space, O(n/P) whp per module ==");
    println!(
        "{:>5} {:>9} {:>12} {:>12} {:>12} {:>9}",
        "P", "n", "total", "max/module", "n/P", "max/(n/P)"
    );
    for &p in ps {
        for &n in ns {
            let (list, _) = build_loaded_list(p, n, seed);
            let words = list.space_per_module();
            let total: u64 = words.iter().sum();
            let max = words.iter().copied().max().unwrap_or(0);
            let per = n as f64 / f64::from(p);
            println!(
                "{:>5} {:>9} {:>12} {:>12} {:>12.0} {:>9.2}",
                p,
                n,
                total,
                max,
                per,
                max as f64 / per
            );
        }
    }
}

/// LEM21 + LEM22: balls-in-bins imbalance factors.
pub fn balls_experiment(ps: &[u32], seed: u64) {
    println!("== Lemma 2.1: T = c·P·log P uniform balls → Θ(T/P) per bin whp ==");
    println!("{:>6} {:>6} {:>10} {:>10}", "P", "c", "T", "max/mean");
    for &p in ps {
        for c in [1u64, 4, 16, 64] {
            let t = c * u64::from(p) * logp(p);
            let s = balls::lemma21_trial(t, p as usize, seed);
            println!("{:>6} {:>6} {:>10} {:>10.3}", p, c, t, s.max_over_mean);
        }
    }
    println!("== Lemma 2.2: weighted balls capped at W/(P log P) → O(W/P) whp ==");
    println!(
        "{:>6} {:>12} {:>10} {:>10}",
        "P", "distribution", "balls", "max/mean"
    );
    for &p in ps {
        let base: Vec<u64> = (0..20_000u64).map(|i| 1 + (i % 64)).collect();
        let capped = balls::cap_weights(&base, p as usize);
        let s = balls::lemma22_trial(&capped, p as usize, seed);
        println!(
            "{:>6} {:>12} {:>10} {:>10.3}",
            p,
            "mod-64",
            capped.len(),
            s.max_over_mean
        );
        let heavy: Vec<u64> = (0..256u64).map(|i| (i + 1) * 97).collect();
        let capped = balls::cap_weights(&heavy, p as usize);
        let s = balls::lemma22_trial(&capped, p as usize, seed ^ 1);
        println!(
            "{:>6} {:>12} {:>10} {:>10.3}",
            p,
            "linear-heavy",
            capped.len(),
            s.max_over_mean
        );
    }
}

/// LEM42: per-phase contention of the pivot divide-and-conquer under the
/// same-successor adversary. Returns the per-phase maxima of stage 1 (all
/// but the last entry) and the stage-2 maximum (last entry).
pub fn contention_experiment(p: u32, seed: u64) -> Vec<u32> {
    let cfg = Config::new(p, 1 << 14, seed).with_contention_tracking();
    let mut list = PimSkipList::new(cfg);
    // Sparse resident keys with a huge gap.
    let pairs: Vec<(i64, u64)> = (0..64).map(|i| (i * 10_000_000, i as u64)).collect();
    list.batch_upsert(&pairs);

    let lg = logp(p);
    let batch = (u64::from(p) * lg * lg) as usize;
    // Adversary: distinct keys, all inside one gap → one shared successor.
    let queries = same_successor_flood(seed, 10_000_001, 19_999_999, batch);
    list.batch_successor(&queries);
    list.last_phase_contention.clone()
}

/// Print LEM42.
pub fn print_contention(ps: &[u32], seed: u64) {
    println!("== Lemma 4.2: ≤3 accesses per node per stage-1 phase (same-successor adversary) ==");
    println!(
        "{:>6} {:>14} {:>16}",
        "P", "max stage-1", "stage-2 (O(log P))"
    );
    for &p in ps {
        let phases = contention_experiment(p, seed);
        let stage1_max = phases[..phases.len().saturating_sub(1)]
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let stage2 = phases.last().copied().unwrap_or(0);
        println!("{:>6} {:>14} {:>16}", p, stage1_max, stage2);
    }
}

/// Warm-up batches run before measuring a push-pull structure, so the
/// admitted hot set reflects the workload (admission is count-driven).
pub const PUSH_PULL_WARMUP: usize = 8;

/// FIG3: pivot batch Successor with push-pull off vs on (warm) under the
/// same-successor flood. Both sides run the identical warm-up batches so
/// the comparison isolates the cache, not the measurement position.
pub fn adversarial_experiment(p: u32, seed: u64) -> (BatchCosts, BatchCosts) {
    let build = |push_pull| {
        let mut list = PimSkipList::new(Config::new(p, 1 << 14, seed).with_push_pull(push_pull));
        let pairs: Vec<(i64, u64)> = (0..64).map(|i| (i * 10_000_000, i as u64)).collect();
        list.batch_upsert(&pairs);
        list
    };
    let lg = logp(p);
    let batch = (u64::from(p) * lg * lg) as usize;
    let queries = same_successor_flood(seed ^ 7, 10_000_001, 19_999_999, batch);

    let measure_warm = |push_pull| {
        let mut list = build(push_pull);
        for _ in 0..PUSH_PULL_WARMUP {
            list.batch_successor(&queries);
        }
        let (_, costs) = measure_batch(&mut list, batch, |l| l.batch_successor(&queries));
        costs
    };
    (measure_warm(false), measure_warm(true))
}

/// Print FIG3.
pub fn print_adversarial(ps: &[u32], seed: u64) {
    println!(
        "== Figure 3 / §4.2: pivot D&C, push-pull off vs on (same-successor adversary, warm) =="
    );
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "P", "batch", "off IO", "on IO", "off rounds", "on rounds", "round gain"
    );
    for &p in ps {
        let (off, on) = adversarial_experiment(p, seed);
        println!(
            "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10.1}",
            p,
            off.batch,
            off.io_time,
            on.io_time,
            off.rounds,
            on.rounds,
            off.rounds as f64 / on.rounds.max(1) as f64
        );
    }
}

/// THM51: broadcast range costs across a K sweep.
pub fn range_broadcast_experiment(
    p: u32,
    n: usize,
    ks: &[usize],
    seed: u64,
) -> Vec<(usize, BatchCosts)> {
    let (mut list, keys) = build_loaded_list(p, n, seed);
    ks.iter()
        .map(|&k| {
            let start = (keys.len() - k) / 2;
            let (lo, hi) = (keys[start], keys[start + k - 1]);
            let (r, costs) =
                measure_batch(&mut list, k, |l| l.range_broadcast(lo, hi, RangeFunc::Read));
            assert_eq!(r.items.len(), k);
            (k, costs)
        })
        .collect()
}

/// THM52: tree-structure batched ranges across a κ sweep.
pub fn range_tree_experiment(
    p: u32,
    n: usize,
    kappas: &[usize],
    seed: u64,
) -> Vec<(usize, BatchCosts)> {
    let (mut list, keys) = build_loaded_list(p, n, seed);
    let lg = logp(p) as usize;
    let batch = (p as usize) * lg * lg;
    kappas
        .iter()
        .map(|&kappa| {
            let per = (kappa / batch).max(1);
            let ranges: Vec<(i64, i64)> = (0..batch)
                .map(|i| {
                    let start = (i * 131) % (keys.len() - per);
                    (keys[start], keys[start + per - 1])
                })
                .collect();
            let (res, costs) = measure_batch(&mut list, batch, |l| {
                l.batch_range(&ranges, RangeFunc::Read)
            });
            let covered: u64 = res.iter().map(|r| r.count).sum();
            assert!(covered > 0);
            (kappa, costs)
        })
        .collect()
}

/// Print THM51 + THM52.
pub fn print_ranges(p: u32, n: usize, seed: u64) {
    println!("== Theorem 5.1: broadcast range (P = {p}, n = {n}) ==");
    println!(
        "{:>9} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "K", "rounds", "IO", "PIM", "PIM/(K/P)", "IO/(K/P)"
    );
    let ks = [
        (p as usize) * 8,
        (p as usize) * 32,
        (p as usize) * 128,
        n / 4,
    ];
    for (k, c) in range_broadcast_experiment(p, n, &ks, seed) {
        let kp = k as f64 / f64::from(p);
        println!(
            "{:>9} {:>8} {:>10} {:>10} {:>12.2} {:>10.2}",
            k,
            c.rounds,
            c.io_time,
            c.pim_time,
            c.pim_time as f64 / kp,
            c.io_time as f64 / kp
        );
    }

    println!("== Theorem 5.2: tree-structure batched ranges (P = {p}, n = {n}) ==");
    println!(
        "{:>9} {:>8} {:>10} {:>10} {:>12} {:>10} {:>9}",
        "kappa", "rounds", "IO", "PIM", "PIM/(k/P)", "IO/(k/P)", "sharedM"
    );
    let lg = logp(p) as usize;
    let kappas = [
        (p as usize) * lg * lg,
        (p as usize) * lg * lg * 4,
        (p as usize) * lg * lg * 16,
    ];
    for (kappa, c) in range_tree_experiment(p, n, &kappas, seed) {
        let kp = kappa as f64 / f64::from(p);
        println!(
            "{:>9} {:>8} {:>10} {:>10} {:>12.2} {:>10.2} {:>9}",
            kappa,
            c.rounds,
            c.io_time,
            c.pim_time,
            c.pim_time as f64 / kp,
            c.io_time as f64 / kp,
            c.shared_mem_peak
        );
    }
}

/// One comparison row of the baseline showdown.
#[derive(Debug, Clone)]
pub struct ShowdownRow {
    /// Structure name.
    pub structure: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Measured costs.
    pub costs: BatchCosts,
    /// IO-balance ratio (1 = perfect, P = fully serialised).
    pub io_balance: f64,
}

/// CMP-RANGEPART + CMP-FINEGRAIN: the three structures under uniform,
/// Zipf and single-range adversarial point-query workloads.
pub fn baseline_showdown(p: u32, n: usize, seed: u64) -> Vec<ShowdownRow> {
    let mut gen = PointGen::new(seed ^ 0x5D, 0, (n as i64) * 16);
    let keys = gen.distinct_uniform(n);
    let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, k as u64)).collect();
    let lg = logp(p);
    let batch = (u64::from(p) * lg * lg) as usize;

    // Workloads over resident keys.
    let uniform = gen.from_existing(&keys, batch);
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let hot: Vec<i64> = sorted.iter().copied().step_by(16).collect();
    let zipf = gen.zipf_over(&hot, 0.99, batch);
    // Adversarial: confined to the key-range of one partition of the
    // range-partitioned baseline.
    let domain_hi = (n as i64) * 16;
    let part_width = domain_hi / p as i64;
    let flood = single_range_flood(seed ^ 0xF1, 0, part_width - 1, batch);

    let workloads: Vec<(&'static str, &Vec<i64>)> = vec![
        ("uniform", &uniform),
        ("zipf-0.99", &zipf),
        ("one-range", &flood),
    ];
    let mut rows = Vec::new();

    // PIM-balanced structure.
    let mut ours = PimSkipList::new(Config::new(p, n as u64, seed));
    ours.load(&pairs);
    for (name, w) in &workloads {
        let (_, costs) = measure_batch(&mut ours, batch, |l| l.batch_get(w));
        rows.push(ShowdownRow {
            structure: "pim-balanced",
            workload: name,
            io_balance: costs.io_balance(p),
            costs,
        });
    }

    // Range-partitioned baseline.
    let mut rp = RangePartitionedList::new(p, 0, domain_hi, seed);
    rp.batch_upsert(&pairs);
    for (name, w) in &workloads {
        let before = rp.metrics();
        rp.batch_get(w);
        let costs = BatchCosts::from_diff(batch, before, rp.metrics());
        rows.push(ShowdownRow {
            structure: "range-part",
            workload: name,
            io_balance: costs.io_balance(p),
            costs,
        });
    }

    // Fine-grained baseline — measured on Successor (its weakness is
    // multi-hop searches; Get is hash-shortcut for everyone).
    let mut fine = FineGrainedSkipList::new(p, n as u64, seed);
    fine.batch_upsert(&pairs);
    for (name, w) in &workloads {
        let before = fine.metrics();
        fine.batch_successor(w);
        let costs = BatchCosts::from_diff(batch, before, fine.metrics());
        rows.push(ShowdownRow {
            structure: "fine-grained*",
            workload: name,
            io_balance: costs.io_balance(p),
            costs,
        });
    }
    // Ours on Successor for the fine-grained comparison.
    for (name, w) in &workloads {
        let (_, costs) = measure_batch(&mut ours, batch, |l| l.batch_successor(w));
        rows.push(ShowdownRow {
            structure: "pim-bal (succ)",
            workload: name,
            io_balance: costs.io_balance(p),
            costs,
        });
    }
    rows
}

/// Print the baseline showdown.
pub fn print_baselines(p: u32, n: usize, seed: u64) {
    println!("== §2.2/§3.1 comparison: structures under uniform / skewed / adversarial batches ==");
    println!("   (P = {p}, n = {n}; * = fine-grained measured on Successor, multi-hop searches)");
    println!(
        "{:<15} {:<10} {:>10} {:>10} {:>12} {:>10}",
        "structure", "workload", "IO", "PIM", "messages", "IO-balance"
    );
    for row in baseline_showdown(p, n, seed) {
        println!(
            "{:<15} {:<10} {:>10} {:>10} {:>12} {:>10.2}",
            row.structure,
            row.workload,
            row.costs.io_time,
            row.costs.pim_time,
            row.costs.total_messages,
            row.io_balance
        );
    }
    println!("(IO-balance 1 = perfect; ≈P = serialised on one module)");
}

/// ABL-HLOW: sweep the lower-part height.
pub fn ablation_rows(p: u32, n: usize, seed: u64) -> Vec<(u8, u64, BatchCosts)> {
    let lg = logp(p) as u8;
    let heights: Vec<u8> = (0..=(2 * lg)).collect();
    let batch = (u64::from(p) * u64::from(lg) * u64::from(lg)) as usize;
    heights
        .into_iter()
        .map(|h| {
            let cfg = Config::new(p, n as u64, seed).with_h_low(h);
            let (mut list, keys) = build_loaded_list_with(cfg, n, seed);
            let max_words = list.space_per_module().into_iter().max().unwrap_or(0);
            let mut gen = PointGen::new(seed ^ 0xAA, 0, (n as i64) * 64);
            let queries = gen.from_existing(&keys, batch);
            let (_, costs) = measure_batch(&mut list, batch, |l| l.batch_successor(&queries));
            (h, max_words, costs)
        })
        .collect()
}

/// Print ABL-HLOW.
pub fn print_ablation(p: u32, n: usize, seed: u64) {
    println!("== Ablation §3.1: lower-part height h_low (P = {p}, n = {n}; paper picks h_low = log P = {}) ==", logp(p));
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>8}",
        "h_low", "max words/mod", "succ IO", "succ PIM", "rounds"
    );
    for (h, words, costs) in ablation_rows(p, n, seed) {
        println!(
            "{:>6} {:>14} {:>12} {:>12} {:>8}",
            h, words, costs.io_time, costs.pim_time, costs.rounds
        );
    }
    println!("(h_low = 0: full replication — no search IO but Θ(n) space per module;");
    println!(" h_low ≫ log P: fine-grained — low space but IO grows with every extra hop)");
}

/// FIG3 companion: the round-by-round `h` profile of pivot batch
/// Successor with push-pull off vs on (warm) under the same-successor
/// adversary (uses runtime tracing).
pub fn print_hprofile(p: u32, seed: u64) {
    let build = |push_pull| {
        let mut list = PimSkipList::new(Config::new(p, 1 << 14, seed).with_push_pull(push_pull));
        let pairs: Vec<(i64, u64)> = (0..64).map(|i| (i * 10_000_000, i as u64)).collect();
        list.batch_upsert(&pairs);
        list
    };
    let lg = logp(p);
    let batch = (u64::from(p) * lg * lg) as usize;
    let queries = same_successor_flood(seed ^ 3, 10_000_001, 19_999_999, batch);

    println!("== h-profile per round (P = {p}, batch = {batch}, same-successor adversary) ==");
    let mut off = build(false);
    off.enable_tracing();
    off.batch_successor(&queries);
    let tn = off.take_trace();
    println!(
        "-- pivot D&C (push-pull off): {} rounds, max h = {} --",
        tn.rounds.len(),
        tn.max_h()
    );
    print!("{}", tn.h_profile());

    let mut on = build(true);
    for _ in 0..PUSH_PULL_WARMUP {
        on.batch_successor(&queries);
    }
    on.enable_tracing();
    on.batch_successor(&queries);
    let tp = on.take_trace();
    println!(
        "-- push-pull on (warm): {} rounds, max h = {} --",
        tp.rounds.len(),
        tp.max_h()
    );
    print!("{}", tp.h_profile());
    println!("(off: every descent pays the polylog round tail on the wire;");
    println!(" on: the warm cache resolves the shared prefix on the CPU — few or no rounds)");
}

/// §3.1 path-split claim: "for a search path in this skip list, O(log n)
/// nodes will fall into the upper part and only O(log P) nodes will fall
/// into the lower part whp". Measured by running single-key searches with
/// contention tracking on and classifying the touched handles by arena.
/// Returns (mean upper visits, mean lower visits, max lower visits).
pub fn path_split_experiment(p: u32, n: usize, seed: u64) -> (f64, f64, u64) {
    let cfg = Config::new(p, n as u64, seed);
    let (mut list, keys) = crate::measure::build_loaded_list_with(cfg, n, seed);
    // Module-side counting only: the driver's per-phase drain (Lemma 4.2
    // instrumentation) stays off, so the counts survive the batch call
    // and classify the whole root-to-leaf path.
    list.set_module_contention_tracking(true);
    let mut gen = PointGen::new(seed ^ 0x9A, 0, (n as i64) * 64);
    let queries = gen.from_existing(&keys, 64);
    let (mut up_total, mut low_total, mut low_max) = (0u64, 0u64, 0u64);
    for q in &queries {
        // Drain any prior counts, then run one search.
        for m in 0..p {
            list.drain_contention(m);
        }
        list.batch_successor(&[*q]);
        let (mut up, mut low) = (0u64, 0u64);
        for m in 0..p {
            for (bits, c) in list.drain_contention(m) {
                if pim_runtime::Handle::from_bits(bits).is_replicated() {
                    up += u64::from(c);
                } else {
                    low += u64::from(c);
                }
            }
        }
        up_total += up;
        low_total += low;
        low_max = low_max.max(low);
    }
    (
        up_total as f64 / queries.len() as f64,
        low_total as f64 / queries.len() as f64,
        low_max,
    )
}

/// Print the §3.1 path-split sweep.
pub fn print_path_split(seed: u64) {
    println!("== §3.1: search-path split — O(log n) upper nodes, O(log P) lower nodes ==");
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "P", "n", "upper/query", "lower/query", "max lower", "log n", "log P"
    );
    for (p, n) in [
        (16u32, 2_000usize),
        (16, 16_000),
        (16, 64_000),
        (4, 16_000),
        (64, 16_000),
    ] {
        let (up, low, low_max) = path_split_experiment(p, n, seed);
        println!(
            "{:>6} {:>9} {:>12.1} {:>12.1} {:>10} {:>10} {:>10}",
            p,
            n,
            up,
            low,
            low_max,
            pim_runtime::ceil_log2(n as u64),
            logp(p)
        );
    }
    println!("(upper visits track log n; lower visits track log P and are n-independent)");
}

/// OBS: one fully instrumented session — probe and round trace on, a
/// representative batch of every operation family (Get, Update, Upsert,
/// Delete, tree range, broadcast range) — returning the pieces an
/// [`pim_runtime::ExportBundle`] needs. The load phase runs *before* the
/// probe is enabled so the export covers only the measured operations.
pub fn trace_export_session(
    p: u32,
    n: usize,
    seed: u64,
) -> (pim_runtime::Trace, pim_runtime::ProbeReport) {
    let (mut list, keys) = build_loaded_list(p, n, seed);
    list.enable_tracing_with_cap(1 << 16);
    list.enable_probe();

    let lg = logp(p);
    let small = (u64::from(p) * lg) as usize;
    let large = (u64::from(p) * lg * lg) as usize;
    let mut gen = PointGen::new(seed ^ 0x0B5, 0, (n as i64) * 64);

    let batch = gen.from_existing(&keys, small);
    list.batch_get(&batch);
    let pairs: Vec<(i64, u64)> = gen
        .from_existing(&keys, small)
        .into_iter()
        .map(|k| (k, 1))
        .collect();
    list.batch_update(&pairs);
    let fresh: Vec<(i64, u64)> = gen
        .distinct_uniform(large)
        .into_iter()
        .map(|k| (k + (n as i64) * 128, k as u64))
        .collect();
    list.batch_upsert(&fresh);
    let batch = gen.distinct_from_existing(&keys, large.min(keys.len()));
    list.batch_delete(&batch);
    let span = (n as i64) * 64 / 8;
    list.batch_range(&[(0, span), (span / 2, span * 2)], RangeFunc::Sum);
    list.range_broadcast(0, span, RangeFunc::Count);

    let report = list.take_probe().expect("probe was enabled");
    let trace = list.take_trace();
    (trace, report)
}

/// OBS: run [`trace_export_session`], write the Chrome trace and the JSONL
/// round log into `out_dir`, and print the per-phase cost breakdown (the
/// same §2.1 columns as Table 1, via [`BatchCosts::from_span_stats`]).
pub fn trace_export(out_dir: &str, p: u32, n: usize, seed: u64) -> std::io::Result<()> {
    let (trace, report) = trace_export_session(p, n, seed);
    let bundle = pim_runtime::ExportBundle {
        p,
        trace: &trace,
        report: Some(&report),
    };
    std::fs::create_dir_all(out_dir)?;
    let trace_path = format!("{out_dir}/trace.json");
    let rounds_path = format!("{out_dir}/rounds.jsonl");
    std::fs::write(&trace_path, pim_runtime::chrome_trace(&bundle))?;
    std::fs::write(&rounds_path, pim_runtime::rounds_jsonl(&bundle))?;

    println!("== Observability: per-phase cost breakdown (P = {p}, n = {n}) ==");
    println!(
        "{:<40} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "phase", "calls", "rounds", "IO", "PIM", "msgs", "CPUw", "sharedM"
    );
    for (path, _depth, count, stats) in report.by_path() {
        let c = BatchCosts::from_span_stats(count as usize, &stats);
        println!(
            "{:<40} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            path,
            count,
            c.rounds,
            c.io_time,
            c.pim_time,
            c.total_messages,
            c.cpu_work,
            c.shared_mem_peak
        );
    }
    println!("(exclusive stats: nested phases own their share; load phase ran before the probe)");
    println!("wrote {trace_path}");
    println!("wrote {rounds_path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_have_sane_shapes() {
        let rows = table1_rows(8, 2000, 3);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.costs.io_time > 0, "{} has zero IO", r.op);
            assert!(r.costs.rounds > 0);
        }
    }

    #[test]
    fn contention_stage1_bounded_by_three() {
        let phases = contention_experiment(16, 5);
        assert!(phases.len() >= 2);
        let stage1 = &phases[..phases.len() - 1];
        assert!(
            stage1.iter().all(|&c| c <= 3),
            "Lemma 4.2 violated: stage-1 contention {stage1:?}"
        );
    }

    #[test]
    fn adversarial_pivot_beats_naive() {
        let (naive, pivot) = adversarial_experiment(16, 9);
        assert!(
            naive.io_time > pivot.io_time * 2,
            "pivot D&C should win big: naive {} vs pivot {}",
            naive.io_time,
            pivot.io_time
        );
    }

    #[test]
    fn showdown_serialises_range_partitioning() {
        let rows = baseline_showdown(16, 4000, 11);
        let rp_flood = rows
            .iter()
            .find(|r| r.structure == "range-part" && r.workload == "one-range")
            .unwrap();
        let ours_flood = rows
            .iter()
            .find(|r| r.structure == "pim-balanced" && r.workload == "one-range")
            .unwrap();
        assert!(
            rp_flood.io_balance > 10.0,
            "rp balance {}",
            rp_flood.io_balance
        );
        assert!(
            ours_flood.io_balance < 6.0,
            "ours balance {}",
            ours_flood.io_balance
        );
    }

    #[test]
    fn ablation_space_decreases_with_h_low() {
        let rows = ablation_rows(8, 2000, 13);
        let first = rows.first().unwrap().1; // h_low = 0: full replication
        let last = rows.last().unwrap().1; // deep distribution
        assert!(
            first > last,
            "replication space should shrink: {first} vs {last}"
        );
    }
}
