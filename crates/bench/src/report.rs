//! Shared scaffolding for versioned bench reports.
//!
//! Every report this crate writes (`wallclock`, `service`, `recovery`,
//! `pipeline`, `cluster`) is a JSON object whose first two keys are the
//! same versioned header: a `schema` tag (`pim-<name>-bench/<version>`)
//! and the [`crate::provenance`] block. Builders go through [`document`]
//! so a report cannot forget its header, and gates go through
//! [`expect_schema`] so a schema drift fails loudly instead of being
//! silently misread as zeros.

use pim_runtime::export::{str as jstr, Json};

/// Build a report document: the versioned header (`schema` +
/// `provenance`) followed by the caller's fields, in order.
pub fn document(schema: &str, fields: Vec<(String, Json)>) -> Json {
    let mut all = Vec::with_capacity(fields.len() + 2);
    all.push(("schema".into(), jstr(schema)));
    all.push(("provenance".into(), crate::provenance::provenance_json()));
    all.extend(fields);
    Json::Obj(all)
}

/// Verify a parsed report declares exactly `schema`.
pub fn expect_schema(doc: &Json, schema: &str) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(schema) {
        return Err(format!("not a {schema} document"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_runtime::export::num;

    #[test]
    fn document_leads_with_the_versioned_header() {
        let doc = document("pim-x-bench/1", vec![("n".into(), num(7))]);
        let rendered = doc.to_json();
        let schema_at = rendered.find("\"schema\"").unwrap();
        let prov_at = rendered.find("\"provenance\"").unwrap();
        let n_at = rendered.find("\"n\"").unwrap();
        assert!(schema_at < prov_at && prov_at < n_at);
        assert!(expect_schema(&doc, "pim-x-bench/1").is_ok());
        assert!(expect_schema(&doc, "pim-x-bench/2").is_err());
    }
}
