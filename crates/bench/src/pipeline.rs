//! Inter-batch round pipelining benchmark and the CI speedup gate.
//!
//! The pipelined op driver (`PIM_PIPELINE`, see `docs/MODEL.md`) overlaps
//! the CPU-side preprocessing of run *k+1* with the module rounds of run
//! *k*. Like [`crate::wallclock`], this module measures the one observable
//! that overlap is allowed to change — elapsed time — and it measures it
//! on streams built to *have* overlap: alternating same-kind chunks, so
//! each `execute` call crosses many coalescible-run boundaries (a
//! homogeneous batch is a single run and pipelines nothing).
//!
//! The sweep times every episode at `pipelined ∈ {off, on}` ×
//! `PIM_THREADS ∈ {1, 2, 4, 8}` and emits a deterministic-schema JSON
//! report (`pim-pipeline-bench/1`, conventionally `BENCH_PR8.json`) with
//! the shared provenance header ([`crate::provenance`]). Every sweep also
//! byte-compares the replies of each configuration against the
//! 1-thread-unpipelined reference in-process — a report produced from a
//! diverging engine is a panic, not a number.
//!
//! [`speedup_gate`] is the CI teeth: it *fails* unless the pipelined
//! engine at ≥ 2 threads beats the unpipelined 1-thread throughput on the
//! gate ops ([`GATE_OPS`]). Speedup evidence is only meaningful on a
//! multi-core host, so the gate reads whichever report was produced on
//! one — the current run when CI has cores, else the recorded multi-core
//! baseline (`ci/bench-baseline-mc.json`) — and errors loudly when
//! neither qualifies rather than passing vacuously.

use std::time::Instant;

use pim_core::{Key, Op, Reply};
use pim_runtime::export::{num, str as jstr, Json};
use pim_runtime::pool::{self, ExecConfig};
use pim_workloads::PointGen;

use crate::measure::build_loaded_list;

/// Schema tag written into every report.
pub const SCHEMA: &str = "pim-pipeline-bench/1";

/// Thread ladder every run sweeps (fixed, host-independent — same
/// rationale as [`crate::wallclock::THREAD_LADDER`]).
pub const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Episodes the speedup gate requires multi-core evidence for.
pub const GATE_OPS: [&str; 2] = ["Get", "Upsert"];

/// All episodes the sweep times, in report order.
pub const OPS: [&str; 2] = ["Get", "Upsert"];

/// Sizing and repetition knobs for one run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineParams {
    /// Modules.
    pub p: u32,
    /// Resident keys.
    pub n: usize,
    /// Same-kind chunks per episode stream (each episode alternates two
    /// kinds, so the stream splits into `2 × chunks` coalescible runs).
    pub chunks: usize,
    /// Minimum timed episodes per point.
    pub reps: usize,
    /// Minimum accumulated timed seconds per point.
    pub min_secs: f64,
    /// Workload seed.
    pub seed: u64,
}

impl PipelineParams {
    /// CI-sized run (`--quick`).
    pub fn quick(seed: u64) -> Self {
        PipelineParams {
            p: 16,
            n: 4_000,
            chunks: 8,
            reps: 3,
            min_secs: 0.05,
            seed,
        }
    }

    /// Full-sized run.
    pub fn full(seed: u64) -> Self {
        PipelineParams {
            p: 32,
            n: 16_000,
            chunks: 16,
            reps: 5,
            min_secs: 0.2,
            seed,
        }
    }
}

/// One timed point: an episode at one (pipeline, threads) configuration.
#[derive(Debug, Clone)]
pub struct PipelinePoint {
    /// Episode name (one of [`OPS`]).
    pub op: &'static str,
    /// Whether the pipelined op driver was enabled.
    pub pipeline: bool,
    /// Worker threads the pool was configured with.
    pub threads: usize,
    /// Timed episodes per second (best of three trials).
    pub episodes_per_sec: f64,
}

/// One episode: a mixed op stream whose run structure feeds the pipeline.
struct Episode {
    op: &'static str,
    ops: Vec<Op>,
    runs: usize,
}

/// Count maximal coalescible runs, exactly as `execute` splits them.
fn count_runs(ops: &[Op]) -> usize {
    let mut runs = 0;
    let mut start = 0;
    while start < ops.len() {
        let mut end = start + 1;
        while end < ops.len() && ops[end].coalesces_with(&ops[start]) {
            end += 1;
        }
        runs += 1;
        start = end;
    }
    runs
}

/// Build the episode streams. Every episode leaves the resident set
/// unchanged, so repeated executions do identical model work:
///
/// * `Get`: alternating Get / in-place-Update chunks over resident keys —
///   the read-dominated shape `pim-service` produces when it regroups a
///   read epoch by kind.
/// * `Upsert`: alternating fresh-Upsert / Delete-of-the-same chunks — the
///   write-side shape, exercising pair staging and restoring the list.
fn build_episodes(params: &PipelineParams, keys: &[Key]) -> Vec<Episode> {
    let lg = u64::from(pim_runtime::ceil_log2(u64::from(params.p)));
    let chunk = (u64::from(params.p) * lg) as usize;
    let mut gen = PointGen::new(params.seed ^ 0x919E, 0, (params.n as i64) * 64);

    let mut get_ops = Vec::with_capacity(2 * params.chunks * chunk);
    for _ in 0..params.chunks {
        for k in gen.from_existing(keys, chunk) {
            get_ops.push(Op::Get { key: k });
        }
        for k in gen.from_existing(keys, chunk) {
            get_ops.push(Op::Update { key: k, value: 1 });
        }
    }

    let fresh: Vec<Key> = gen
        .distinct_uniform(params.chunks * chunk)
        .into_iter()
        .map(|k| k + (params.n as i64) * 128)
        .collect();
    let mut upsert_ops = Vec::with_capacity(2 * params.chunks * chunk);
    for c in fresh.chunks(chunk) {
        for &k in c {
            upsert_ops.push(Op::Upsert {
                key: k,
                value: k as u64,
            });
        }
        for &k in c {
            upsert_ops.push(Op::Delete { key: k });
        }
    }

    [("Get", get_ops), ("Upsert", upsert_ops)]
        .into_iter()
        .map(|(op, ops)| {
            let runs = count_runs(&ops);
            Episode { op, ops, runs }
        })
        .collect()
}

/// Run the full sweep: every episode at `pipelined ∈ {off, on}` × every
/// thread count. Panics if any configuration's replies diverge from the
/// 1-thread-unpipelined reference (the in-episode byte-identity check).
/// Leaves the global pool configured with the last ladder entry.
pub fn run_sweep(
    params: &PipelineParams,
) -> (Vec<(&'static str, usize, usize)>, Vec<PipelinePoint>) {
    let mut points = Vec::new();
    let mut shapes: Vec<(&'static str, usize, usize)> = Vec::new();
    let mut reference: Vec<(&'static str, Vec<Reply>)> = Vec::new();
    for pipeline in [false, true] {
        for &threads in &THREAD_LADDER {
            pool::configure(ExecConfig::with_threads(threads));
            let (mut list, keys) = build_loaded_list(params.p, params.n, params.seed);
            list.set_pipeline(pipeline);
            let episodes = build_episodes(params, &keys);
            for ep in &episodes {
                // Warmup doubles as the sanity check: replies must be
                // byte-identical to the unpipelined 1-thread reference.
                let replies = list.execute(&ep.ops);
                match reference.iter().find(|(op, _)| *op == ep.op) {
                    None => {
                        shapes.push((ep.op, ep.ops.len(), ep.runs));
                        reference.push((ep.op, replies));
                    }
                    Some((_, want)) => assert_eq!(
                        &replies, want,
                        "{}: pipelined={pipeline} threads={threads} diverged from reference",
                        ep.op
                    ),
                }
                let mut best = 0.0f64;
                for _ in 0..3 {
                    let mut total = 0.0f64;
                    let mut count = 0usize;
                    while count < params.reps || total < params.min_secs {
                        let t = Instant::now();
                        std::hint::black_box(list.execute(&ep.ops));
                        total += t.elapsed().as_secs_f64();
                        count += 1;
                    }
                    best = best.max(count as f64 / total);
                }
                points.push(PipelinePoint {
                    op: ep.op,
                    pipeline,
                    threads,
                    episodes_per_sec: best,
                });
            }
        }
    }
    (shapes, points)
}

/// Assemble the `pim-pipeline-bench/1` report. Key order and structure
/// are fixed; only measured values vary run to run. `host_cpus` is a
/// parameter (not re-probed) so the gate's unit tests can fabricate
/// single- and multi-core reports.
pub fn report_json(
    params: &PipelineParams,
    quick: bool,
    host_cpus: u64,
    calibration_mops: f64,
    shapes: &[(&'static str, usize, usize)],
    points: &[PipelinePoint],
) -> Json {
    let mut ops_arr = Vec::new();
    for op in OPS {
        let (batch, runs) = shapes
            .iter()
            .find(|(o, _, _)| *o == op)
            .map_or((0, 0), |&(_, b, r)| (b, r));
        let points_arr: Vec<Json> = points
            .iter()
            .filter(|pt| pt.op == op)
            .map(|pt| {
                Json::Obj(vec![
                    ("pipeline".into(), Json::Bool(pt.pipeline)),
                    ("threads".into(), num(pt.threads as u64)),
                    ("episodes_per_sec".into(), Json::Num(pt.episodes_per_sec)),
                ])
            })
            .collect();
        ops_arr.push(Json::Obj(vec![
            ("op".into(), jstr(op)),
            ("batch".into(), num(batch as u64)),
            ("runs".into(), num(runs as u64)),
            ("points".into(), Json::Arr(points_arr)),
        ]));
    }
    crate::report::document(
        SCHEMA,
        vec![
            ("quick".into(), Json::Bool(quick)),
            ("p".into(), num(u64::from(params.p))),
            ("n".into(), num(params.n as u64)),
            ("chunks".into(), num(params.chunks as u64)),
            ("reps".into(), num(params.reps as u64)),
            ("seed".into(), num(params.seed)),
            ("host_cpus".into(), num(host_cpus)),
            ("calibration_mops".into(), Json::Num(calibration_mops)),
            ("ops".into(), Json::Arr(ops_arr)),
        ],
    )
}

/// Run the whole harness and write the report to `out_path`. Prints a
/// human-readable table (episodes/sec, pipelined vs not) to stdout.
pub fn run_pipeline(quick: bool, out_path: &str, seed: u64) -> std::io::Result<()> {
    let params = if quick {
        PipelineParams::quick(seed)
    } else {
        PipelineParams::full(seed)
    };
    println!(
        "== Pipeline sweep: mixed-run episodes × pipelined ∈ {{off, on}} × PIM_THREADS ∈ {:?} (P = {}, n = {}) ==",
        THREAD_LADDER, params.p, params.n
    );
    let calibration_mops = crate::wallclock::calibrate();
    let (shapes, points) = run_sweep(&params);
    pool::configure(ExecConfig::from_env());

    println!(
        "{:<8} {:>9} {:>6} {:>8} {:>14} {:>12}",
        "op", "pipeline", "runs", "threads", "episodes/sec", "vs off@same"
    );
    for (op, _, runs) in &shapes {
        for pt in points.iter().filter(|pt| pt.op == *op) {
            let off = points
                .iter()
                .find(|q| q.op == *op && !q.pipeline && q.threads == pt.threads)
                .map_or(0.0, |q| q.episodes_per_sec);
            println!(
                "{:<8} {:>9} {:>6} {:>8} {:>14.2} {:>11.2}x",
                pt.op,
                if pt.pipeline { "on" } else { "off" },
                runs,
                pt.threads,
                pt.episodes_per_sec,
                if off > 0.0 {
                    pt.episodes_per_sec / off
                } else {
                    0.0
                }
            );
        }
    }
    println!("(replies byte-compared against the unpipelined 1-thread reference in-process)");

    let host_cpus = std::thread::available_parallelism().map_or(1, |c| c.get() as u64);
    let report = report_json(
        &params,
        quick,
        host_cpus,
        calibration_mops,
        &shapes,
        &points,
    );
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(out_path, report.to_json() + "\n")?;
    println!("wrote {out_path}");
    Ok(())
}

/// One speedup-gate verdict row.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Episode name.
    pub op: String,
    /// Unpipelined 1-thread throughput (the bar to beat).
    pub base_1t: f64,
    /// Best pipelined throughput over threads ≥ 2.
    pub best_pipelined: f64,
    /// Thread count of the best pipelined point.
    pub best_threads: u64,
    /// `best_pipelined / base_1t`.
    pub speedup: f64,
    /// Whether the bar was missed.
    pub failed: bool,
}

fn doc_points(doc: &Json) -> Result<Vec<(String, bool, u64, f64)>, String> {
    crate::report::expect_schema(doc, SCHEMA)?;
    let mut out = Vec::new();
    for op in doc
        .get("ops")
        .and_then(Json::as_array)
        .ok_or("missing ops array")?
    {
        let name = op
            .get("op")
            .and_then(Json::as_str)
            .ok_or("op entry missing name")?;
        for pt in op
            .get("points")
            .and_then(Json::as_array)
            .ok_or("op entry missing points array")?
        {
            let pipeline = pt
                .get("pipeline")
                .and_then(Json::as_bool)
                .ok_or("point missing pipeline flag")?;
            let threads = pt
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or("point missing thread count")?;
            let eps = pt
                .get("episodes_per_sec")
                .and_then(Json::as_f64)
                .ok_or("point missing episodes_per_sec")?;
            out.push((name.to_string(), pipeline, threads, eps));
        }
    }
    Ok(out)
}

fn doc_host_cpus(doc: &Json) -> Result<u64, String> {
    doc.get("host_cpus")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing host_cpus".into())
}

/// Pick the speedup evidence and judge it. All comparisons are *within*
/// one report (same host, same calibration), so no normalisation is
/// needed; the only cross-report decision is which report constitutes
/// evidence: the current run when its host had ≥ 2 CPUs, else the
/// recorded multi-core baseline, else a loud error — single-core hosts
/// cannot demonstrate (or honestly refute) overlap speedup, and the gate
/// must never pass vacuously.
///
/// Returns the verdict rows plus a description of the evidence used.
pub fn speedup_gate_compare(
    current: &Json,
    baseline: &Json,
) -> Result<(Vec<SpeedupRow>, &'static str), String> {
    let cur_cpus = doc_host_cpus(current).map_err(|e| format!("current: {e}"))?;
    let base_cpus = doc_host_cpus(baseline).map_err(|e| format!("baseline: {e}"))?;
    let (doc, which) = if cur_cpus >= 2 {
        (current, "current report")
    } else if base_cpus >= 2 {
        (baseline, "recorded multi-core baseline")
    } else {
        return Err(format!(
            "no multi-core evidence: current host_cpus = {cur_cpus}, baseline host_cpus = \
             {base_cpus}; rerun on a multi-core machine or regenerate the recorded baseline \
             (see ci/README.md)"
        ));
    };
    let points = doc_points(doc).map_err(|e| format!("{which}: {e}"))?;
    let mut rows = Vec::new();
    for op in GATE_OPS {
        let base_1t = points
            .iter()
            .find(|(o, pipeline, threads, _)| o == op && !pipeline && *threads == 1)
            .map(|&(_, _, _, v)| v)
            .ok_or_else(|| format!("{which} is missing {op} unpipelined @ 1 thread"))?;
        let (best_threads, best_pipelined) = points
            .iter()
            .filter(|(o, pipeline, threads, _)| o == op && *pipeline && *threads >= 2)
            .map(|&(_, _, t, v)| (t, v))
            .fold(
                (0u64, f64::NEG_INFINITY),
                |acc, p| {
                    if p.1 > acc.1 {
                        p
                    } else {
                        acc
                    }
                },
            );
        if best_threads == 0 {
            return Err(format!(
                "{which} has no pipelined ≥ 2-thread points for {op}"
            ));
        }
        rows.push(SpeedupRow {
            op: op.to_string(),
            base_1t,
            best_pipelined,
            best_threads,
            speedup: if base_1t > 0.0 {
                best_pipelined / base_1t
            } else {
                f64::INFINITY
            },
            failed: best_pipelined <= base_1t,
        });
    }
    Ok((rows, which))
}

/// CLI entry for `perf-gate --require-speedup`: load both reports, judge
/// the speedup evidence, print the table, and return whether the gate
/// passed. Errors (including the no-multi-core-evidence case) are gate
/// failures.
pub fn speedup_gate(current_path: &str, baseline_path: &str) -> Result<bool, String> {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        pim_runtime::export::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let current = load(current_path)?;
    let baseline = load(baseline_path)?;
    let (rows, which) = speedup_gate_compare(&current, &baseline)?;
    println!("== speedup gate: {current_path} vs {baseline_path} (evidence: {which}) ==");
    println!(
        "{:<8} {:>16} {:>22} {:>9} {:>6}",
        "op", "off @ 1 thread", "best on @ ≥2 threads", "speedup", "gate"
    );
    let mut pass = true;
    for r in &rows {
        println!(
            "{:<8} {:>16.2} {:>15.2} @ {:>2}t {:>9.2} {:>6}",
            r.op,
            r.base_1t,
            r.best_pipelined,
            r.best_threads,
            r.speedup,
            if r.failed { "FAIL" } else { "ok" }
        );
        pass &= !r.failed;
    }
    Ok(pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fabricate a report whose unpipelined points run at `base_eps` and
    /// whose pipelined points all run at `base_eps * pipe_factor`.
    fn synthetic_report(host_cpus: u64, base_eps: f64, pipe_factor: f64) -> Json {
        let params = PipelineParams::quick(1);
        let shapes: Vec<(&'static str, usize, usize)> =
            OPS.iter().map(|&op| (op, 1024, 16)).collect();
        let mut points = Vec::new();
        for &op in &OPS {
            for pipeline in [false, true] {
                for &threads in &THREAD_LADDER {
                    let eps = if pipeline {
                        base_eps * pipe_factor
                    } else {
                        base_eps
                    };
                    points.push(PipelinePoint {
                        op,
                        pipeline,
                        threads,
                        episodes_per_sec: eps,
                    });
                }
            }
        }
        report_json(&params, true, host_cpus, 1000.0, &shapes, &points)
    }

    #[test]
    fn gate_passes_when_pipelined_multicore_beats_scalar_baseline() {
        // Pipelined @ ≥2 threads is 2×·log2(threads) the scalar rate.
        let current = synthetic_report(8, 100.0, 2.0);
        let baseline = synthetic_report(8, 100.0, 2.0);
        let (rows, which) = speedup_gate_compare(&current, &baseline).unwrap();
        assert_eq!(which, "current report");
        assert_eq!(rows.len(), GATE_OPS.len());
        assert!(rows.iter().all(|r| !r.failed), "rows: {rows:?}");
        assert!(rows.iter().all(|r| r.speedup > 1.0 && r.best_threads >= 2));
    }

    #[test]
    fn gate_fails_when_pipelining_buys_nothing() {
        // Pipelined points exactly match the scalar rate: no speedup.
        let flat = synthetic_report(8, 100.0, 0.5);
        let (rows, _) = speedup_gate_compare(&flat, &flat).unwrap();
        assert!(
            rows.iter().all(|r| r.failed),
            "a flat profile must fail the gate: {rows:?}"
        );
    }

    #[test]
    fn gate_prefers_current_evidence_but_falls_back_to_baseline() {
        // Single-core current run: the recorded multi-core baseline is the
        // evidence, and its (good) numbers pass the gate.
        let current = synthetic_report(1, 100.0, 2.0);
        let baseline = synthetic_report(4, 100.0, 2.0);
        let (rows, which) = speedup_gate_compare(&current, &baseline).unwrap();
        assert_eq!(which, "recorded multi-core baseline");
        assert!(rows.iter().all(|r| !r.failed));
    }

    #[test]
    fn gate_errors_loudly_without_multicore_evidence() {
        // Both reports from single-core hosts: error, never a vacuous pass.
        let single = synthetic_report(1, 100.0, 2.0);
        let err = speedup_gate_compare(&single, &single).unwrap_err();
        assert!(err.contains("no multi-core evidence"), "got: {err}");
    }

    #[test]
    fn gate_rejects_wrong_schema_and_missing_points() {
        let good = synthetic_report(8, 100.0, 2.0);
        let bad = Json::Obj(vec![
            ("schema".into(), jstr("something-else")),
            ("host_cpus".into(), num(8)),
        ]);
        assert!(speedup_gate_compare(&bad, &good).is_err());
        // Strip the ops array: structurally valid schema, no evidence rows.
        let hollow = Json::Obj(vec![
            ("schema".into(), jstr(SCHEMA)),
            ("host_cpus".into(), num(8)),
            ("ops".into(), Json::Arr(Vec::new())),
        ]);
        let err = speedup_gate_compare(&hollow, &good).unwrap_err();
        assert!(err.contains("missing"), "got: {err}");
    }

    #[test]
    fn report_schema_is_deterministic() {
        let strip = |j: &Json| -> String {
            fn zero(j: &Json) -> Json {
                match j {
                    Json::Num(_) => Json::Num(0.0),
                    Json::Arr(a) => Json::Arr(a.iter().map(zero).collect()),
                    Json::Obj(f) => {
                        Json::Obj(f.iter().map(|(k, v)| (k.clone(), zero(v))).collect())
                    }
                    other => other.clone(),
                }
            }
            zero(j).to_json()
        };
        assert_eq!(
            strip(&synthetic_report(1, 1.0, 1.0)),
            strip(&synthetic_report(8, 9.0, 3.0))
        );
    }

    #[test]
    fn sweep_smoke() {
        // Tiny run: every (op, pipeline, threads) point produces a
        // positive rate, and the in-episode reply comparison holds.
        let params = PipelineParams {
            p: 4,
            n: 300,
            chunks: 2,
            reps: 1,
            min_secs: 0.0,
            seed: 3,
        };
        let (shapes, points) = run_sweep(&params);
        pool::configure(ExecConfig::from_env());
        assert_eq!(points.len(), OPS.len() * 2 * THREAD_LADDER.len());
        assert!(points.iter().all(|pt| pt.episodes_per_sec > 0.0));
        // Alternating chunks really do split into many runs.
        assert!(shapes
            .iter()
            .all(|&(_, batch, runs)| runs >= 4 && batch > 0));
    }
}
