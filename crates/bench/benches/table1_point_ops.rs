//! T1-GET row of Table 1: batched Get/Update wall-clock across `P`.
//!
//! Complements `experiments table1`, which reports the model metrics; the
//! wall clock here tracks the simulator's real execution of the same
//! batches (batch size `P log P`, resident keys, plus the duplicate-flood
//! adversary that the semisort dedup must absorb).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_bench::build_loaded_list;
use pim_workloads::{duplicate_flood, PointGen};

fn bench_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/get");
    g.sample_size(20);
    for p in [8u32, 32, 128] {
        let n = 16_000;
        let (mut list, keys) = build_loaded_list(p, n, 42);
        let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
        let batch = p as usize * lg;
        let mut gen = PointGen::new(7, 0, n as i64 * 64);
        let queries = gen.from_existing(&keys, batch);
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("uniform", p), &p, |b, _| {
            b.iter(|| list.batch_get(&queries));
        });
        let flood = duplicate_flood(keys[0], batch);
        g.bench_with_input(BenchmarkId::new("dup-flood", p), &p, |b, _| {
            b.iter(|| list.batch_get(&flood));
        });
    }
    g.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/update");
    g.sample_size(20);
    for p in [8u32, 32, 128] {
        let n = 16_000;
        let (mut list, keys) = build_loaded_list(p, n, 43);
        let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
        let batch = p as usize * lg;
        let mut gen = PointGen::new(8, 0, n as i64 * 64);
        let pairs: Vec<(i64, u64)> = gen
            .from_existing(&keys, batch)
            .into_iter()
            .map(|k| (k, 1))
            .collect();
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("uniform", p), &p, |b, _| {
            b.iter(|| list.batch_update(&pairs));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_get, bench_update);
criterion_main!(benches);
