//! T1-UPS / T1-DEL rows of Table 1: batched Upsert and Delete.
//!
//! Upsert benches insert fresh keys each iteration (the structure grows
//! slowly across samples — the trend across `P` is what matters). Delete
//! benches delete-and-reinsert so the structure size is stationary.

use std::cell::Cell;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_bench::build_loaded_list;

fn bench_upsert(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/upsert");
    g.sample_size(10);
    for p in [8u32, 32, 128] {
        let n = 16_000;
        let (mut list, _) = build_loaded_list(p, n, 47);
        let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
        let batch = p as usize * lg * lg;
        let counter = Cell::new(0i64);
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("fresh-keys", p), &p, |b, _| {
            b.iter(|| {
                let base = 2_000_000 + counter.get() * batch as i64;
                counter.set(counter.get() + 1);
                let pairs: Vec<(i64, u64)> =
                    (0..batch as i64).map(|i| (base + i, i as u64)).collect();
                list.batch_upsert(&pairs)
            });
        });
    }
    g.finish();
}

fn bench_delete(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/delete");
    g.sample_size(10);
    for p in [8u32, 32, 128] {
        let n = 16_000;
        let (mut list, keys) = build_loaded_list(p, n, 48);
        let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
        let batch = (p as usize * lg * lg).min(keys.len() / 2);
        let victims: Vec<i64> = keys.iter().copied().step_by(2).take(batch).collect();
        let pairs: Vec<(i64, u64)> = victims.iter().map(|&k| (k, k as u64)).collect();
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("delete+reinsert", p), &p, |b, _| {
            b.iter(|| {
                list.batch_delete(&victims);
                list.batch_upsert(&pairs)
            });
        });
    }
    g.finish();
}

fn bench_delete_contiguous(c: &mut Criterion) {
    // The contiguous-run adversary: one long marked run through the list
    // contraction (§4.4's hard case).
    let mut g = c.benchmark_group("table1/delete-contiguous");
    g.sample_size(10);
    let p = 32u32;
    let mut list = pim_core::PimSkipList::new(pim_core::Config::new(p, 1 << 15, 49));
    let pairs: Vec<(i64, u64)> = (0..16_000).map(|i| (i, i as u64)).collect();
    list.load(&pairs);
    let run: Vec<i64> = (4_000..8_000).collect();
    let reinsert: Vec<(i64, u64)> = run.iter().map(|&k| (k, k as u64)).collect();
    g.throughput(Throughput::Elements(run.len() as u64));
    g.bench_function("run-4000", |b| {
        b.iter(|| {
            list.batch_delete(&run);
            list.batch_upsert(&reinsert)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_upsert, bench_delete, bench_delete_contiguous);
criterion_main!(benches);
