//! ABL-HLOW: the replication-height trade-off of §3.1 in wall clock —
//! batched Successor as `h_low` sweeps from full replication (0) to
//! near-fine-grained (`2 log P`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_core::{Config, PimSkipList};
use pim_workloads::PointGen;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/h_low");
    g.sample_size(10);
    let p = 16u32;
    let n = 8_000usize;
    let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
    let batch = p as usize * lg * lg;
    for h_low in [0u8, 2, 4, 6, 8] {
        let cfg = Config::new(p, n as u64, 70).with_h_low(h_low);
        let mut list = PimSkipList::new(cfg);
        let mut gen = PointGen::new(71, 0, n as i64 * 16);
        let keys = gen.distinct_uniform(n);
        let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, k as u64)).collect();
        list.load(&pairs);
        let queries = gen.from_existing(&keys, batch);
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(h_low), &h_low, |b, _| {
            b.iter(|| list.batch_successor(&queries));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
