//! THM31 companion: construction throughput and the per-module space the
//! built structure settles at (the space numbers themselves are printed by
//! `experiments space`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_core::{Config, PimSkipList};
use pim_workloads::PointGen;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm31/build");
    g.sample_size(10);
    for p in [8u32, 64] {
        let n = 8_000usize;
        let mut gen = PointGen::new(80, 0, n as i64 * 16);
        let keys = gen.distinct_uniform(n);
        let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, k as u64)).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("load", p), &p, |b, &p| {
            b.iter(|| {
                let mut list = PimSkipList::new(Config::new(p, n as u64, 81));
                list.load(&pairs);
                assert_eq!(list.len(), n as u64);
                list.space_per_module().into_iter().max()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
