//! FIG3: pivot divide-and-conquer with push-pull off vs on (warm cache)
//! under the same-successor adversary (§4.2). The model-metric gap is
//! reported by `experiments adversarial`; this measures the corresponding
//! wall-clock gap on the simulator (the warm cache resolves the flood's
//! shared prefix on the CPU instead of burning rounds on the wire).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_core::{Config, PimSkipList};
use pim_workloads::same_successor_flood;

fn setup(p: u32, seed: u64, push_pull: bool) -> PimSkipList {
    let mut list = PimSkipList::new(Config::new(p, 1 << 14, seed).with_push_pull(push_pull));
    let pairs: Vec<(i64, u64)> = (0..64).map(|i| (i * 10_000_000, i as u64)).collect();
    list.batch_upsert(&pairs);
    list
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/same-successor");
    g.sample_size(10);
    for p in [8u32, 32] {
        let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
        let batch = p as usize * lg * lg;
        let queries = same_successor_flood(5, 10_000_001, 19_999_999, batch);
        g.throughput(Throughput::Elements(batch as u64));

        let mut off = setup(p, 1, false);
        g.bench_with_input(BenchmarkId::new("push-pull-off", p), &p, |b, _| {
            b.iter(|| off.batch_successor(&queries));
        });
        let mut on = setup(p, 1, true);
        for _ in 0..8 {
            on.batch_successor(&queries); // warm the hot-node cache
        }
        g.bench_with_input(BenchmarkId::new("push-pull-on", p), &p, |b, _| {
            b.iter(|| on.batch_successor(&queries));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
