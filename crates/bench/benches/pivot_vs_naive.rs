//! FIG3: the pivot divide-and-conquer vs the naïve batch search under the
//! same-successor adversary (§4.2). The model-metric gap is reported by
//! `experiments adversarial`; this measures the corresponding wall-clock
//! gap on the simulator (the naïve version burns rounds on serialised
//! `h`-relations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_core::{Config, PimSkipList};
use pim_workloads::same_successor_flood;

fn setup(p: u32, seed: u64) -> PimSkipList {
    let mut list = PimSkipList::new(Config::new(p, 1 << 14, seed));
    let pairs: Vec<(i64, u64)> = (0..64).map(|i| (i * 10_000_000, i as u64)).collect();
    list.batch_upsert(&pairs);
    list
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/same-successor");
    g.sample_size(10);
    for p in [8u32, 32] {
        let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
        let batch = p as usize * lg * lg;
        let queries = same_successor_flood(5, 10_000_001, 19_999_999, batch);
        g.throughput(Throughput::Elements(batch as u64));

        let mut naive = setup(p, 1);
        g.bench_with_input(BenchmarkId::new("naive", p), &p, |b, _| {
            #[allow(deprecated)] // deliberately benching the strawman
            b.iter(|| naive.batch_successor_naive(&queries));
        });
        let mut pivot = setup(p, 1);
        g.bench_with_input(BenchmarkId::new("pivot", p), &p, |b, _| {
            b.iter(|| pivot.batch_successor(&queries));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
