//! LEM21/LEM22: balls-in-bins games underpinning every PIM-balance proof.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_runtime::balls;

fn bench_lemma21(c: &mut Criterion) {
    let mut g = c.benchmark_group("balls/lemma21");
    for p in [64usize, 1024] {
        let t = 16 * p as u64 * u64::from(pim_runtime::ceil_log2(p as u64));
        g.throughput(Throughput::Elements(t));
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| balls::lemma21_trial(t, p, 42));
        });
    }
    g.finish();
}

fn bench_lemma22(c: &mut Criterion) {
    let mut g = c.benchmark_group("balls/lemma22");
    for p in [64usize, 1024] {
        let weights: Vec<u64> = (0..50_000u64).map(|i| 1 + (i % 37)).collect();
        let capped = balls::cap_weights(&weights, p);
        g.throughput(Throughput::Elements(capped.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| balls::lemma22_trial(&capped, p, 43));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lemma21, bench_lemma22);
criterion_main!(benches);
