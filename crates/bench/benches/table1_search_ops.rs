//! T1-SUCC row of Table 1: batched Successor/Predecessor across `P` and
//! `n` (bounds `O(log³P)` IO / `O(log²P·log n)` PIM are `n`-independent in
//! IO — the `n` sweep checks that).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_bench::build_loaded_list;
use pim_workloads::PointGen;

fn bench_successor_p_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/successor-p");
    g.sample_size(10);
    for p in [8u32, 32, 128] {
        let n = 16_000;
        let (mut list, _) = build_loaded_list(p, n, 44);
        let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
        let batch = p as usize * lg * lg;
        let mut gen = PointGen::new(9, 0, n as i64 * 64);
        let queries = gen.uniform(batch);
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("uniform", p), &p, |b, _| {
            b.iter(|| list.batch_successor(&queries));
        });
    }
    g.finish();
}

fn bench_successor_n_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/successor-n");
    g.sample_size(10);
    let p = 32u32;
    for n in [4_000usize, 16_000, 64_000] {
        let (mut list, _) = build_loaded_list(p, n, 45);
        let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
        let batch = p as usize * lg * lg;
        let mut gen = PointGen::new(10, 0, n as i64 * 64);
        let queries = gen.uniform(batch);
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, _| {
            b.iter(|| list.batch_successor(&queries));
        });
    }
    g.finish();
}

fn bench_predecessor(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/predecessor");
    g.sample_size(10);
    let p = 32u32;
    let n = 16_000;
    let (mut list, _) = build_loaded_list(p, n, 46);
    let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
    let batch = p as usize * lg * lg;
    let mut gen = PointGen::new(11, 0, n as i64 * 64);
    let queries = gen.uniform(batch);
    g.throughput(Throughput::Elements(batch as u64));
    g.bench_function("uniform", |b| {
        b.iter(|| list.batch_predecessor(&queries));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_successor_p_sweep,
    bench_successor_n_sweep,
    bench_predecessor
);
criterion_main!(benches);
