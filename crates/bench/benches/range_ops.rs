//! THM51/THM52: range operations — broadcast flavour across `K`, tree
//! flavour across `κ`, plus the small-range regime where the tree flavour
//! should win (the crossover motivating §5.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_bench::build_loaded_list;
use pim_core::RangeFunc;

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm51/broadcast");
    g.sample_size(10);
    let p = 32u32;
    let n = 32_000;
    let (mut list, keys) = build_loaded_list(p, n, 50);
    for k in [256usize, 2048, 16_000] {
        let start = (keys.len() - k) / 2;
        let (lo, hi) = (keys[start], keys[start + k - 1]);
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::new("read", k), &k, |b, _| {
            b.iter(|| list.range_broadcast(lo, hi, RangeFunc::Read));
        });
    }
    g.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm52/tree");
    g.sample_size(10);
    let p = 32u32;
    let n = 32_000;
    let (mut list, keys) = build_loaded_list(p, n, 51);
    let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
    let batch = p as usize * lg * lg;
    for per in [2usize, 8, 32] {
        let ranges: Vec<(i64, i64)> = (0..batch)
            .map(|i| {
                let s = (i * 197) % (keys.len() - per);
                (keys[s], keys[s + per - 1])
            })
            .collect();
        g.throughput(Throughput::Elements((batch * per) as u64));
        g.bench_with_input(BenchmarkId::new("read-kappa", batch * per), &per, |b, _| {
            b.iter(|| list.batch_range(&ranges, RangeFunc::Read));
        });
    }
    g.finish();
}

fn bench_crossover(c: &mut Criterion) {
    // §5.2's motivation: "broadcasting is wasteful for small ranges".
    // Compare both flavours on a single small range vs a single huge one.
    let mut g = c.benchmark_group("range/crossover");
    g.sample_size(10);
    let p = 32u32;
    let n = 32_000;
    let (mut list, keys) = build_loaded_list(p, n, 52);
    for k in [16usize, 16_000] {
        let start = (keys.len() - k) / 2;
        let (lo, hi) = (keys[start], keys[start + k - 1]);
        g.bench_with_input(BenchmarkId::new("broadcast", k), &k, |b, _| {
            b.iter(|| list.range_broadcast(lo, hi, RangeFunc::Count));
        });
        g.bench_with_input(BenchmarkId::new("tree", k), &k, |b, _| {
            b.iter(|| list.batch_range(&[(lo, hi)], RangeFunc::Count));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_broadcast, bench_tree, bench_crossover);
criterion_main!(benches);
