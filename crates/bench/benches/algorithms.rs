//! Throughput of the further PIM-model algorithms (`pim-algorithms`):
//! the striped FIFO queue and the unordered map, vs the ordered skip list
//! on the same point workload (the price of order).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_algorithms::{PimHashMap, PimQueue};
use pim_core::{Config, PimSkipList};

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithms/queue");
    g.sample_size(20);
    for p in [8u32, 64] {
        let mut q = PimQueue::new(p);
        let batch: Vec<u64> = (0..4096).collect();
        g.throughput(Throughput::Elements(batch.len() as u64));
        g.bench_with_input(BenchmarkId::new("enqueue+dequeue", p), &p, |b, _| {
            b.iter(|| {
                q.batch_enqueue(&batch);
                q.batch_dequeue(batch.len())
            });
        });
    }
    g.finish();
}

fn bench_map_vs_skiplist_gets(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithms/point-gets");
    g.sample_size(20);
    let p = 32u32;
    let n = 16_000usize;
    let pairs: Vec<(i64, u64)> = (0..n as i64).map(|i| (i * 7, i as u64)).collect();
    let keys: Vec<i64> = pairs.iter().map(|&(k, _)| k).step_by(4).take(800).collect();

    let mut map = PimHashMap::new(p, 3);
    map.batch_upsert(&pairs);
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("unordered-map", |b| {
        b.iter(|| map.batch_get(&keys));
    });

    let mut list = PimSkipList::new(Config::new(p, n as u64, 3));
    list.load(&pairs);
    g.bench_function("skip-list", |b| {
        b.iter(|| list.batch_get(&keys));
    });
    g.finish();
}

criterion_group!(benches, bench_queue, bench_map_vs_skiplist_gets);
criterion_main!(benches);
