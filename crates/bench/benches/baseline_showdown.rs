//! CMP-RANGEPART / CMP-FINEGRAIN: the three structures under uniform,
//! Zipf-skewed and single-range adversarial batches (§2.2/§3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pim_baseline::{FineGrainedSkipList, RangePartitionedList};
use pim_core::{Config, PimSkipList};
use pim_workloads::{single_range_flood, PointGen};

fn bench(c: &mut Criterion) {
    let p = 32u32;
    let n = 16_000usize;
    let seed = 60;
    let mut gen = PointGen::new(seed, 0, n as i64 * 16);
    let keys = gen.distinct_uniform(n);
    let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, k as u64)).collect();
    let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
    let batch = p as usize * lg * lg;

    let uniform = gen.from_existing(&keys, batch);
    let hot: Vec<i64> = keys.iter().copied().step_by(16).collect();
    let zipf = gen.zipf_over(&hot, 0.99, batch);
    let domain_hi = n as i64 * 16;
    let flood = single_range_flood(seed ^ 1, 0, domain_hi / p as i64 - 1, batch);

    let mut ours = PimSkipList::new(Config::new(p, n as u64, seed));
    ours.load(&pairs);
    let mut rp = RangePartitionedList::new(p, 0, domain_hi, seed);
    rp.batch_upsert(&pairs);
    let mut fine = FineGrainedSkipList::new(p, n as u64, seed);
    fine.batch_upsert(&pairs);

    let mut g = c.benchmark_group("showdown/get");
    g.sample_size(10);
    g.throughput(Throughput::Elements(batch as u64));
    for (name, w) in [
        ("uniform", &uniform),
        ("zipf", &zipf),
        ("one-range", &flood),
    ] {
        g.bench_with_input(BenchmarkId::new("pim-balanced", name), &(), |b, _| {
            b.iter(|| ours.batch_get(w));
        });
        g.bench_with_input(BenchmarkId::new("range-part", name), &(), |b, _| {
            b.iter(|| rp.batch_get(w));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("showdown/successor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(batch as u64));
    for (name, w) in [("uniform", &uniform), ("one-range", &flood)] {
        g.bench_with_input(BenchmarkId::new("pim-balanced", name), &(), |b, _| {
            b.iter(|| ours.batch_successor(w));
        });
        g.bench_with_input(BenchmarkId::new("fine-grained", name), &(), |b, _| {
            b.iter(|| fine.batch_successor(w));
        });
        g.bench_with_input(BenchmarkId::new("range-part", name), &(), |b, _| {
            b.iter(|| rp.batch_successor(w));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
