//! Cluster ≡ single-machine oracle, deterministically.
//!
//! The property proptest sweeps over in `tests/` rides on the invariants
//! pinned here with fixed seeds: `S = 1` is byte-identical to one
//! machine, `S > 1` is reply-identical up to machine-local entry handles
//! (compared through the canonical wire encoding), shard crash refuses
//! only streams that touch the dead shard, and rebuild/split/recover all
//! land back on oracle contents.

use pim_cluster::{wire, ClusterConfig, PimCluster};
use pim_core::prelude::*;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// A key from a 512-slot pool spread across the whole `i64` line (so a
/// 2/4/8-shard cluster sees real cross-shard traffic *and* point ops get
/// hits): slot ∈ [-256, 255], stride 2^54.
fn pool_key(r: u64) -> Key {
    (((r % 512) as i64) - 256).wrapping_mul(1 << 54)
}

/// `n` mixed ops covering every family and every range function.
fn random_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut s = seed;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let key = pool_key(lcg(&mut s));
        let value = lcg(&mut s);
        ops.push(match lcg(&mut s) % 10 {
            0..=2 => Op::Upsert { key, value },
            3 => Op::Get { key },
            4 => Op::Update { key, value },
            5 => Op::Delete { key },
            6 => Op::Successor { key },
            7 => Op::Predecessor { key },
            _ => {
                let other = pool_key(lcg(&mut s));
                let (lo, hi) = (key.min(other), key.max(other));
                let func = match i % 7 {
                    0 => RangeFunc::Read,
                    1 => RangeFunc::Count,
                    2 => RangeFunc::Sum,
                    3 => RangeFunc::Min,
                    4 => RangeFunc::Max,
                    5 => RangeFunc::FetchAdd(3),
                    _ => RangeFunc::AddInPlace(7),
                };
                Op::Range { lo, hi, func }
            }
        });
    }
    ops
}

fn cfg() -> Config {
    Config::new(4, 1 << 10, 42)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("pim-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn s1_is_byte_identical_to_the_single_machine() {
    let ops = random_ops(0xA11CE, 600);
    let mut oracle = PimSkipList::new(cfg());
    let mut cluster = PimCluster::new(ClusterConfig::new(cfg(), 1));
    let want = oracle.execute(&ops);
    let got = cluster.execute(&ops);
    // Full structural equality — handles included, no canonicalization.
    assert_eq!(got, want);
    assert_eq!(cluster.collect_items(), oracle.collect_items());
    assert_eq!(cluster.rounds(), oracle.metrics().rounds);
}

#[test]
fn sharded_replies_match_oracle_through_the_wire_encoding() {
    let ops = random_ops(0xBEEF, 800);
    let mut oracle = PimSkipList::new(cfg());
    let want = wire::encode_replies(&oracle.execute(&ops));
    for s in [2u32, 4, 8] {
        let mut cluster = PimCluster::new(ClusterConfig::new(cfg(), s));
        let got = wire::encode_replies(&cluster.execute(&ops));
        assert_eq!(got, want, "S={s} reply stream drifted from the oracle");
        assert_eq!(
            cluster.collect_items(),
            oracle.collect_items(),
            "S={s} contents drifted"
        );
    }
}

#[test]
fn inverted_range_and_h_low_errors_are_oracle_byte_equal() {
    let mut oracle = PimSkipList::new(cfg());
    let mut cluster = PimCluster::new(ClusterConfig::new(cfg(), 4));
    let bad = [Op::Range {
        lo: 10,
        hi: -10,
        func: RangeFunc::Count,
    }];
    assert_eq!(
        cluster.try_execute(&bad).unwrap_err(),
        oracle.try_execute(&bad).unwrap_err()
    );

    let flat = cfg().with_h_low(0);
    let mut oracle = PimSkipList::new(flat.clone());
    let mut cluster = PimCluster::new(ClusterConfig::new(flat, 4));
    let mutating = [Op::Range {
        lo: -10,
        hi: 10,
        func: RangeFunc::FetchAdd(1),
    }];
    assert_eq!(
        cluster.try_execute(&mutating).unwrap_err(),
        oracle.try_execute(&mutating).unwrap_err()
    );
}

#[test]
fn dead_shard_refuses_only_streams_that_touch_it() {
    let dir = tmpdir("dead-shard");
    let mut cluster = PimCluster::new(ClusterConfig::new(cfg(), 4));
    cluster
        .enable_durability(&dir, DurabilityPolicy::default())
        .unwrap();
    let ops = random_ops(0xD00D, 400);
    cluster.execute(&ops);
    let before = cluster.collect_items();

    // Kill the shard owning key 1 (the third quarter of the i64 line).
    let victim = cluster.lane_of(&Op::Get { key: 1 });
    cluster.kill_shard(victim).unwrap();
    let victim_id = cluster.stats().shards[victim].id;

    // A stream that routes into the dead shard refuses with ShardDown
    // at the failing run's boundary: the earlier run IS committed.
    let far = i64::MIN + 10; // shard 0 territory
    let err = cluster
        .try_execute(&[
            Op::Upsert {
                key: far,
                value: 999,
            },
            Op::Get { key: 1 },
        ])
        .unwrap_err();
    assert_eq!(err, PimError::ShardDown { shard: victim_id });

    // Streams that avoid it keep serving (and see the committed run).
    let ok = cluster.execute(&[Op::Get { key: far }]);
    assert_eq!(ok, vec![Reply::Value(Some(999))]);

    // Rebuild from the shard's own WAL/snapshots; contents are restored
    // (plus the upsert the surviving shards committed meanwhile).
    let report = cluster.rebuild_shard(victim).unwrap();
    assert!(report.ops_replayed > 0 || report.snapshot_seq.is_some());
    let mut want = before;
    want.insert(0, (far, 999));
    assert_eq!(cluster.collect_items(), want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn split_migrates_contents_and_mints_fresh_ids() {
    let mut oracle = PimSkipList::new(cfg());
    let mut cluster = PimCluster::new(ClusterConfig::new(cfg(), 2));
    let ops = random_ops(0x5EED, 500);
    oracle.execute(&ops);
    cluster.execute(&ops);

    let (left, right) = cluster.split_shard(1).unwrap();
    assert_eq!((left, right), (2, 3), "children get freshly minted ids");
    assert_eq!(cluster.shard_count(), 3);
    assert_eq!(cluster.collect_items(), oracle.collect_items());
    let stats = cluster.stats();
    assert_eq!(stats.shards[1].hi + 1, stats.shards[2].lo, "contiguous cut");

    // Routing still matches the oracle after the split.
    let more = random_ops(0xF00D, 300);
    assert_eq!(
        wire::encode_replies(&cluster.execute(&more)),
        wire::encode_replies(&oracle.execute(&more))
    );
}

#[test]
fn durable_split_then_recover_sees_the_post_split_cluster() {
    let dir = tmpdir("split-recover");
    let mut cluster = PimCluster::new(ClusterConfig::new(cfg(), 2));
    cluster
        .enable_durability(&dir, DurabilityPolicy::default())
        .unwrap();
    let ops = random_ops(0xCAFE, 400);
    cluster.execute(&ops);
    cluster.split_shard(0).unwrap();
    let more = random_ops(0x1234, 200);
    cluster.execute(&more);
    let want_items = cluster.collect_items();
    let want_shards: Vec<_> = cluster.stats().shards.iter().map(|s| s.id).collect();
    drop(cluster);

    let (mut recovered, report) = PimCluster::recover_from_dir(
        ClusterConfig::new(cfg(), 2),
        &dir,
        DurabilityPolicy::default(),
    )
    .unwrap();
    assert_eq!(
        recovered
            .stats()
            .shards
            .iter()
            .map(|s| s.id)
            .collect::<Vec<_>>(),
        want_shards,
        "manifest is the authority on which shards exist"
    );
    assert_eq!(recovered.collect_items(), want_items);
    assert_eq!(report.shards.len(), 3);
    // The parent's retired directory is gone.
    assert!(!dir.join("shard-0").exists());

    // And the recovered cluster keeps serving correctly.
    let probe = random_ops(0x777, 100);
    let mut oracle = PimSkipList::new(cfg());
    oracle.load(&want_items);
    assert_eq!(
        wire::encode_replies(&recovered.execute(&probe)),
        wire::encode_replies(&oracle.execute(&probe))
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_merges_shard_labeled_series() {
    let mut cluster = PimCluster::new(ClusterConfig::new(cfg(), 2));
    cluster.enable_telemetry();
    cluster.execute(&random_ops(0xABCD, 200));
    let snap = cluster.telemetry_snapshot().expect("telemetry is lit");
    let text = snap.render_prometheus();
    assert!(
        text.contains("shard=\"0\"") && text.contains("shard=\"1\""),
        "every shard publishes under its own label:\n{text}"
    );
}
