//! `pim-cluster` — a sharded key-range cluster of PIM skip-list machines
//! behind the single-machine execute contract.
//!
//! The paper's machine is a single box of `P` modules; the roadmap
//! north-star is "millions of users". This crate is the system tier that
//! closes the gap: `S` independent [`pim_core::PimSkipList`] shards, each
//! a full PIM machine, behind a deterministic **key-range router**. The
//! client-facing entry is *exactly* `pim_core::op`'s typed mixed-stream
//! contract — [`PimCluster::execute`] takes the same [`pim_core::Op`]
//! slice and answers positionally with the same [`pim_core::Reply`]s —
//! so everything written against one machine runs unchanged against a
//! cluster, including the `pim-service` scheduling tier
//! (`PimService<PimCluster>` via the [`pim_service::Backend`] impl).
//!
//! # Routing determinism contract
//!
//! * The op stream is split into maximal coalescible runs with the very
//!   same [`pim_core::op::run_end`] the single machine uses; runs commit
//!   in stream order.
//! * Within a run, each op routes by key: point ops to the shard owning
//!   the key, `Range` ops split into per-shard subranges (merged back in
//!   shard = key order), and `Successor`/`Predecessor` fall back to
//!   adjacent shards in deterministic waves when the owner has no
//!   answer.
//! * A cluster of `S = 1` is **byte-identical** to a single machine
//!   (shard 0 runs the base [`pim_core::Config`] verbatim); for `S > 1`
//!   replies are **identical up to machine-local entry handles** (a
//!   [`pim_core::Reply::Entry`] handle names a node *inside one shard*;
//!   the canonical client-visible encoding in [`wire`] therefore carries
//!   the key, which is shard-independent). The proptest suite drives
//!   both equivalences over random mixed streams.
//!
//! # Shard identity rules
//!
//! Shards have stable numeric ids ([`ShardId`]), minted once and never
//! reused: an offline [`PimCluster::split_shard`] *retires* the parent id
//! and mints two fresh children. Durable state lives under
//! `dir/shard-{id}`, telemetry series carry a `shard="{id}"` label, and
//! the cluster manifest (`CLUSTER`, checksummed) records the live
//! id → key-range map, so recovery after any sequence of splits finds
//! exactly the shards that exist.
//!
//! ```
//! use pim_cluster::{ClusterConfig, PimCluster};
//! use pim_core::prelude::*;
//!
//! let cfg = ClusterConfig::new(Config::new(4, 1 << 10, 42), 4);
//! let mut cluster = PimCluster::new(cfg);
//! let replies = cluster.execute(&[
//!     Op::Upsert { key: -5, value: 50 },
//!     Op::Upsert { key: 7, value: 70 },
//!     Op::Successor { key: -4 },
//! ]);
//! assert_eq!(replies[2].as_entry().unwrap().unwrap().0, 7);
//! ```

#![warn(missing_docs)]

mod backend;
mod cluster;
mod manifest;
mod router;
pub mod wire;

pub use cluster::{ClusterRecoveryReport, ClusterStats, PimCluster, ShardInfo};
pub use router::ShardId;

use pim_core::Config;
use pim_runtime::EnvSettings;

/// Construction parameters of a [`PimCluster`]: the wrapped per-shard
/// core [`Config`] plus the shard count. No `with_*` setters are
/// re-implemented here — tune the machine through the wrapped
/// [`ClusterConfig::core`] directly.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The machine configuration every shard runs **verbatim** (same
    /// `p`, same seed — shards are independent machines, not partitions
    /// of one machine's modules). Byte-identity of `S = 1` with a single
    /// machine depends on this being unmodified.
    pub core: Config,
    /// Number of shards `S ≥ 1` (clamped to 1).
    pub shards: u32,
}

impl ClusterConfig {
    /// A cluster of `shards` machines, each configured by `core`.
    pub fn new(core: Config, shards: u32) -> Self {
        ClusterConfig {
            core,
            shards: shards.max(1),
        }
    }

    /// [`pim_core::Config::from_env`] for the cluster tier: build the
    /// core config with every `PIM_*` override applied, then read the
    /// shard count from `PIM_SHARDS` (absent/invalid → 1).
    pub fn from_env(p: u32, expected_n: u64, seed: u64) -> Self {
        Self::new(Config::new(p, expected_n, seed), 1).with_settings(&EnvSettings::from_env())
    }

    /// Apply pre-parsed [`EnvSettings`] (the unit-testable counterpart
    /// of [`ClusterConfig::from_env`]).
    pub fn with_settings(mut self, settings: &EnvSettings) -> Self {
        self.core = self.core.with_settings(settings);
        if let Some(shards) = settings.shards {
            self.shards = shards.max(1);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_wraps_core_and_reads_shards_from_settings() {
        let cfg = ClusterConfig::new(Config::new(4, 1 << 10, 7), 0);
        assert_eq!(cfg.shards, 1, "shard count clamps to 1");
        let cfg = cfg.with_settings(&EnvSettings {
            shards: Some(8),
            pipeline: Some(true),
            push_pull: Some(true),
            threads: None,
        });
        assert_eq!(cfg.shards, 8);
        assert!(cfg.core.pipeline, "core overrides flow through the wrap");
        assert!(cfg.core.push_pull, "push-pull flows through the wrap");
    }
}
