//! The cluster itself: `S` independent machines behind the
//! single-machine execute contract.
//!
//! See the crate docs for the routing determinism contract and the shard
//! identity rules; this module is their implementation. The shape of one
//! [`PimCluster::try_execute`] call is the oracle's, lifted one level:
//! split the stream into maximal coalescible runs with the *same*
//! [`run_end`] the single machine uses, then commit each run by fanning
//! its ops out to the owning shards (in parallel, through the
//! deterministic pool — thread count changes wall-clock only) and merging
//! the per-shard replies back into stream positions.

use std::path::{Path, PathBuf};

use pim_core::op::run_end;
use pim_core::{
    DurabilityPolicy, Key, Op, OpKind, PimError, PimResult, PimSkipList, RangeFunc, RangeResult,
    RecoveryReport, Reply, Value,
};
use pim_runtime::{pool, Telemetry, TelemetrySnapshot};

use crate::manifest::{self, ShardRecord};
use crate::router::{self, ShardId};
use crate::ClusterConfig;

/// One shard: a full PIM machine serving the inclusive key range
/// `[lo, hi]`.
struct Shard {
    id: ShardId,
    lo: Key,
    hi: Key,
    /// A crashed-and-not-yet-rebuilt shard stays in the table (its range
    /// still routes to it) but refuses ops with
    /// [`PimError::ShardDown`] until [`PimCluster::rebuild_shard`].
    alive: bool,
    list: PimSkipList,
}

/// A sharded cluster of [`PimSkipList`] machines with the single-machine
/// [`execute`](PimCluster::execute) contract. See the crate docs.
pub struct PimCluster {
    cfg: ClusterConfig,
    /// Sorted by `lo`; ranges are contiguous and cover all of `i64`.
    shards: Vec<Shard>,
    /// Next shard id to mint (ids are never reused).
    next_id: ShardId,
    durable: Option<(PathBuf, DurabilityPolicy)>,
    /// Cluster-level registry for front-end series/events (the service
    /// tier writes here through [`PimCluster::telemetry_mut`]); shard
    /// machine series live in per-shard labeled registries and are folded
    /// in by [`PimCluster::telemetry_snapshot`].
    telem: Option<Telemetry>,
    shard_telemetry: bool,
}

/// Per-shard view in [`ClusterStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// Stable shard id.
    pub id: ShardId,
    /// First key the shard owns.
    pub lo: Key,
    /// Last key the shard owns (inclusive).
    pub hi: Key,
    /// Serving, or crashed awaiting rebuild?
    pub alive: bool,
    /// Resident keys.
    pub len: u64,
    /// Machine rounds executed so far.
    pub rounds: u64,
}

/// Point-in-time cluster shape, for operators and the bench reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStats {
    /// One entry per shard, in key order.
    pub shards: Vec<ShardInfo>,
}

/// What [`PimCluster::recover_from_dir`] rebuilt: one
/// [`RecoveryReport`] per shard, in manifest (= key) order.
#[derive(Debug, Clone)]
pub struct ClusterRecoveryReport {
    /// `(shard id, that machine's recovery report)`.
    pub shards: Vec<(ShardId, RecoveryReport)>,
}

impl ClusterRecoveryReport {
    /// Total WAL ops replayed across all shards.
    pub fn ops_replayed(&self) -> u64 {
        self.shards.iter().map(|(_, r)| r.ops_replayed).sum()
    }
}

fn shard_dirname(id: ShardId) -> String {
    format!("shard-{id}")
}

impl PimCluster {
    /// A fresh empty cluster: `cfg.shards` machines, each built from
    /// `cfg.core` verbatim, owning the uniform key-range cuts of the
    /// router (see the crate docs).
    pub fn new(cfg: ClusterConfig) -> Self {
        let los = router::uniform_lower_bounds(cfg.shards);
        let shards = los
            .iter()
            .enumerate()
            .map(|(k, &lo)| Shard {
                id: k as ShardId,
                lo,
                hi: los.get(k + 1).map_or(Key::MAX, |&next| next - 1),
                alive: true,
                list: PimSkipList::new(cfg.core.clone()),
            })
            .collect::<Vec<_>>();
        let next_id = shards.len() as ShardId;
        PimCluster {
            cfg,
            shards,
            next_id,
            durable: None,
            telem: None,
            shard_telemetry: false,
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total resident keys across shards.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.list.len()).sum()
    }

    /// Is the cluster empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total machine rounds executed across shards.
    pub fn rounds(&self) -> u64 {
        self.shards.iter().map(|s| s.list.metrics().rounds).sum()
    }

    /// Every resident `(key, value)` pair in ascending key order (shard
    /// ranges are contiguous, so shard order *is* key order).
    pub fn collect_items(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for s in &self.shards {
            out.extend(s.list.collect_items());
        }
        out
    }

    /// Per-shard shape for operators and reports.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            shards: self
                .shards
                .iter()
                .map(|s| ShardInfo {
                    id: s.id,
                    lo: s.lo,
                    hi: s.hi,
                    alive: s.alive,
                    len: s.list.len(),
                    rounds: s.list.metrics().rounds,
                })
                .collect(),
        }
    }

    /// Flip run pipelining on every shard (see
    /// [`pim_core::Config::pipeline`]).
    pub fn set_pipeline(&mut self, pipeline: bool) {
        self.cfg.core.pipeline = pipeline;
        for s in &mut self.shards {
            s.list.set_pipeline(pipeline);
        }
    }

    /// Flip push-pull batch search on every shard (see
    /// [`pim_core::Config::push_pull`]) — each shard keeps its own
    /// hot-node cache over its own key range. Replies and contents are
    /// identical either way.
    pub fn set_push_pull(&mut self, on: bool) {
        self.cfg.core.push_pull = on;
        for s in &mut self.shards {
            s.list.set_push_pull(on);
        }
    }

    /// Open a named span on every shard's metrics timeline (the service
    /// tier brackets its phases with these).
    pub fn span_enter(&mut self, name: &'static str) {
        for s in &mut self.shards {
            s.list.span_enter(name);
        }
    }

    /// Close the span opened by [`PimCluster::span_enter`].
    pub fn span_exit(&mut self) {
        for s in &mut self.shards {
            s.list.span_exit();
        }
    }

    // ---- execute ----------------------------------------------------

    /// Execute an interleaved stream of typed operations — the
    /// single-machine [`PimSkipList::execute`] contract, served by the
    /// cluster. Panics on the (routing-impossible) error; see
    /// [`PimCluster::try_execute`].
    pub fn execute(&mut self, ops: &[Op]) -> Vec<Reply> {
        self.try_execute(ops)
            .unwrap_or_else(|e| panic!("execute: {e}"))
    }

    /// Fault-tolerant [`PimCluster::execute`]. The stream splits into
    /// maximal coalescible runs ([`run_end`]) and runs commit in stream
    /// order; an error aborts the stream at the failing run's boundary —
    /// earlier runs are committed on their shards — exactly the oracle's
    /// abort contract, with [`PimError::ShardDown`] as the one new
    /// failure: a run that routes an op to a crashed shard refuses
    /// *before* any shard commits it, and shards the run does not touch
    /// keep serving later streams.
    pub fn try_execute(&mut self, ops: &[Op]) -> PimResult<Vec<Reply>> {
        let mut replies = Vec::with_capacity(ops.len());
        let mut start = 0;
        while start < ops.len() {
            let end = run_end(ops, start);
            self.commit_run(&ops[start..end], &mut replies)?;
            start = end;
        }
        Ok(replies)
    }

    fn commit_run(&mut self, run: &[Op], replies: &mut Vec<Reply>) -> PimResult<()> {
        // One shard: hand the whole run to the machine verbatim — one
        // `try_execute` call, one WAL frame, identical scratch reuse —
        // this is what makes S = 1 byte-identical to a single machine.
        if self.shards.len() == 1 {
            let s = &mut self.shards[0];
            if !s.alive {
                return Err(PimError::ShardDown { shard: s.id });
            }
            replies.extend(s.list.try_execute(run)?);
            return Ok(());
        }
        match run[0].kind() {
            OpKind::Get | OpKind::Update | OpKind::Upsert | OpKind::Delete => {
                self.commit_point(run, replies)
            }
            OpKind::Successor => self.commit_directional(run, replies, 1),
            OpKind::Predecessor => self.commit_directional(run, replies, -1),
            OpKind::Range => self.commit_range(run, replies),
        }
    }

    /// Index of the shard owning `key`.
    fn owner(&self, key: Key) -> usize {
        self.shards.partition_point(|s| s.lo <= key) - 1
    }

    /// The shard index `op` routes to first — the owning shard for a
    /// point op, the shard owning `lo` for a `Range` (where the clipping
    /// walk starts). The service tier uses this as the admission lane.
    pub fn lane_of(&self, op: &Op) -> usize {
        self.owner(op.bounds().0)
    }

    /// Refuse the run if any shard it routes ops to is down; checked
    /// before fan-out so a `ShardDown` run commits nowhere.
    fn check_alive(&self, sub: &[Vec<Op>]) -> PimResult<()> {
        for (s, ops) in self.shards.iter().zip(sub) {
            if !ops.is_empty() && !s.alive {
                return Err(PimError::ShardDown { shard: s.id });
            }
        }
        Ok(())
    }

    /// Run every non-empty per-shard sub-batch through its machine in
    /// parallel. Results come back in shard order; `weight` gates the
    /// pool's parallel threshold (sequential fallback is bit-identical).
    fn fan_out(&mut self, sub: Vec<Vec<Op>>, weight: usize) -> PimResult<Vec<Vec<Reply>>> {
        pool::par_zip_map_mut(&mut self.shards, sub, weight, |_, shard, ops: Vec<Op>| {
            if ops.is_empty() {
                Ok(Vec::new())
            } else {
                shard.list.try_execute(&ops)
            }
        })
        .into_iter()
        .collect()
    }

    /// Get/Update/Upsert/Delete: each op belongs to exactly one shard;
    /// fan out, then merge positionally (shard replies are in that
    /// shard's submission order, so one cursor per shard replays the
    /// original interleave).
    fn commit_point(&mut self, run: &[Op], replies: &mut Vec<Reply>) -> PimResult<()> {
        let mut sub: Vec<Vec<Op>> = vec![Vec::new(); self.shards.len()];
        let mut route = Vec::with_capacity(run.len());
        for op in run {
            let s = self.owner(op.key().expect("point op has a key"));
            sub[s].push(*op);
            route.push(s);
        }
        self.check_alive(&sub)?;
        let outs = self.fan_out(sub, run.len())?;
        let mut cursors: Vec<std::vec::IntoIter<Reply>> =
            outs.into_iter().map(Vec::into_iter).collect();
        for s in route {
            replies.push(cursors[s].next().expect("per-shard reply count"));
        }
        Ok(())
    }

    /// Successor (`dir = 1`) / Predecessor (`dir = -1`): start each query
    /// at the shard owning its key; a shard with no answer means the
    /// answer (if any) is the adjacent shard's nearest entry, so
    /// unresolved queries fall back one shard in `dir` per wave —
    /// re-asking with the ORIGINAL key, which is correct because every
    /// key in the fallback shard already lies beyond it. At most `S`
    /// waves; queries that walk off the end resolve to `Entry(None)`.
    fn commit_directional(
        &mut self,
        run: &[Op],
        replies: &mut Vec<Reply>,
        dir: isize,
    ) -> PimResult<()> {
        let base = replies.len();
        replies.extend(std::iter::repeat_with(|| Reply::Entry(None)).take(run.len()));
        // (run position, shard to ask next)
        let mut pending: Vec<(usize, usize)> = run
            .iter()
            .enumerate()
            .map(|(i, op)| (i, self.owner(op.key().expect("directional op has a key"))))
            .collect();
        while !pending.is_empty() {
            let mut sub: Vec<Vec<Op>> = vec![Vec::new(); self.shards.len()];
            let mut asked: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
            for &(pos, s) in &pending {
                sub[s].push(run[pos]);
                asked[s].push(pos);
            }
            self.check_alive(&sub)?;
            let outs = self.fan_out(sub, pending.len())?;
            pending.clear();
            for (s, (positions, out)) in asked.into_iter().zip(outs).enumerate() {
                for (pos, reply) in positions.into_iter().zip(out) {
                    match reply {
                        Reply::Entry(Some(e)) => replies[base + pos] = Reply::Entry(Some(e)),
                        Reply::Entry(None) => {
                            let next = s as isize + dir;
                            if (0..self.shards.len() as isize).contains(&next) {
                                pending.push((pos, next as usize));
                            }
                        }
                        other => {
                            return Err(PimError::Protocol {
                                op: "cluster_directional",
                                detail: format!("{other:?}"),
                            })
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Range: validate the whole run first with the oracle's exact
    /// errors (same check order, same messages — reply identity covers
    /// error bytes too), then clip each range to the shards it overlaps,
    /// fan the sub-ranges out, and fold each op's per-shard
    /// [`RangeResult`]s left-to-right from the reduction identities.
    /// Shard order is key order, so concatenated items stay sorted, and
    /// `count`/`sum`/`min`/`max` folds are associative — the merged
    /// result is the single machine's.
    fn commit_range(&mut self, run: &[Op], replies: &mut Vec<Reply>) -> PimResult<()> {
        let func = match run[0] {
            Op::Range { func, .. } => func,
            _ => unreachable!("run starts with a Range"),
        };
        for op in run {
            let (lo, hi) = op.bounds();
            if lo > hi {
                return Err(PimError::InvalidArgument {
                    op: "batch_range",
                    reason: format!("inverted range [{lo}, {hi}]"),
                });
            }
        }
        let mutating = matches!(func, RangeFunc::FetchAdd(_) | RangeFunc::AddInPlace(_));
        if mutating && self.cfg.core.h_low == 0 {
            return Err(PimError::InvalidArgument {
                op: "batch_range",
                reason: "mutating range functions require a distributed lower part (h_low > 0)"
                    .into(),
            });
        }
        let mut sub: Vec<Vec<Op>> = vec![Vec::new(); self.shards.len()];
        // route[i]: which shards op i was clipped onto, in key order.
        let mut route: Vec<Vec<usize>> = vec![Vec::new(); run.len()];
        for (i, op) in run.iter().enumerate() {
            let (lo, hi) = op.bounds();
            let mut s = self.owner(lo);
            while s < self.shards.len() && self.shards[s].lo <= hi {
                sub[s].push(Op::Range {
                    lo: lo.max(self.shards[s].lo),
                    hi: hi.min(self.shards[s].hi),
                    func,
                });
                route[i].push(s);
                s += 1;
            }
        }
        self.check_alive(&sub)?;
        let outs = self.fan_out(sub, run.len())?;
        let mut cursors: Vec<std::vec::IntoIter<Reply>> =
            outs.into_iter().map(Vec::into_iter).collect();
        for shards_of_op in route {
            let mut acc = RangeResult::empty();
            for s in shards_of_op {
                match cursors[s].next().expect("per-shard reply count") {
                    Reply::Range(part) => {
                        acc.items.extend_from_slice(&part.items);
                        acc.count += part.count;
                        // The machine's reductions wrap (u64 value sums);
                        // the merged result must wrap identically.
                        acc.sum = acc.sum.wrapping_add(part.sum);
                        acc.min = acc.min.min(part.min);
                        acc.max = acc.max.max(part.max);
                    }
                    other => {
                        return Err(PimError::Protocol {
                            op: "cluster_range",
                            detail: format!("{other:?}"),
                        })
                    }
                }
            }
            replies.push(Reply::Range(acc));
        }
        Ok(())
    }

    // ---- durability -------------------------------------------------

    /// Turn on durable persistence: the cluster directory gets the
    /// checksummed `CLUSTER` manifest (the authority on which shards
    /// exist) and each shard persists independently into
    /// `dir/shard-{id}` through its own WAL + snapshot machinery.
    pub fn enable_durability(
        &mut self,
        dir: impl AsRef<Path>,
        policy: DurabilityPolicy,
    ) -> PimResult<()> {
        if self.durable.is_some() {
            return Err(PimError::InvalidArgument {
                op: "enable_durability",
                reason: "durability is already enabled".into(),
            });
        }
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| PimError::Io {
            op: "cluster_mkdir",
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        self.write_manifest(dir)?;
        for s in &mut self.shards {
            s.list
                .enable_durability(dir.join(shard_dirname(s.id)), policy)?;
        }
        self.durable = Some((dir.to_path_buf(), policy));
        Ok(())
    }

    fn write_manifest(&self, dir: &Path) -> PimResult<()> {
        let records: Vec<ShardRecord> = self
            .shards
            .iter()
            .map(|s| ShardRecord {
                id: s.id,
                lo: s.lo,
                hi: s.hi,
            })
            .collect();
        manifest::write(dir, &records)
    }

    /// Is durable persistence enabled?
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Total next op-stream index across shards (`None` when not
    /// durable) — a cluster-level progress counter, not a single stream
    /// position.
    pub fn durable_seq(&self) -> Option<u64> {
        self.durable.as_ref()?;
        Some(
            self.shards
                .iter()
                .filter_map(|s| s.list.durable_seq())
                .sum(),
        )
    }

    /// Total ops covered by the last fsync across shards (`None` when
    /// not durable).
    pub fn durable_synced_seq(&self) -> Option<u64> {
        self.durable.as_ref()?;
        Some(
            self.shards
                .iter()
                .filter_map(|s| s.list.durable_synced_seq())
                .sum(),
        )
    }

    /// Fsync pending WAL frames on every shard now (no-op without
    /// durability).
    pub fn durable_sync(&mut self) -> PimResult<()> {
        for s in &mut self.shards {
            s.list.durable_sync()?;
        }
        Ok(())
    }

    /// Rebuild a whole cluster from its durable directory: the manifest
    /// names the live shards and their ranges (authoritative after any
    /// sequence of splits), and each machine recovers from its own
    /// `shard-{id}` directory.
    pub fn recover_from_dir(
        mut cfg: ClusterConfig,
        dir: impl AsRef<Path>,
        policy: DurabilityPolicy,
    ) -> PimResult<(PimCluster, ClusterRecoveryReport)> {
        let dir = dir.as_ref();
        let records = manifest::read(dir)?;
        let mut shards = Vec::with_capacity(records.len());
        let mut reports = Vec::with_capacity(records.len());
        for r in &records {
            let (list, report) = PimSkipList::recover_from_dir(
                cfg.core.clone(),
                dir.join(shard_dirname(r.id)),
                policy,
            )?;
            shards.push(Shard {
                id: r.id,
                lo: r.lo,
                hi: r.hi,
                alive: true,
                list,
            });
            reports.push((r.id, report));
        }
        let next_id = shards.iter().map(|s| s.id + 1).max().unwrap_or(0);
        cfg.shards = shards.len() as u32;
        Ok((
            PimCluster {
                cfg,
                shards,
                next_id,
                durable: Some((dir.to_path_buf(), policy)),
                telem: None,
                shard_telemetry: false,
            },
            ClusterRecoveryReport { shards: reports },
        ))
    }

    // ---- crash / rebuild / split -----------------------------------

    /// Simulate shard `idx` (by table position, see
    /// [`PimCluster::stats`]) crashing: its DRAM contents vanish, its
    /// open WAL writer drops, its durable directory stays. The shard
    /// refuses ops ([`PimError::ShardDown`]) until
    /// [`PimCluster::rebuild_shard`]; other shards keep serving streams
    /// that do not touch it. Refused on a non-durable cluster — the
    /// shard's data would be unrecoverable.
    pub fn kill_shard(&mut self, idx: usize) -> PimResult<()> {
        self.shard_index(idx, "kill_shard")?;
        if self.durable.is_none() {
            return Err(PimError::InvalidArgument {
                op: "kill_shard",
                reason: "killing a shard of a non-durable cluster would lose data".into(),
            });
        }
        let s = &mut self.shards[idx];
        s.alive = false;
        s.list = PimSkipList::new(self.cfg.core.clone());
        Ok(())
    }

    /// Rebuild the crashed shard `idx` from its durable directory and
    /// put it back in service; returns the machine's recovery report.
    pub fn rebuild_shard(&mut self, idx: usize) -> PimResult<RecoveryReport> {
        self.shard_index(idx, "rebuild_shard")?;
        let Some((dir, policy)) = self.durable.clone() else {
            return Err(PimError::InvalidArgument {
                op: "rebuild_shard",
                reason: "cluster is not durable".into(),
            });
        };
        if self.shards[idx].alive {
            return Err(PimError::InvalidArgument {
                op: "rebuild_shard",
                reason: format!("shard {} is alive", self.shards[idx].id),
            });
        }
        let (mut list, report) = PimSkipList::recover_from_dir(
            self.cfg.core.clone(),
            dir.join(shard_dirname(self.shards[idx].id)),
            policy,
        )?;
        if self.shard_telemetry {
            let label = self.shards[idx].id.to_string();
            list.enable_telemetry_with_labels(&[("shard", &label)]);
        }
        self.shards[idx].list = list;
        self.shards[idx].alive = true;
        Ok(report)
    }

    /// Offline shard split: cut shard `idx`'s range at its midpoint and
    /// migrate its contents into two fresh machines. The parent id is
    /// retired; the children get newly minted ids (and, when durable,
    /// fresh `shard-{id}` directories seeded with an initial snapshot —
    /// the parent's directory is deleted and the manifest rewritten, so
    /// recovery sees exactly the post-split cluster). Returns the two
    /// new ids.
    pub fn split_shard(&mut self, idx: usize) -> PimResult<(ShardId, ShardId)> {
        self.shard_index(idx, "split_shard")?;
        let (old_id, lo, hi, alive) = {
            let s = &self.shards[idx];
            (s.id, s.lo, s.hi, s.alive)
        };
        if !alive {
            return Err(PimError::ShardDown { shard: old_id });
        }
        if lo >= hi {
            return Err(PimError::InvalidArgument {
                op: "split_shard",
                reason: format!("shard {old_id} range [{lo}, {hi}] is too narrow to split"),
            });
        }
        let mid = (i128::from(lo) + (i128::from(hi) - i128::from(lo)) / 2) as Key;
        let items = self.shards[idx].list.collect_items();
        let cut = items.partition_point(|&(k, _)| k <= mid);
        let (left_id, right_id) = (self.next_id, self.next_id + 1);
        self.next_id += 2;

        let mut left = PimSkipList::new(self.cfg.core.clone());
        left.load(&items[..cut]);
        let mut right = PimSkipList::new(self.cfg.core.clone());
        right.load(&items[cut..]);
        if self.shard_telemetry {
            let label = left_id.to_string();
            left.enable_telemetry_with_labels(&[("shard", &label)]);
            let label = right_id.to_string();
            right.enable_telemetry_with_labels(&[("shard", &label)]);
        }

        if let Some((dir, policy)) = self.durable.clone() {
            // Children first (their initial snapshots land on disk), then
            // retire the parent's directory and republish the manifest —
            // a crash between the steps leaves either the old or the new
            // cluster fully recoverable, never a half state.
            left.enable_durability(dir.join(shard_dirname(left_id)), policy)?;
            right.enable_durability(dir.join(shard_dirname(right_id)), policy)?;
        }

        self.shards[idx] = Shard {
            id: left_id,
            lo,
            hi: mid,
            alive: true,
            list: left,
        };
        self.shards.insert(
            idx + 1,
            Shard {
                id: right_id,
                lo: mid + 1,
                hi,
                alive: true,
                list: right,
            },
        );
        self.cfg.shards = self.shards.len() as u32;

        if let Some((dir, _)) = self.durable.clone() {
            let old = dir.join(shard_dirname(old_id));
            std::fs::remove_dir_all(&old).map_err(|e| PimError::Io {
                op: "split_retire",
                path: old.display().to_string(),
                detail: e.to_string(),
            })?;
            self.write_manifest(&dir)?;
        }
        Ok((left_id, right_id))
    }

    fn shard_index(&self, idx: usize, op: &'static str) -> PimResult<()> {
        if idx >= self.shards.len() {
            return Err(PimError::InvalidArgument {
                op,
                reason: format!("shard index {idx} out of range ({})", self.shards.len()),
            });
        }
        Ok(())
    }

    // ---- telemetry --------------------------------------------------

    /// Light telemetry on every shard (each machine's series carry a
    /// `shard="{id}"` base label) plus a cluster-level registry for
    /// front-end series. Idempotent.
    pub fn enable_telemetry(&mut self) {
        self.shard_telemetry = true;
        if self.telem.is_none() {
            self.telem = Some(Telemetry::new());
        }
        for s in &mut self.shards {
            let label = s.id.to_string();
            s.list.enable_telemetry_with_labels(&[("shard", &label)]);
        }
    }

    /// Is telemetry enabled?
    pub fn telemetry_enabled(&self) -> bool {
        self.shard_telemetry
    }

    /// The cluster-level registry, for layered front-ends (the service
    /// tier registers its series and emits lifecycle events here).
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telem.as_mut()
    }

    /// One merged render-ready snapshot: every live shard's labeled
    /// machine series plus the cluster-level registry (`None` when
    /// dark). A crashed shard contributes nothing until rebuilt.
    pub fn telemetry_snapshot(&mut self) -> Option<TelemetrySnapshot> {
        if !self.shard_telemetry {
            return None;
        }
        let mut parts: Vec<TelemetrySnapshot> = self
            .shards
            .iter_mut()
            .filter_map(|s| s.list.telemetry_snapshot())
            .collect();
        if let Some(t) = &self.telem {
            parts.push(t.snapshot());
        }
        Some(TelemetrySnapshot::merged(parts))
    }
}
