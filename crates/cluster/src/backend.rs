//! [`pim_service::Backend`] for the cluster: `PimService<PimCluster>`
//! gives the scheduling tier (admission, batching, dispatch, completion
//! accounting) a sharded structure with per-shard backpressure lanes —
//! no service code changes, the seam was designed for exactly this.

use pim_core::{Op, PimResult, Reply};
use pim_runtime::Telemetry;
use pim_service::Backend;

use crate::cluster::PimCluster;

impl Backend for PimCluster {
    fn execute_ops(&mut self, ops: &[Op]) -> Vec<Reply> {
        self.execute(ops)
    }

    fn rounds(&self) -> u64 {
        PimCluster::rounds(self)
    }

    fn span_enter(&mut self, name: &'static str) {
        PimCluster::span_enter(self, name);
    }

    fn span_exit(&mut self) {
        PimCluster::span_exit(self);
    }

    fn set_pipeline(&mut self, pipeline: bool) {
        PimCluster::set_pipeline(self, pipeline);
    }

    fn set_push_pull(&mut self, on: bool) {
        PimCluster::set_push_pull(self, on);
    }

    fn is_durable(&self) -> bool {
        PimCluster::is_durable(self)
    }

    fn durable_seq(&self) -> Option<u64> {
        PimCluster::durable_seq(self)
    }

    fn durable_synced_seq(&self) -> Option<u64> {
        PimCluster::durable_synced_seq(self)
    }

    fn durable_sync(&mut self) -> PimResult<()> {
        PimCluster::durable_sync(self)
    }

    fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        PimCluster::telemetry_mut(self)
    }

    /// `P log² P` per machine, and the cluster dispatches to `S`
    /// machines at once.
    fn recommended_batch(&self) -> usize {
        self.config().core.batch_large() * self.shard_count()
    }

    fn lanes(&self) -> usize {
        self.shard_count()
    }

    /// Admission lane = owning shard (for a `Range`, the shard owning its
    /// lower bound — where dispatch starts the clipping walk).
    fn lane(&self, op: &Op) -> usize {
        self.lane_of(op)
    }
}
