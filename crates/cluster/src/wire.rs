//! Canonical client-visible reply encoding.
//!
//! A [`Reply::Entry`] carries a node [`pim_runtime::Handle`] — a
//! machine-local name, meaningful only inside the shard that produced it.
//! Everything else in a reply stream is shard-independent. This module
//! defines the canonical byte encoding a cluster client sees: entry
//! replies serialize their *key* (handles never cross the wire), so the
//! encoded stream from a cluster of any `S` is byte-equal to the single
//! machine's — the equivalence the `cluster` bench experiment and the CI
//! `cluster` job byte-compare.
//!
//! Layout: one tag byte per reply, then little-endian fixed-width
//! payloads. Deliberately version-tagged by the leading magic so the
//! comparators fail loudly if the encoding ever drifts.

use pim_core::{Reply, UpsertOutcome};

/// Magic + version prefix of an encoded reply stream.
pub const MAGIC: &[u8; 8] = b"pimwire1";

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode a reply stream canonically (see the module docs).
pub fn encode_replies(replies: &[Reply]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + replies.len() * 9);
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, replies.len() as u64);
    for r in replies {
        match r {
            Reply::Value(None) => out.push(0),
            Reply::Value(Some(v)) => {
                out.push(1);
                put_u64(&mut out, *v);
            }
            Reply::Updated(hit) => {
                out.push(2);
                out.push(u8::from(*hit));
            }
            Reply::Upserted(outcome) => {
                out.push(3);
                out.push(match outcome {
                    UpsertOutcome::Updated => 0,
                    UpsertOutcome::Inserted => 1,
                });
            }
            Reply::Deleted(hit) => {
                out.push(4);
                out.push(u8::from(*hit));
            }
            Reply::Entry(None) => out.push(5),
            Reply::Entry(Some((key, _handle))) => {
                out.push(6);
                put_i64(&mut out, *key);
            }
            Reply::Range(res) => {
                out.push(7);
                put_u64(&mut out, res.count);
                put_u64(&mut out, res.sum);
                put_u64(&mut out, res.min);
                put_u64(&mut out, res.max);
                put_u64(&mut out, res.items.len() as u64);
                for (k, v) in &res.items {
                    put_i64(&mut out, *k);
                    put_u64(&mut out, *v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_core::RangeResult;

    #[test]
    fn encoding_is_positional_and_total() {
        let a = encode_replies(&[Reply::Value(None), Reply::Deleted(true)]);
        let b = encode_replies(&[Reply::Deleted(true), Reply::Value(None)]);
        assert_ne!(a, b, "order is part of the encoding");
        assert!(a.starts_with(MAGIC));

        let mut res = RangeResult::empty();
        res.items.push((-3, 7));
        res.count = 1;
        res.sum = 7;
        res.min = 7;
        res.max = 7;
        let enc = encode_replies(&[Reply::Range(res.clone())]);
        // magic + count + tag + 4 reductions + item count + one pair.
        assert_eq!(enc.len(), 8 + 8 + 1 + 32 + 8 + 16);
        assert_eq!(enc, encode_replies(&[Reply::Range(res)]), "deterministic");
    }
}
