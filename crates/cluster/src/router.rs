//! Deterministic key-range routing.
//!
//! The key domain is the full `i64` line. A fresh cluster of `S` shards
//! cuts it into `S` near-equal contiguous ranges: shard `k` starts at
//! `i64::MIN + floor(2^64 * k / S)` (exact in `i128`), and owns keys up
//! to the next shard's start (the last shard runs to `i64::MAX`). The
//! cuts depend only on `S`, never on the data, so two clusters built
//! with the same `S` route identically — the determinism the oracle
//! equivalence suite leans on. After a [`crate::PimCluster::split_shard`]
//! the ranges are no longer uniform; routing then follows the manifest's
//! recorded boundaries (still a sorted list of lower bounds, still
//! deterministic).

use pim_core::Key;

/// Stable numeric shard identity. Minted once, never reused; survives
/// crash/rebuild and names the shard's durable directory (`shard-{id}`)
/// and telemetry label (`shard="{id}"`).
pub type ShardId = u32;

/// Lower bounds of the `S` uniform key ranges: element `k` is the first
/// key shard `k` owns. `bounds[0]` is always `i64::MIN`.
pub(crate) fn uniform_lower_bounds(shards: u32) -> Vec<Key> {
    let s = i128::from(shards.max(1));
    (0..i128::from(shards.max(1)))
        .map(|k| (i128::from(i64::MIN) + ((1i128 << 64) * k) / s) as i64)
        .collect()
}

/// Index of the shard owning `key` among shards with the given sorted
/// lower bounds (`los[0] == i64::MIN`, so every key has an owner).
/// `PimCluster` inlines the same `partition_point` over its shard table
/// (which also tracks post-split boundaries); this free-standing form
/// pins the routing rule for the boundary tests below.
#[cfg(test)]
pub(crate) fn owner(los: &[Key], key: Key) -> usize {
    debug_assert!(!los.is_empty() && los[0] == i64::MIN);
    los.partition_point(|&lo| lo <= key) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_owns_everything() {
        let los = uniform_lower_bounds(1);
        assert_eq!(los, vec![i64::MIN]);
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(owner(&los, k), 0);
        }
    }

    #[test]
    fn uniform_cuts_are_sorted_balanced_and_exhaustive() {
        for s in [2u32, 3, 4, 7, 8, 16] {
            let los = uniform_lower_bounds(s);
            assert_eq!(los.len(), s as usize);
            assert_eq!(los[0], i64::MIN);
            assert!(los.windows(2).all(|w| w[0] < w[1]), "S={s} sorted");
            // Near-equal widths: every cut within 1 of 2^64 / S.
            let widths: Vec<u128> = los
                .windows(2)
                .map(|w| (w[1] as i128 - w[0] as i128) as u128)
                .chain(std::iter::once(
                    (i64::MAX as i128 - *los.last().unwrap() as i128 + 1) as u128,
                ))
                .collect();
            let ideal = (1u128 << 64) / u128::from(s);
            for w in widths {
                assert!(w.abs_diff(ideal) <= 1, "S={s}: width {w} vs ideal {ideal}");
            }
        }
    }

    #[test]
    fn owner_respects_boundaries_exactly() {
        let los = uniform_lower_bounds(4);
        // A boundary key belongs to the shard it starts.
        for (k, &lo) in los.iter().enumerate() {
            assert_eq!(owner(&los, lo), k);
            if lo != i64::MIN {
                assert_eq!(owner(&los, lo - 1), k - 1);
            }
        }
        assert_eq!(owner(&los, 0), 2, "zero starts the third quarter");
        assert_eq!(owner(&los, -1), 1, "minus one ends the second");
        assert_eq!(owner(&los, i64::MAX), 3);
    }
}
