//! The cluster manifest: one small checksummed text file (`CLUSTER`) in
//! the cluster's durable directory recording the live shard id →
//! key-range map.
//!
//! The per-shard durable directories are self-describing (each holds its
//! own WAL + snapshots), but after an offline split the *set* of shards
//! and their ranges is cluster-level state the shards themselves cannot
//! answer — so recovery reads this manifest as the authority on which
//! `shard-{id}` directories exist and which range each serves. Writes go
//! through the usual tmp + rename dance, so a crash mid-rewrite leaves
//! the previous manifest intact.
//!
//! Format (text, one record per line, LF):
//!
//! ```text
//! pim-cluster/1
//! shard <id> <lo> <hi>
//! ...
//! crc <crc32-of-preceding-bytes-in-hex>
//! ```

use std::fs;
use std::io::Write as _;
use std::path::Path;

use pim_core::{Key, PimError, PimResult};
use pim_runtime::crc32;

use crate::router::ShardId;

/// File name of the manifest inside the cluster directory.
pub(crate) const MANIFEST: &str = "CLUSTER";
const MAGIC: &str = "pim-cluster/1";

/// One manifest record: shard `id` serves the inclusive range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShardRecord {
    pub id: ShardId,
    pub lo: Key,
    pub hi: Key,
}

fn io_err(op: &'static str, path: &Path, err: &std::io::Error) -> PimError {
    PimError::Io {
        op,
        path: path.display().to_string(),
        detail: err.to_string(),
    }
}

/// Atomically (tmp + rename) write the manifest for the given shards.
pub(crate) fn write(dir: &Path, shards: &[ShardRecord]) -> PimResult<()> {
    let mut body = format!("{MAGIC}\n");
    for s in shards {
        body.push_str(&format!("shard {} {} {}\n", s.id, s.lo, s.hi));
    }
    let crc = crc32(body.as_bytes());
    body.push_str(&format!("crc {crc:08x}\n"));

    let path = dir.join(MANIFEST);
    let tmp = dir.join(format!("{MANIFEST}.tmp"));
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("manifest_write", &tmp, &e))?;
    f.write_all(body.as_bytes())
        .map_err(|e| io_err("manifest_write", &tmp, &e))?;
    f.sync_all()
        .map_err(|e| io_err("manifest_sync", &tmp, &e))?;
    drop(f);
    fs::rename(&tmp, &path).map_err(|e| io_err("manifest_rename", &path, &e))?;
    Ok(())
}

/// Read and verify the manifest; shards come back in file = key order.
pub(crate) fn read(dir: &Path) -> PimResult<Vec<ShardRecord>> {
    let path = dir.join(MANIFEST);
    let text = fs::read_to_string(&path).map_err(|e| io_err("manifest_read", &path, &e))?;

    let corrupt = |detail: &str, offset: u64, expected: u32, found: u32| PimError::Corruption {
        path: path.display().to_string(),
        offset,
        expected,
        found,
        detail: detail.to_string(),
    };
    let malformed = |reason: String| PimError::InvalidArgument {
        op: "cluster_manifest",
        reason,
    };

    // The crc line covers every byte before it.
    let crc_at = text
        .rfind("crc ")
        .ok_or_else(|| malformed(format!("{}: missing crc line", path.display())))?;
    let (body, crc_line) = text.split_at(crc_at);
    let claimed = crc_line
        .trim()
        .strip_prefix("crc ")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| malformed(format!("{}: unparseable crc line", path.display())))?;
    let actual = crc32(body.as_bytes());
    if actual != claimed {
        return Err(corrupt("cluster manifest", crc_at as u64, claimed, actual));
    }

    let mut lines = body.lines();
    if lines.next() != Some(MAGIC) {
        return Err(malformed(format!(
            "{}: bad magic (want {MAGIC})",
            path.display()
        )));
    }
    let mut shards = Vec::new();
    for line in lines {
        let mut parts = line.split_ascii_whitespace();
        let rec = (|| {
            if parts.next()? != "shard" {
                return None;
            }
            Some(ShardRecord {
                id: parts.next()?.parse().ok()?,
                lo: parts.next()?.parse().ok()?,
                hi: parts.next()?.parse().ok()?,
            })
        })()
        .ok_or_else(|| malformed(format!("{}: bad record {line:?}", path.display())))?;
        shards.push(rec);
    }
    if shards.is_empty() {
        return Err(malformed(format!("{}: no shard records", path.display())));
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("pim-cluster-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("roundtrip");
        let shards = vec![
            ShardRecord {
                id: 0,
                lo: i64::MIN,
                hi: -1,
            },
            ShardRecord {
                id: 3,
                lo: 0,
                hi: i64::MAX,
            },
        ];
        write(&dir, &shards).unwrap();
        assert_eq!(read(&dir).unwrap(), shards);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_is_detected() {
        let dir = tmpdir("bitflip");
        write(
            &dir,
            &[ShardRecord {
                id: 0,
                lo: i64::MIN,
                hi: i64::MAX,
            }],
        )
        .unwrap();
        let path = dir.join(MANIFEST);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match read(&dir) {
            Err(PimError::Corruption { .. }) | Err(PimError::InvalidArgument { .. }) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
