//! Property-based torn-write contract of the durability layer.
//!
//! A mixed op stream is executed in arbitrary batch sizes against a
//! durable list; the WAL is then damaged at an arbitrary byte (truncated
//! there, or a single bit flipped) and recovered. The property: recovery
//! lands **exactly** on the last complete frame before the damage — the
//! recovered structure is bit-identical (contents, metrics, invariants,
//! and replies to any subsequent stream) to an in-memory oracle that
//! executed precisely that surviving prefix of the stream.
//!
//! Frame boundaries are re-derived here from the raw segment bytes (length
//! prefixes only, no decoder), so the test is an independent check of the
//! on-disk framing, not a mirror of the implementation.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use pim_core::{Config, DurabilityPolicy, Op, PimSkipList, RangeFunc};

/// `wal-0…0.log` header bytes: magic + version + fingerprint + start_seq
/// + crc (must match `WAL_HEADER_LEN` in the implementation).
const WAL_HEADER: usize = 32;

fn key_strategy() -> impl Strategy<Value = i64> {
    -40i64..200
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Upsert { key, value }),
        2 => key_strategy().prop_map(|key| Op::Delete { key }),
        2 => key_strategy().prop_map(|key| Op::Get { key }),
        1 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Update { key, value }),
        1 => key_strategy().prop_map(|key| Op::Successor { key }),
        1 => key_strategy().prop_map(|key| Op::Predecessor { key }),
        1 => (key_strategy(), key_strategy())
            .prop_map(|(a, b)| Op::Range { lo: a.min(b), hi: a.max(b), func: RangeFunc::Sum }),
        1 => (key_strategy(), key_strategy(), 1u64..5).prop_map(|(a, b, d)| Op::Range {
            lo: a.min(b),
            hi: a.max(b),
            func: RangeFunc::FetchAdd(d)
        }),
    ]
}

fn fresh_dir() -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pim-proptest-durable-{}-{case}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn cfg() -> Config {
    Config::new(4, 1 << 10, 42)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn damage_recovers_to_exactly_the_last_complete_frame(
        ops in prop::collection::vec(op_strategy(), 1..100),
        batch in 1usize..16,
        frac in 0u64..10_000,
        flip in any::<bool>(),
        bit in 0u32..8,
    ) {
        let dir = fresh_dir();
        let mut live = PimSkipList::new(cfg());
        live.enable_durability(&dir, DurabilityPolicy::default()).unwrap();
        for chunk in ops.chunks(batch) {
            live.execute(chunk);
        }
        drop(live);

        // Independently re-derive frame boundaries from the length
        // prefixes of the single segment.
        let seg = dir.join("wal-0000000000000000.log");
        let bytes = std::fs::read(&seg).unwrap();
        let mut frames = Vec::new(); // (end_offset, op_count)
        let mut off = WAL_HEADER;
        while off < bytes.len() {
            let len =
                u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let count =
                u32::from_le_bytes(bytes[off + 16..off + 20].try_into().unwrap()) as usize;
            off += 8 + len;
            frames.push((off, count));
        }
        prop_assert_eq!(off, bytes.len(), "segment is exactly header + frames");
        prop_assert_eq!(
            frames.iter().map(|f| f.1).sum::<usize>(),
            ops.len(),
            "every committed op is framed"
        );

        // Damage an arbitrary body byte: truncate there, or flip one bit.
        let body = bytes.len() - WAL_HEADER;
        let pos = WAL_HEADER + ((body as u64 * frac / 10_000) as usize).min(body - 1);
        let mut damaged = bytes;
        if flip {
            damaged[pos] ^= 1 << bit;
        } else {
            damaged.truncate(pos);
        }
        std::fs::write(&seg, &damaged).unwrap();

        // Frames wholly before the damaged byte survive; the damaged frame
        // and everything after it must be dropped.
        let surviving: usize = frames
            .iter()
            .filter(|&&(end, _)| end <= pos)
            .map(|&(_, count)| count)
            .sum();

        let (mut rec, report) =
            PimSkipList::recover_from_dir(cfg(), &dir, DurabilityPolicy::default()).unwrap();
        prop_assert_eq!(report.ops_replayed as usize, surviving);
        prop_assert_eq!(report.snapshot_seq, None);
        prop_assert_eq!(report.next_seq as usize, surviving);

        // Oracle: execute exactly the surviving prefix, same batching (the
        // prefix always ends on a frame == run boundary, so the partial
        // final batch executes identically).
        let mut oracle = PimSkipList::new(cfg());
        let mut left = surviving;
        for chunk in ops.chunks(batch) {
            if left == 0 {
                break;
            }
            let take = left.min(chunk.len());
            oracle.execute(&chunk[..take]);
            left -= take;
        }
        prop_assert_eq!(rec.len(), oracle.len());
        prop_assert_eq!(rec.collect_items(), oracle.collect_items());
        prop_assert_eq!(rec.metrics(), oracle.metrics(), "bit-identical machine state");
        prop_assert!(rec.validate().is_ok(), "recovered structure validates");

        // And the two structures stay in lockstep on a fresh mixed stream.
        let probe: Vec<Op> = (-40..60)
            .map(|k| Op::Get { key: k })
            .chain((0..10).map(|k| Op::Upsert { key: k * 9, value: 1 }))
            .collect();
        prop_assert_eq!(rec.execute(&probe), oracle.execute(&probe));
        prop_assert_eq!(rec.metrics(), oracle.metrics());
        std::fs::remove_dir_all(&dir).ok();
    }
}
