//! Scale tests: paper-sized machines and batch sizes.
//!
//! These run with `P` up to 64 and batches of the paper's recommended
//! sizes (`P log P`, `P log² P`), verifying both correctness at scale and
//! the PIM-balance property (max/mean ratios bounded).

use std::collections::BTreeMap;

use pim_core::{Config, PimSkipList, RangeFunc};

#[test]
fn paper_sized_batches_p32() {
    let p = 32u32;
    let mut list = PimSkipList::new(Config::new(p, 1 << 15, 7));
    let logp = 5u64;
    let big = (u64::from(p) * logp * logp) as usize; // P log² P = 800

    // Load 8 big batches.
    let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();
    let mut k = 0i64;
    for b in 0..8 {
        let pairs: Vec<(i64, u64)> = (0..big)
            .map(|i| {
                k += 1 + ((i as i64 * 2654435761) % 7).abs();
                (k, (b * big + i) as u64)
            })
            .collect();
        list.batch_upsert(&pairs);
        for &(k, v) in &pairs {
            oracle.insert(k, v);
        }
    }
    assert_eq!(list.len(), oracle.len() as u64);
    list.validate().unwrap();

    // A Get batch of size P log P over resident keys.
    let keys: Vec<i64> = oracle.keys().copied().take((p as usize) * 5).collect();
    let got = list.batch_get(&keys);
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(got[i], oracle.get(k).copied());
    }

    // Successor batch of size P log² P straddling resident keys.
    let queries: Vec<i64> = (0..big as i64).map(|i| i * 7 + 3).collect();
    let succ = list.batch_successor(&queries);
    for (i, q) in queries.iter().enumerate() {
        let expect = oracle.range(*q..).next().map(|(&k, _)| k);
        assert_eq!(succ[i].map(|(x, _)| x), expect, "succ({q})");
    }

    // Delete one big batch (mix of resident and missing).
    let dels: Vec<i64> = oracle.keys().copied().step_by(3).take(big).collect();
    let res = list.batch_delete(&dels);
    assert!(res.iter().all(|&f| f));
    for d in &dels {
        oracle.remove(d);
    }
    assert_eq!(list.len(), oracle.len() as u64);
    list.validate().unwrap();

    // Contents still match exactly.
    let items = list.collect_items();
    let expect: Vec<(i64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(items, expect);
}

#[test]
fn pim_balance_holds_for_uniform_batches() {
    let p = 64u32;
    let mut list = PimSkipList::new(Config::new(p, 1 << 15, 11));
    let logp = 6u64;
    let pairs: Vec<(i64, u64)> = (0..(u64::from(p) * logp * logp) as i64)
        .map(|i| (i * 1_000_003 % 10_000_019, i as u64))
        .collect();
    list.batch_upsert(&pairs);
    list.validate().unwrap();

    let m0 = list.metrics();
    let keys: Vec<i64> = pairs
        .iter()
        .map(|&(k, _)| k)
        .take((p * 6) as usize)
        .collect();
    list.batch_get(&keys);
    let d = list.metrics() - m0;
    // PIM-balance: IO time within a constant factor of I/P, PIM time of W/P.
    let io_ratio = d.io_time as f64 / (d.total_messages as f64 / f64::from(p));
    let work_ratio = d.pim_time as f64 / (d.total_pim_work as f64 / f64::from(p));
    assert!(io_ratio < 4.0, "Get IO imbalance {io_ratio}");
    assert!(work_ratio < 4.0, "Get PIM-work imbalance {work_ratio}");
}

#[test]
fn broadcast_range_scales_and_balances() {
    let p = 32u32;
    let mut list = PimSkipList::new(Config::new(p, 1 << 14, 13));
    let pairs: Vec<(i64, u64)> = (0..8000).map(|i| (i, i as u64)).collect();
    list.load(&pairs);
    list.validate().unwrap();

    let m0 = list.metrics();
    let r = list.range_broadcast(1000, 5000, RangeFunc::Read);
    assert_eq!(r.items.len(), 4001);
    let d = list.metrics() - m0;
    // Theorem 5.1: O(1) rounds (broadcast + streamed returns).
    assert!(d.rounds <= 3, "broadcast range took {} rounds", d.rounds);
    let io_ratio = d.io_time as f64 / (d.total_messages as f64 / f64::from(p));
    assert!(io_ratio < 4.0, "broadcast range IO imbalance {io_ratio}");
}
