//! Observability suite: the span/export layer's three contracts.
//!
//! * **Zero overhead when off** — running with the probe and/or round
//!   trace enabled is bit-identical (metrics and contents) to running
//!   without them: observation never perturbs the simulation.
//! * **Conservation** — the exclusive per-span stats sum to the whole
//!   run's metrics delta for every additive §2.1 counter: no cost is
//!   double-counted or lost by the attribution.
//! * **Faithful exports** — a chaos run's JSONL log carries the injected
//!   [`pim_runtime::FaultRecord`]s on exactly the faulted rounds, and the
//!   recovery spans own exactly the rounds billed to
//!   `Metrics::recovery_rounds`.

use pim_core::{Config, FaultPlan, PimSkipList, RangeFunc};
use pim_runtime::export::parse;
use pim_runtime::{chrome_trace, rounds_jsonl, ExportBundle, Metrics};

/// A workload touching every instrumented operation family.
fn workload(list: &mut PimSkipList) {
    let base: Vec<(i64, u64)> = (0..400).map(|i| (i * 3, i as u64)).collect();
    list.bulk_load(&base);
    let ups: Vec<(i64, u64)> = (0..80).map(|i| (i * 3 + 1, 7)).collect();
    list.batch_upsert(&ups);
    let gets: Vec<i64> = (0..60).map(|i| i * 5).collect();
    list.batch_get(&gets);
    list.batch_update(&[(3, 9), (6, 10)]);
    let dels: Vec<i64> = (0..40).map(|i| i * 6).collect();
    list.batch_delete(&dels);
    list.batch_range(&[(0, 300), (100, 500)], RangeFunc::Sum);
    list.batch_successor(&[5, 11, 250]);
    list.range_broadcast(0, 600, RangeFunc::Count);
}

/// Every additive counter of [`Metrics`] (all but `shared_mem_peak`,
/// which is a high-water mark).
fn additive(m: &Metrics) -> [u64; 13] {
    [
        m.rounds,
        m.io_time,
        m.pim_time,
        m.total_messages,
        m.total_pim_work,
        m.cpu_work,
        m.cpu_depth,
        m.faults_injected,
        m.messages_dropped,
        m.module_crashes,
        m.stalled_module_rounds,
        m.retries_issued,
        m.recovery_rounds,
    ]
}

#[test]
fn observation_is_bit_identical_to_running_dark() {
    let run = |probe: bool, trace: bool| {
        let mut list = PimSkipList::new(Config::new(8, 1 << 10, 21));
        if probe {
            list.enable_probe();
        }
        if trace {
            list.enable_tracing();
        }
        workload(&mut list);
        (list.metrics(), list.collect_items())
    };
    let dark = run(false, false);
    assert_eq!(dark, run(true, false), "probe on must not perturb the run");
    assert_eq!(dark, run(false, true), "trace on must not perturb the run");
    assert_eq!(dark, run(true, true), "both on must not perturb the run");
}

#[test]
fn telemetry_is_bit_identical_to_running_dark() {
    let run = |telemetry: bool| {
        let mut list = PimSkipList::new(Config::new(8, 1 << 10, 25));
        if telemetry {
            list.enable_telemetry();
        }
        list.enable_tracing();
        workload(&mut list);
        let metrics = list.metrics();
        let items = list.collect_items();
        let trace = list.take_trace();
        let bundle = ExportBundle {
            p: 8,
            trace: &trace,
            report: None,
        };
        (metrics, items, rounds_jsonl(&bundle))
    };
    let dark = run(false);
    let lit = run(true);
    assert_eq!(
        dark, lit,
        "telemetry on must not perturb metrics, contents, or the round trace"
    );
}

#[test]
fn telemetry_counters_reconcile_with_the_machine_metrics() {
    let mut list = PimSkipList::new(Config::new(8, 1 << 10, 26));
    // Bulk construction predates telemetry: only the unified execute path
    // (every typed batch shims over it) publishes per-run deltas.
    let base: Vec<(i64, u64)> = (0..400).map(|i| (i * 3, i as u64)).collect();
    list.bulk_load(&base);
    list.enable_telemetry();
    let before = list.metrics();
    let ups: Vec<(i64, u64)> = (0..80).map(|i| (i * 3 + 1, 7)).collect();
    list.batch_upsert(&ups);
    let gets: Vec<i64> = (0..60).map(|i| i * 5).collect();
    list.batch_get(&gets);
    list.batch_update(&[(3, 9), (6, 10)]);
    let dels: Vec<i64> = (0..40).map(|i| i * 6).collect();
    list.batch_delete(&dels);
    list.batch_range(&[(0, 300), (100, 500)], RangeFunc::Sum);
    list.batch_successor(&[5, 11, 250]);
    let after = list.metrics();
    let delta = after - before;
    let snap = list.telemetry_snapshot().expect("telemetry was enabled");

    assert_eq!(snap.counter("pim_rounds_total", &[]), Some(delta.rounds));
    assert_eq!(snap.counter("pim_io_time_total", &[]), Some(delta.io_time));
    assert_eq!(snap.counter("pim_time_total", &[]), Some(delta.pim_time));
    assert_eq!(
        snap.counter("pim_messages_total", &[]),
        Some(delta.total_messages)
    );
    assert_eq!(
        snap.counter("pim_work_total", &[]),
        Some(delta.total_pim_work)
    );
    assert_eq!(
        snap.counter("pim_cpu_work_total", &[]),
        Some(delta.cpu_work)
    );

    // Per-op counters: the workload issues known batch sizes per family.
    assert_eq!(snap.counter("pim_ops_total", &[("op", "get")]), Some(60));
    assert_eq!(snap.counter("pim_ops_total", &[("op", "update")]), Some(2));
    assert_eq!(snap.counter("pim_ops_total", &[("op", "upsert")]), Some(80));
    assert_eq!(snap.counter("pim_ops_total", &[("op", "delete")]), Some(40));
    assert_eq!(snap.counter("pim_ops_total", &[("op", "range")]), Some(2));
    assert_eq!(
        snap.counter("pim_ops_total", &[("op", "successor")]),
        Some(3)
    );

    // The run-length histogram saw one observation per instrumented run.
    let run_len = snap.histogram("pim_run_len", &[]).expect("run_len exists");
    let runs = snap.counter("pim_runs_total", &[]).expect("runs exists");
    assert_eq!(run_len.count(), runs);
    assert!(runs >= 6, "each batch_* family is at least one run");
    // 60 + 2 + 80 + 40 + 2 + 3 ops flowed through the instrumented runs.
    assert_eq!(run_len.sum(), 187);
}

#[test]
fn span_stats_sum_to_whole_run_metrics() {
    let mut list = PimSkipList::new(Config::new(8, 1 << 10, 22));
    let before = list.metrics();
    list.enable_probe();
    workload(&mut list);
    let after = list.metrics();
    let report = list.take_probe().expect("probe was enabled");

    assert!(report.spans.len() > 10, "the workload must open real spans");
    let delta = after - before;
    assert_eq!(
        additive(&report.total()),
        additive(&delta),
        "exclusive span stats must sum to the run's metrics delta"
    );
    // The high-water mark is attributed as a max, never exceeding the run's.
    for s in &report.spans {
        assert!(s.stats.shared_mem_peak <= after.shared_mem_peak);
    }
}

#[test]
fn every_operation_family_gets_a_phase_in_the_export() {
    let mut list = PimSkipList::new(Config::new(8, 1 << 10, 23));
    list.enable_tracing();
    list.enable_probe();
    workload(&mut list);
    let report = list.take_probe().expect("probe was enabled");
    let trace = list.take_trace();

    for name in [
        "get",
        "update",
        "upsert",
        "delete",
        "bulk_load",
        "search",
        "range_tree",
        "range_broadcast",
        "successor",
    ] {
        assert!(
            !report.spans_named(name).is_empty(),
            "no span named {name:?} in the report"
        );
    }

    let bundle = ExportBundle {
        p: 8,
        trace: &trace,
        report: Some(&report),
    };
    let jsonl = rounds_jsonl(&bundle);
    let header = parse(jsonl.lines().next().unwrap()).unwrap();
    let spans = header.get("spans").unwrap().as_array().unwrap();
    for name in ["get", "upsert", "delete", "range_tree"] {
        assert!(
            spans
                .iter()
                .any(|s| s.get("name").and_then(|n| n.as_str()) == Some(name)),
            "exported span table must carry {name:?}"
        );
    }
    // The Chrome export of the same bundle is one valid JSON document.
    parse(&chrome_trace(&bundle)).expect("chrome export parses");
}

#[test]
fn chaos_export_carries_fault_records_and_recovery_spans_balance() {
    let mut list = PimSkipList::new(Config::new(4, 1 << 10, 24).with_max_retries(50));
    list.set_fault_plan(FaultPlan::random(0xFACE, 4, 400, 25));
    list.enable_tracing();
    let before = list.metrics();
    list.enable_probe();

    let base: Vec<(i64, u64)> = (0..300).map(|i| (i * 4, i as u64)).collect();
    list.try_bulk_load(&base).expect("bulk load under storm");
    for wave in 0..4i64 {
        let ups: Vec<(i64, u64)> = (0..40)
            .map(|i| (wave * 100 + i * 2 + 1, (wave * 1000 + i) as u64))
            .collect();
        list.try_batch_upsert(&ups).expect("upsert under storm");
        let dels: Vec<i64> = (0..25).map(|i| wave * 24 + i * 4).collect();
        list.try_batch_delete(&dels).expect("delete under storm");
        let gets: Vec<i64> = (0..50).map(|i| wave * 7 + i * 5).collect();
        list.try_batch_get(&gets).expect("get under storm");
    }

    let after = list.metrics();
    assert!(after.faults_injected > 0, "the storm must strike");
    let report = list.take_probe().expect("probe was enabled");
    let trace = list.take_trace();

    // Every recorded round's fault records survive the JSONL round trip.
    let faulted_rounds = trace.rounds.iter().filter(|r| !r.faults.is_empty()).count();
    assert!(faulted_rounds > 0, "faults must land on recorded rounds");
    let bundle = ExportBundle {
        p: 4,
        trace: &trace,
        report: Some(&report),
    };
    let jsonl = rounds_jsonl(&bundle);
    for (line, rt) in jsonl.lines().skip(1).zip(&trace.rounds) {
        let v = parse(line).unwrap();
        assert_eq!(v.get("round").unwrap().as_u64(), Some(rt.round));
        let faults = v.get("faults").unwrap().as_array().unwrap();
        assert_eq!(
            faults.len(),
            rt.faults.len(),
            "round {} must export its fault records",
            rt.round
        );
        for (fj, fr) in faults.iter().zip(&rt.faults) {
            assert_eq!(
                fj.get("module").unwrap().as_u64(),
                Some(u64::from(fr.module))
            );
        }
    }
    // The Chrome export marks them as instant fault events.
    assert!(chrome_trace(&bundle).contains("\"cat\":\"fault\""));

    // The recovery spans own exactly the recovery-attributed rounds.
    let delta = after - before;
    assert!(delta.recovery_rounds > 0, "the storm must trigger recovery");
    let recovered: u64 = report
        .spans
        .iter()
        .filter(|s| s.name == "recover/module" || s.name == "recover/restore")
        .map(|s| s.stats.recovery_rounds)
        .sum();
    assert_eq!(
        recovered, delta.recovery_rounds,
        "recovery spans must carry every recovery-billed round"
    );
}
