//! Process-kill crash-recovery chaos test.
//!
//! The real durability claim is about *processes dying*, not in-process
//! byte surgery: a child process streams a deterministic op mix into a
//! durable list and is SIGKILLed mid-stream at an arbitrary point (no
//! graceful shutdown, no `Drop`). The parent then recovers the directory
//! and proves the recovered structure equals an in-memory oracle that
//! executed exactly the surviving prefix of the same stream:
//!
//! - **WAL-only mode**: bit-identical — contents, machine metrics, and
//!   replies to a follow-up stream all match (tier 1 of the contract in
//!   `pim_core::durable`).
//! - **Snapshot mode** (compaction ran before the kill): logically
//!   identical — contents, invariants, and replies match; tower heights
//!   and metrics may differ (tier 2).
//!
//! The child is this same test binary re-executed with an env-var guard,
//! running the `child_entry` "test" as its workload until killed.

#![cfg(unix)]

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use pim_core::{Config, DurabilityPolicy, Op, PimSkipList, RangeFunc};

const CHILD_ENV: &str = "PIM_DURABLE_KILL_CHILD";
const DIR_ENV: &str = "PIM_DURABLE_KILL_DIR";
const MODE_ENV: &str = "PIM_DURABLE_KILL_MODE";

/// Ops per `execute` call in the child (parent replays the same split).
const BATCH: usize = 7;

fn cfg() -> Config {
    Config::new(4, 1 << 10, 7)
}

fn policy(mode: &str) -> DurabilityPolicy {
    match mode {
        "wal" => DurabilityPolicy::default(),
        "snap" => DurabilityPolicy::default().with_snapshot_every(64),
        other => panic!("unknown kill-test mode {other:?}"),
    }
}

/// Deterministic mixed op stream, identical in parent and child
/// (splitmix64 of the op index — no shared state, no RNG crate).
fn op_at(i: u64) -> Op {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let key = (x % 240) as i64 - 40;
    match (x >> 8) % 10 {
        0..=3 => Op::Upsert {
            key,
            value: x >> 16,
        },
        4..=5 => Op::Delete { key },
        6..=7 => Op::Get { key },
        8 => Op::Successor { key },
        _ => Op::Range {
            lo: key,
            hi: key + 17,
            func: RangeFunc::Sum,
        },
    }
}

fn batch_at(start: u64) -> Vec<Op> {
    (start..start + BATCH as u64).map(op_at).collect()
}

/// Child workload: stream ops into a durable list until SIGKILLed.
/// Registered as a test so the re-executed binary can be pointed at it
/// with `--exact`; without the env guard it is an instant no-op pass.
#[test]
fn child_entry() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    let dir = std::env::var(DIR_ENV).unwrap();
    let mode = std::env::var(MODE_ENV).unwrap();
    let mut list = PimSkipList::new(cfg());
    list.enable_durability(&dir, policy(&mode)).unwrap();
    let mut i = 0u64;
    loop {
        list.execute(&batch_at(i));
        i += BATCH as u64;
    }
}

/// Total bytes of WAL segments plus the highest completed-snapshot seq in
/// `dir` — the parent's only window into the child's progress. (In snap
/// mode compaction keeps the WAL short, so WAL size alone says nothing.)
fn progress(dir: &std::path::Path) -> (u64, Option<u64>) {
    let mut wal = 0;
    let mut snap_seq = None;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-") && name.ends_with(".log") {
                wal += e.metadata().map(|m| m.len()).unwrap_or(0);
            } else if let Some(hex) = name
                .strip_prefix("snapshot-")
                .and_then(|n| n.strip_suffix(".snap"))
            {
                if let Ok(seq) = u64::from_str_radix(hex, 16) {
                    snap_seq = snap_seq.max(Some(seq));
                }
            }
        }
    }
    (wal, snap_seq)
}

/// Deletes the durable directory when the test finishes — the recovered
/// list keeps appending (and snapshotting) into it until then.
struct DirGuard(std::path::PathBuf);

impl Drop for DirGuard {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Spawn the child workload, SIGKILL it once the directory shows enough
/// progress, and return the recovered list plus the total ops it had
/// durably committed.
fn kill_and_recover(mode: &str, need_snapshot_seq: Option<u64>) -> (PimSkipList, u64, DirGuard) {
    let dir = std::env::temp_dir().join(format!("pim-durable-kill-{}-{mode}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["child_entry", "--exact", "--nocapture"])
        .env(CHILD_ENV, "1")
        .env(DIR_ENV, &dir)
        .env(MODE_ENV, mode)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child workload");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (wal_bytes, snap_seq) = progress(&dir);
        let done = match need_snapshot_seq {
            // WAL-only mode: enough appended frames to kill mid-stream.
            None => wal_bytes > 8192,
            // Snapshot mode: a compacted snapshot far enough into the
            // stream (WAL stays short under compaction).
            Some(need) => snap_seq.is_some_and(|s| s >= need),
        };
        if done {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child made no progress (wal={wal_bytes}B snapshot_seq={snap_seq:?})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    let (rec, report) =
        PimSkipList::recover_from_dir(cfg(), &dir, policy(mode)).expect("recover after kill");
    (rec, report.next_seq, DirGuard(dir))
}

/// Oracle: execute exactly the first `n` ops of the stream with the same
/// batch split the child used. The surviving prefix always ends on a run
/// boundary, so a partial final batch executes identically.
fn oracle(n: u64) -> PimSkipList {
    let mut list = PimSkipList::new(cfg());
    let mut start = 0;
    while start < n {
        let take = (n - start).min(BATCH as u64) as usize;
        list.execute(&batch_at(start)[..take]);
        start += take as u64;
    }
    list
}

fn probe() -> Vec<Op> {
    (-40..200)
        .map(|key| Op::Get { key })
        .chain((0..20).map(|k| Op::Upsert {
            key: k * 11,
            value: 3,
        }))
        .chain(std::iter::once(Op::Range {
            lo: -40,
            hi: 200,
            func: RangeFunc::Sum,
        }))
        .collect()
}

#[test]
fn sigkill_mid_stream_wal_recovery_is_bit_identical() {
    let (mut rec, n, _dir) = kill_and_recover("wal", None);
    assert!(n > 0, "child committed nothing before the kill");
    let mut want = oracle(n);
    assert_eq!(rec.len(), want.len());
    assert_eq!(rec.collect_items(), want.collect_items());
    assert_eq!(rec.metrics(), want.metrics(), "bit-identical machine state");
    rec.validate().unwrap();
    let p = probe();
    assert_eq!(rec.execute(&p), want.execute(&p));
    assert_eq!(rec.metrics(), want.metrics());
}

#[test]
fn sigkill_mid_stream_snapshot_recovery_is_logically_identical() {
    let (mut rec, n, _dir) = kill_and_recover("snap", Some(128));
    assert!(n > 64, "kill should land after at least one snapshot");
    let mut want = oracle(n);
    assert_eq!(rec.len(), want.len());
    assert_eq!(rec.collect_items(), want.collect_items());
    rec.validate().unwrap();
    // Tier 2: replies match; tower heights/metrics are allowed to differ.
    let p = probe();
    assert_eq!(rec.execute(&p), want.execute(&p));
    assert_eq!(rec.collect_items(), want.collect_items());
}
