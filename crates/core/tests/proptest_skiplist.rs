//! Property-based differential testing of the PIM skip list.
//!
//! Random batch programs (upsert/delete/get/successor/range) are run
//! against a `BTreeMap` oracle; after every batch the full structural
//! validator must pass and contents must match exactly.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pim_core::{Config, PimSkipList, RangeFunc};

#[derive(Debug, Clone)]
enum Op {
    Upsert(Vec<(i64, u64)>),
    Delete(Vec<i64>),
    Get(Vec<i64>),
    Successor(Vec<i64>),
    RangeRead(i64, i64),
    TreeRead(i64, i64),
}

fn key_strategy() -> impl Strategy<Value = i64> {
    // A small key domain provokes collisions, duplicate keys, contiguous
    // runs and range overlaps.
    -40i64..200
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::collection::vec((key_strategy(), any::<u64>()), 1..40).prop_map(Op::Upsert),
        2 => prop::collection::vec(key_strategy(), 1..40).prop_map(Op::Delete),
        1 => prop::collection::vec(key_strategy(), 1..40).prop_map(Op::Get),
        1 => prop::collection::vec(key_strategy(), 1..20).prop_map(Op::Successor),
        1 => (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::RangeRead(a.min(b), a.max(b))),
        1 => (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::TreeRead(a.min(b), a.max(b))),
    ]
}

fn apply_upsert_first_wins(oracle: &mut BTreeMap<i64, u64>, pairs: &[(i64, u64)]) {
    let mut seen = std::collections::HashSet::new();
    for &(k, v) in pairs {
        if seen.insert(k) {
            oracle.insert(k, v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_batch_programs_match_oracle(
        seed in 0u64..1_000_000,
        p in 1u32..9,
        ops in prop::collection::vec(op_strategy(), 1..14),
    ) {
        let mut list = PimSkipList::new(Config::new(p, 1 << 10, seed));
        let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Upsert(pairs) => {
                    list.batch_upsert(pairs);
                    apply_upsert_first_wins(&mut oracle, pairs);
                }
                Op::Delete(keys) => {
                    let res = list.batch_delete(keys);
                    let mut removed = std::collections::HashSet::new();
                    for (i, k) in keys.iter().enumerate() {
                        let expect = oracle.contains_key(k) || removed.contains(k);
                        prop_assert_eq!(res[i], expect, "delete({}) mismatch", k);
                        if oracle.remove(k).is_some() {
                            removed.insert(*k);
                        }
                    }
                }
                Op::Get(keys) => {
                    let res = list.batch_get(keys);
                    for (i, k) in keys.iter().enumerate() {
                        prop_assert_eq!(res[i], oracle.get(k).copied(), "get({})", k);
                    }
                }
                Op::Successor(keys) => {
                    let res = list.batch_successor(keys);
                    for (i, q) in keys.iter().enumerate() {
                        let expect = oracle.range(*q..).next().map(|(&k, _)| k);
                        prop_assert_eq!(res[i].map(|(k, _)| k), expect, "succ({})", q);
                    }
                }
                Op::RangeRead(lo, hi) => {
                    let r = list.range_broadcast(*lo, *hi, RangeFunc::Read);
                    let expect: Vec<(i64, u64)> =
                        oracle.range(*lo..=*hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(&r.items, &expect, "broadcast range [{}, {}]", lo, hi);
                }
                Op::TreeRead(lo, hi) => {
                    let r = list.batch_range(&[(*lo, *hi)], RangeFunc::Read);
                    let expect: Vec<(i64, u64)> =
                        oracle.range(*lo..=*hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(&r[0].items, &expect, "tree range [{}, {}]", lo, hi);
                }
            }
            // Full structural validation after every batch.
            if let Err(e) = list.validate() {
                return Err(TestCaseError::fail(format!("invariant violated: {e}")));
            }
            let items = list.collect_items();
            let expect: Vec<(i64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(items, expect);
        }
    }

    #[test]
    fn h_low_ablation_point_ops_match_oracle(
        seed in 0u64..100_000,
        h_low in 0u8..6,
        pairs in prop::collection::vec((key_strategy(), any::<u64>()), 1..60),
        deletes in prop::collection::vec(key_strategy(), 0..30),
    ) {
        // Point operations must be correct for every lower-part height,
        // including full replication (h_low = 0) — the ABL-HLOW ablation.
        let cfg = Config::new(8, 1 << 10, seed).with_h_low(h_low);
        let mut list = PimSkipList::new(cfg);
        let mut oracle = BTreeMap::new();
        list.batch_upsert(&pairs);
        apply_upsert_first_wins(&mut oracle, &pairs);
        let res = list.batch_delete(&deletes);
        let mut removed = std::collections::HashSet::new();
        for (i, k) in deletes.iter().enumerate() {
            let expect = oracle.contains_key(k) || removed.contains(k);
            prop_assert_eq!(res[i], expect);
            if oracle.remove(k).is_some() {
                removed.insert(*k);
            }
        }
        let keys: Vec<i64> = (-45..205).collect();
        let got = list.batch_get(&keys);
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(got[i], oracle.get(k).copied());
        }
        let succ = list.batch_successor(&(-45..205).step_by(3).collect::<Vec<_>>());
        for (i, q) in (-45..205).step_by(3).enumerate() {
            let expect = oracle.range(q..).next().map(|(&k, _)| k);
            prop_assert_eq!(succ[i].map(|(k, _)| k), expect);
        }
    }
}
