//! Property-based contract of push-pull batch search.
//!
//! * **Off is free**: `with_push_pull(false)` is byte-identical to a
//!   structure that never had the feature — same replies, same contents,
//!   same machine `Metrics`, same serialised trace artifacts.
//! * **On is safe**: `with_push_pull(true)` changes metrics and traces
//!   (fewer rounds, CPU-resolved descents) but never a reply and never
//!   the stored contents, over arbitrary mixed op streams.
//! * **Warm caches cut rounds**: repeated search batches over a stable
//!   structure converge to strictly fewer rounds per batch than baseline.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pim_core::{Config, FaultPlan, Op, PimSkipList, RangeFunc};

fn key_strategy() -> impl Strategy<Value = i64> {
    // Small domain: collisions, duplicate keys, overlapping ranges.
    -40i64..200
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Upsert { key, value }),
        2 => key_strategy().prop_map(|key| Op::Delete { key }),
        2 => key_strategy().prop_map(|key| Op::Get { key }),
        2 => key_strategy().prop_map(|key| Op::Successor { key }),
        2 => key_strategy().prop_map(|key| Op::Predecessor { key }),
        1 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Update { key, value }),
        1 => (key_strategy(), key_strategy())
            .prop_map(|(a, b)| Op::Range { lo: a.min(b), hi: a.max(b), func: RangeFunc::Sum }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn push_pull_off_is_byte_identical_to_baseline(
        seed in 0u64..1_000_000,
        p in 1u32..9,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        // `with_push_pull(false)` must be indistinguishable from a build
        // without the feature: the dark path is one `is_some` branch.
        let mut base = PimSkipList::new(Config::new(p, 1 << 10, seed));
        let mut off = PimSkipList::new(Config::new(p, 1 << 10, seed).with_push_pull(false));
        base.enable_tracing();
        off.enable_tracing();

        let base_replies = base.execute(&ops);
        let off_replies = off.execute(&ops);

        prop_assert_eq!(&base_replies, &off_replies,
            "push-pull off must not change any reply");
        prop_assert_eq!(base.collect_items(), off.collect_items(),
            "push-pull off must not change the contents");
        prop_assert_eq!(base.metrics(), off.metrics(),
            "push-pull off must not change the machine work");

        let (base_trace, off_trace) = (base.take_trace(), off.take_trace());
        let base_bundle = pim_runtime::ExportBundle { p, trace: &base_trace, report: None };
        let off_bundle = pim_runtime::ExportBundle { p, trace: &off_trace, report: None };
        prop_assert_eq!(
            pim_runtime::chrome_trace(&base_bundle),
            pim_runtime::chrome_trace(&off_bundle),
            "serialised chrome traces must match byte for byte");
        prop_assert_eq!(
            pim_runtime::rounds_jsonl(&base_bundle),
            pim_runtime::rounds_jsonl(&off_bundle),
            "serialised round logs must match byte for byte");
    }

    #[test]
    fn push_pull_on_preserves_replies_and_contents(
        seed in 0u64..1_000_000,
        p in 1u32..9,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut base = PimSkipList::new(Config::new(p, 1 << 10, seed));
        let mut pp = PimSkipList::new(Config::new(p, 1 << 10, seed).with_push_pull(true));

        let base_replies = base.execute(&ops);
        let pp_replies = pp.execute(&ops);

        prop_assert_eq!(&base_replies, &pp_replies,
            "push-pull must not change any reply");
        prop_assert_eq!(base.collect_items(), pp.collect_items(),
            "push-pull must not change the contents");
        if let Err(e) = pp.validate() {
            return Err(TestCaseError::fail(format!("invariant violated: {e}")));
        }
    }

    #[test]
    fn push_pull_toggle_mid_stream_preserves_replies(
        seed in 0u64..1_000_000,
        ops_a in prop::collection::vec(op_strategy(), 1..40),
        ops_b in prop::collection::vec(op_strategy(), 1..40),
    ) {
        // Runtime toggling (the cluster tier forwards `set_push_pull` this
        // way): on for a prefix, off for the rest — replies and contents
        // still match the baseline throughout.
        let mut base = PimSkipList::new(Config::new(4, 1 << 10, seed));
        let mut toggled = PimSkipList::new(Config::new(4, 1 << 10, seed).with_push_pull(true));

        prop_assert_eq!(base.execute(&ops_a), toggled.execute(&ops_a));
        toggled.set_push_pull(false);
        prop_assert!(!toggled.push_pull_enabled());
        prop_assert_eq!(base.execute(&ops_b), toggled.execute(&ops_b));
        prop_assert_eq!(base.collect_items(), toggled.collect_items());
    }

    /// Chaos: module crashes mid-batch with the cache warm. The
    /// `module_crashes` staleness guard plus the epoch bump at mutation
    /// start mean recovery retries can never read a wiped module through
    /// a stale snapshot — every reply still matches a fault-free
    /// `BTreeMap` oracle and the final structure validates. The retry
    /// budget (8) strictly exceeds the scheduled events (≤6), so any
    /// error a `try_*` call returns is a real bug.
    #[test]
    fn push_pull_survives_mid_batch_crashes(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        p in 2u32..5,
        events in 0usize..7,
        rounds in prop::collection::vec(
            (
                prop::collection::vec((key_strategy(), any::<u64>()), 1..24),
                prop::collection::vec(key_strategy(), 1..24),
                prop::collection::vec(key_strategy(), 1..24),
            ),
            1..6,
        ),
    ) {
        let mut list = PimSkipList::new(
            Config::new(p, 1 << 10, seed)
                .with_max_retries(8)
                .with_push_pull(true),
        );
        list.set_fault_plan(FaultPlan::random(fault_seed, p, 300, events));
        let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();

        for (pairs, dels, succs) in &rounds {
            list.try_batch_upsert(pairs).expect("upsert under faults");
            let mut seen = std::collections::HashSet::new();
            for &(k, v) in pairs {
                if seen.insert(k) {
                    oracle.insert(k, v);
                }
            }

            // Successor batches both exercise and re-warm the cache.
            let res = list.try_batch_successor(succs).expect("successor under faults");
            for (i, k) in succs.iter().enumerate() {
                let want = oracle.range(*k..).next().map(|(&sk, _)| sk);
                prop_assert_eq!(
                    res[i].map(|(sk, _)| sk),
                    want,
                    "successor({}) drifted under faults",
                    k
                );
            }

            list.try_batch_delete(dels).expect("delete under faults");
            for k in dels {
                oracle.remove(k);
            }
        }

        prop_assert_eq!(
            list.collect_items(),
            oracle.into_iter().collect::<Vec<_>>(),
            "final contents must equal the fault-free oracle"
        );
        if let Err(e) = list.validate() {
            return Err(TestCaseError::fail(format!("validate failed: {e}")));
        }
    }
}

#[test]
fn warm_push_pull_cuts_search_rounds() {
    // Repeated Successor batches over a stable structure: once the cache
    // is warm, the per-batch round count must drop well below baseline —
    // the tentpole's ≥2× target, asserted here at a smoke-test scale.
    let n: i64 = 4_000;
    let pairs: Vec<(i64, u64)> = (0..n).map(|k| (k * 7, k as u64)).collect();
    let batch: Vec<i64> = (0..256).map(|i| (i * 97) % (n * 7)).collect();

    let rounds_per_batch = |push_pull: bool| -> (u64, u64) {
        let mut list = PimSkipList::new(Config::new(16, 1 << 13, 42).with_push_pull(push_pull));
        list.load(&pairs);
        // Warm-up batches (admission needs observed access counts).
        for _ in 0..10 {
            list.batch_successor(&batch);
        }
        let before = list.metrics();
        for _ in 0..4 {
            list.batch_successor(&batch);
        }
        let d = list.metrics() - before;
        (d.rounds / 4, list.hot_cache_len() as u64)
    };

    let (base_rounds, _) = rounds_per_batch(false);
    let (pp_rounds, cache_len) = rounds_per_batch(true);
    assert!(cache_len > 0, "warm cache must hold records");
    assert!(
        pp_rounds * 2 <= base_rounds,
        "warm push-pull must at least halve rounds/batch: baseline {base_rounds}, push-pull {pp_rounds}"
    );
}
