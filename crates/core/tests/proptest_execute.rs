//! Property-based contract of the unified entry point: executing a mixed
//! [`Op`] stream through [`PimSkipList::execute`] is *exactly* the same
//! computation as splitting the stream into maximal coalescible runs and
//! calling each run's typed `batch_*` — same replies, same contents, same
//! machine metrics — and span attribution stays conservative over mixed
//! streams.

use proptest::prelude::*;

use pim_core::{Config, Op, PimSkipList, RangeFunc, Reply};

fn key_strategy() -> impl Strategy<Value = i64> {
    // Small domain: collisions, duplicate keys, overlapping ranges.
    -40i64..200
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Upsert { key, value }),
        2 => key_strategy().prop_map(|key| Op::Delete { key }),
        2 => key_strategy().prop_map(|key| Op::Get { key }),
        1 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Update { key, value }),
        1 => key_strategy().prop_map(|key| Op::Successor { key }),
        1 => key_strategy().prop_map(|key| Op::Predecessor { key }),
        1 => (key_strategy(), key_strategy())
            .prop_map(|(a, b)| Op::Range { lo: a.min(b), hi: a.max(b), func: RangeFunc::Sum }),
        1 => (key_strategy(), key_strategy())
            .prop_map(|(a, b)| Op::Range { lo: a.min(b), hi: a.max(b), func: RangeFunc::Read }),
    ]
}

/// Split `ops` into maximal coalescible runs, exactly as `execute` does.
fn runs(ops: &[Op]) -> Vec<&[Op]> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < ops.len() {
        let mut end = start + 1;
        while end < ops.len() && ops[end].coalesces_with(&ops[start]) {
            end += 1;
        }
        out.push(&ops[start..end]);
        start = end;
    }
    out
}

/// Execute one homogeneous run through its family's typed batch API.
fn run_via_typed_batch(list: &mut PimSkipList, run: &[Op]) -> Vec<Reply> {
    match run[0] {
        Op::Get { .. } => {
            let keys: Vec<i64> = run
                .iter()
                .map(|o| match *o {
                    Op::Get { key } => key,
                    _ => unreachable!(),
                })
                .collect();
            list.batch_get(&keys)
                .into_iter()
                .map(Reply::Value)
                .collect()
        }
        Op::Update { .. } => {
            let pairs: Vec<(i64, u64)> = run
                .iter()
                .map(|o| match *o {
                    Op::Update { key, value } => (key, value),
                    _ => unreachable!(),
                })
                .collect();
            list.batch_update(&pairs)
                .into_iter()
                .map(Reply::Updated)
                .collect()
        }
        Op::Upsert { .. } => {
            let pairs: Vec<(i64, u64)> = run
                .iter()
                .map(|o| match *o {
                    Op::Upsert { key, value } => (key, value),
                    _ => unreachable!(),
                })
                .collect();
            list.batch_upsert(&pairs)
                .into_iter()
                .map(Reply::Upserted)
                .collect()
        }
        Op::Delete { .. } => {
            let keys: Vec<i64> = run
                .iter()
                .map(|o| match *o {
                    Op::Delete { key } => key,
                    _ => unreachable!(),
                })
                .collect();
            list.batch_delete(&keys)
                .into_iter()
                .map(Reply::Deleted)
                .collect()
        }
        Op::Predecessor { .. } => {
            let keys: Vec<i64> = run
                .iter()
                .map(|o| match *o {
                    Op::Predecessor { key } => key,
                    _ => unreachable!(),
                })
                .collect();
            list.batch_predecessor(&keys)
                .into_iter()
                .map(Reply::Entry)
                .collect()
        }
        Op::Successor { .. } => {
            let keys: Vec<i64> = run
                .iter()
                .map(|o| match *o {
                    Op::Successor { key } => key,
                    _ => unreachable!(),
                })
                .collect();
            list.batch_successor(&keys)
                .into_iter()
                .map(Reply::Entry)
                .collect()
        }
        Op::Range { func, .. } => {
            let ranges: Vec<(i64, i64)> = run
                .iter()
                .map(|o| match *o {
                    Op::Range { lo, hi, .. } => (lo, hi),
                    _ => unreachable!(),
                })
                .collect();
            list.batch_range(&ranges, func)
                .into_iter()
                .map(Reply::Range)
                .collect()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn mixed_execute_equals_per_type_batch_sequence(
        seed in 0u64..1_000_000,
        p in 1u32..9,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut mixed = PimSkipList::new(Config::new(p, 1 << 10, seed));
        let mut typed = PimSkipList::new(Config::new(p, 1 << 10, seed));

        let mixed_replies = mixed.execute(&ops);
        let mut typed_replies = Vec::with_capacity(ops.len());
        for run in runs(&ops) {
            typed_replies.extend(run_via_typed_batch(&mut typed, run));
        }

        prop_assert_eq!(&mixed_replies, &typed_replies,
            "mixed execute and per-type batches must answer identically");
        prop_assert_eq!(mixed.collect_items(), typed.collect_items(),
            "final contents must match");
        prop_assert_eq!(mixed.metrics(), typed.metrics(),
            "the two paths must do bit-identical machine work");
        if let Err(e) = mixed.validate() {
            return Err(TestCaseError::fail(format!("invariant violated: {e}")));
        }
    }

    #[test]
    fn pipelined_execute_is_byte_identical_to_sequential(
        seed in 0u64..1_000_000,
        p in 1u32..9,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        // The inter-batch pipelining contract: staging run k+1 while run k
        // executes changes wall-clock only. Replies, contents, machine
        // metrics, and the serialised trace artifacts must match the
        // sequential driver byte for byte on any mixed stream.
        let mut seq = PimSkipList::new(Config::new(p, 1 << 10, seed).with_pipeline(false));
        let mut pipe = PimSkipList::new(Config::new(p, 1 << 10, seed).with_pipeline(true));
        seq.enable_tracing();
        pipe.enable_tracing();

        let seq_replies = seq.execute(&ops);
        let pipe_replies = pipe.execute(&ops);

        prop_assert_eq!(&seq_replies, &pipe_replies,
            "pipelining must not change any reply");
        prop_assert_eq!(seq.collect_items(), pipe.collect_items(),
            "pipelining must not change the contents");
        prop_assert_eq!(seq.metrics(), pipe.metrics(),
            "pipelining must not change the machine work");

        let (seq_trace, pipe_trace) = (seq.take_trace(), pipe.take_trace());
        let seq_bundle = pim_runtime::ExportBundle { p, trace: &seq_trace, report: None };
        let pipe_bundle = pim_runtime::ExportBundle { p, trace: &pipe_trace, report: None };
        prop_assert_eq!(
            pim_runtime::chrome_trace(&seq_bundle),
            pim_runtime::chrome_trace(&pipe_bundle),
            "serialised chrome traces must match byte for byte");
        prop_assert_eq!(
            pim_runtime::rounds_jsonl(&seq_bundle),
            pim_runtime::rounds_jsonl(&pipe_bundle),
            "serialised round logs must match byte for byte");
    }

    #[test]
    fn telemetry_never_perturbs_mixed_streams(
        seed in 0u64..1_000_000,
        p in 1u32..9,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut dark = PimSkipList::new(Config::new(p, 1 << 10, seed));
        let mut lit = PimSkipList::new(Config::new(p, 1 << 10, seed));
        lit.enable_telemetry();
        let start = lit.metrics();

        let dark_replies = dark.execute(&ops);
        let lit_replies = lit.execute(&ops);

        prop_assert_eq!(&dark_replies, &lit_replies,
            "telemetry must not change any reply");
        prop_assert_eq!(dark.collect_items(), lit.collect_items(),
            "telemetry must not change the contents");
        prop_assert_eq!(dark.metrics(), lit.metrics(),
            "telemetry must not change the machine work");

        // The registry accounted for exactly the stream it watched: per-op
        // counters sum to the op count, per-run deltas to the metrics.
        let delta = lit.metrics() - start;
        let snap = lit.telemetry_snapshot().expect("telemetry was enabled");
        let issued: u64 = ["get", "update", "upsert", "delete",
                           "predecessor", "successor", "range"]
            .iter()
            .filter_map(|op| snap.counter("pim_ops_total", &[("op", op)]))
            .sum();
        prop_assert_eq!(issued, ops.len() as u64,
            "per-op counters must sum to the stream length");
        prop_assert_eq!(snap.counter("pim_rounds_total", &[]), Some(delta.rounds));
        prop_assert_eq!(snap.counter("pim_messages_total", &[]),
            Some(delta.total_messages));
    }

    #[test]
    fn execute_span_sums_conserve_over_mixed_streams(
        seed in 0u64..100_000,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut list = PimSkipList::new(Config::new(4, 1 << 10, seed));
        let before = list.metrics();
        list.enable_probe();
        list.execute(&ops);
        let after = list.metrics();
        let report = list.take_probe().expect("probe was enabled");
        let delta = after - before;
        let total = report.total();
        prop_assert_eq!(total.rounds, delta.rounds);
        prop_assert_eq!(total.io_time, delta.io_time);
        prop_assert_eq!(total.pim_time, delta.pim_time);
        prop_assert_eq!(total.cpu_work, delta.cpu_work);
        prop_assert_eq!(total.total_messages, delta.total_messages);
    }
}
