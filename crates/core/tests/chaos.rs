//! Chaos suite: the skip list under deterministic fault injection.
//!
//! Every test installs a [`FaultPlan`] — crashes, message drops, stalls,
//! slowdowns — and checks the recovery layer's contract end to end:
//!
//! * after any recoverable fault schedule, contents match a fault-free
//!   `BTreeMap` oracle and [`PimSkipList::validate`] passes;
//! * the same plan replays the exact same execution (metrics included);
//! * an *empty* plan is bit-identical to never installing one;
//! * unrecoverable schedules surface [`PimError::RetriesExhausted`]
//!   instead of corrupting state.

use std::collections::BTreeMap;

use pim_core::{Config, FaultKind, FaultPlan, Op, PimError, PimSkipList, RangeFunc};
use pim_workloads::adversary::{contiguous_run, same_successor_flood};

/// The adversarial upsert/delete workload shared by several tests:
/// bulk-build, then a contiguous-run insert wave and a contiguous-run
/// delete wave (the Delete-side adversary — one long splice run), then a
/// same-successor query flood.
fn adversarial_workload(list: &mut PimSkipList) -> (Vec<bool>, Vec<Option<u64>>) {
    let base: Vec<(i64, u64)> = (0..300).map(|i| (i * 4, i as u64)).collect();
    list.bulk_load(&base);

    let inserts: Vec<(i64, u64)> = contiguous_run(401, 120)
        .into_iter()
        .map(|k| (k, 7))
        .collect();
    list.batch_upsert(&inserts);

    let dels = contiguous_run(400, 160);
    let deleted = list.batch_delete(&dels);

    // All flood keys live in the (801, 1100) key gap: same successor.
    let queries = same_successor_flood(9, 801, 1100, 64);
    let got = list.batch_get(&queries);
    (deleted, got)
}

/// The oracle for [`adversarial_workload`].
fn adversarial_oracle() -> BTreeMap<i64, u64> {
    let mut m: BTreeMap<i64, u64> = (0..300).map(|i| (i * 4, i as u64)).collect();
    for k in contiguous_run(401, 120) {
        m.insert(k, 7);
    }
    for k in contiguous_run(400, 160) {
        m.remove(&k);
    }
    m
}

#[test]
fn crash_at_fixed_round_recovers_and_matches_oracle() {
    // Dry run to learn where the mutation phase lives on the round axis.
    let mut dry = PimSkipList::new(Config::new(4, 1 << 10, 77));
    let rounds_probe = {
        let base: Vec<(i64, u64)> = (0..300).map(|i| (i * 4, i as u64)).collect();
        dry.bulk_load(&base);
        dry.metrics().rounds
    };
    let mut dry = PimSkipList::new(Config::new(4, 1 << 10, 77));
    let (dry_deleted, dry_got) = adversarial_workload(&mut dry);

    // Chaos run: crash module 1 at a fixed round inside the upsert/delete
    // phase. Execution is deterministic, so the crash strikes mid-batch.
    let crash_round = rounds_probe + (dry.metrics().rounds - rounds_probe) / 2;
    let mut chaotic = PimSkipList::new(Config::new(4, 1 << 10, 77));
    chaotic.set_fault_plan(FaultPlan::new().at(crash_round, 1, FaultKind::Crash));
    let (deleted, got) = adversarial_workload(&mut chaotic);

    let m = chaotic.metrics();
    assert_eq!(m.module_crashes, 1, "the scheduled crash must have struck");
    assert!(m.recovery_rounds > 0, "recovery must have spent rounds");
    assert_eq!(
        deleted, dry_deleted,
        "per-key delete results must survive the crash"
    );
    assert_eq!(got, dry_got, "query results must survive the crash");
    chaotic.validate().expect("recovered structure valid");
    let oracle = adversarial_oracle();
    assert_eq!(
        chaotic.collect_items(),
        oracle.into_iter().collect::<Vec<_>>(),
        "recovered contents must equal the fault-free oracle"
    );
}

#[test]
fn random_fault_storm_matches_oracle() {
    // 40 faults over the first 600 rounds, every kind in the mix. A
    // generous retry budget makes exhaustion impossible (each scheduled
    // round can damage at most one attempt), so any error is a real bug.
    let mut list = PimSkipList::new(Config::new(4, 1 << 10, 42).with_max_retries(50));
    list.set_fault_plan(FaultPlan::random(0xC0FFEE, 4, 600, 40));
    let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();

    let base: Vec<(i64, u64)> = (0..200).map(|i| (i * 3, i as u64)).collect();
    list.try_bulk_load(&base).expect("bulk load under storm");
    oracle.extend(base.iter().copied());

    for wave in 0..6i64 {
        let ups: Vec<(i64, u64)> = (0..40)
            .map(|i| (wave * 100 + i * 2 + 1, (wave * 1000 + i) as u64))
            .collect();
        list.try_batch_upsert(&ups).expect("upsert under storm");
        oracle.extend(ups.iter().copied());

        let dels: Vec<i64> = (0..25).map(|i| wave * 24 + i * 3).collect();
        let res = list.try_batch_delete(&dels).expect("delete under storm");
        for (i, k) in dels.iter().enumerate() {
            assert_eq!(res[i], oracle.remove(k).is_some(), "delete({k}) verdict");
        }

        let gets: Vec<i64> = (0..50).map(|i| wave * 7 + i * 5 - 20).collect();
        let res = list.try_batch_get(&gets).expect("get under storm");
        for (i, k) in gets.iter().enumerate() {
            assert_eq!(res[i], oracle.get(k).copied(), "get({k}) under storm");
        }
    }

    list.validate().expect("structure valid after the storm");
    assert_eq!(
        list.collect_items(),
        oracle.into_iter().collect::<Vec<_>>(),
        "contents must equal the fault-free oracle after the storm"
    );
    let m = list.metrics();
    assert!(m.faults_injected > 0, "the storm must actually strike");
}

#[test]
fn same_fault_seed_replays_identically() {
    let run = || {
        let mut list = PimSkipList::new(Config::new(4, 1 << 10, 7).with_max_retries(50));
        list.set_fault_plan(FaultPlan::random(1234, 4, 400, 25));
        let (deleted, got) = adversarial_workload(&mut list);
        (list.metrics(), deleted, got, list.collect_items())
    };
    let (m1, d1, g1, items1) = run();
    let (m2, d2, g2, items2) = run();
    assert_eq!(m1, m2, "same plan, same seed ⇒ identical metrics");
    assert_eq!(d1, d2);
    assert_eq!(g1, g2);
    assert_eq!(items1, items2);
    assert!(m1.faults_injected > 0, "the plan must actually strike");
}

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    let mut bare = PimSkipList::new(Config::new(8, 1 << 10, 5));
    let bare_out = adversarial_workload(&mut bare);

    let mut planned = PimSkipList::new(Config::new(8, 1 << 10, 5));
    planned.set_fault_plan(FaultPlan::new());
    let planned_out = adversarial_workload(&mut planned);

    assert_eq!(
        bare.metrics(),
        planned.metrics(),
        "an empty plan must not perturb a single metric"
    );
    assert_eq!(bare_out, planned_out);
    assert_eq!(bare.collect_items(), planned.collect_items());
}

#[test]
fn dropped_replies_are_retried_transparently() {
    let mut list = PimSkipList::new(Config::new(4, 1 << 10, 11));
    let pairs: Vec<(i64, u64)> = (0..200).map(|i| (i * 2, i as u64 + 100)).collect();
    list.bulk_load(&pairs);

    // Lose one Get reply from every module on the query round.
    let round = list.metrics().rounds;
    let mut plan = FaultPlan::new();
    for m in 0..4 {
        plan = plan.at(round, m, FaultKind::DropReply { nth: 0 });
    }
    list.set_fault_plan(plan);

    let keys: Vec<i64> = (0..200).map(|i| i * 2).collect();
    let got = list.try_batch_get(&keys).expect("get with dropped replies");
    for (i, v) in got.iter().enumerate() {
        assert_eq!(*v, Some(i as u64 + 100), "value of key {}", i * 2);
    }
    let m = list.metrics();
    assert!(m.messages_dropped > 0, "the drops must have struck");
    assert!(m.retries_issued > 0, "the batch must have been re-issued");
    list.validate().expect("reads never tear the structure");
}

#[test]
fn stalls_and_slowdowns_never_need_recovery() {
    let mut dry = PimSkipList::new(Config::new(4, 1 << 10, 13));
    let dry_out = adversarial_workload(&mut dry);

    let mut list = PimSkipList::new(Config::new(4, 1 << 10, 13));
    let mut plan = FaultPlan::new();
    for r in (5..100).step_by(7) {
        plan = plan.at(r, (r % 4) as u32, FaultKind::Stall);
        plan = plan.at(r + 2, ((r + 1) % 4) as u32, FaultKind::Slow { factor: 3 });
    }
    list.set_fault_plan(plan);
    let out = adversarial_workload(&mut list);

    assert_eq!(out, dry_out, "stalls/slowdowns only delay, never damage");
    assert_eq!(list.collect_items(), dry.collect_items());
    let m = list.metrics();
    assert!(m.stalled_module_rounds > 0, "the stalls must have struck");
    assert_eq!(m.retries_issued, 0, "no retry may be triggered");
    assert_eq!(m.recovery_rounds, 0, "no recovery may be triggered");
    assert_eq!(m.messages_dropped, 0);
    assert_eq!(m.module_crashes, 0);
    list.validate().expect("valid");
}

#[test]
fn crash_during_mutating_range_applies_add_exactly_once() {
    let mut list = PimSkipList::new(Config::new(4, 1 << 10, 17));
    let pairs: Vec<(i64, u64)> = (0..150).map(|i| (i * 2, i as u64)).collect();
    list.bulk_load(&pairs);

    // Crash module 2 on the broadcast round itself.
    let round = list.metrics().rounds;
    list.set_fault_plan(FaultPlan::new().at(round, 2, FaultKind::Crash));
    list.try_range_broadcast(40, 120, RangeFunc::AddInPlace(5))
        .expect("range add under crash");

    let expect: Vec<(i64, u64)> = pairs
        .iter()
        .map(|&(k, v)| (k, if (40..=120).contains(&k) { v + 5 } else { v }))
        .collect();
    assert_eq!(
        list.collect_items(),
        expect,
        "the add must be applied exactly once despite the crash"
    );
    list.validate().expect("recovered structure valid");
    assert_eq!(list.metrics().module_crashes, 1);
}

/// A mixed [`Op`] stream with short runs of every family, so the unified
/// entry point crosses many read/write epoch boundaries.
fn mixed_stream() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..150i64 {
        ops.push(Op::Upsert {
            key: i * 3,
            value: i as u64,
        });
    }
    for i in 0..40i64 {
        ops.push(Op::Get { key: i * 5 });
        ops.push(Op::Delete { key: i * 6 });
        ops.push(Op::Upsert {
            key: 1_000 + i,
            value: (i * 7) as u64,
        });
        ops.push(Op::Successor { key: i * 4 - 10 });
        ops.push(Op::Range {
            lo: i * 2,
            hi: i * 2 + 60,
            func: RangeFunc::Sum,
        });
    }
    for i in 0..30i64 {
        ops.push(Op::Update {
            key: i * 3,
            value: 9_000 + i as u64,
        });
        ops.push(Op::Predecessor { key: i * 8 });
    }
    ops
}

/// Reply equality up to node handles: recovery rebuilds crashed modules,
/// so `Entry` handles are physically relocated — the *keys* are the
/// logical answer and must match exactly.
fn assert_logically_eq(got: &[pim_core::Reply], want: &[pim_core::Reply]) {
    assert_eq!(got.len(), want.len(), "reply counts diverge");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        match (g, w) {
            (pim_core::Reply::Entry(ge), pim_core::Reply::Entry(we)) => assert_eq!(
                ge.map(|e| e.0),
                we.map(|e| e.0),
                "entry key diverges at op {i}"
            ),
            _ => assert_eq!(g, w, "reply diverges at op {i}"),
        }
    }
}

#[test]
fn crash_mid_mixed_stream_recovers_and_op_log_replays_identically() {
    // Dry run: fault-free replies and the round budget of the stream.
    let cfg = || {
        Config::new(4, 1 << 10, 91)
            .with_op_log()
            .with_max_retries(50)
    };
    let ops = mixed_stream();
    let mut dry = PimSkipList::new(cfg());
    let dry_replies = dry.try_execute(&ops).expect("fault-free stream");

    // Chaos run: crash module 1 halfway through the stream. Execution is
    // deterministic, so the crash lands inside some mid-stream run.
    let crash_round = dry.metrics().rounds / 2;
    let mut chaotic = PimSkipList::new(cfg());
    chaotic.set_fault_plan(FaultPlan::new().at(crash_round, 1, FaultKind::Crash));
    let replies = chaotic.try_execute(&ops).expect("recovers mid-stream");

    let m = chaotic.metrics();
    assert_eq!(m.module_crashes, 1, "the scheduled crash must have struck");
    assert!(m.recovery_rounds > 0, "recovery must have spent rounds");
    assert_logically_eq(&replies, &dry_replies);
    chaotic.validate().expect("recovered structure valid");
    assert_eq!(chaotic.collect_items(), dry.collect_items());

    // Exactly-once journalling: despite the retried run, every op is
    // logged once, in arrival order.
    assert_eq!(chaotic.op_log(), &ops[..], "op log = committed stream");

    // The journal is a complete recipe: replaying it through `execute` on
    // a fresh list reproduces both the answers and the final contents.
    let logged = chaotic.op_log().to_vec();
    let mut replay = PimSkipList::new(Config::new(4, 1 << 10, 91));
    let replay_replies = replay.execute(&logged);
    assert_eq!(replay_replies, dry_replies, "replayed answers match");
    assert_eq!(
        replay.collect_items(),
        chaotic.collect_items(),
        "replaying the op log rebuilds the recovered state"
    );
    replay.validate().expect("replayed structure valid");
}

#[test]
fn pipelined_crash_at_route_commit_recovers_on_run_boundary() {
    // A scheduled Crash strikes at the round's *route-commit* point (the
    // pre-delivery fault application in the round engine), i.e. exactly
    // where the pipelined driver may already have staged the next run's
    // preprocessing on the side thread. Recovery must land on a run
    // boundary: the retried run re-commits wholesale, the staged next run
    // is discarded and recomputed, and the op log ends up with every op
    // exactly once in arrival order — no half-committed or duplicated run.
    let cfg = |pipeline: bool| {
        Config::new(4, 1 << 10, 91)
            .with_op_log()
            .with_max_retries(50)
            .with_pipeline(pipeline)
    };
    let ops = mixed_stream();
    let mut dry = PimSkipList::new(cfg(true));
    let dry_replies = dry.try_execute(&ops).expect("fault-free stream");
    let crash_round = dry.metrics().rounds / 2;

    let run = |pipeline: bool| {
        let mut list = PimSkipList::new(cfg(pipeline));
        list.set_fault_plan(FaultPlan::new().at(crash_round, 1, FaultKind::Crash));
        let replies = list.try_execute(&ops).expect("recovers mid-stream");
        (replies, list)
    };
    let (replies, chaotic) = run(true);

    let m = chaotic.metrics();
    assert_eq!(m.module_crashes, 1, "the scheduled crash must have struck");
    assert!(m.recovery_rounds > 0, "recovery must have spent rounds");
    assert_logically_eq(&replies, &dry_replies);
    chaotic.validate().expect("recovered structure valid");
    assert_eq!(chaotic.collect_items(), dry.collect_items());

    // Run-boundary proof: the journal logs whole runs at commit points,
    // so op log == input stream ⟺ every run committed exactly once.
    assert_eq!(
        chaotic.op_log(),
        &ops[..],
        "recovery must re-commit the damaged run wholesale, exactly once"
    );

    // The crash/recovery schedule itself is round-keyed and rounds are
    // pipeline-invariant, so the sequential engine under the *same* plan
    // is byte-identical — faults included.
    let (seq_replies, seq) = run(false);
    assert_eq!(replies, seq_replies, "same faults, same replies");
    assert_eq!(chaotic.metrics(), seq.metrics(), "same faults, same work");
    assert_eq!(chaotic.collect_items(), seq.collect_items());
    assert_eq!(chaotic.op_log(), seq.op_log());
}

#[test]
fn unrecoverable_schedule_surfaces_retries_exhausted() {
    // Crash module 0 at every round: no attempt can ever complete. With
    // max_retries = 1 the wrapper gives up after two attempts.
    let mut list = PimSkipList::new(Config::new(4, 1 << 8, 19).with_max_retries(1));
    let mut plan = FaultPlan::new();
    for r in 0..300 {
        plan = plan.at(r, 0, FaultKind::Crash);
    }
    list.set_fault_plan(plan);

    let pairs: Vec<(i64, u64)> = (0..50).map(|i| (i, i as u64)).collect();
    let err = list
        .try_batch_upsert(&pairs)
        .expect_err("must exhaust retries");
    assert!(
        matches!(err, PimError::RetriesExhausted { .. }),
        "expected RetriesExhausted, got: {err}"
    );
}

#[test]
fn invalid_arguments_are_typed_errors_not_retries() {
    let mut list = PimSkipList::new(Config::new(4, 1 << 8, 23));
    list.bulk_load(&[(1, 1), (2, 2)]);
    let err = list.try_bulk_load(&[(3, 3)]).expect_err("non-empty");
    assert!(
        matches!(err, PimError::InvalidArgument { .. }),
        "got: {err}"
    );

    let mut empty = PimSkipList::new(Config::new(4, 1 << 8, 23));
    let err = empty
        .try_bulk_load(&[(2, 2), (1, 1)])
        .expect_err("unsorted");
    assert!(
        matches!(err, PimError::InvalidArgument { .. }),
        "got: {err}"
    );
    assert_eq!(
        list.metrics().retries_issued,
        0,
        "argument errors must not burn retries"
    );
}
