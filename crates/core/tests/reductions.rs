//! Reduction range functions (Count/Sum/Min/Max) in both execution
//! flavours, vs a BTreeMap oracle.

use std::collections::BTreeMap;

use pim_core::{Config, PimSkipList, RangeFunc};

fn setup() -> (PimSkipList, BTreeMap<i64, u64>) {
    let mut list = PimSkipList::new(Config::new(8, 1 << 11, 77));
    let pairs: Vec<(i64, u64)> = (0..300)
        .map(|i| (i * 5, ((i * 2654435761i64) % 1000).unsigned_abs()))
        .collect();
    list.batch_upsert(&pairs);
    (list, pairs.into_iter().collect())
}

fn oracle_agg(oracle: &BTreeMap<i64, u64>, lo: i64, hi: i64) -> (u64, u64, u64, u64) {
    let vals: Vec<u64> = oracle.range(lo..=hi).map(|(_, &v)| v).collect();
    (
        vals.len() as u64,
        vals.iter().sum(),
        vals.iter().copied().min().unwrap_or(u64::MAX),
        vals.iter().copied().max().unwrap_or(0),
    )
}

#[test]
fn broadcast_min_max_match_oracle() {
    let (mut list, oracle) = setup();
    for (lo, hi) in [(0i64, 1495i64), (100, 600), (777, 777), (2000, 3000)] {
        let (cnt, sum, min, max) = oracle_agg(&oracle, lo, hi);
        let rmin = list.range_broadcast(lo, hi, RangeFunc::Min);
        assert_eq!(rmin.min, min, "min [{lo},{hi}]");
        assert_eq!(rmin.count, cnt);
        let rmax = list.range_broadcast(lo, hi, RangeFunc::Max);
        assert_eq!(rmax.max, max, "max [{lo},{hi}]");
        let rsum = list.range_broadcast(lo, hi, RangeFunc::Sum);
        assert_eq!(rsum.sum, sum, "sum [{lo},{hi}]");
    }
}

#[test]
fn tree_min_max_match_oracle() {
    let (mut list, oracle) = setup();
    let ranges = vec![(0i64, 500i64), (250, 1000), (600, 600), (1400, 1495)];
    let rmin = list.batch_range(&ranges, RangeFunc::Min);
    let rmax = list.batch_range(&ranges, RangeFunc::Max);
    let rsum = list.batch_range(&ranges, RangeFunc::Sum);
    for (i, &(lo, hi)) in ranges.iter().enumerate() {
        let (cnt, sum, min, max) = oracle_agg(&oracle, lo, hi);
        assert_eq!(rmin[i].min, min, "tree min [{lo},{hi}]");
        assert_eq!(rmax[i].max, max, "tree max [{lo},{hi}]");
        assert_eq!(rsum[i].sum, sum, "tree sum [{lo},{hi}]");
        assert_eq!(rsum[i].count, cnt, "tree count [{lo},{hi}]");
    }
}

#[test]
fn empty_range_reduction_identities() {
    let (mut list, _) = setup();
    let r = list.range_broadcast(1, 2, RangeFunc::Min);
    assert_eq!(r.count, 0);
    assert_eq!(r.min, u64::MAX);
    assert_eq!(r.max, 0);
    let rt = list.batch_range(&[(1, 2)], RangeFunc::Max);
    assert_eq!(rt[0].count, 0);
    assert_eq!(rt[0].max, 0);
}

#[test]
fn overlapping_tree_reductions_count_per_op() {
    let (mut list, oracle) = setup();
    // Identical overlapping ranges must each get the full reduction.
    let ranges = vec![(0i64, 700i64); 3];
    let res = list.batch_range(&ranges, RangeFunc::Sum);
    let (cnt, sum, _, _) = oracle_agg(&oracle, 0, 700);
    for r in res {
        assert_eq!(r.count, cnt);
        assert_eq!(r.sum, sum);
    }
}

#[test]
fn range_auto_matches_both_strategies() {
    let (mut list, oracle) = setup();
    // Small range (tree regime) and large range (broadcast regime).
    for (lo, hi) in [(100i64, 130i64), (0, 1495)] {
        let auto = list.range_auto(lo, hi, RangeFunc::Read);
        let expect: Vec<(i64, u64)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(auto.items, expect, "range_auto [{lo},{hi}]");
        let auto_sum = list.range_auto(lo, hi, RangeFunc::Sum);
        assert_eq!(auto_sum.sum, expect.iter().map(|&(_, v)| v).sum::<u64>());
        let auto_cnt = list.range_auto(lo, hi, RangeFunc::Count);
        assert_eq!(auto_cnt.count, expect.len() as u64);
    }
}
