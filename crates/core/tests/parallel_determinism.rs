//! The executor determinism contract, end to end.
//!
//! `pim-pool` promises that the worker-thread count changes wall-clock
//! time and nothing else: every model metric, every reply, and every
//! exported trace byte must be identical at `PIM_THREADS=1` and
//! `PIM_THREADS=8`. CI enforces this on the `experiments` binary's
//! output; this test enforces it in-process on a mixed
//! upsert/delete/get/successor/range workload, including the serialised
//! trace artifacts.

use std::sync::Mutex;

use pim_core::{Config, PimSkipList, RangeFunc};
use pim_runtime::pool::{self, ExecConfig};
use pim_workloads::PointGen;

/// The pool configuration is process-global; serialise the tests in this
/// binary so one test's ladder never races another's.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Everything observable a run produces, other than elapsed time.
#[derive(Debug, PartialEq)]
struct RunArtifacts {
    gets: Vec<Option<u64>>,
    successors: Vec<Option<(i64, pim_runtime::Handle)>>,
    range_counts: Vec<u64>,
    final_len: u64,
    metrics: pim_runtime::Metrics,
    chrome_trace: String,
    rounds_jsonl: String,
    probe_table: String,
}

/// One fixed mixed workload, run under whatever pool config is active.
fn run_workload(p: u32, seed: u64) -> RunArtifacts {
    let mut list = PimSkipList::new(Config::new(p, 1 << 12, seed));
    let mut gen = PointGen::new(seed ^ 0xDE7, 0, 1 << 18);

    // Load, then instrument so the artifacts cover the measured phases.
    let resident = gen.distinct_uniform(3_000);
    let pairs: Vec<(i64, u64)> = resident.iter().map(|&k| (k, k as u64)).collect();
    list.batch_upsert(&pairs);
    list.enable_tracing_with_cap(1 << 16);
    list.enable_probe();

    // Mixed batches: fresh upserts, deletes of residents, point and
    // search queries (some hitting, some missing), tree + broadcast
    // ranges.
    let fresh: Vec<(i64, u64)> = gen
        .distinct_uniform(600)
        .into_iter()
        .map(|k| (k + (1 << 19), k as u64))
        .collect();
    list.batch_upsert(&fresh);
    let dead = gen.distinct_from_existing(&resident, 500);
    list.batch_delete(&dead);
    let gets = list.batch_get(&gen.from_existing(&resident, 400));
    let successors = list.batch_successor(&gen.uniform(400));
    let ranges: Vec<(i64, i64)> = (0..64)
        .map(|i| {
            let lo = i * (1 << 12);
            (lo, lo + (1 << 11))
        })
        .collect();
    let range_counts: Vec<u64> = list
        .batch_range(&ranges, RangeFunc::Count)
        .into_iter()
        .map(|r| r.count)
        .collect();

    let report = list.take_probe().expect("probe enabled");
    let trace = list.take_trace();
    let bundle = pim_runtime::ExportBundle {
        p,
        trace: &trace,
        report: Some(&report),
    };
    let probe_table: String = report
        .by_path()
        .into_iter()
        .map(|(path, depth, count, stats)| format!("{path} {depth} {count} {stats:?}\n"))
        .collect();
    RunArtifacts {
        gets,
        successors,
        range_counts,
        final_len: list.len(),
        metrics: list.metrics(),
        chrome_trace: pim_runtime::chrome_trace(&bundle),
        rounds_jsonl: pim_runtime::rounds_jsonl(&bundle),
        probe_table,
    }
}

fn artifacts_at(threads: usize, p: u32, seed: u64) -> RunArtifacts {
    pool::configure(ExecConfig {
        threads,
        // Zero thresholds force real forking even on these test-sized
        // batches — otherwise the sequential cutoff would make the
        // comparison vacuous.
        par_threshold: 0,
        sort_threshold: 0,
    });
    let out = run_workload(p, seed);
    pool::configure(ExecConfig::from_env());
    out
}

#[test]
fn one_thread_and_eight_threads_are_bit_identical() {
    let _guard = POOL_LOCK.lock().unwrap();
    for (p, seed) in [(8u32, 11u64), (32, 42)] {
        let base = artifacts_at(1, p, seed);
        let wide = artifacts_at(8, p, seed);
        // Replies and structure first (small, readable failures)…
        assert_eq!(wide.gets, base.gets, "P={p}");
        assert_eq!(wide.successors, base.successors, "P={p}");
        assert_eq!(wide.range_counts, base.range_counts, "P={p}");
        assert_eq!(wide.final_len, base.final_len, "P={p}");
        assert_eq!(wide.metrics, base.metrics, "P={p}");
        assert_eq!(wide.probe_table, base.probe_table, "P={p}");
        // …then the serialised artifacts byte for byte.
        assert_eq!(wide.chrome_trace, base.chrome_trace, "P={p}");
        assert_eq!(wide.rounds_jsonl, base.rounds_jsonl, "P={p}");
        // Sanity: the workload actually produced traffic worth comparing.
        assert!(base.metrics.rounds > 0 && base.metrics.io_time > 0);
        assert!(!base.rounds_jsonl.is_empty());
    }
}

#[test]
fn every_ladder_step_matches_one_thread() {
    let _guard = POOL_LOCK.lock().unwrap();
    let base = artifacts_at(1, 16, 7);
    for threads in [2usize, 3, 4, 6, 8] {
        let other = artifacts_at(threads, 16, 7);
        assert_eq!(other, base, "threads = {threads}");
    }
}
