//! Property-based contract of buffer recycling: warm pools are
//! observation-free.
//!
//! The zero-allocation round engine recycles message buffers, route
//! buffers, batch scratch, and service staging across batches. None of
//! that reuse may be observable in the model: a structure whose pools sit
//! at their high-water marks must answer a mixed op stream with replies,
//! machine metrics, and round traces *byte-identical* to a freshly
//! constructed (cold) structure in the same logical state.
//!
//! Two comparisons per case:
//!
//! 1. **cold vs pre-warmed** — the warm structure first executes a
//!    stream of point Gets (they mutate nothing and draw no randomness,
//!    so both structures enter the measured pass in identical logical and
//!    rng state, differing only in allocator history);
//! 2. **second pass vs second pass** — the same mixed stream runs *twice*
//!    through each structure, and the warm side's second pass (every pool
//!    recycled at least once) must match the cold side's second pass.

use proptest::prelude::*;

use pim_core::{Config, Op, PimSkipList, RangeFunc, Reply};
use pim_runtime::{Metrics, RoundTrace};

fn key_strategy() -> impl Strategy<Value = i64> {
    // Small domain: collisions, duplicate keys, overlapping ranges.
    -40i64..200
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Upsert { key, value }),
        2 => key_strategy().prop_map(|key| Op::Delete { key }),
        2 => key_strategy().prop_map(|key| Op::Get { key }),
        1 => (key_strategy(), any::<u64>())
            .prop_map(|(key, value)| Op::Update { key, value }),
        1 => key_strategy().prop_map(|key| Op::Successor { key }),
        1 => key_strategy().prop_map(|key| Op::Predecessor { key }),
        1 => (key_strategy(), key_strategy())
            .prop_map(|(a, b)| Op::Range { lo: a.min(b), hi: a.max(b), func: RangeFunc::Sum }),
        1 => (key_strategy(), key_strategy())
            .prop_map(|(a, b)| Op::Range { lo: a.min(b), hi: a.max(b), func: RangeFunc::Read }),
    ]
}

/// Warm-up ops: point Gets route through the hash shortcut, so they warm
/// the message pools, route buffers, and batch scratch without touching
/// structure state or consuming randomness. (Successor/Predecessor/Range
/// would draw random search entry modules and desync the rng streams.)
fn read_op_strategy() -> impl Strategy<Value = Op> {
    key_strategy().prop_map(|key| Op::Get { key })
}

/// Execute `ops` and capture everything the model is allowed to observe:
/// replies, the metrics delta, and the per-round trace.
fn measured(list: &mut PimSkipList, ops: &[Op]) -> (Vec<Reply>, Metrics, Vec<RoundTrace>) {
    list.enable_tracing();
    let before = list.metrics();
    let replies = list.execute(ops);
    let mut delta = list.metrics() - before;
    // The one non-additive metric: a lifetime high-water mark, so its
    // *delta* legitimately depends on traffic before the measured pass.
    delta.shared_mem_peak = 0;
    let mut rounds = list.take_trace().rounds;
    for r in &mut rounds {
        // Lifetime round index — the only trace field that reflects
        // history rather than the measured pass's own work.
        r.round = 0;
    }
    (replies, delta, rounds)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn warm_pools_replay_identically_to_cold(
        seed in 0u64..1_000_000,
        p in 1u32..9,
        warmup in prop::collection::vec(read_op_strategy(), 0..160),
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut warm = PimSkipList::new(Config::new(p, 1 << 10, seed));
        let mut cold = PimSkipList::new(Config::new(p, 1 << 10, seed));

        // Drive the warm structure's pools to their high-water marks.
        // Point Gets draw no randomness and mutate nothing, so both
        // structures face `ops` from identical logical + rng state.
        warm.execute(&warmup);

        let warm_pass1 = measured(&mut warm, &ops);
        let cold_pass1 = measured(&mut cold, &ops);
        prop_assert_eq!(&warm_pass1.0, &cold_pass1.0, "pass-1 replies differ");
        prop_assert_eq!(&warm_pass1.1, &cold_pass1.1, "pass-1 metrics differ");
        prop_assert_eq!(&warm_pass1.2, &cold_pass1.2, "pass-1 traces differ");

        // Second pass through each System: by now every recyclable buffer
        // on the warm side has been leased and returned at least once.
        let warm_pass2 = measured(&mut warm, &ops);
        let cold_pass2 = measured(&mut cold, &ops);
        prop_assert_eq!(&warm_pass2.0, &cold_pass2.0, "pass-2 replies differ");
        prop_assert_eq!(&warm_pass2.1, &cold_pass2.1, "pass-2 metrics differ");
        prop_assert_eq!(&warm_pass2.2, &cold_pass2.2, "pass-2 traces differ");

        prop_assert_eq!(warm.collect_items(), cold.collect_items(),
            "final contents must match");
        if let Err(e) = warm.validate() {
            return Err(TestCaseError::fail(format!("invariant violated: {e}")));
        }
    }
}
