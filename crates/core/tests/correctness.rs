//! Differential correctness tests: the PIM skip list vs. a BTreeMap oracle,
//! with full structural validation after every batch.

use std::collections::BTreeMap;

use pim_core::{Config, PimSkipList, RangeFunc, UpsertOutcome};

fn cfg(p: u32) -> Config {
    Config::new(p, 1 << 12, 0xC0FFEE)
}

fn check(list: &PimSkipList, oracle: &BTreeMap<i64, u64>) {
    list.validate()
        .unwrap_or_else(|e| panic!("invariant violated: {e}"));
    let items = list.collect_items();
    let expect: Vec<(i64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(items, expect, "contents diverge from oracle");
    assert_eq!(list.len(), oracle.len() as u64);
}

#[test]
fn upsert_then_get_small() {
    let mut list = PimSkipList::new(cfg(4));
    let mut oracle = BTreeMap::new();
    let pairs: Vec<(i64, u64)> = (0..50).map(|i| (i * 7 % 101, (i * 13) as u64)).collect();
    list.batch_upsert(&pairs);
    for &(k, v) in &pairs {
        oracle.insert(k, v); // later pairs with same key: first wins in list
    }
    // Replay first-wins for duplicate keys.
    let mut first_wins = BTreeMap::new();
    for &(k, v) in &pairs {
        first_wins.entry(k).or_insert(v);
    }
    check(&list, &first_wins);
    let keys: Vec<i64> = (0..120).collect();
    let got = list.batch_get(&keys);
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(got[i], first_wins.get(k).copied(), "get({k})");
    }
}

#[test]
fn upsert_updates_existing_keys() {
    let mut list = PimSkipList::new(cfg(4));
    let r1 = list.batch_upsert(&[(1, 10), (2, 20)]);
    assert_eq!(r1, vec![UpsertOutcome::Inserted, UpsertOutcome::Inserted]);
    let r2 = list.batch_upsert(&[(1, 11), (3, 30)]);
    assert_eq!(r2, vec![UpsertOutcome::Updated, UpsertOutcome::Inserted]);
    assert_eq!(list.collect_items(), vec![(1, 11), (2, 20), (3, 30)]);
    list.validate().unwrap();
}

#[test]
fn interleaved_batches_match_oracle() {
    let mut list = PimSkipList::new(cfg(8));
    let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();
    let mut state = 12345u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for round in 0..12 {
        // Upsert a batch.
        let ups: Vec<(i64, u64)> = (0..64)
            .map(|_| ((next() % 500) as i64, next() % 1000))
            .collect();
        list.batch_upsert(&ups);
        // Mirror the structure's first-wins dedup within the batch.
        let mut seen = std::collections::HashSet::new();
        for &(k, v) in &ups {
            if seen.insert(k) {
                oracle.insert(k, v);
            }
        }
        // Delete a batch.
        let dels: Vec<i64> = (0..32).map(|_| (next() % 500) as i64).collect();
        let res = list.batch_delete(&dels);
        let mut seen_d = std::collections::HashSet::new();
        for (i, &k) in dels.iter().enumerate() {
            let was_there = oracle.remove(&k).is_some() || {
                // duplicate in batch: report of canonical occurrence
                !seen_d.insert(k) && res[i]
            };
            let _ = was_there;
        }
        check(&list, &oracle);
        let _ = round;
    }
}

#[test]
fn delete_everything_and_reinsert() {
    let mut list = PimSkipList::new(cfg(4));
    let pairs: Vec<(i64, u64)> = (0..200).map(|i| (i, i as u64 * 2)).collect();
    list.batch_upsert(&pairs);
    list.validate().unwrap();
    let keys: Vec<i64> = (0..200).collect();
    let res = list.batch_delete(&keys);
    assert!(res.iter().all(|&f| f));
    assert_eq!(list.len(), 0);
    assert!(list.collect_items().is_empty());
    list.validate().unwrap();
    // Reinsert into the emptied structure (exercises slot reuse).
    list.batch_upsert(&pairs);
    assert_eq!(list.collect_items(), pairs);
    list.validate().unwrap();
}

#[test]
fn delete_contiguous_run() {
    // A contiguous run of deletions forces long marked runs through the
    // list contraction (the hard case of §4.4).
    let mut list = PimSkipList::new(cfg(8));
    let pairs: Vec<(i64, u64)> = (0..512).map(|i| (i, i as u64)).collect();
    list.batch_upsert(&pairs);
    let run: Vec<i64> = (100..400).collect();
    let res = list.batch_delete(&run);
    assert!(res.iter().all(|&f| f));
    let mut oracle: BTreeMap<i64, u64> = pairs.iter().copied().collect();
    for k in run {
        oracle.remove(&k);
    }
    check(&list, &oracle);
}

#[test]
fn delete_missing_keys_reports_false() {
    let mut list = PimSkipList::new(cfg(4));
    list.batch_upsert(&[(5, 1), (10, 2)]);
    let res = list.batch_delete(&[5, 6, 10, 11]);
    assert_eq!(res, vec![true, false, true, false]);
    assert_eq!(list.len(), 0);
    list.validate().unwrap();
}

#[test]
fn successor_and_predecessor_match_oracle() {
    let mut list = PimSkipList::new(cfg(8));
    let keys: Vec<i64> = (0..300).map(|i| i * 10).collect();
    let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, k as u64)).collect();
    list.batch_upsert(&pairs);
    let oracle: BTreeMap<i64, u64> = pairs.iter().copied().collect();

    let queries: Vec<i64> = (0..3100).step_by(7).map(|q| q - 50).collect();
    let succ = list.batch_successor(&queries);
    let pred = list.batch_predecessor(&queries);
    for (i, &q) in queries.iter().enumerate() {
        let expect_s = oracle.range(q..).next().map(|(&k, _)| k);
        assert_eq!(succ[i].map(|(k, _)| k), expect_s, "successor({q})");
        let expect_p = oracle.range(..=q).next_back().map(|(&k, _)| k);
        assert_eq!(pred[i].map(|(k, _)| k), expect_p, "predecessor({q})");
    }
    list.validate().unwrap();
}

#[test]
fn successor_with_adversarial_same_successor_batch() {
    let mut list = PimSkipList::new(cfg(8));
    // Two resident keys with a huge gap.
    list.batch_upsert(&[(0, 1), (1_000_000, 2)]);
    // Every query lands in the gap: all share the successor 1_000_000.
    let queries: Vec<i64> = (1..2000).map(|i| i * 17 % 999_983 + 1).collect();
    let succ = list.batch_successor(&queries);
    assert!(succ.iter().all(|s| s.map(|(k, _)| k) == Some(1_000_000)));
    list.validate().unwrap();
}

#[test]
fn update_only_touches_existing() {
    let mut list = PimSkipList::new(cfg(4));
    list.batch_upsert(&[(1, 10), (2, 20)]);
    let res = list.batch_update(&[(1, 11), (3, 33)]);
    assert_eq!(res, vec![true, false]);
    assert_eq!(list.collect_items(), vec![(1, 11), (2, 20)]);
    assert_eq!(list.len(), 2);
    list.validate().unwrap();
}

#[test]
fn duplicate_flood_get_batch() {
    let mut list = PimSkipList::new(cfg(8));
    list.batch_upsert(&[(42, 420)]);
    let keys = vec![42i64; 5000];
    let got = list.batch_get(&keys);
    assert!(got.iter().all(|&v| v == Some(420)));
}

#[test]
fn range_broadcast_read_matches_oracle() {
    let mut list = PimSkipList::new(cfg(8));
    let pairs: Vec<(i64, u64)> = (0..400).map(|i| (i * 3, i as u64)).collect();
    list.batch_upsert(&pairs);
    let oracle: BTreeMap<i64, u64> = pairs.iter().copied().collect();

    for (lo, hi) in [(0, 1199), (100, 500), (301, 301), (500, 100), (1300, 2000)] {
        if lo > hi {
            continue;
        }
        let r = list.range_broadcast(lo, hi, RangeFunc::Read);
        let expect: Vec<(i64, u64)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(r.items, expect, "range [{lo}, {hi}]");
        assert_eq!(r.count, expect.len() as u64);
    }
}

#[test]
fn range_broadcast_count_and_sum() {
    let mut list = PimSkipList::new(cfg(4));
    let pairs: Vec<(i64, u64)> = (1..=100).map(|i| (i, i as u64)).collect();
    list.batch_upsert(&pairs);
    let r = list.range_broadcast(1, 100, RangeFunc::Count);
    assert_eq!(r.count, 100);
    let r = list.range_broadcast(10, 20, RangeFunc::Sum);
    assert_eq!(r.count, 11);
    assert_eq!(r.sum, (10..=20).sum::<u64>());
}

#[test]
fn range_broadcast_fetch_add() {
    let mut list = PimSkipList::new(cfg(4));
    list.batch_upsert(&[(1, 100), (2, 200), (3, 300)]);
    let r = list.range_broadcast(1, 2, RangeFunc::FetchAdd(5));
    assert_eq!(r.items, vec![(1, 100), (2, 200)]); // old values
    assert_eq!(list.collect_items(), vec![(1, 105), (2, 205), (3, 300)]);
    list.validate().unwrap();
}

#[test]
fn batch_range_tree_read_matches_oracle() {
    let mut list = PimSkipList::new(cfg(8));
    let pairs: Vec<(i64, u64)> = (0..500).map(|i| (i * 2, i as u64)).collect();
    list.batch_upsert(&pairs);
    let oracle: BTreeMap<i64, u64> = pairs.iter().copied().collect();

    let ranges = vec![
        (0i64, 99i64),
        (50, 149),
        (900, 999),
        (300, 300),
        (998, 1200),
    ];
    let results = list.batch_range(&ranges, RangeFunc::Read);
    for (i, &(lo, hi)) in ranges.iter().enumerate() {
        let expect: Vec<(i64, u64)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(results[i].items, expect, "tree range [{lo}, {hi}]");
        assert_eq!(results[i].count, expect.len() as u64);
    }
    list.validate().unwrap();
}

#[test]
fn batch_range_tree_count_overlapping() {
    let mut list = PimSkipList::new(cfg(4));
    let pairs: Vec<(i64, u64)> = (0..100).map(|i| (i, 1)).collect();
    list.batch_upsert(&pairs);
    let ranges = vec![(0i64, 49i64), (25, 74), (0, 99)];
    let results = list.batch_range(&ranges, RangeFunc::Count);
    assert_eq!(results[0].count, 50);
    assert_eq!(results[1].count, 50);
    assert_eq!(results[2].count, 100);
}

#[test]
fn batch_range_tree_add_in_place_with_overlap() {
    let mut list = PimSkipList::new(cfg(4));
    list.batch_upsert(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
    // Keys 2..3 are covered by both ranges → +2 each; 1 and 4 by one → +1.
    let ranges = vec![(1i64, 3i64), (2, 4)];
    list.batch_range(&ranges, RangeFunc::AddInPlace(1));
    assert_eq!(list.collect_items(), vec![(1, 1), (2, 2), (3, 2), (4, 1)]);
    list.validate().unwrap();
}

#[test]
fn batch_range_tree_fetch_add_returns_old_values() {
    let mut list = PimSkipList::new(cfg(4));
    list.batch_upsert(&[(10, 100), (20, 200), (30, 300)]);
    let results = list.batch_range(&[(10, 20)], RangeFunc::FetchAdd(7));
    assert_eq!(results[0].items, vec![(10, 100), (20, 200)]);
    assert_eq!(list.collect_items(), vec![(10, 107), (20, 207), (30, 300)]);
    list.validate().unwrap();
}

#[test]
fn empty_structure_operations() {
    let mut list = PimSkipList::new(cfg(4));
    assert_eq!(list.batch_get(&[1, 2]), vec![None, None]);
    assert_eq!(list.batch_delete(&[1]), vec![false]);
    assert_eq!(list.batch_successor(&[5]), vec![None]);
    assert_eq!(list.batch_predecessor(&[5]), vec![None]);
    let r = list.range_broadcast(0, 100, RangeFunc::Read);
    assert!(r.items.is_empty());
    let rt = list.batch_range(&[(0, 100)], RangeFunc::Read);
    assert!(rt[0].items.is_empty());
    list.validate().unwrap();
}

#[test]
fn singleton_convenience_api() {
    let mut list = PimSkipList::new(cfg(4));
    list.upsert(7, 70);
    assert_eq!(list.get(7), Some(70));
    assert_eq!(list.get(8), None);
    assert!(list.delete(7));
    assert!(!list.delete(7));
    assert!(list.is_empty());
    list.validate().unwrap();
}

#[test]
fn negative_keys_work() {
    let mut list = PimSkipList::new(cfg(4));
    let pairs: Vec<(i64, u64)> = (-50..50).map(|i| (i, (i + 50) as u64)).collect();
    list.batch_upsert(&pairs);
    assert_eq!(list.collect_items(), pairs);
    let s = list.batch_successor(&[-100]);
    assert_eq!(s[0].map(|(k, _)| k), Some(-50));
    let p = list.batch_predecessor(&[-51]);
    assert_eq!(p[0], None);
    list.validate().unwrap();
}

#[test]
fn non_power_of_two_modules() {
    let mut list = PimSkipList::new(cfg(6));
    let pairs: Vec<(i64, u64)> = (0..150).map(|i| (i * 5, i as u64)).collect();
    list.batch_upsert(&pairs);
    assert_eq!(list.collect_items(), pairs);
    let res = list.batch_delete(&(0..75).map(|i| i * 10).collect::<Vec<_>>());
    assert!(res.iter().all(|&f| f));
    list.validate().unwrap();
}

#[test]
fn single_module_degenerate_machine() {
    let mut list = PimSkipList::new(cfg(1));
    let pairs: Vec<(i64, u64)> = (0..64).map(|i| (i, i as u64)).collect();
    list.batch_upsert(&pairs);
    assert_eq!(list.collect_items(), pairs);
    assert_eq!(list.batch_get(&[10]), vec![Some(10)]);
    list.validate().unwrap();
}

#[test]
fn metrics_accumulate_across_batches() {
    let mut list = PimSkipList::new(cfg(8));
    let m0 = list.metrics();
    list.batch_upsert(&(0..100).map(|i| (i, 0)).collect::<Vec<_>>());
    let m1 = list.metrics();
    assert!(m1.rounds > m0.rounds);
    assert!(m1.io_time > m0.io_time);
    assert!(m1.total_pim_work > 0);
    assert!(m1.cpu_work > 0);
    assert!(m1.shared_mem_peak > 0);
}

#[test]
fn batch_read_dereferences_successor_handles() {
    let mut list = PimSkipList::new(cfg(8));
    let pairs: Vec<(i64, u64)> = (0..200).map(|i| (i * 10, i as u64 + 1000)).collect();
    list.batch_upsert(&pairs);
    let queries: Vec<i64> = (0..50).map(|i| i * 40 + 1).collect();
    let succ = list.batch_successor(&queries);
    let handles: Vec<_> = succ.iter().flatten().map(|&(_, h)| h).collect();
    let read = list.batch_read(&handles);
    let mut idx = 0;
    for (i, s) in succ.iter().enumerate() {
        if let Some((k, _)) = s {
            let (rk, rv) = read[idx];
            idx += 1;
            assert_eq!(rk, *k, "query {i}");
            assert_eq!(rv, (*k / 10) as u64 + 1000);
        }
    }
}

#[test]
fn export_goes_through_the_network() {
    let mut list = PimSkipList::new(cfg(8));
    let pairs: Vec<(i64, u64)> = (-20i64..50).map(|i| (i * 3, i.unsigned_abs())).collect();
    list.batch_upsert(&pairs);
    let m0 = list.metrics();
    let exported = list.export();
    let d = list.metrics() - m0;
    assert_eq!(exported, list.collect_items());
    assert!(d.total_messages > 0, "export must use the data path");
}

#[test]
fn tracing_captures_round_profile() {
    let mut list = PimSkipList::new(cfg(8));
    list.batch_upsert(&(0..100).map(|i| (i, 0)).collect::<Vec<_>>());
    list.enable_tracing();
    list.batch_successor(&(0..50).collect::<Vec<_>>());
    let trace = list.take_trace();
    assert!(!trace.rounds.is_empty());
    assert!(trace.max_h() > 0);
    // The per-round records must sum to the profile the metrics saw.
    for r in &trace.rounds {
        assert_eq!(r.h, *r.per_module_messages.iter().max().unwrap());
        assert_eq!(r.messages, r.per_module_messages.iter().sum::<u64>());
    }
    // Tracing is off after take.
    list.batch_get(&[1]);
    assert!(list.take_trace().rounds.is_empty());
}

#[test]
fn upsert_batch_of_all_existing_keys() {
    let mut list = PimSkipList::new(cfg(8));
    let pairs: Vec<(i64, u64)> = (0..100).map(|i| (i, i as u64)).collect();
    list.batch_upsert(&pairs);
    // Second batch: pure updates (no insert pipeline at all).
    let pairs2: Vec<(i64, u64)> = (0..100).map(|i| (i, i as u64 + 1)).collect();
    let outcomes = list.batch_upsert(&pairs2);
    assert!(outcomes.iter().all(|o| *o == UpsertOutcome::Updated));
    assert_eq!(list.len(), 100);
    assert_eq!(list.collect_items(), pairs2);
    list.validate().unwrap();
}

#[test]
fn tree_range_outside_all_keys() {
    let mut list = PimSkipList::new(cfg(4));
    list.batch_upsert(&[(100, 1), (200, 2)]);
    let res = list.batch_range(&[(0, 50), (300, 400), (150, 160)], RangeFunc::Read);
    assert!(res.iter().all(|r| r.items.is_empty() && r.count == 0));
    list.validate().unwrap();
}

#[test]
fn tree_range_covering_everything() {
    let mut list = PimSkipList::new(cfg(4));
    let pairs: Vec<(i64, u64)> = (0..300).map(|i| (i, i as u64)).collect();
    list.batch_upsert(&pairs);
    let res = list.batch_range(&[(i64::MIN + 1, i64::MAX)], RangeFunc::Read);
    assert_eq!(res[0].items, pairs);
}

#[test]
fn delete_first_and_last_keys() {
    let mut list = PimSkipList::new(cfg(4));
    let pairs: Vec<(i64, u64)> = (0..50).map(|i| (i, i as u64)).collect();
    list.batch_upsert(&pairs);
    assert_eq!(list.batch_delete(&[0, 49]), vec![true, true]);
    assert_eq!(
        list.batch_successor(&[i64::MIN + 1])[0].map(|(k, _)| k),
        Some(1)
    );
    assert_eq!(
        list.batch_predecessor(&[i64::MAX])[0].map(|(k, _)| k),
        Some(48)
    );
    list.validate().unwrap();
}

#[test]
#[should_panic(expected = "h_low > 0")]
fn broadcast_range_rejected_under_full_replication() {
    let mut list = PimSkipList::new(Config::new(4, 64, 1).with_h_low(0));
    list.batch_upsert(&[(1, 1)]);
    let _ = list.range_broadcast(0, 10, RangeFunc::Read);
}

#[test]
fn min_batch_sizes_are_honored_as_recommendations_not_requirements() {
    // The paper's batch sizes are minimums for the *bounds*; the code must
    // stay correct for any batch size, including size 1 and odd sizes.
    let mut list = PimSkipList::new(cfg(8));
    for size in [1usize, 2, 3, 7, 13] {
        let pairs: Vec<(i64, u64)> = (0..size as i64)
            .map(|i| (i + 1000 * size as i64, 1))
            .collect();
        list.batch_upsert(&pairs);
        list.validate().unwrap();
    }
}

#[test]
fn extreme_keys_are_first_class() {
    // i64::MAX is a legal key (only i64::MIN is reserved for the sentinel).
    let mut list = PimSkipList::new(cfg(4));
    list.batch_upsert(&[(i64::MAX, 7), (i64::MIN + 1, 8), (0, 9)]);
    list.validate().unwrap();
    assert_eq!(list.get(i64::MAX), Some(7));
    assert_eq!(list.get(i64::MIN + 1), Some(8));
    // Successor of MAX is MAX itself; successor past it doesn't exist...
    assert_eq!(
        list.batch_successor(&[i64::MAX])[0].map(|(k, _)| k),
        Some(i64::MAX)
    );
    // ...and predecessor of MAX is MAX itself.
    assert_eq!(
        list.batch_predecessor(&[i64::MAX])[0].map(|(k, _)| k),
        Some(i64::MAX)
    );
    assert_eq!(
        list.batch_predecessor(&[i64::MIN + 1])[0].map(|(k, _)| k),
        Some(i64::MIN + 1)
    );
    assert!(list.delete(i64::MAX));
    assert_eq!(
        list.batch_predecessor(&[i64::MAX])[0].map(|(k, _)| k),
        Some(0)
    );
    list.validate().unwrap();
}
