//! Property-based chaos testing: arbitrary fault plans against arbitrary
//! batch programs.
//!
//! For every generated `(program, fault plan)` pair, the faulted run must
//! end with the exact contents of a fault-free `BTreeMap` oracle and a
//! passing structural validation. The retry budget is kept strictly above
//! the number of scheduled fault events, so `RetriesExhausted` is
//! unreachable by construction (each scheduled round can damage at most
//! one attempt) and *any* error a `try_*` call returns is a real bug.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pim_core::{Config, FaultPlan, PimSkipList};

#[derive(Debug, Clone)]
enum Op {
    Upsert(Vec<(i64, u64)>),
    Delete(Vec<i64>),
    Update(Vec<(i64, u64)>),
    Get(Vec<i64>),
}

fn key_strategy() -> impl Strategy<Value = i64> {
    -30i64..150
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::collection::vec((key_strategy(), any::<u64>()), 1..30).prop_map(Op::Upsert),
        2 => prop::collection::vec(key_strategy(), 1..30).prop_map(Op::Delete),
        1 => prop::collection::vec((key_strategy(), any::<u64>()), 1..20).prop_map(Op::Update),
        1 => prop::collection::vec(key_strategy(), 1..30).prop_map(Op::Get),
    ]
}

fn apply_upsert_first_wins(oracle: &mut BTreeMap<i64, u64>, pairs: &[(i64, u64)]) {
    let mut seen = std::collections::HashSet::new();
    for &(k, v) in pairs {
        if seen.insert(k) {
            oracle.insert(k, v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn faulted_programs_match_fault_free_oracle(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        p in 2u32..5,
        events in 0usize..7,
        ops in prop::collection::vec(op_strategy(), 1..10),
    ) {
        // max_retries = 8 > max events = 6: exhaustion is impossible.
        let mut list = PimSkipList::new(Config::new(p, 1 << 10, seed).with_max_retries(8));
        list.set_fault_plan(FaultPlan::random(fault_seed, p, 300, events));
        let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Upsert(pairs) => {
                    list.try_batch_upsert(pairs).expect("upsert under faults");
                    apply_upsert_first_wins(&mut oracle, pairs);
                }
                Op::Delete(keys) => {
                    let res = list.try_batch_delete(keys).expect("delete under faults");
                    let mut removed = std::collections::HashSet::new();
                    for (i, k) in keys.iter().enumerate() {
                        let expect = oracle.contains_key(k) || removed.contains(k);
                        prop_assert_eq!(res[i], expect, "delete({}) mismatch", k);
                        if oracle.remove(k).is_some() {
                            removed.insert(*k);
                        }
                    }
                }
                Op::Update(pairs) => {
                    let res = list.try_batch_update(pairs).expect("update under faults");
                    // Duplicates resolve first-wins (semisort dedup), and
                    // updates never change membership.
                    let mut seen = std::collections::HashSet::new();
                    for (i, &(k, v)) in pairs.iter().enumerate() {
                        prop_assert_eq!(res[i], oracle.contains_key(&k), "update({}) verdict", k);
                        if seen.insert(k) {
                            if let Some(slot) = oracle.get_mut(&k) {
                                *slot = v;
                            }
                        }
                    }
                }
                Op::Get(keys) => {
                    let res = list.try_batch_get(keys).expect("get under faults");
                    for (i, k) in keys.iter().enumerate() {
                        prop_assert_eq!(res[i], oracle.get(k).copied(), "get({})", k);
                    }
                }
            }
        }

        prop_assert_eq!(
            list.collect_items(),
            oracle.into_iter().collect::<Vec<_>>(),
            "final contents must equal the fault-free oracle"
        );
        if let Err(e) = list.validate() {
            prop_assert!(false, "validate failed after faulted program: {}", e);
        }
    }
}
