//! The CPU-side hot-node cache of push-pull batch search.
//!
//! The pivoted search of §4.2 is PIM-balanced, but every descent below a
//! hint still pays one round per inter-module hop — under `h_low = log P`
//! that is the whole lower part, and the per-batch round count is
//! dominated by this tail. PIM-tree (the same authors' follow-up) removes
//! it by **pulling** hot nodes to the CPU side: the driver keeps a
//! bounded cache of lower-part node snapshots, resolves the cached prefix
//! of every hinted descent locally (charged as §2.1 CPU work), and ships
//! only the residual wave — a fully cached wave sends nothing and costs
//! **zero rounds**.
//!
//! Determinism contract: admission and eviction are functions of the op
//! stream alone. Accesses are counted per batch ([`HotNodeCache::note`]),
//! periodically halved ([`DECAY_PERIOD`]), and the top-`capacity` handles
//! by `(count desc, handle bits asc)` are admitted; the pull wave is sent
//! in sorted handle order. No wall clock, no randomness.
//!
//! Coherence rule: snapshots are only trusted while nothing structural
//! moved. The driver bumps [`crate::list::PimSkipList`]'s `write_epoch`
//! at the *start* of every mutating phase (upsert link, delete mark, bulk
//! load, recovery) — so a faulted, half-applied mutation invalidates the
//! cache even before any commit — and the refresh additionally compares
//! the machine's `module_crashes` counter, so a crash-wiped module can
//! never be read through a stale snapshot. Invalidation drops the
//! snapshots but keeps the counts: a stable hot set re-pulls in one round.

use std::collections::HashMap;

use pim_primitives::accounting::{log2c, CpuCost};
use pim_primitives::sort::sort_cost;
use pim_runtime::Handle;

use crate::config::Key;
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::tasks::{Reply, Task};

/// Words charged to CPU shared memory per cached record (handle, key,
/// right, right_key, down, level).
pub(crate) const RECORD_WORDS: u64 = 6;

/// Access counts are halved (zeros dropped) every this-many refreshes.
/// Longer than one batch on purpose: nodes a few levels below `h_low` are
/// touched less than once per batch under uniform load, and must still
/// out-rank one-shot leaves to keep the cache covering whole levels.
pub(crate) const DECAY_PERIOD: u64 = 8;

/// Snapshot of one lower-part node's search-relevant fields. Values are
/// deliberately absent — `Update`/`FetchAdd` never invalidate the cache.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeRec {
    pub key: Key,
    pub right: Handle,
    pub right_key: Key,
    pub down: Handle,
    pub level: u8,
}

/// The bounded CPU-side cache (see module docs). Lives behind
/// `Option<Box<_>>` on the driver so the feature off costs one branch.
#[derive(Debug, Default)]
pub(crate) struct HotNodeCache {
    /// `write_epoch` value the snapshots were pulled under.
    pub(crate) epoch: u64,
    /// `module_crashes` value the snapshots were pulled under.
    pub(crate) crashes_seen: u64,
    /// Refresh counter driving the periodic decay.
    pub(crate) refreshes: u64,
    /// Maximum resident records ([`crate::Config::push_pull_capacity`]).
    pub(crate) capacity: usize,
    /// Shared-memory words currently charged for the resident records.
    pub(crate) charged_words: u64,
    /// Resident snapshots, keyed by handle bits.
    pub(crate) records: HashMap<u64, NodeRec>,
    /// Per-handle access counts since the last decay.
    pub(crate) counts: HashMap<u64, u32>,
}

impl HotNodeCache {
    pub(crate) fn new(capacity: usize) -> Self {
        HotNodeCache {
            capacity,
            ..HotNodeCache::default()
        }
    }

    /// Count one access to a node (search-path touch or cache miss); the
    /// admission pass ranks on these. Both arenas are cacheable: the
    /// replicated upper part is identical on every module, so snapshots of
    /// it are as valid as lower-part ones — and caching it is what lets
    /// `Hint::Root` descents resolve on the CPU at all.
    #[inline]
    pub(crate) fn note(&mut self, h: Handle) {
        debug_assert!(h.is_some(), "noted handles are live nodes");
        *self.counts.entry(h.to_bits()).or_insert(0) += 1;
    }

    /// Resident records (tests and bench instrumentation).
    pub(crate) fn len(&self) -> usize {
        self.records.len()
    }
}

impl PimSkipList {
    /// Refresh the hot-node cache for the batch about to search: decay,
    /// invalidate, admit, evict, and pull missing admitted snapshots in
    /// one unicast wave. No-op (one branch) when push-pull is off.
    pub(crate) fn hot_refresh(&mut self) -> PimResult<()> {
        let Some(mut hot) = self.hot.take() else {
            return Ok(());
        };
        let out = self.spanned("search/pull", |s| s.hot_refresh_inner(&mut hot));
        self.hot = Some(hot);
        out
    }

    fn hot_refresh_inner(&mut self, hot: &mut HotNodeCache) -> PimResult<()> {
        hot.refreshes = hot.refreshes.wrapping_add(1);
        if hot.refreshes.is_multiple_of(DECAY_PERIOD) {
            hot.counts.retain(|_, c| {
                *c >>= 1;
                *c > 0
            });
        }
        // Staleness: any structural mutation or module crash since the
        // snapshots were pulled drops them (counts survive — the hot set
        // re-pulls below).
        let crashes = self.sys.metrics().module_crashes;
        if hot.epoch != self.write_epoch || hot.crashes_seen != crashes {
            hot.records.clear();
            hot.epoch = self.write_epoch;
            hot.crashes_seen = crashes;
        }

        // Deterministic admission: top-`capacity` by (count desc, bits
        // asc), then the admitted set sorted by bits for binary-search
        // eviction and a stable pull order.
        let mut rank = self.scratch.take_count_rank();
        rank.extend(hot.counts.iter().map(|(&bits, &c)| (c, bits)));
        let n = rank.len() as u64;
        rank.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        rank.truncate(hot.capacity);
        let mut admitted = self.scratch.take_pull_list();
        admitted.extend(rank.iter().map(|&(_, bits)| bits));
        admitted.sort_unstable();
        sort_cost(n.max(1))
            .beside(CpuCost::new(n.max(1), log2c(n.max(1))))
            .charge(self.sys.metrics_mut());

        hot.records
            .retain(|bits, _| admitted.binary_search(bits).is_ok());

        let mut pulls = 0u64;
        let p = self.cfg.p;
        for &bits in admitted.iter() {
            if !hot.records.contains_key(&bits) {
                let h = Handle::from_bits(bits);
                // Replicated nodes resolve on any module; spread the pulls
                // deterministically by slot.
                let target = h.resolver(h.slot() % p);
                self.sys.send(target, Task::PullNode { at: h });
                pulls += 1;
            }
        }
        let mut out = Ok(());
        if pulls > 0 {
            for r in self.sys.run_to_quiescence() {
                match r {
                    Reply::NodeRec {
                        node,
                        key,
                        right,
                        right_key,
                        down,
                        level,
                    } => {
                        hot.records.insert(
                            node.to_bits(),
                            NodeRec {
                                key,
                                right,
                                right_key,
                                down,
                                level,
                            },
                        );
                    }
                    // Best-effort: a dangling or deleted target simply
                    // stays uncached; its count decays away.
                    Reply::Faulted { .. } => {}
                    other => {
                        out = Err(PimError::protocol("search/pull", other));
                        break;
                    }
                }
            }
        }
        self.scratch.give_pull_list(admitted);
        self.scratch.give_count_rank(rank);

        // The cache lives in CPU shared memory: charge the delta.
        let now = RECORD_WORDS * hot.records.len() as u64;
        if now > hot.charged_words {
            self.sys.shared_mem().alloc(now - hot.charged_words);
        } else if now < hot.charged_words {
            self.sys.sample_shared_mem();
            self.sys.shared_mem().free(hot.charged_words - now);
        }
        hot.charged_words = now;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_accumulates_and_decay_halves() {
        let mut hot = HotNodeCache::new(4);
        let h = Handle::local(0, 7);
        hot.note(h);
        hot.note(h);
        hot.note(h);
        assert_eq!(hot.counts[&h.to_bits()], 3);
        hot.counts.retain(|_, c| {
            *c >>= 1;
            *c > 0
        });
        assert_eq!(hot.counts[&h.to_bits()], 1);
        hot.counts.retain(|_, c| {
            *c >>= 1;
            *c > 0
        });
        assert!(hot.counts.is_empty(), "decayed-to-zero entries drop");
    }
}
