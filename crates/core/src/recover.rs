//! Driver-side crash recovery: retry wrappers, shard rebuild, full restore.
//!
//! The fault model (see [`pim_runtime::FaultPlan`]) lets the machine lose
//! messages, stall modules, slow them down, or crash them cold. The driver
//! defends in three layers:
//!
//! 1. **Attempts** — every batch operation is written as a fault-observable
//!    *attempt* (`get_attempt`, `upsert_attempt`, …) that detects loss via
//!    completeness counting and [`crate::tasks::Reply::Faulted`] replies,
//!    commits to the [`crate::journal::Journal`] only on full success, and
//!    reports [`PimError::Incomplete`] otherwise.
//! 2. **Retry wrappers** — the `try_*` entry points re-issue failed
//!    attempts with bounded retries ([`crate::Config::max_retries`]),
//!    repairing the machine between attempts: crashed modules get their
//!    shard rebuilt ([`PimSkipList::recover_module`]); structurally torn
//!    machines are rebuilt wholesale ([`PimSkipList::restore_all`]).
//! 3. **Plain wrappers** — the classic infallible API (`batch_get`, …)
//!    simply unwraps the `try_*` result: on a fault-free machine no error
//!    can occur, and the wrappers add *zero* metered cost, keeping
//!    execution bit-identical to the pre-fault-layer simulator.
//!
//! Recovery accounting: rounds spent on re-installs and rebuilds are
//! recorded in [`pim_runtime::Metrics::recovery_rounds`], re-issued batch
//! slots in [`pim_runtime::Metrics::retries_issued`].

use pim_runtime::{Handle, Metrics, ModuleId};

use crate::arena::ShadowAllocator;
use crate::batch::UpsertOutcome;
use crate::config::{Key, Value, NEG_INF};
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::module::SkipModule;
use crate::node::Node;
use crate::op::{Op, Reply};
use crate::tasks::{Reply as ModuleReply, Task};

impl PimSkipList {
    /// Did the machine record new message loss or module crashes since the
    /// snapshot `before`? (Stalls and slowdowns delay and inflate costs but
    /// lose nothing, so they do not count as damage.)
    pub(crate) fn damage_since(&self, before: &Metrics) -> bool {
        let now = self.sys.metrics();
        now.messages_dropped > before.messages_dropped || now.module_crashes > before.module_crashes
    }

    /// Run queued write-style traffic to quiescence. Healthy write tasks
    /// reply nothing, so any reply at all is a fault signal: `Faulted`
    /// means a write addressed a damaged node, anything else is a protocol
    /// violation.
    pub(crate) fn quiesce_writes(&mut self, op: &'static str) -> PimResult<()> {
        let replies = self.sys.run_to_quiescence();
        let mut faulted = 0usize;
        for r in replies {
            match r {
                ModuleReply::Faulted { .. } => faulted += 1,
                other => return Err(PimError::protocol(op, other)),
            }
        }
        if faulted > 0 {
            return Err(PimError::incomplete(op, faulted));
        }
        Ok(())
    }

    /// Retry loop for read-style (idempotent) operations: Get, Update,
    /// Successor, Predecessor. On damage, crashed modules get their shard
    /// rebuilt and the whole batch is re-issued; a clean failure is a
    /// driver bug and is returned as-is.
    pub(crate) fn retry_read<T>(
        &mut self,
        op: &'static str,
        batch_size: usize,
        mut attempt: impl FnMut(&mut Self) -> PimResult<T>,
    ) -> PimResult<T> {
        let max_retries = self.cfg.max_retries;
        for _ in 0..=max_retries {
            let before = self.sys.metrics();
            let result = attempt(self);
            let mut crashed = self.sys.drain_crashed();
            crashed.sort_unstable();
            crashed.dedup();
            let damaged = !crashed.is_empty() || self.damage_since(&before);
            match result {
                Ok(out) => {
                    // A crash can strike after every reply already reached
                    // shared memory: the answers are valid, but the machine
                    // must be repaired before control goes back.
                    for m in crashed {
                        self.recover_module(m)?;
                    }
                    return Ok(out);
                }
                Err(e) if !damaged && !e.is_transient() => return Err(e),
                Err(_) => {
                    for m in crashed {
                        self.recover_module(m)?;
                    }
                    self.sys.metrics_mut().retries_issued += batch_size as u64;
                }
            }
        }
        Err(PimError::RetriesExhausted {
            op,
            attempts: max_retries + 1,
        })
    }

    /// Retry loop for structural operations: Upsert, Delete, bulk load,
    /// mutating ranges. A damaged attempt may have torn links half-way, so
    /// repair is always the whole-machine restore; whether the batch is
    /// then re-applied follows from the journal commit protocol.
    pub(crate) fn retry_structural<T>(
        &mut self,
        op: &'static str,
        batch_size: usize,
        mut attempt: impl FnMut(&mut Self) -> PimResult<T>,
    ) -> PimResult<T> {
        let max_retries = self.cfg.max_retries;
        for _ in 0..=max_retries {
            let before = self.sys.metrics();
            let result = attempt(self);
            let crashed = self.sys.drain_crashed();
            let damaged = !crashed.is_empty() || self.damage_since(&before);
            match result {
                Ok(out) if !damaged => return Ok(out),
                Ok(out) => {
                    // The attempt committed to the journal before the
                    // damage struck (or before it was observable): the
                    // rebuilt machine *includes* the batch, so this is a
                    // success — with the repair bill on the metrics.
                    self.restore_all()?;
                    return Ok(out);
                }
                Err(e) if !damaged && !e.is_transient() => return Err(e),
                Err(_) => {
                    // Failed attempts never commit: restoring from the
                    // journal reverts every partial effect (half-spliced
                    // levels, consumed index entries, advanced shadow
                    // slots) and the retry re-applies the batch fresh.
                    self.restore_all()?;
                    self.sys.metrics_mut().retries_issued += batch_size as u64;
                }
            }
        }
        Err(PimError::RetriesExhausted {
            op,
            attempts: max_retries + 1,
        })
    }

    /// Fault-tolerant batched Get; see [`PimSkipList::batch_get`]. A thin
    /// shim over [`PimSkipList::try_execute`], where the retry/recovery
    /// surface of every batch family is defined once.
    #[doc(hidden)]
    pub fn try_batch_get(&mut self, keys: &[Key]) -> PimResult<Vec<Option<Value>>> {
        let ops: Vec<Op> = keys.iter().map(|&key| Op::Get { key }).collect();
        let replies = self.try_execute(&ops)?;
        Ok(replies
            .into_iter()
            .map(|r| match r {
                Reply::Value(v) => v,
                other => unreachable!("Get run answered {other:?}"),
            })
            .collect())
    }

    /// Fault-tolerant batched Update; see [`PimSkipList::batch_update`].
    /// Shim over [`PimSkipList::try_execute`].
    #[doc(hidden)]
    pub fn try_batch_update(&mut self, pairs: &[(Key, Value)]) -> PimResult<Vec<bool>> {
        let ops: Vec<Op> = pairs
            .iter()
            .map(|&(key, value)| Op::Update { key, value })
            .collect();
        let replies = self.try_execute(&ops)?;
        Ok(replies
            .into_iter()
            .map(|r| match r {
                Reply::Updated(found) => found,
                other => unreachable!("Update run answered {other:?}"),
            })
            .collect())
    }

    /// Fault-tolerant batched Successor; see
    /// [`PimSkipList::batch_successor`]. Shim over
    /// [`PimSkipList::try_execute`].
    #[doc(hidden)]
    pub fn try_batch_successor(&mut self, keys: &[Key]) -> PimResult<Vec<Option<(Key, Handle)>>> {
        let ops: Vec<Op> = keys.iter().map(|&key| Op::Successor { key }).collect();
        let replies = self.try_execute(&ops)?;
        Ok(replies
            .into_iter()
            .map(|r| match r {
                Reply::Entry(e) => e,
                other => unreachable!("Successor run answered {other:?}"),
            })
            .collect())
    }

    /// Fault-tolerant batched Predecessor; see
    /// [`PimSkipList::batch_predecessor`]. Shim over
    /// [`PimSkipList::try_execute`].
    #[doc(hidden)]
    pub fn try_batch_predecessor(&mut self, keys: &[Key]) -> PimResult<Vec<Option<(Key, Handle)>>> {
        let ops: Vec<Op> = keys.iter().map(|&key| Op::Predecessor { key }).collect();
        let replies = self.try_execute(&ops)?;
        Ok(replies
            .into_iter()
            .map(|r| match r {
                Reply::Entry(e) => e,
                other => unreachable!("Predecessor run answered {other:?}"),
            })
            .collect())
    }

    /// Fault-tolerant batched Upsert; see [`PimSkipList::batch_upsert`].
    /// Shim over [`PimSkipList::try_execute`].
    #[doc(hidden)]
    pub fn try_batch_upsert(&mut self, pairs: &[(Key, Value)]) -> PimResult<Vec<UpsertOutcome>> {
        let ops: Vec<Op> = pairs
            .iter()
            .map(|&(key, value)| Op::Upsert { key, value })
            .collect();
        let replies = self.try_execute(&ops)?;
        Ok(replies
            .into_iter()
            .map(|r| match r {
                Reply::Upserted(outcome) => outcome,
                other => unreachable!("Upsert run answered {other:?}"),
            })
            .collect())
    }

    /// Fault-tolerant batched Delete; see [`PimSkipList::batch_delete`].
    /// Shim over [`PimSkipList::try_execute`].
    #[doc(hidden)]
    pub fn try_batch_delete(&mut self, keys: &[Key]) -> PimResult<Vec<bool>> {
        let ops: Vec<Op> = keys.iter().map(|&key| Op::Delete { key }).collect();
        let replies = self.try_execute(&ops)?;
        Ok(replies
            .into_iter()
            .map(|r| match r {
                Reply::Deleted(found) => found,
                other => unreachable!("Delete run answered {other:?}"),
            })
            .collect())
    }

    /// Fault-tolerant bulk construction; see [`PimSkipList::bulk_load`].
    #[doc(hidden)]
    pub fn try_bulk_load(&mut self, pairs: &[(Key, Value)]) -> PimResult<()> {
        if !self.is_empty() {
            return Err(PimError::InvalidArgument {
                op: "bulk_load",
                reason: "bulk_load requires an empty structure".into(),
            });
        }
        if !pairs.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(PimError::InvalidArgument {
                op: "bulk_load",
                reason: "bulk_load requires strictly ascending keys".into(),
            });
        }
        self.retry_structural("bulk_load", pairs.len(), |s| s.bulk_load_attempt(pairs))?;
        // A bulk load is not an `Op` and cannot be WAL-replayed, so a
        // durable structure snapshots right at the boundary; recovery then
        // re-runs the identical bulk load, which also restores tier-1
        // bit-identity (see `crate::durable`).
        if self.durable.is_some() {
            self.snapshot_now()?;
        }
        Ok(())
    }

    /// Rebuild one crashed module's shard in place: re-install its
    /// upper-part replicas (sentinel tower included) and its lower-part
    /// nodes from the journal's tower records — handle for handle, so every
    /// pointer held by healthy modules keeps resolving — then have the
    /// module rebuild its derived views (hash index, local leaf list,
    /// `next_leaf` shortcuts). Falls back to [`PimSkipList::restore_all`]
    /// when the recovery traffic is itself hit by faults, or under the
    /// `h_low = 0` ablation (where there is no per-module shard).
    pub(crate) fn recover_module(&mut self, module: ModuleId) -> PimResult<()> {
        if self.cfg.h_low == 0 {
            return self.restore_all();
        }
        self.spanned("recover/module", |s| {
            s.bump_write_epoch();
            let before = s.sys.metrics();
            let acknowledged = s.recover_module_attempt(module);
            let rounds = s.sys.metrics().rounds - before.rounds;
            s.sys.metrics_mut().recovery_rounds += rounds;
            let crashed = s.sys.drain_crashed();
            if acknowledged && crashed.is_empty() && !s.damage_since(&before) {
                Ok(())
            } else {
                s.restore_all()
            }
        })
    }

    /// One shot of per-module recovery; returns whether the module
    /// acknowledged with [`Reply::Recovered`]. All installs and the final
    /// `RecoverLocal` ride in one inbox in order, so the rebuild of the
    /// derived views always sees the complete image — unless a fault
    /// removes part of it, which the caller detects via the metrics delta.
    fn recover_module_attempt(&mut self, module: ModuleId) -> bool {
        self.send_module_image(module);
        self.sys.send(module, Task::RecoverLocal);
        let replies = self.sys.run_to_quiescence();
        replies
            .iter()
            .any(|r| matches!(r, ModuleReply::Recovered { module: m } if *m == module))
    }

    /// Reconstruct every node image the crashed module must hold, from the
    /// journal alone, and send the installs. Per level, the live keys with
    /// towers reaching that level form the level's list in key order; the
    /// sentinel replica heads it. Replicas carry the insert-time value
    /// (updates never rewrite replicas), leaves the current one.
    fn send_module_image(&mut self, module: ModuleId) {
        let entries = self.journal.entries_sorted();
        let max_level = usize::from(self.cfg.max_level);
        self.sys.metrics_mut().charge_cpu(
            entries.len() as u64 + 1,
            pim_runtime::ceil_log2(entries.len().max(1) as u64).into(),
        );

        for level in 0..=max_level {
            let at_level: Vec<usize> = (0..entries.len())
                .filter(|&i| entries[i].1.tower.len() > level)
                .collect();

            // Sentinel replica (slot = level by convention), wired to the
            // level's first node.
            let mut s = Node::new(NEG_INF, 0, level as u8);
            if level < max_level {
                s.up = Handle::replicated(level as u32 + 1);
            }
            if level > 0 {
                s.down = Handle::replicated(level as u32 - 1);
            }
            if let Some(&first) = at_level.first() {
                s.right = entries[first].1.tower[level];
                s.right_key = entries[first].0;
            }
            self.sys.send(
                module,
                Task::InstallUpper {
                    slot: level as u32,
                    node: s,
                },
            );

            for (pos, &i) in at_level.iter().enumerate() {
                let (key, e) = &entries[i];
                let h = e.tower[level];
                if !h.is_replicated() && h.module() != module {
                    continue; // a healthy module's node — leave it be
                }
                let value = if level == 0 {
                    e.value
                } else {
                    e.inserted_value
                };
                let mut n = Node::new(*key, value, level as u8);
                n.left = if pos == 0 {
                    Handle::replicated(level as u32)
                } else {
                    entries[at_level[pos - 1]].1.tower[level]
                };
                if let Some(&next) = at_level.get(pos + 1) {
                    n.right = entries[next].1.tower[level];
                    n.right_key = entries[next].0;
                }
                n.up = e.tower.get(level + 1).copied().unwrap_or(Handle::NULL);
                n.down = if level > 0 {
                    e.tower[level - 1]
                } else {
                    Handle::NULL
                };
                if level == 0 {
                    n.chain = e.tower[1..].to_vec();
                }
                let task = if h.is_replicated() {
                    Task::InstallUpper {
                        slot: h.slot(),
                        node: n,
                    }
                } else {
                    Task::InstallLower {
                        slot: h.slot(),
                        node: n,
                    }
                };
                self.sys.send(module, task);
            }
        }
    }

    /// Rebuild the whole machine from the journal: cold-reset every module,
    /// purge in-flight traffic, and bulk-load the journal's `(key, value)`
    /// snapshot (which re-towers every key — handles change, and the
    /// journal is re-written accordingly by the bulk-load attempt). Bounded
    /// by [`crate::Config::max_retries`] against faults hitting the rebuild
    /// itself.
    pub(crate) fn restore_all(&mut self) -> PimResult<()> {
        self.spanned("recover/restore", |s| {
            let snapshot = s.journal.items_sorted();
            let max_retries = s.cfg.max_retries;
            for _ in 0..=max_retries {
                let before = s.sys.metrics();
                s.reset_machine();
                s.sys.metrics_mut().retries_issued += snapshot.len() as u64;
                let result = s.bulk_load_attempt(&snapshot);
                let rounds = s.sys.metrics().rounds - before.rounds;
                s.sys.metrics_mut().recovery_rounds += rounds;
                let crashed = s.sys.drain_crashed();
                if result.is_ok() && crashed.is_empty() && !s.damage_since(&before) {
                    return Ok(());
                }
            }
            Err(PimError::RetriesExhausted {
                op: "restore_all",
                attempts: max_retries + 1,
            })
        })
    }

    /// Cold-reset the machine to its just-constructed state: fresh modules
    /// (sentinel towers re-materialised), no in-flight tasks, a fresh
    /// shadow allocator holding only the sentinel slots, zero length. The
    /// journal and the driver RNG are *not* reset: the journal is the
    /// recovery source, and the RNG stream continuing keeps the whole
    /// execution a deterministic function of (seed, fault plan).
    fn reset_machine(&mut self) {
        self.bump_write_epoch();
        let params = self.module_params();
        self.sys.purge_pending();
        for id in 0..self.cfg.p {
            *self.sys.module_mut(id) = SkipModule::new(id, params.clone());
        }
        let mut shadow = ShadowAllocator::new();
        for _ in 0..=self.cfg.max_level {
            shadow.alloc();
        }
        self.shadow = shadow;
        self.len = 0;
    }
}
