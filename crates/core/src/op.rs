//! The unified typed operation API: [`Op`], [`Reply`], and
//! [`PimSkipList::execute`].
//!
//! The paper's interface is a family of *homogeneous* batch operations
//! (one `batch_get`, one `batch_upsert`, …). Real front-ends — the
//! `pim-service` request scheduler above this crate — see an open stream
//! of *mixed* point and range requests. This module is the bridge: a
//! single entry point that accepts an interleaved `&[Op]`, splits it into
//! maximal *model-legal runs* (consecutive operations of the same type,
//! ranges additionally sharing their [`RangeFunc`]), executes each run
//! through the paper's batch algorithms **in arrival order**, and returns
//! one [`Reply`] per operation, in input order.
//!
//! Ordering semantics: runs execute in input order, so an `Op::Get` never
//! observes the effect of a *later* `Op::Upsert` in the same stream, and
//! always observes every earlier one. Within a run the usual batch
//! semantics apply (semisort dedup, first-wins for duplicate keys).
//!
//! Fault surface: [`PimSkipList::try_execute`] is where the bounded
//! retry/recovery loops of [`crate::recover`] are invoked — the per-op
//! `try_batch_*` wrappers are thin shims that build a homogeneous `&[Op]`
//! and call `try_execute`, so the fault/retry behaviour is defined exactly
//! once. With [`crate::Config::record_op_log`] set, every committed run is
//! appended to the journal's op log, and a crash-recovered structure is
//! guaranteed to equal a fresh structure replaying that log through
//! `execute` (the chaos suite proves it).

use pim_runtime::Handle;

use crate::batch::UpsertOutcome;
use crate::config::{Key, Value};
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::range::RangeResult;
use crate::tasks::RangeFunc;

/// One typed request against the structure — the service-layer currency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point read: the value of `key`, if resident.
    Get {
        /// Key to fetch.
        key: Key,
    },
    /// In-place write: set `key`'s value if resident (never inserts).
    Update {
        /// Key to update.
        key: Key,
        /// New value.
        value: Value,
    },
    /// Insert-or-update.
    Upsert {
        /// Key to upsert.
        key: Key,
        /// Value to store.
        value: Value,
    },
    /// Remove `key` if resident.
    Delete {
        /// Key to delete.
        key: Key,
    },
    /// Largest resident key `≤ key`.
    Predecessor {
        /// Query key.
        key: Key,
    },
    /// Smallest resident key `≥ key`.
    Successor {
        /// Query key.
        key: Key,
    },
    /// Apply `func` to every resident pair in `[lo, hi]` (inclusive).
    Range {
        /// Inclusive lower bound.
        lo: Key,
        /// Inclusive upper bound.
        hi: Key,
        /// Function to apply.
        func: RangeFunc,
    },
}

/// The operation families of [`Op`] (used for grouping and statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// [`Op::Get`].
    Get,
    /// [`Op::Update`].
    Update,
    /// [`Op::Upsert`].
    Upsert,
    /// [`Op::Delete`].
    Delete,
    /// [`Op::Predecessor`].
    Predecessor,
    /// [`Op::Successor`].
    Successor,
    /// [`Op::Range`].
    Range,
}

impl Op {
    /// The operation's family.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Get { .. } => OpKind::Get,
            Op::Update { .. } => OpKind::Update,
            Op::Upsert { .. } => OpKind::Upsert,
            Op::Delete { .. } => OpKind::Delete,
            Op::Predecessor { .. } => OpKind::Predecessor,
            Op::Successor { .. } => OpKind::Successor,
            Op::Range { .. } => OpKind::Range,
        }
    }

    /// Does this operation mutate the structure? (`Update` rewrites a
    /// value in place; `Range` mutates only for `FetchAdd`/`AddInPlace`.)
    pub fn is_write(&self) -> bool {
        match self {
            Op::Get { .. } | Op::Predecessor { .. } | Op::Successor { .. } => false,
            Op::Update { .. } | Op::Upsert { .. } | Op::Delete { .. } => true,
            Op::Range { func, .. } => {
                matches!(func, RangeFunc::FetchAdd(_) | RangeFunc::AddInPlace(_))
            }
        }
    }

    /// The point key the operation addresses (`None` for [`Op::Range`],
    /// which addresses an interval — see [`Op::bounds`]).
    pub fn key(&self) -> Option<Key> {
        match *self {
            Op::Get { key }
            | Op::Update { key, .. }
            | Op::Upsert { key, .. }
            | Op::Delete { key }
            | Op::Predecessor { key }
            | Op::Successor { key } => Some(key),
            Op::Range { .. } => None,
        }
    }

    /// The inclusive key interval the operation addresses: `(k, k)` for
    /// point operations, `(lo, hi)` for ranges. Routers (the cluster
    /// tier) partition on this.
    pub fn bounds(&self) -> (Key, Key) {
        match *self {
            Op::Range { lo, hi, .. } => (lo, hi),
            _ => {
                let k = self.key().expect("point op has a key");
                (k, k)
            }
        }
    }

    /// Can `self` and `other` ride in the same model-legal batch? Same
    /// family, and for ranges the same function (the model's batches apply
    /// one function to every range).
    pub fn coalesces_with(&self, other: &Op) -> bool {
        match (self, other) {
            (Op::Range { func: a, .. }, Op::Range { func: b, .. }) => a == b,
            _ => self.kind() == other.kind(),
        }
    }
}

/// One typed answer, positionally matching the submitted [`Op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Answer to [`Op::Get`]: the value, if the key was resident.
    Value(Option<Value>),
    /// Answer to [`Op::Update`]: whether the key was resident.
    Updated(bool),
    /// Answer to [`Op::Upsert`].
    Upserted(UpsertOutcome),
    /// Answer to [`Op::Delete`]: whether the key was resident.
    Deleted(bool),
    /// Answer to [`Op::Predecessor`]/[`Op::Successor`]: the matching
    /// resident entry's key and node handle (`None` past the ends). The
    /// handle can be dereferenced with [`PimSkipList::batch_read`] while
    /// the structure is quiescent.
    Entry(Option<(Key, Handle)>),
    /// Answer to [`Op::Range`].
    Range(RangeResult),
}

impl Reply {
    /// The value carried by a [`Reply::Value`] (`None` otherwise).
    pub fn as_value(&self) -> Option<Option<Value>> {
        match self {
            Reply::Value(v) => Some(*v),
            _ => None,
        }
    }

    /// The entry carried by a [`Reply::Entry`] (`None` otherwise).
    pub fn as_entry(&self) -> Option<Option<(Key, Handle)>> {
        match self {
            Reply::Entry(e) => Some(*e),
            _ => None,
        }
    }
}

impl PimSkipList {
    /// Execute an interleaved stream of typed operations, returning one
    /// [`Reply`] per operation in input order — the single public entry
    /// point the batch family is defined over.
    ///
    /// The stream is split into maximal coalescible runs (see
    /// [`Op::coalesces_with`]) and each run executes through the paper's
    /// batch algorithm for its family, in input order; replies land at
    /// their operation's input position.
    ///
    /// ```
    /// use pim_core::{Config, Op, PimSkipList, Reply, UpsertOutcome};
    ///
    /// let mut list = PimSkipList::new(Config::new(4, 1 << 10, 42));
    /// let replies = list.execute(&[
    ///     Op::Upsert { key: 10, value: 100 },
    ///     Op::Upsert { key: 20, value: 200 },
    ///     Op::Get { key: 10 },
    ///     Op::Delete { key: 20 },
    ///     Op::Get { key: 20 },
    /// ]);
    /// assert_eq!(replies[0], Reply::Upserted(UpsertOutcome::Inserted));
    /// assert_eq!(replies[2], Reply::Value(Some(100)));
    /// assert_eq!(replies[3], Reply::Deleted(true));
    /// assert_eq!(replies[4], Reply::Value(None));
    /// ```
    pub fn execute(&mut self, ops: &[Op]) -> Vec<Reply> {
        self.try_execute(ops)
            .unwrap_or_else(|e| panic!("execute: {e}"))
    }

    /// Fault-tolerant [`PimSkipList::execute`]: the one place the bounded
    /// retry/recovery loops of [`crate::recover`] are engaged. Runs retry
    /// independently; an error aborts the stream at the failing run (every
    /// earlier run is committed, nothing of the failing or later runs is).
    ///
    /// With [`crate::Config::record_op_log`] set, each run is appended to
    /// the journal op log as it commits.
    pub fn try_execute(&mut self, ops: &[Op]) -> PimResult<Vec<Reply>> {
        let mut replies = Vec::with_capacity(ops.len());
        // Lemma 4.2 instrumentation spans one *search* batch; a mixed
        // stream may hold several, so phase records accumulate across the
        // runs instead of each search clobbering the last.
        let mut phases: Vec<u32> = Vec::new();
        let result = if self.cfg.pipeline {
            self.drive_pipelined(ops, &mut replies, &mut phases)
        } else {
            self.drive_sequential(ops, &mut replies, &mut phases)
        };
        self.last_phase_contention = phases;
        result.map(|()| replies)
    }

    /// The unpipelined run driver: split, then commit each run in turn.
    fn drive_sequential(
        &mut self,
        ops: &[Op],
        replies: &mut Vec<Reply>,
        phases: &mut Vec<u32>,
    ) -> PimResult<()> {
        let mut start = 0;
        while start < ops.len() {
            let end = run_end(ops, start);
            self.commit_run(&ops[start..end], replies, phases)?;
            start = end;
        }
        Ok(())
    }

    /// The pipelined run driver (see [`crate::pipeline`]): while run `k`
    /// executes (all of its rounds), a side thread stages run `k+1`'s
    /// CPU-side preprocessing into the back half of the double buffer;
    /// the buffer swaps at each run boundary. Run boundaries, commit
    /// order, costs and error semantics (earlier runs committed, the
    /// failing run and everything after it not) are exactly those of
    /// [`PimSkipList::drive_sequential`].
    fn drive_pipelined(
        &mut self,
        ops: &[Op],
        replies: &mut Vec<Reply>,
        phases: &mut Vec<u32>,
    ) -> PimResult<()> {
        let mut bounds = self.scratch.take_run_bounds();
        let mut start = 0;
        while start < ops.len() {
            let end = run_end(ops, start);
            bounds.push((start, end));
            start = end;
        }
        // The double buffer leaves the structure for the driver's duration
        // so the side thread's `&mut` to its back half is disjoint from
        // `&mut self`; the front half is lent back in per run.
        let mut stage = std::mem::take(&mut self.stage);
        let mut failed = None;
        for (i, &(start, end)) in bounds.iter().enumerate() {
            let run = &ops[start..end];
            // Install the stage prepared during the previous run (empty
            // for the first run and after non-stageable neighbours — the
            // batch algorithms then compute inline, the unpipelined path).
            std::mem::swap(self.stage.front_mut(), stage.front_mut());
            let next = bounds.get(i + 1).and_then(|&(s, e)| {
                let next_run = &ops[s..e];
                crate::pipeline::StagedRun::stageable(next_run[0].kind()).then_some(next_run)
            });
            let committed = match next {
                Some(next_run) => {
                    let back = stage.back_mut();
                    let (committed, ()) = pim_runtime::pool::run_overlapped(
                        || self.commit_run(run, replies, phases),
                        || back.stage(next_run),
                    );
                    committed
                }
                None => self.commit_run(run, replies, phases),
            };
            // Harvest the (partially consumed) front so its capacities
            // keep circulating, then rotate: the freshly staged back
            // becomes the next run's front.
            std::mem::swap(self.stage.front_mut(), stage.front_mut());
            stage.front_mut().clear();
            if let Err(e) = committed {
                failed = Some(e);
                break;
            }
            stage.swap();
        }
        // A stage staged for a run that never executed must not leak into
        // a later stream.
        stage.front_mut().clear();
        stage.back_mut().clear();
        self.stage = stage;
        self.scratch.give_run_bounds(bounds);
        match failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Commit one coalescible run: execute it with its family's retry
    /// discipline, then append to the journal op log / WAL / telemetry in
    /// that order. Shared verbatim by both drivers — byte-identical
    /// side effects is the pipelining contract.
    fn commit_run(
        &mut self,
        run: &[Op],
        replies: &mut Vec<Reply>,
        phases: &mut Vec<u32>,
    ) -> PimResult<()> {
        self.last_phase_contention.clear();
        let before = if self.telemetry.is_some() {
            Some(self.sys.metrics())
        } else {
            None
        };
        let out = self.execute_run(run)?;
        debug_assert_eq!(out.len(), run.len());
        if self.cfg.record_op_log {
            self.journal.record_ops(run);
        }
        if self.durable.is_some() {
            // WAL frame = committed run: replay splits the stream into
            // the same runs, so frame-by-frame recovery is the original
            // execution (see `crate::durable`).
            self.durable_record_run(run)?;
        }
        if let (Some(t), Some(before)) = (self.telemetry.as_deref_mut(), before) {
            t.after_run(run[0].kind(), run.len() as u64, self.sys.metrics() - before);
        }
        phases.append(&mut self.last_phase_contention);
        replies.extend(out);
        Ok(())
    }

    /// Execute one coalescible run through its family's batch algorithm,
    /// with the family's retry discipline (idempotent reads re-issue after
    /// per-module recovery; structural writes restore from the journal).
    fn execute_run(&mut self, run: &[Op]) -> PimResult<Vec<Reply>> {
        // The run's keys/pairs/ranges are staged in leased scratch buffers
        // (returned before the `?` propagates), so a service front-end
        // executing batches continuously reuses staging capacity instead
        // of allocating it per dispatch.
        match run[0].kind() {
            OpKind::Get => {
                let mut keys = self.scratch.take_keys();
                if !self.stage.front_mut().take_keys(OpKind::Get, &mut keys) {
                    keys.extend(run.iter().map(op_key));
                }
                let out = self.retry_read("batch_get", keys.len(), |s| s.get_attempt(&keys));
                self.scratch.give_keys(keys);
                Ok(out?.into_iter().map(Reply::Value).collect())
            }
            OpKind::Update => {
                let mut pairs = self.scratch.take_pairs();
                if !self
                    .stage
                    .front_mut()
                    .take_pairs(OpKind::Update, &mut pairs)
                {
                    pairs.extend(run.iter().map(op_pair));
                }
                let out =
                    self.retry_read("batch_update", pairs.len(), |s| s.update_attempt(&pairs));
                self.scratch.give_pairs(pairs);
                Ok(out?.into_iter().map(Reply::Updated).collect())
            }
            OpKind::Upsert => {
                let mut pairs = self.scratch.take_pairs();
                if !self
                    .stage
                    .front_mut()
                    .take_pairs(OpKind::Upsert, &mut pairs)
                {
                    pairs.extend(run.iter().map(op_pair));
                }
                let out = self
                    .retry_structural("batch_upsert", pairs.len(), |s| s.upsert_attempt(&pairs));
                self.scratch.give_pairs(pairs);
                Ok(out?.into_iter().map(Reply::Upserted).collect())
            }
            OpKind::Delete => {
                let mut keys = self.scratch.take_keys();
                if !self.stage.front_mut().take_keys(OpKind::Delete, &mut keys) {
                    keys.extend(run.iter().map(op_key));
                }
                let out =
                    self.retry_structural("batch_delete", keys.len(), |s| s.delete_attempt(&keys));
                self.scratch.give_keys(keys);
                Ok(out?.into_iter().map(Reply::Deleted).collect())
            }
            OpKind::Predecessor => {
                let mut keys = self.scratch.take_keys();
                if !self
                    .stage
                    .front_mut()
                    .take_keys(OpKind::Predecessor, &mut keys)
                {
                    keys.extend(run.iter().map(op_key));
                }
                let out = self.retry_read("batch_predecessor", keys.len(), |s| {
                    s.predecessor_attempt(&keys)
                });
                self.scratch.give_keys(keys);
                Ok(out?.into_iter().map(Reply::Entry).collect())
            }
            OpKind::Successor => {
                let mut keys = self.scratch.take_keys();
                if !self
                    .stage
                    .front_mut()
                    .take_keys(OpKind::Successor, &mut keys)
                {
                    keys.extend(run.iter().map(op_key));
                }
                let out = self.retry_read("batch_successor", keys.len(), |s| {
                    s.successor_attempt(&keys)
                });
                self.scratch.give_keys(keys);
                Ok(out?.into_iter().map(Reply::Entry).collect())
            }
            OpKind::Range => {
                let func = match run[0] {
                    Op::Range { func, .. } => func,
                    _ => unreachable!("run starts with a Range"),
                };
                let mut ranges = self.scratch.take_ranges();
                for op in run {
                    let Op::Range { lo, hi, .. } = *op else {
                        unreachable!("mixed run");
                    };
                    if lo > hi {
                        self.scratch.give_ranges(ranges);
                        return Err(PimError::InvalidArgument {
                            op: "batch_range",
                            reason: format!("inverted range [{lo}, {hi}]"),
                        });
                    }
                    ranges.push((lo, hi));
                }
                let mutating = matches!(func, RangeFunc::FetchAdd(_) | RangeFunc::AddInPlace(_));
                if mutating && self.cfg.h_low == 0 {
                    self.scratch.give_ranges(ranges);
                    return Err(PimError::InvalidArgument {
                        op: "batch_range",
                        reason:
                            "mutating range functions require a distributed lower part (h_low > 0)"
                                .into(),
                    });
                }
                let out = if mutating {
                    self.retry_structural("batch_range", ranges.len(), |s| {
                        s.batch_range_attempt(&ranges, func)
                    })
                } else {
                    self.retry_read("batch_range", ranges.len(), |s| {
                        s.batch_range_attempt(&ranges, func)
                    })
                };
                self.scratch.give_ranges(ranges);
                Ok(out?.into_iter().map(Reply::Range).collect())
            }
        }
    }
}

/// End (exclusive) of the maximal coalescible run starting at `start`.
/// Public so layered executors (the cluster router) split a stream into
/// *exactly* the runs this machine would — reply identity across tiers
/// depends on the two split points never drifting apart.
pub fn run_end(ops: &[Op], start: usize) -> usize {
    let mut end = start + 1;
    while end < ops.len() && ops[end].coalesces_with(&ops[start]) {
        end += 1;
    }
    end
}

pub(crate) fn op_key(op: &Op) -> Key {
    match *op {
        Op::Get { key } | Op::Delete { key } | Op::Predecessor { key } | Op::Successor { key } => {
            key
        }
        _ => unreachable!("key-only extraction on {op:?}"),
    }
}

pub(crate) fn op_pair(op: &Op) -> (Key, Value) {
    match *op {
        Op::Update { key, value } | Op::Upsert { key, value } => (key, value),
        _ => unreachable!("pair extraction on {op:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    #[test]
    fn kinds_and_write_classification() {
        assert_eq!(Op::Get { key: 1 }.kind(), OpKind::Get);
        assert!(!Op::Get { key: 1 }.is_write());
        assert!(Op::Update { key: 1, value: 2 }.is_write());
        assert!(Op::Upsert { key: 1, value: 2 }.is_write());
        assert!(Op::Delete { key: 1 }.is_write());
        assert!(!Op::Predecessor { key: 1 }.is_write());
        assert!(!Op::Successor { key: 1 }.is_write());
        assert!(!Op::Range {
            lo: 0,
            hi: 9,
            func: RangeFunc::Sum
        }
        .is_write());
        assert!(Op::Range {
            lo: 0,
            hi: 9,
            func: RangeFunc::AddInPlace(1)
        }
        .is_write());
    }

    #[test]
    fn ranges_coalesce_only_on_equal_func() {
        let a = Op::Range {
            lo: 0,
            hi: 5,
            func: RangeFunc::FetchAdd(1),
        };
        let b = Op::Range {
            lo: 2,
            hi: 9,
            func: RangeFunc::FetchAdd(1),
        };
        let c = Op::Range {
            lo: 2,
            hi: 9,
            func: RangeFunc::FetchAdd(2),
        };
        assert!(a.coalesces_with(&b));
        assert!(!a.coalesces_with(&c));
        assert!(!a.coalesces_with(&Op::Get { key: 1 }));
        assert!(Op::Get { key: 1 }.coalesces_with(&Op::Get { key: 2 }));
        assert!(!Op::Get { key: 1 }.coalesces_with(&Op::Delete { key: 1 }));
    }

    #[test]
    fn mixed_stream_respects_arrival_order() {
        let mut list = PimSkipList::new(Config::new(4, 1 << 10, 7));
        let replies = list.execute(&[
            Op::Upsert { key: 5, value: 50 },
            Op::Get { key: 5 },
            Op::Update { key: 5, value: 51 },
            Op::Get { key: 5 },
            Op::Delete { key: 5 },
            Op::Get { key: 5 },
            Op::Successor { key: 1 },
        ]);
        assert_eq!(replies[0], Reply::Upserted(UpsertOutcome::Inserted));
        assert_eq!(replies[1], Reply::Value(Some(50)));
        assert_eq!(replies[2], Reply::Updated(true));
        assert_eq!(replies[3], Reply::Value(Some(51)));
        assert_eq!(replies[4], Reply::Deleted(true));
        assert_eq!(replies[5], Reply::Value(None));
        assert_eq!(replies[6], Reply::Entry(None));
    }

    #[test]
    fn range_runs_split_by_func() {
        let mut list = PimSkipList::new(Config::new(4, 1 << 10, 8));
        list.batch_upsert(&[(1, 10), (2, 20), (3, 30)]);
        let replies = list.execute(&[
            Op::Range {
                lo: 1,
                hi: 3,
                func: RangeFunc::Sum,
            },
            Op::Range {
                lo: 1,
                hi: 2,
                func: RangeFunc::Count,
            },
        ]);
        let Reply::Range(sum) = &replies[0] else {
            panic!("expected range reply");
        };
        assert_eq!(sum.sum, 60);
        let Reply::Range(count) = &replies[1] else {
            panic!("expected range reply");
        };
        assert_eq!(count.count, 2);
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let mut list = PimSkipList::new(Config::new(4, 64, 9));
        let before = list.metrics();
        assert!(list.execute(&[]).is_empty());
        assert_eq!(list.metrics(), before);
    }

    #[test]
    fn op_log_records_committed_stream() {
        let mut list = PimSkipList::new(Config::new(4, 1 << 10, 10).with_op_log());
        let ops = [
            Op::Upsert { key: 1, value: 1 },
            Op::Get { key: 1 },
            Op::Delete { key: 1 },
        ];
        list.execute(&ops);
        assert_eq!(list.op_log(), &ops);
        // A second stream appends.
        list.execute(&[Op::Upsert { key: 2, value: 2 }]);
        assert_eq!(list.op_log().len(), 4);
    }
}
